//! # sparseflex
//!
//! Umbrella crate for the `sparseflex` workspace — a Rust reproduction of
//! *"Extending Sparse Tensor Accelerators to Support Multiple Compression
//! Formats"* (IPDPS 2021).
//!
//! The workspace implements the paper's three contributions on top of
//! fully-built substrates:
//!
//! | Module | Contents |
//! |---|---|
//! | [`formats`] | every compression format of Fig. 3, conversions, size models |
//! | [`kernels`] | format-generic GEMM / SpMM / SpGEMM / SpMV / SpTTM / MTTKRP / im2col over fiber streams |
//! | [`workloads`] | Table III suite, ResNet Fig. 14a layers, synthetic generators |
//! | [`accel`] | cycle-level weight-stationary accelerator with flexible ACFs (§IV) |
//! | [`mint`] | the MINT hardware format converter (§V) |
//! | [`sage`] | the SAGE MCF/ACF predictor (§VI) |
//! | [`host`] | CPU/GPU offload baseline models (§VII-B) |
//! | [`system`] | the integrated `Flex_Flex_HW` system (§VII-C/D): planner layer (`ExecutionPlan` IR, bounded LRU plan cache) + shared executor |
//! | [`serve`] | multi-tenant job service: admission control, weighted-fair scheduling, work stealing, binary wire format |
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use sparseflex_accel as accel;
pub use sparseflex_core as system;
pub use sparseflex_formats as formats;
pub use sparseflex_host as host;
pub use sparseflex_kernels as kernels;
pub use sparseflex_kernels::KernelError;
pub use sparseflex_mint as mint;
pub use sparseflex_sage as sage;
pub use sparseflex_serve as serve;
pub use sparseflex_workloads as workloads;

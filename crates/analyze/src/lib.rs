#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `sparseflex-analyze` — workspace-native static analysis (`sflint`).
//!
//! A dependency-free, token-level analyzer purpose-built for this
//! workspace's invariants. It is not a general Rust linter: each lint
//! encodes a rule the serving/kernel stack actually relies on, at a
//! precision clippy cannot reach because the rules are about *this*
//! codebase's hot paths, lock graph, and wire format.
//!
//! The five lints:
//!
//! | lint | rule |
//! |---|---|
//! | `alloc-in-hot-path` | no allocation tokens inside fiber-traversal call bodies, `kernels::lanes`, or `spgemm::rowwise_row` |
//! | `lock-order-cycle` | the Mutex-acquisition graph must stay acyclic (deadlock freedom) |
//! | `unwrap-in-library` | no `.unwrap()`/`.expect(` in non-test library code — typed errors end to end |
//! | `unchecked-narrowing-cast` | every `as u32`/`as u16` on wire encode paths needs a dominating range guard |
//! | `thread-spawn-containment` | threads are created only in the sanctioned parallel modules |
//!
//! Mechanics:
//!
//! - [`lexer`] strips comments/strings while preserving line structure,
//!   tracks brace depth, marks `#[cfg(test)]`/`mod tests` regions, and
//!   records `// sflint::allow(<lint>)` pragmas (own line + next line).
//! - [`framework`] holds the [`Finding`]/[`LockEdge`] records, the
//!   committed [`AnalysisConfig::workspace`] policy, and the runner.
//! - [`baseline`] freezes existing debt in
//!   `results/lint_baseline.json`; `sflint --gate` fails on any *new*
//!   finding and on any *stale* entry, so debt only shrinks.

pub mod alloc_hot;
pub mod baseline;
pub mod cast_audit;
pub mod framework;
pub mod lexer;
pub mod lock_order;
pub mod spawn;
pub mod unwrap_lib;

pub use baseline::{diff, read_baseline, write_baseline, GateDiff};
pub use framework::{
    analyze_paths, analyze_sources, analyze_workspace, workspace_files, AnalysisConfig, Finding,
    LockEdge, Report,
};
pub use lexer::SourceFile;

//! `unchecked-narrowing-cast`: every `as u32` / `as u16` on the wire
//! encode paths needs a dominating range guard.
//!
//! Wire indices are `u32`; a silent `usize as u32` truncates a >4Gi
//! dimension or nnz count into a frame that decodes "successfully" to
//! the wrong matrix. The encode paths guard with explicit
//! `u32::MAX`-style checks (returning `WireError::Overflow`); this lint
//! makes the pattern total: a narrowing cast is flagged unless the
//! enclosing function mentions the matching `::MAX` bound (or a
//! `try_from`/`try_into` conversion) on an earlier line — i.e. the
//! guard dominates the cast.

use crate::framework::{in_scope, AnalysisConfig, Finding};
use crate::lexer::SourceFile;

/// The lint's name, as used in pragmas and baselines.
pub const NAME: &str = "unchecked-narrowing-cast";

const CASTS: &[(&str, &str)] = &[("as u32", "u32::MAX"), ("as u16", "u16::MAX")];

/// Scan one file for unguarded narrowing casts.
pub fn run(src: &SourceFile, config: &AnalysisConfig) -> Vec<Finding> {
    if !in_scope(&src.path, &config.cast_scope) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (li, line) in src.lines.iter().enumerate() {
        if line.in_test || src.is_allowed(NAME, li) {
            continue;
        }
        for &(cast, guard) in CASTS {
            let mut from = 0usize;
            while let Some(col) = find_cast(&line.code, cast, from) {
                from = col + cast.len();
                if dominated(src, li, col, guard) {
                    continue;
                }
                findings.push(Finding {
                    lint: NAME.to_string(),
                    file: src.path.clone(),
                    line: li + 1,
                    excerpt: src.excerpt(li),
                    message: format!(
                        "`{cast}` with no dominating `{guard}` guard in the enclosing \
                         function; check the range first (WireError::Overflow) or use \
                         a checked helper"
                    ),
                });
            }
        }
    }
    findings
}

/// Word-bounded `as uNN` at/after `from`.
fn find_cast(code: &str, cast: &str, from: usize) -> Option<usize> {
    let mut start = from.min(code.len());
    while let Some(rel) = code[start..].find(cast) {
        let col = start + rel;
        start = col + cast.len();
        let before_ok = col == 0
            || !code[..col]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[col + cast.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(col);
        }
    }
    None
}

/// Does a guard mention precede the cast within its enclosing function?
fn dominated(src: &SourceFile, line: usize, col: usize, guard: &str) -> bool {
    let start = src.enclosing_fn(line).map(|f| f.start_line).unwrap_or(0);
    for li in start..=line {
        let code = &src.lines[li].code;
        let hay = if li == line { &code[..col] } else { code };
        if hay.contains(guard) || hay.contains("try_from") || hay.contains("try_into") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_cast_is_flagged_and_guarded_passes() {
        let src = SourceFile::parse(
            "w.rs",
            "fn bad(w: &mut W, v: usize) {\n    w.put_u32(v as u32);\n}\nfn good(w: &mut W, v: usize) -> Result<(), E> {\n    if v > u32::MAX as usize {\n        return Err(E::Overflow);\n    }\n    w.put_u32(v as u32);\n    Ok(())\n}\n",
        );
        let f = run(&src, &AnalysisConfig::everything());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn widening_casts_and_u64_are_ignored() {
        let src = SourceFile::parse(
            "w.rs",
            "fn f(n: u32, m: usize) {\n    let a = n as usize;\n    let b = m as u64;\n}\n",
        );
        assert!(run(&src, &AnalysisConfig::everything()).is_empty());
    }

    #[test]
    fn guard_must_dominate_not_follow() {
        let src = SourceFile::parse(
            "w.rs",
            "fn f(w: &mut W, v: usize) {\n    w.put_u32(v as u32);\n    assert!(v <= u32::MAX as usize);\n}\n",
        );
        assert_eq!(run(&src, &AnalysisConfig::everything()).len(), 1);
    }
}

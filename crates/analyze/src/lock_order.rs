//! `lock-order-cycle`: a static Mutex-acquisition graph and deadlock
//! detector.
//!
//! The serving stack acquires a growing web of locks — the service's
//! `central` state, per-worker `deques`, per-job ticket slots, the
//! sharded `PlanCache`, the planner's `tile_arenas` pool. A deadlock
//! needs two threads acquiring the same pair of locks in opposite
//! orders; this lint extracts the **lock-while-holding** edges from
//! every function and reports any cycle in the resulting graph as a
//! potential deadlock, with the full edge list (file:line each) in the
//! finding.
//!
//! Extraction is token-level and deliberately conservative:
//!
//! - `X.lock()` acquires the lock named by the last field/identifier of
//!   the receiver chain (`self.shared.central.lock()` → `central`,
//!   `self.deques[w].lock()` → `deques`); numeric tuple fields and
//!   `self`/`shared` wrappers are skipped.
//! - A `let`-bound guard is held until `drop(binding)` or the end of
//!   its block; an unbound (temporary) guard is held until the end of
//!   the statement — and, matching Rust 2021 temporary-lifetime rules,
//!   an `if let`/`while let`/`match` scrutinee temporary is treated as
//!   held through the dependent block.
//! - Calls to same-file functions propagate: holding `A` while calling
//!   `f()` adds `A → L` for every lock `L` that `f` (transitively)
//!   acquires.
//! - `.try_lock()` is ignored: it cannot block, so it cannot close a
//!   deadlock cycle.
//!
//! Edges are informational (printed by the report); only cycles over
//! distinct locks become gate findings. Same-name re-acquisition
//! (`deques` while holding `deques`) is recorded as a self-edge in the
//! edge list for human review, but conservative guard-lifetime
//! over-approximation makes it too noisy to gate on.

use crate::framework::{Finding, LockEdge};
use crate::lexer::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// The lint's name, as used in pragmas and baselines.
pub const NAME: &str = "lock-order-cycle";

/// A guard currently held during simulation.
#[derive(Debug, Clone)]
struct Held {
    name: String,
    binding: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops
    /// below it.
    depth: usize,
    /// Unbound temporaries die at the first `;` back at their own
    /// depth — which models the 2021 scrutinee-lifetime extension for
    /// free: an `if let`/`while let`/`match` head has no `;` until
    /// after its dependent block, so the temporary is held through it.
    stmt_temporary: bool,
}

/// Run the detector over every parsed source; returns the global edge
/// list and the cycle findings.
pub fn run(sources: &[SourceFile]) -> (Vec<LockEdge>, Vec<Finding>) {
    let mut edges: Vec<LockEdge> = Vec::new();
    for src in sources {
        let summaries = fn_summaries(src);
        for f in &src.fns {
            if src.lines[f.start_line].in_test {
                continue;
            }
            simulate_fn(src, f.start_line, f.end_line, &summaries, &mut edges);
        }
    }
    // Deduplicate by (from, to, via), keeping the first site.
    let mut seen = BTreeSet::new();
    edges.retain(|e| seen.insert((e.from.clone(), e.to.clone(), e.via.clone())));
    edges.sort_by(|a, b| (&a.file, a.line, &a.from, &a.to).cmp(&(&b.file, b.line, &b.from, &b.to)));

    let findings = find_cycles(&edges, sources);
    (edges, findings)
}

/// Direct + transitive (same-file) lock-name summaries per function.
fn fn_summaries(src: &SourceFile) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &src.fns {
        let mut locks = BTreeSet::new();
        for li in f.start_line..=f.end_line.min(src.lines.len().saturating_sub(1)) {
            if !covered_by(src, f, li) {
                continue;
            }
            let code = &src.lines[li].code;
            let mut from = 0usize;
            while let Some(col) = find_lock_call(code, from) {
                from = col + ".lock()".len();
                if let Some(name) = receiver_name(code, col) {
                    locks.insert(name);
                }
            }
            let mut from = 0usize;
            while let Some(col) = find_wrapper_call(code, from) {
                from = col + WRAPPER.len();
                if let Some(name) = wrapper_arg_name(code, col + WRAPPER.len()) {
                    locks.insert(name);
                }
            }
        }
        direct.entry(f.name.clone()).or_default().extend(locks);
    }
    // Fixpoint over the same-file call graph (bounded — the graph is
    // tiny and monotone).
    for _ in 0..5 {
        let snapshot = direct.clone();
        let mut changed = false;
        for f in &src.fns {
            let mut add = BTreeSet::new();
            for li in f.start_line..=f.end_line.min(src.lines.len().saturating_sub(1)) {
                for callee in call_idents(&src.lines[li].code) {
                    if callee == f.name {
                        continue;
                    }
                    if let Some(locks) = snapshot.get(&callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
            }
            let entry = direct.entry(f.name.clone()).or_default();
            let before = entry.len();
            entry.extend(add);
            changed |= entry.len() != before;
        }
        if !changed {
            break;
        }
    }
    direct
}

/// Identifiers in `code` that look like calls (followed by `(`),
/// excluding keywords and `fn` definitions. Used only to propagate
/// same-file lock summaries, so over-approximation is fine.
fn call_idents(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if !(chars[i].is_alphabetic() || chars[i] == '_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        let word: String = chars[start..i].iter().collect();
        let mut j = i;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let is_call = chars.get(j) == Some(&'(');
        let preceding: String = chars[..start]
            .iter()
            .collect::<String>()
            .trim_end()
            .to_string();
        let is_def = preceding.ends_with("fn");
        if is_call
            && !is_def
            && !is_keyword(&word)
            && word != "lock"
            && word != "try_lock"
            && word != WRAPPER
        {
            out.push(word);
        }
    }
    out
}

/// Is `line` inside `f`'s span but not inside a nested fn? (Nested fns
/// simulate separately; attributing their locks to the outer fn would
/// double-count.)
fn covered_by(src: &SourceFile, f: &crate::lexer::FnSpan, line: usize) -> bool {
    src.enclosing_fn(line)
        .is_some_and(|inner| inner.start_line == f.start_line && inner.end_line == f.end_line)
}

/// Simulate one function body, appending lock-while-holding edges.
fn simulate_fn(
    src: &SourceFile,
    start: usize,
    end: usize,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Vec<LockEdge>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = src.lines[start].depth;
    let mut stmt_start = true;
    let mut stmt_is_let = false;
    let mut stmt_binding: Option<String> = None;
    let mut stmt_depth = depth;

    for li in start..=end.min(src.lines.len().saturating_sub(1)) {
        if !covered_by_span(src, start, end, li) {
            continue;
        }
        let code: &str = &src.lines[li].code;
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if stmt_start {
                stmt_is_let = ident_here(&chars, i, "let");
                stmt_binding = None;
                stmt_depth = depth;
                stmt_start = false;
                if stmt_is_let {
                    stmt_binding = first_binding_ident(&chars, i + 3);
                }
            }
            match c {
                '{' => {
                    depth += 1;
                    stmt_start = true;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| depth >= h.depth);
                    stmt_start = true;
                    i += 1;
                }
                ';' => {
                    held.retain(|h| !(h.stmt_temporary && depth <= h.depth));
                    stmt_start = true;
                    i += 1;
                }
                'd' if ident_here(&chars, i, "drop") => {
                    // drop(binding)
                    let rest: String = chars[i + 4..].iter().collect();
                    let arg = rest.trim_start();
                    if let Some(stripped) = arg.strip_prefix('(') {
                        let name: String = stripped
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        if !name.is_empty() {
                            held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                        }
                    }
                    i += 4;
                }
                '.' if lock_call_here(&chars, i) => {
                    let name = receiver_name(code, byte_col(code, i)).unwrap_or_default();
                    if !name.is_empty() {
                        acquire(
                            &mut held,
                            edges,
                            name,
                            src,
                            li,
                            &stmt_binding,
                            stmt_depth,
                            stmt_is_let,
                        );
                    }
                    i += ".lock()".len();
                }
                'l' if ident_here(&chars, i, WRAPPER) => {
                    // `lock_clean(&x)` is the sanctioned poison-tolerant
                    // acquisition wrapper: treat it exactly like
                    // `x.lock()`.
                    let after = byte_col(code, i + WRAPPER.len());
                    if let Some(name) = wrapper_arg_name(code, after) {
                        acquire(
                            &mut held,
                            edges,
                            name,
                            src,
                            li,
                            &stmt_binding,
                            stmt_depth,
                            stmt_is_let,
                        );
                    }
                    i += WRAPPER.len();
                }
                _ if c.is_alphabetic() || c == '_' => {
                    // Possible call: propagate callee lock summaries.
                    let word_start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[word_start..i].iter().collect();
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    let is_call = chars.get(j) == Some(&'(');
                    if is_call && !held.is_empty() && !is_keyword(&word) {
                        if let Some(locks) = summaries.get(&word) {
                            for h in &held {
                                for l in locks {
                                    if *l == h.name {
                                        continue;
                                    }
                                    edges.push(LockEdge {
                                        from: h.name.clone(),
                                        to: l.clone(),
                                        file: src.path.clone(),
                                        line: li + 1,
                                        via: Some(word.clone()),
                                    });
                                }
                            }
                        }
                    }
                }
                _ => {
                    i += 1;
                }
            }
        }
    }
}

/// Like [`covered_by`], against a raw span.
fn covered_by_span(src: &SourceFile, start: usize, end: usize, line: usize) -> bool {
    src.enclosing_fn(line)
        .is_some_and(|inner| inner.start_line == start && inner.end_line == end)
}

fn byte_col(code: &str, char_idx: usize) -> usize {
    code.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(code.len())
}

fn ident_here(chars: &[char], i: usize, word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    if i + w.len() > chars.len() || chars[i..i + w.len()] != w[..] {
        return false;
    }
    let before_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    let after = chars.get(i + w.len());
    before_ok && !after.is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "let"
            | "fn"
            | "drop"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Vec"
            | "Box"
    )
}

/// First identifier of a `let` pattern (skipping `mut` and pattern
/// punctuation).
fn first_binding_ident(chars: &[char], from: usize) -> Option<String> {
    let mut i = from;
    loop {
        while i < chars.len() && !(chars[i].is_alphabetic() || chars[i] == '_') {
            if chars[i] == '=' {
                return None;
            }
            i += 1;
        }
        let start = i;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        if i == start {
            return None;
        }
        let word: String = chars[start..i].iter().collect();
        if word != "mut" {
            return Some(word);
        }
    }
}

/// Is `.lock()` (not `.try_lock()`) at char position `i` (the dot)?
fn lock_call_here(chars: &[char], i: usize) -> bool {
    let pat: Vec<char> = ".lock()".chars().collect();
    i + pat.len() <= chars.len() && chars[i..i + pat.len()] == pat[..]
}

/// Byte-level `.lock()` search (receiver ends at the returned column).
/// The literal dot already excludes `.try_lock()`: `_lock` has no dot
/// before `lock`.
fn find_lock_call(code: &str, from: usize) -> Option<usize> {
    let start = from.min(code.len());
    code[start..].find(".lock()").map(|rel| start + rel)
}

/// The sanctioned poison-tolerant acquisition wrapper, equivalent to a
/// `.lock()` on its argument.
const WRAPPER: &str = "lock_clean";

/// Word-bounded `lock_clean(` search.
fn find_wrapper_call(code: &str, from: usize) -> Option<usize> {
    let mut start = from.min(code.len());
    while let Some(rel) = code[start..].find(WRAPPER) {
        let col = start + rel;
        start = col + WRAPPER.len();
        let before_ok = col == 0
            || !code[..col]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
        let after_ok = code[col + WRAPPER.len()..].trim_start().starts_with('(');
        let not_def = !code[..col].trim_end().ends_with("fn");
        if before_ok && after_ok && not_def {
            return Some(col);
        }
    }
    None
}

/// Lock name acquired by a wrapper call whose argument list begins at or
/// after byte `from`: the receiver chain inside `( ... )`, with leading
/// `&`/`mut` stripped.
fn wrapper_arg_name(code: &str, from: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = from.min(bytes.len());
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'(') {
        return None;
    }
    let open = i;
    let mut bal = 0i64;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => bal += 1,
            b')' => {
                bal -= 1;
                if bal == 0 {
                    let inner = code[open + 1..i].trim();
                    let inner = inner.strip_prefix('&').unwrap_or(inner).trim_start();
                    let inner = inner.strip_prefix("mut ").unwrap_or(inner);
                    return receiver_name(inner, inner.len());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Record an acquisition: one edge per held lock, then hold the new one.
#[allow(clippy::too_many_arguments)]
fn acquire(
    held: &mut Vec<Held>,
    edges: &mut Vec<LockEdge>,
    name: String,
    src: &SourceFile,
    li: usize,
    stmt_binding: &Option<String>,
    stmt_depth: usize,
    stmt_is_let: bool,
) {
    for h in held.iter() {
        edges.push(LockEdge {
            from: h.name.clone(),
            to: name.clone(),
            file: src.path.clone(),
            line: li + 1,
            via: None,
        });
    }
    held.push(Held {
        name,
        binding: stmt_binding.clone(),
        depth: stmt_depth,
        stmt_temporary: stmt_binding.is_none() || !stmt_is_let,
    });
}

/// Name of the lock acquired by the `.lock()` whose dot is at byte
/// `col`: the last meaningful segment of the receiver chain.
fn receiver_name(code: &str, col: usize) -> Option<String> {
    let chars: Vec<char> = code[..col].chars().collect();
    let mut i = chars.len();
    let mut segments: Vec<String> = Vec::new();
    loop {
        // Skip whitespace.
        while i > 0 && chars[i - 1].is_whitespace() {
            i -= 1;
        }
        // Skip an index or call suffix.
        while i > 0 && (chars[i - 1] == ']' || chars[i - 1] == ')') {
            let open = if chars[i - 1] == ']' { '[' } else { '(' };
            let close = chars[i - 1];
            let mut bal = 0i64;
            while i > 0 {
                i -= 1;
                if chars[i] == close {
                    bal += 1;
                } else if chars[i] == open {
                    bal -= 1;
                    if bal == 0 {
                        break;
                    }
                }
            }
        }
        let end = i;
        while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
            i -= 1;
        }
        if i == end {
            break;
        }
        segments.push(chars[i..end].iter().collect());
        // Continue through a field access chain.
        if i > 0 && chars[i - 1] == '.' {
            i -= 1;
            continue;
        }
        break;
    }
    // segments are innermost-last reversed: first element is the field
    // nearest the `.lock()`.
    segments
        .into_iter()
        .find(|s| {
            !s.is_empty() && !s.chars().all(|c| c.is_ascii_digit()) && s != "self" && s != "shared"
        })
        .map(|s| s.to_string())
}

/// Report every multi-lock cycle in the edge graph as a finding.
fn find_cycles(edges: &[LockEdge], sources: &[SourceFile]) -> Vec<Finding> {
    let cyclic: Vec<&LockEdge> = edges.iter().filter(|e| e.from != e.to).collect();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &cyclic {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let reach = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if *m == to {
                        return true;
                    }
                    stack.push(m);
                }
            }
        }
        false
    };
    // Group mutually-reachable nodes into components.
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut findings = Vec::new();
    for &n in &nodes {
        if assigned.contains(n) || !reach(n, n) {
            continue;
        }
        let mut comp: Vec<&str> = vec![n];
        for &m in &nodes {
            if m != n && reach(n, m) && reach(m, n) {
                comp.push(m);
            }
        }
        for m in &comp {
            assigned.insert(m);
        }
        comp.sort_unstable();
        let comp_edges: Vec<&&LockEdge> = cyclic
            .iter()
            .filter(|e| comp.contains(&e.from.as_str()) && comp.contains(&e.to.as_str()))
            .collect();
        let Some(first) = comp_edges.first() else {
            continue;
        };
        // A pragma on any participating acquisition waives the cycle.
        let allowed = comp_edges.iter().any(|e| {
            sources
                .iter()
                .find(|s| s.path == e.file)
                .is_some_and(|s| s.is_allowed(NAME, e.line.saturating_sub(1)))
        });
        if allowed {
            continue;
        }
        let edge_list = comp_edges
            .iter()
            .map(|e| format!("{e}"))
            .collect::<Vec<_>>()
            .join("; ");
        let excerpt = sources
            .iter()
            .find(|s| s.path == first.file)
            .map(|s| s.excerpt(first.line.saturating_sub(1)))
            .unwrap_or_default();
        findings.push(Finding {
            lint: NAME.to_string(),
            file: first.file.clone(),
            line: first.line,
            excerpt,
            message: format!(
                "potential deadlock: locks {{{}}} form an acquisition-order cycle; \
                 edges: {edge_list}",
                comp.join(", ")
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/l.rs", src)
    }

    #[test]
    fn opposite_orders_form_a_cycle_finding() {
        let src = parse(
            "fn ab(s: &S) {\n    let ga = s.a.lock().unwrap();\n    let gb = s.b.lock().unwrap();\n    use_both(ga, gb);\n}\nfn ba(s: &S) {\n    let gb = s.b.lock().unwrap();\n    let ga = s.a.lock().unwrap();\n    use_both(ga, gb);\n}\n",
        );
        let (edges, findings) = run(std::slice::from_ref(&src));
        assert!(edges.iter().any(|e| e.from == "a" && e.to == "b"));
        assert!(edges.iter().any(|e| e.from == "b" && e.to == "a"));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("a, b"));
        assert!(findings[0].message.contains("l.rs"));
    }

    #[test]
    fn consistent_order_yields_edges_but_no_cycle() {
        let src = parse(
            "fn ab(s: &S) {\n    let ga = s.a.lock().unwrap();\n    let gb = s.b.lock().unwrap();\n}\nfn ab2(s: &S) {\n    let ga = s.a.lock().unwrap();\n    let gb = s.b.lock().unwrap();\n}\n",
        );
        let (edges, findings) = run(std::slice::from_ref(&src));
        assert!(edges.iter().any(|e| e.from == "a" && e.to == "b"));
        assert!(!edges.iter().any(|e| e.from == "b" && e.to == "a"));
        assert!(findings.is_empty());
    }

    #[test]
    fn dropped_guard_breaks_the_edge() {
        let src = parse(
            "fn f(s: &S) {\n    let ga = s.a.lock().unwrap();\n    drop(ga);\n    let gb = s.b.lock().unwrap();\n}\nfn g(s: &S) {\n    let gb = s.b.lock().unwrap();\n    drop(gb);\n    let ga = s.a.lock().unwrap();\n}\n",
        );
        let (edges, findings) = run(std::slice::from_ref(&src));
        assert!(edges.is_empty(), "{edges:?}");
        assert!(findings.is_empty());
    }

    #[test]
    fn block_scope_releases_bound_guards() {
        let src = parse(
            "fn f(s: &S) {\n    {\n        let ga = s.a.lock().unwrap();\n        touch(ga);\n    }\n    let gb = s.b.lock().unwrap();\n}\nfn g(s: &S) {\n    let gb = s.b.lock().unwrap();\n}\n",
        );
        let (edges, _) = run(std::slice::from_ref(&src));
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn call_mediated_edges_propagate_same_file() {
        let src = parse(
            "fn helper(s: &S) {\n    let gb = s.b.lock().unwrap();\n}\nfn f(s: &S) {\n    let ga = s.a.lock().unwrap();\n    helper(s);\n}\n",
        );
        let (edges, _) = run(std::slice::from_ref(&src));
        let e = edges
            .iter()
            .find(|e| e.from == "a" && e.to == "b")
            .expect("call-mediated edge");
        assert_eq!(e.via.as_deref(), Some("helper"));
    }

    #[test]
    fn try_lock_is_not_an_acquisition() {
        let src = parse(
            "fn f(s: &S) {\n    match s.state.try_lock() {\n        Ok(g) => use_it(g),\n        Err(_) => {\n            let g = s.state.lock().unwrap();\n        }\n    }\n}\n",
        );
        let (edges, findings) = run(std::slice::from_ref(&src));
        assert!(edges.is_empty(), "{edges:?}");
        assert!(findings.is_empty());
    }

    #[test]
    fn if_let_scrutinee_temporary_extends_through_body() {
        let src = parse(
            "fn f(s: &S) {\n    if let Some(x) = s.deques.lock().unwrap().pop_front() {\n        let g = s.central.lock().unwrap();\n    }\n}\n",
        );
        let (edges, _) = run(std::slice::from_ref(&src));
        assert!(
            edges
                .iter()
                .any(|e| e.from == "deques" && e.to == "central"),
            "{edges:?}"
        );
    }

    #[test]
    fn lock_clean_wrapper_counts_as_acquisition() {
        let src = parse(
            "fn lock_clean(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    m.lock().unwrap_or_else(PoisonError::into_inner)\n}\nfn ab(s: &S) {\n    let ga = lock_clean(&s.a);\n    let gb = lock_clean(&mut s.b[0]);\n}\nfn ba(s: &S) {\n    let gb = lock_clean(&s.b);\n    let ga = lock_clean(&s.a);\n}\n",
        );
        let (edges, findings) = run(std::slice::from_ref(&src));
        assert!(
            edges.iter().any(|e| e.from == "a" && e.to == "b"),
            "{edges:?}"
        );
        assert!(
            edges.iter().any(|e| e.from == "b" && e.to == "a"),
            "{edges:?}"
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn receiver_names_normalize_chains_and_indexes() {
        assert_eq!(
            receiver_name("        self.shared.central", 27).as_deref(),
            Some("central")
        );
        assert_eq!(
            receiver_name("self.deques[worker]", 19).as_deref(),
            Some("deques")
        );
        assert_eq!(receiver_name("self.slot.0", 11).as_deref(), Some("slot"));
        assert_eq!(receiver_name("lock", 4).as_deref(), Some("lock"));
    }
}

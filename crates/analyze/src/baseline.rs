//! The committed findings baseline and the gate diff.
//!
//! `results/lint_baseline.json` freezes the workspace's existing lint
//! debt so it never blocks a PR, while `sflint --gate` fails on any
//! **new** finding — and on any **stale** baseline entry whose code no
//! longer exists, so the debt ledger only ever shrinks (re-baseline
//! with `sflint --write-baseline` after an intentional burn-down).
//!
//! Matching keys on `(lint, file, excerpt)` with multiplicity, not on
//! line numbers: unrelated edits that shift a baselined line do not
//! churn the gate, while deleting or fixing the flagged code surfaces
//! as staleness.
//!
//! The workspace carries no serde; the writer is plain `format!` and
//! the reader a recursive-descent parser over exactly the subset the
//! writer emits (the same convention as `core::trace_io`).

use crate::framework::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Render findings as the baseline JSON document.
pub fn baseline_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}}}",
            json_str(&f.lint),
            json_str(&f.file),
            f.line,
            json_str(&f.excerpt)
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the baseline file.
pub fn write_baseline(path: &Path, findings: &[Finding]) -> std::io::Result<()> {
    std::fs::write(path, baseline_to_json(findings))
}

/// Load the baseline file; a missing file is an empty baseline.
pub fn read_baseline(path: &Path) -> Result<Vec<Finding>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    parse_baseline(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The gate's verdict: what changed against the baseline.
#[derive(Debug, Clone, Default)]
pub struct GateDiff {
    /// Findings present now but absent from the baseline — regressions.
    pub new: Vec<Finding>,
    /// Baseline entries whose code no longer exists — must be pruned.
    pub stale: Vec<Finding>,
}

impl GateDiff {
    /// True when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Diff current findings against the baseline by `(lint, file,
/// excerpt)` multiset.
pub fn diff(current: &[Finding], baseline: &[Finding]) -> GateDiff {
    let mut counts: BTreeMap<(String, String, String), i64> = BTreeMap::new();
    for f in baseline {
        *counts.entry(f.key()).or_insert(0) += 1;
    }
    let mut out = GateDiff::default();
    for f in current {
        let c = counts.entry(f.key()).or_insert(0);
        if *c > 0 {
            *c -= 1;
        } else {
            out.new.push(f.clone());
        }
    }
    // Remaining positive counts are baseline entries with no live code.
    let mut remaining = counts;
    for f in baseline {
        let c = remaining.entry(f.key()).or_insert(0);
        if *c > 0 {
            *c -= 1;
            out.stale.push(f.clone());
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader (exactly the writer's subset)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                c as char,
                self.i,
                self.s.get(self.i).map(|b| *b as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err("unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(v).ok_or("bad \\u escape")?);
                            self.i += 4;
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.i - 1;
                    let len = utf8_len(b);
                    let end = (start + len).min(self.s.len());
                    let chunk =
                        std::str::from_utf8(&self.s[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse the baseline document written by [`baseline_to_json`].
pub fn parse_baseline(text: &str) -> Result<Vec<Finding>, String> {
    let mut c = Cursor {
        s: text.as_bytes(),
        i: 0,
    };
    c.eat(b'{')?;
    let mut findings = Vec::new();
    loop {
        if c.peek() == Some(b'}') {
            c.eat(b'}')?;
            break;
        }
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "version" => {
                let v = c.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
            }
            "findings" => {
                c.eat(b'[')?;
                loop {
                    if c.peek() == Some(b']') {
                        c.i += 1;
                        break;
                    }
                    findings.push(parse_finding(&mut c)?);
                    if c.peek() == Some(b',') {
                        c.i += 1;
                    }
                }
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        if c.peek() == Some(b',') {
            c.i += 1;
        }
    }
    Ok(findings)
}

fn parse_finding(c: &mut Cursor<'_>) -> Result<Finding, String> {
    c.eat(b'{')?;
    let mut f = Finding {
        lint: String::new(),
        file: String::new(),
        line: 0,
        excerpt: String::new(),
        message: String::new(),
    };
    loop {
        if c.peek() == Some(b'}') {
            c.i += 1;
            break;
        }
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "lint" => f.lint = c.string()?,
            "file" => f.file = c.string()?,
            "line" => f.line = c.number()? as usize,
            "excerpt" => f.excerpt = c.string()?,
            other => return Err(format!("unknown finding key {other:?}")),
        }
        if c.peek() == Some(b',') {
            c.i += 1;
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, file: &str, line: usize, excerpt: &str) -> Finding {
        Finding {
            lint: lint.into(),
            file: file.into(),
            line,
            excerpt: excerpt.into(),
            message: String::new(),
        }
    }

    #[test]
    fn baseline_roundtrips_with_escapes() {
        let fs = vec![
            finding(
                "unwrap-in-library",
                "crates/x/src/a.rs",
                7,
                "m.lock().expect(\"poisoned\")",
            ),
            finding(
                "alloc-in-hot-path",
                "crates/y/src/b.rs",
                12,
                "let v = vec![0.0; n]; // \\ tab\t",
            ),
        ];
        let json = baseline_to_json(&fs);
        let back = parse_baseline(&json).expect("parse");
        assert_eq!(back.len(), 2);
        for (a, b) in fs.iter().zip(&back) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.line, b.line);
        }
    }

    #[test]
    fn diff_classifies_new_matched_and_stale() {
        let base = vec![
            finding("l", "f.rs", 1, "kept"),
            finding("l", "f.rs", 2, "fixed-since"),
            finding("l", "f.rs", 3, "dup"),
            finding("l", "f.rs", 4, "dup"),
        ];
        let now = vec![
            finding("l", "f.rs", 9, "kept"), // moved line: still matched
            finding("l", "f.rs", 3, "dup"),  // one of two dups fixed
            finding("l", "f.rs", 5, "brand-new"),
        ];
        let d = diff(&now, &base);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].excerpt, "brand-new");
        assert_eq!(d.stale.len(), 2);
        assert!(d.stale.iter().any(|f| f.excerpt == "fixed-since"));
        assert!(d.stale.iter().any(|f| f.excerpt == "dup"));
        assert!(!d.is_clean());
        assert!(diff(&base, &base).is_clean());
    }

    #[test]
    fn missing_baseline_is_empty() {
        let d = read_baseline(Path::new("/nonexistent/lint_baseline.json")).expect("missing ok");
        assert!(d.is_empty());
    }
}

//! The lint framework: finding/edge records, the analysis
//! configuration (which paths each lint covers), the workspace file
//! walker, and the runner that produces a [`Report`].

use crate::lexer::SourceFile;
use crate::{alloc_hot, cast_audit, lock_order, spawn, unwrap_lib};
use std::path::{Path, PathBuf};

/// One lint finding: a violation at a specific line. Baseline matching
/// keys on `(lint, file, excerpt)` so pure line drift does not churn
/// the gate; `line` is kept for humans.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Lint name (e.g. `alloc-in-hot-path`).
    pub lint: String,
    /// Root-relative file path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line the finding anchors to.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The identity baseline matching uses.
    pub fn key(&self) -> (String, String, String) {
        (self.lint.clone(), self.file.clone(), self.excerpt.clone())
    }
}

/// One lock-while-holding edge in the Mutex-acquisition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// File of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
    /// Callee that performs the acquisition, when the edge is
    /// call-mediated rather than a direct `.lock()`.
    pub via: Option<String>,
}

impl std::fmt::Display for LockEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {} ({}:{}",
            self.from, self.to, self.file, self.line
        )?;
        if let Some(via) = &self.via {
            write!(f, ", via {via}()")?;
        }
        write!(f, ")")
    }
}

/// Which files each lint covers. [`AnalysisConfig::workspace`] is the
/// committed policy for this repository; fixture tests build narrower
/// configs.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Path prefixes whose non-test code must stay free of
    /// `.unwrap()`/`.expect(` (library crates; binaries/benches may
    /// panic).
    pub unwrap_scope: Vec<String>,
    /// Path prefixes audited for unguarded narrowing `as u32`/`as u16`
    /// casts (wire encode paths).
    pub cast_scope: Vec<String>,
    /// Files whose entire non-test body is a hot path (no allocation
    /// tokens anywhere).
    pub hot_files: Vec<String>,
    /// `(file, fn)` pairs whose bodies are hot paths.
    pub hot_fns: Vec<(String, String)>,
    /// Files allowed to spawn/scope threads (the sanctioned parallel
    /// modules).
    pub spawn_sanctioned: Vec<String>,
}

impl AnalysisConfig {
    /// The committed lint policy for this workspace.
    pub fn workspace() -> Self {
        AnalysisConfig {
            unwrap_scope: vec![
                "crates/serve/src/".into(),
                "crates/core/src/".into(),
                "crates/formats/src/".into(),
                "crates/kernels/src/".into(),
            ],
            cast_scope: vec!["crates/serve/src/".into()],
            hot_files: vec!["crates/kernels/src/lanes.rs".into()],
            hot_fns: vec![("crates/kernels/src/spgemm.rs".into(), "rowwise_row".into())],
            spawn_sanctioned: vec![
                "crates/kernels/src/parallel.rs".into(),
                "crates/kernels/src/dispatch.rs".into(),
                "crates/core/src/planner.rs".into(),
                "crates/serve/src/service.rs".into(),
                "crates/bench/src/serving.rs".into(),
            ],
        }
    }

    /// A maximal-scope config for single-file fixture checks: every
    /// lint applies to every scanned file, and no spawn site is
    /// sanctioned.
    pub fn everything() -> Self {
        AnalysisConfig {
            unwrap_scope: vec![String::new()],
            cast_scope: vec![String::new()],
            hot_files: Vec::new(),
            hot_fns: Vec::new(),
            spawn_sanctioned: Vec::new(),
        }
    }
}

/// The full output of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// The Mutex-acquisition graph's lock-while-holding edges
    /// (informational; cycles over them become findings).
    pub edges: Vec<LockEdge>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings of one lint.
    pub fn of(&self, lint: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.lint == lint).collect()
    }
}

/// Collect the `.rs` files the workspace policy scans: `src/` trees of
/// the root package and every `crates/*` member. Vendored stand-ins,
/// integration tests, examples, benches and the analyzer's own fixture
/// corpus are out of scope.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files);
        }
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Parse `paths` (made root-relative) and run every lint.
///
/// A first pass over the texts finds braceless `#[cfg(test)] mod x;`
/// declarations: the referenced files (`x.rs` / `x/mod.rs`) are test
/// code even though nothing inside them says so, and are marked
/// entirely in-test before linting.
pub fn analyze_paths(root: &Path, paths: &[PathBuf], config: &AnalysisConfig) -> Report {
    let mut texts: Vec<(PathBuf, String)> = Vec::new();
    for p in paths {
        if let Ok(text) = std::fs::read_to_string(p) {
            texts.push((p.clone(), text));
        }
    }
    let mut test_files: Vec<PathBuf> = Vec::new();
    for (p, text) in &texts {
        let Some(dir) = p.parent() else { continue };
        for name in cfg_test_mod_decls(text) {
            test_files.push(dir.join(format!("{name}.rs")));
            test_files.push(dir.join(&name).join("mod.rs"));
        }
    }
    let mut sources = Vec::new();
    for (p, text) in &texts {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        let mut src = SourceFile::parse(&rel, text);
        if test_files.iter().any(|t| t == p) {
            for line in &mut src.lines {
                line.in_test = true;
            }
        }
        sources.push(src);
    }
    analyze_sources(&sources, config)
}

/// Names of braceless modules declared under a `#[cfg(test)]`
/// attribute (`#[cfg(test)] mod x;` → `x`).
fn cfg_test_mod_decls(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut pending = false;
    for line in text.lines() {
        let t = line.trim();
        if t == "#[cfg(test)]" {
            pending = true;
            continue;
        }
        if pending {
            if let Some(rest) = t.strip_prefix("mod ") {
                if let Some(name) = rest.strip_suffix(';') {
                    out.push(name.trim().to_string());
                }
            }
            // Any other attribute keeps the marker pending; code clears it.
            if !t.starts_with("#[") {
                pending = false;
            }
        }
    }
    out
}

/// Run every lint over already-parsed sources.
pub fn analyze_sources(sources: &[SourceFile], config: &AnalysisConfig) -> Report {
    let mut findings = Vec::new();
    for src in sources {
        findings.extend(alloc_hot::run(src, config));
        findings.extend(unwrap_lib::run(src, config));
        findings.extend(cast_audit::run(src, config));
        findings.extend(spawn::run(src, config));
    }
    let (edges, cycle_findings) = lock_order::run(sources);
    findings.extend(cycle_findings);
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.excerpt).cmp(&(&b.file, b.line, &b.lint, &b.excerpt))
    });
    Report {
        findings,
        edges,
        files_scanned: sources.len(),
    }
}

/// Convenience: run the workspace policy over the whole tree at `root`.
pub fn analyze_workspace(root: &Path) -> Report {
    let files = workspace_files(root);
    analyze_paths(root, &files, &AnalysisConfig::workspace())
}

/// Does `path` start with any of the given prefixes?
pub fn in_scope(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

//! `unwrap-in-library`: no `.unwrap()` / `.expect(` in non-test code
//! of the library crates.
//!
//! The serving stack promises typed errors end to end (`WireError`,
//! `ServeError`, `KernelError`, …) — a stray `.unwrap()` in a library
//! crate turns a recoverable condition into a panic inside a worker
//! thread. Existing debt is carried by the committed baseline
//! (`results/lint_baseline.json`) and only ever shrinks; new hits fail
//! the gate.
//!
//! `.unwrap_or(..)` / `.unwrap_or_else(..)` / `.unwrap_or_default()`
//! and `.expect_err(` do not match: they are the sanctioned
//! alternatives.

use crate::framework::{in_scope, AnalysisConfig, Finding};
use crate::lexer::SourceFile;

/// The lint's name, as used in pragmas and baselines.
pub const NAME: &str = "unwrap-in-library";

/// Scan one file for library-code unwraps.
pub fn run(src: &SourceFile, config: &AnalysisConfig) -> Vec<Finding> {
    if !in_scope(&src.path, &config.unwrap_scope) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (li, line) in src.lines.iter().enumerate() {
        if line.in_test || src.is_allowed(NAME, li) {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            let mut from = 0usize;
            while let Some(rel) = line.code[from.min(line.code.len())..].find(pat) {
                let col = from + rel;
                from = col + pat.len();
                findings.push(Finding {
                    lint: NAME.to_string(),
                    file: src.path.clone(),
                    line: li + 1,
                    excerpt: src.excerpt(li),
                    message: format!(
                        "`{pat}..` panics in library code; surface a typed error \
                         (WireError/ServeError/KernelError/FormatError) or recover \
                         (`unwrap_or_else`)"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        let src = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn f() {\n    let a = m.lock().unwrap();\n    let b = n.lock().expect(\"poisoned\");\n    let c = o.lock().unwrap_or_else(|e| e.into_inner());\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        let mut cfg = AnalysisConfig::everything();
        let f = run(&src, &cfg);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);

        cfg.unwrap_scope = vec!["crates/y/".into()];
        assert!(run(&src, &cfg).is_empty(), "out-of-scope file must pass");
    }

    #[test]
    fn expect_err_and_pragma_do_not_match() {
        let src = SourceFile::parse(
            "x.rs",
            "fn f() {\n    r.expect_err(\"must fail\");\n    v.first().unwrap(); // sflint::allow(unwrap-in-library)\n}\n",
        );
        assert!(run(&src, &AnalysisConfig::everything()).is_empty());
    }
}

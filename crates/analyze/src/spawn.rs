//! `thread-spawn-containment`: threads are created only in the
//! sanctioned parallel modules.
//!
//! The workspace's parallelism is deliberately concentrated: the
//! two-phase ranged stream fan-out (`kernels::parallel` /
//! `kernels::dispatch`), the planner's tile executor, the serving
//! worker pool, and the serving bench harness. A `thread::spawn` or
//! `thread::scope` anywhere else escapes the worker-count precedence
//! (`with_workers` > `SPARSEFLEX_WORKERS` > hardware), the arena-pool
//! discipline, and the deterministic-scheduling test hooks — so it is
//! flagged.

use crate::framework::{AnalysisConfig, Finding};
use crate::lexer::SourceFile;

/// The lint's name, as used in pragmas and baselines.
pub const NAME: &str = "thread-spawn-containment";

const PATTERNS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Scan one file for thread creation outside the sanctioned modules.
pub fn run(src: &SourceFile, config: &AnalysisConfig) -> Vec<Finding> {
    if config.spawn_sanctioned.iter().any(|f| f == &src.path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (li, line) in src.lines.iter().enumerate() {
        if line.in_test || src.is_allowed(NAME, li) {
            continue;
        }
        for pat in PATTERNS {
            let mut from = 0usize;
            while let Some(rel) = line.code[from.min(line.code.len())..].find(pat) {
                let col = from + rel;
                from = col + pat.len();
                findings.push(Finding {
                    lint: NAME.to_string(),
                    file: src.path.clone(),
                    line: li + 1,
                    excerpt: src.excerpt(li),
                    message: format!(
                        "`{pat}` outside the sanctioned parallel modules; route the work \
                         through kernels::parallel / the planner's tile executor / the \
                         serve worker pool so worker-count precedence and arena pooling \
                         apply"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stray_spawn_is_flagged_and_sanctioned_files_pass() {
        let text =
            "fn f() {\n    std::thread::spawn(|| work());\n    std::thread::scope(|s| {});\n}\n";
        let src = SourceFile::parse("crates/x/src/other.rs", text);
        let mut cfg = AnalysisConfig::everything();
        assert_eq!(run(&src, &cfg).len(), 2);

        cfg.spawn_sanctioned = vec!["crates/x/src/other.rs".into()];
        assert!(run(&src, &cfg).is_empty());
    }

    #[test]
    fn test_regions_may_spawn() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        let src = SourceFile::parse("x.rs", text);
        assert!(run(&src, &AnalysisConfig::everything()).is_empty());
    }
}

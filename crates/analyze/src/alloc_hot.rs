//! `alloc-in-hot-path`: the zero-alloc steady-state contract, checked
//! statically.
//!
//! The arena work (PR 8/9) made every `for_each_fiber_in` /
//! `for_each_fiber_range_in` traversal allocation-free in steady state,
//! and `kernels_gate` re-proves it dynamically under a counting global
//! allocator — minutes into CI. This lint fails in seconds instead: it
//! flags allocation tokens (`Vec::new`, `vec![..]`, `with_capacity`,
//! `.collect`, `.to_vec()`, `Box::new`, `String::new`) inside the
//! **hot regions**:
//!
//! - the balanced argument region of every `for_each_fiber_in` /
//!   `for_each_fiber_range_in` *call* (the consumer closures — format
//!   implementations draw scratch from the arena and are exercised by
//!   the dynamic gate);
//! - the whole of `kernels::lanes` (the shared vectorized inner loops);
//! - the body of `spgemm::rowwise_row` (the k-way merge replaying
//!   Gustavson's addition order from caller-owned buffers).
//!
//! Deliberate warm-up allocation can be waived per line with
//! `// sflint::allow(alloc-in-hot-path)`.

use crate::framework::{AnalysisConfig, Finding};
use crate::lexer::SourceFile;

/// The lint's name, as used in pragmas and baselines.
pub const NAME: &str = "alloc-in-hot-path";

/// Allocation tokens and the sub-token that must follow for a match
/// (empty = any boundary).
const PATTERNS: &[&str] = &[
    "Vec::new",
    "vec!",
    "with_capacity",
    ".collect",
    ".to_vec()",
    "Box::new",
    "String::new",
];

/// Scan one file for allocations inside its hot regions.
pub fn run(src: &SourceFile, config: &AnalysisConfig) -> Vec<Finding> {
    let mut hot: Vec<bool> = vec![false; src.lines.len()];

    if config.hot_files.iter().any(|f| f == &src.path) {
        hot.iter_mut().for_each(|h| *h = true);
    }
    for (file, func) in &config.hot_fns {
        if file != &src.path {
            continue;
        }
        for f in src.fns.iter().filter(|f| &f.name == func) {
            for cell in hot.iter_mut().take(f.end_line + 1).skip(f.start_line) {
                *cell = true;
            }
        }
    }
    for callee in ["for_each_fiber_in", "for_each_fiber_range_in"] {
        for span in src.call_spans(callee) {
            for cell in hot.iter_mut().take(span.end_line + 1).skip(span.start_line) {
                *cell = true;
            }
        }
    }

    let mut findings = Vec::new();
    for (li, line) in src.lines.iter().enumerate() {
        if !hot[li] || line.in_test || src.is_allowed(NAME, li) {
            continue;
        }
        for pat in PATTERNS {
            let mut from = 0usize;
            while let Some(col) = find_pattern(&line.code, pat, from) {
                from = col + pat.len();
                findings.push(Finding {
                    lint: NAME.to_string(),
                    file: src.path.clone(),
                    line: li + 1,
                    excerpt: src.excerpt(li),
                    message: format!(
                        "`{pat}` allocates inside a hot path (zero-alloc steady-state \
                         contract); draw scratch from the StreamArena or hoist the \
                         allocation out of the traversal"
                    ),
                });
            }
        }
    }
    findings
}

/// Word-bounded-ish pattern search: the character before the match must
/// not extend an identifier, and `.collect` must be a call or turbofish.
fn find_pattern(code: &str, pat: &str, from: usize) -> Option<usize> {
    let mut start = from.min(code.len());
    while let Some(rel) = code[start..].find(pat) {
        let col = start + rel;
        start = col + pat.len();
        // For dot-prefixed patterns the dot is itself the boundary; for
        // the rest, the preceding char must not extend an identifier.
        let before_ok = pat.starts_with('.')
            || col == 0
            || !code[..col]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[col + pat.len()..];
        let after_ok = match pat {
            ".collect" => after.starts_with('(') || after.starts_with("::<"),
            "with_capacity" | "Vec::new" | "Box::new" | "String::new" => after.starts_with('('),
            _ => true,
        };
        if before_ok && after_ok {
            return Some(col);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_hot_fn() -> AnalysisConfig {
        let mut c = AnalysisConfig::everything();
        c.hot_fns = vec![("t.rs".into(), "hot".into())];
        c
    }

    #[test]
    fn flags_allocs_in_fiber_call_closures() {
        let src = SourceFile::parse(
            "t.rs",
            "fn f(s: &S, a: &mut Arena) {\n    s.for_each_fiber_in(a, &mut |r, c, v| {\n        let x: Vec<f64> = v.iter().copied().collect();\n        let y = vec![0.0; c.len()];\n    });\n    let fine = Vec::with_capacity(4);\n}\n",
        );
        let f = run(&src, &AnalysisConfig::everything());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.lint == NAME));
        // The allocation outside the call span is not hot.
        assert!(f.iter().all(|f| f.line == 3 || f.line == 4));
    }

    #[test]
    fn hot_fn_bodies_and_hot_files_are_covered() {
        let src = SourceFile::parse(
            "t.rs",
            "fn hot(out: &mut Vec<usize>) {\n    let tmp = data.to_vec();\n}\nfn cold() {\n    let v = vec![1];\n}\n",
        );
        let f = run(&src, &cfg_hot_fn());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);

        let mut file_cfg = AnalysisConfig::everything();
        file_cfg.hot_files = vec!["t.rs".into()];
        let f = run(&src, &file_cfg);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn pragma_and_tests_suppress() {
        let src = SourceFile::parse(
            "t.rs",
            "fn hot() {\n    // sflint::allow(alloc-in-hot-path)\n    let warm = Vec::with_capacity(8);\n}\n#[cfg(test)]\nmod tests {\n    fn hot() {\n        let v = vec![1];\n    }\n}\n",
        );
        assert!(run(&src, &cfg_hot_fn()).is_empty());
    }
}

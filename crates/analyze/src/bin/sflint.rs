//! `sflint` — the workspace lint driver.
//!
//! Modes:
//!
//! - default: analyze the workspace, print every finding and the lock
//!   graph's edges, and show the diff against the committed baseline
//!   (informational; always exits 0 unless the baseline is unreadable).
//! - `--gate`: same analysis, but exit 1 if there is any finding not in
//!   `results/lint_baseline.json`, or any baseline entry whose code no
//!   longer exists (stale debt must be pruned). This is the CI mode.
//! - `--write-baseline`: snapshot current findings into the baseline.
//! - `--check <file>`: analyze one file with every lint in scope and no
//!   sanctioned spawn sites; exit 1 if it has findings. Used by CI to
//!   prove each fixture violation class actually trips the gate.

use sparseflex_analyze::{baseline, framework};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();

    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(file) = args.get(1) else {
                eprintln!("usage: sflint --check <file.rs>");
                return ExitCode::from(2);
            };
            check_one(&root, Path::new(file))
        }
        Some("--write-baseline") => write_baseline(&root),
        Some("--gate") => gate(&root, true),
        None => gate(&root, false),
        Some(other) => {
            eprintln!("sflint: unknown argument {other:?}");
            eprintln!("usage: sflint [--gate | --write-baseline | --check <file.rs>]");
            ExitCode::from(2)
        }
    }
}

/// The repo root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn baseline_path(root: &Path) -> PathBuf {
    root.join("results").join("lint_baseline.json")
}

fn gate(root: &Path, enforce: bool) -> ExitCode {
    let report = framework::analyze_workspace(root);
    let base = match baseline::read_baseline(&baseline_path(root)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sflint: cannot read baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = baseline::diff(&report.findings, &base);

    println!(
        "sflint: {} file(s) scanned, {} finding(s), {} lock edge(s), baseline {}",
        report.files_scanned,
        report.findings.len(),
        report.edges.len(),
        base.len()
    );
    if !report.edges.is_empty() {
        println!("\nlock-acquisition graph (lock-while-holding edges):");
        for e in &report.edges {
            println!("  {e}");
        }
    }
    if !enforce && !report.findings.is_empty() {
        println!("\nall findings (baselined and new):");
        for f in &report.findings {
            println!("  [{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt);
        }
    }
    if !diff.new.is_empty() {
        println!("\nNEW findings (not in baseline):");
        for f in &diff.new {
            println!("  [{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt);
            println!("      {}", f.message);
        }
    }
    if !diff.stale.is_empty() {
        println!("\nSTALE baseline entries (code no longer present — prune them):");
        for f in &diff.stale {
            println!("  [{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt);
        }
    }

    if diff.is_clean() {
        println!("\nsflint: clean against baseline");
        ExitCode::SUCCESS
    } else if enforce {
        println!(
            "\nsflint: GATE FAILED — {} new finding(s), {} stale baseline entr(ies). \
             Fix the new findings (or pragma with `// sflint::allow(<lint>)` and justify \
             in review); prune stale entries with `--write-baseline` after burning down \
             debt.",
            diff.new.len(),
            diff.stale.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nsflint: {} new / {} stale vs baseline (informational; use --gate to enforce)",
            diff.new.len(),
            diff.stale.len()
        );
        ExitCode::SUCCESS
    }
}

fn write_baseline(root: &Path) -> ExitCode {
    let report = framework::analyze_workspace(root);
    let path = baseline_path(root);
    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("sflint: cannot create {}", dir.display());
            return ExitCode::from(2);
        }
    }
    match baseline::write_baseline(&path, &report.findings) {
        Ok(()) => {
            println!(
                "sflint: wrote {} finding(s) to {}",
                report.findings.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sflint: cannot write {}: {e}", path.display());
            ExitCode::from(2)
        }
    }
}

fn check_one(root: &Path, file: &Path) -> ExitCode {
    let path = if file.is_absolute() {
        file.to_path_buf()
    } else {
        root.join(file)
    };
    if !path.is_file() {
        eprintln!("sflint: no such file: {}", path.display());
        return ExitCode::from(2);
    }
    let report = framework::analyze_paths(root, &[path], &framework::AnalysisConfig::everything());
    for f in &report.findings {
        println!("[{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt);
        println!("    {}", f.message);
    }
    println!(
        "sflint: {} finding(s) in {}",
        report.findings.len(),
        file.display()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

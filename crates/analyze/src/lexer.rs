//! A hand-rolled token-level view of one Rust source file.
//!
//! `sflint` deliberately carries no `syn`/`proc-macro2` (the workspace
//! vendors all of its dependencies); instead this module produces the
//! minimal structure the lints need from a single character scan:
//!
//! - a **blanked** copy of every line, where string/char-literal
//!   contents and comments are replaced by spaces (byte offsets are
//!   preserved, so finding a token in the blanked text gives its real
//!   column) — lints never match tokens inside literals or docs;
//! - the **brace depth** at each line start;
//! - **test regions**: lines covered by a `#[cfg(test)]` item or a
//!   `mod tests { .. }` block, which library-hygiene lints skip;
//! - **allow pragmas**: `// sflint::allow(<lint>)` comments, applying
//!   to their own line and the next (so both trailing and
//!   line-above placement work);
//! - **function spans** (`fn` item name + body line range) and
//!   **call spans** (the balanced-parenthesis argument region of a
//!   named call), the building blocks of the hot-path and cast lints.
//!
//! The scanner understands line comments, nested block comments,
//! string literals with escapes, raw strings (`r#".."#`, any number of
//! hashes, `b`-prefixed too), char/byte literals, and tells lifetimes
//! (`'a`) apart from char literals (`'a'`).

/// One analyzed line of a source file.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// The line with comments and literal contents blanked to spaces.
    /// Same byte length as the raw line (tabs preserved).
    pub code: String,
    /// Brace nesting depth at the start of the line.
    pub depth: usize,
    /// True when the line is inside a `#[cfg(test)]` item or a
    /// `mod tests` block (including the marker line itself).
    pub in_test: bool,
    /// Lint names suppressed on this line via `// sflint::allow(..)`.
    pub allows: Vec<String>,
}

/// A `fn` item: its name and the line range of signature + body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's identifier.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line holding the body's closing brace.
    pub end_line: usize,
}

/// The balanced-parenthesis argument region of one call to a named
/// function/method (e.g. every closure passed to it lives inside).
#[derive(Debug, Clone)]
pub struct CallSpan {
    /// The callee identifier that was searched for.
    pub callee: String,
    /// 0-based line of the opening parenthesis.
    pub start_line: usize,
    /// 0-based line of the matching closing parenthesis.
    pub end_line: usize,
}

/// One scanned source file: raw text plus the per-line token view.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Root-relative path with forward slashes (stable across hosts).
    pub path: String,
    /// Original lines, for finding excerpts.
    pub raw_lines: Vec<String>,
    /// Blanked/annotated lines, for token scanning.
    pub lines: Vec<LineInfo>,
    /// Every `fn` item with a brace-delimited body.
    pub fns: Vec<FnSpan>,
}

/// Character-scanner state outside plain code.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

impl SourceFile {
    /// Scan `text` into the token-level view.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let raw_lines: Vec<String> = text.split('\n').map(str::to_string).collect();
        let n = raw_lines.len();
        let mut blanked: Vec<String> = Vec::with_capacity(n);
        let mut depths: Vec<usize> = Vec::with_capacity(n);
        let mut allows: Vec<Vec<String>> = vec![Vec::new(); n];

        let mut mode = Mode::Code;
        let mut depth = 0usize;
        let mut comment_buf = String::new();
        let mut comment_start_line = 0usize;

        for (li, raw) in raw_lines.iter().enumerate() {
            depths.push(depth);
            let bytes: Vec<char> = raw.chars().collect();
            let mut out = String::with_capacity(raw.len());
            let mut i = 0usize;
            if mode == Mode::LineComment {
                // Line comments never span lines.
                mode = Mode::Code;
            }
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                match mode {
                    Mode::Code => match c {
                        '/' if next == Some('/') => {
                            mode = Mode::LineComment;
                            comment_buf.clear();
                            comment_start_line = li;
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        }
                        '/' if next == Some('*') => {
                            mode = Mode::BlockComment(1);
                            comment_buf.clear();
                            comment_start_line = li;
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        }
                        '"' => {
                            // Raw-string openers are handled below on
                            // the `r`/`b`; a bare quote is a plain
                            // string.
                            mode = Mode::Str;
                            out.push('"');
                            i += 1;
                        }
                        'r' | 'b' if is_raw_string_start(&bytes, i) => {
                            let (hashes, consumed) = raw_string_open(&bytes, i);
                            mode = Mode::RawStr(hashes);
                            for _ in 0..consumed {
                                out.push(' ');
                            }
                            i += consumed;
                        }
                        '\'' => {
                            if is_lifetime(&bytes, i) {
                                out.push('\'');
                                i += 1;
                            } else {
                                mode = Mode::CharLit;
                                out.push(' ');
                                i += 1;
                            }
                        }
                        '{' => {
                            depth += 1;
                            out.push('{');
                            i += 1;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            out.push('}');
                            i += 1;
                        }
                        _ => {
                            out.push(c);
                            i += 1;
                        }
                    },
                    Mode::LineComment => {
                        comment_buf.push(c);
                        out.push(' ');
                        i += 1;
                    }
                    Mode::BlockComment(d) => {
                        if c == '*' && next == Some('/') {
                            if d == 1 {
                                mode = Mode::Code;
                                record_allows(&comment_buf, comment_start_line, &mut allows, n);
                            } else {
                                mode = Mode::BlockComment(d - 1);
                            }
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            mode = Mode::BlockComment(d + 1);
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else {
                            comment_buf.push(c);
                            out.push(' ');
                            i += 1;
                        }
                    }
                    Mode::Str => {
                        if c == '\\' && next.is_some() {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if c == '"' {
                            mode = Mode::Code;
                            out.push('"');
                            i += 1;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    }
                    Mode::RawStr(hashes) => {
                        if c == '"' && closes_raw_string(&bytes, i, hashes) {
                            mode = Mode::Code;
                            for _ in 0..(1 + hashes as usize) {
                                out.push(' ');
                            }
                            i += 1 + hashes as usize;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    }
                    Mode::CharLit => {
                        if c == '\\' && next.is_some() {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if c == '\'' {
                            mode = Mode::Code;
                            out.push(' ');
                            i += 1;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            if mode == Mode::LineComment {
                record_allows(&comment_buf, comment_start_line, &mut allows, n);
            }
            blanked.push(out);
        }

        let in_test = mark_test_regions(&blanked);
        let fns = find_fns(&blanked);
        let lines = blanked
            .into_iter()
            .enumerate()
            .map(|(i, code)| LineInfo {
                code,
                depth: depths[i],
                in_test: in_test[i],
                allows: std::mem::take(&mut allows[i]),
            })
            .collect();
        SourceFile {
            path: path.to_string(),
            raw_lines,
            lines,
            fns,
        }
    }

    /// Trimmed raw text of a 0-based line, capped for report/baseline
    /// stability.
    pub fn excerpt(&self, line: usize) -> String {
        let raw = self.raw_lines.get(line).map(String::as_str).unwrap_or("");
        let trimmed = raw.trim();
        let mut out: String = trimmed.chars().take(160).collect();
        if trimmed.chars().count() > 160 {
            out.push('…');
        }
        out
    }

    /// True when findings of `lint` are suppressed on 0-based `line`.
    pub fn is_allowed(&self, lint: &str, line: usize) -> bool {
        self.lines
            .get(line)
            .is_some_and(|l| l.allows.iter().any(|a| a == lint))
    }

    /// The function span whose body covers 0-based `line`, if any
    /// (innermost wins).
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Every call of `callee` (identifier immediately followed by `(`;
    /// `fn` definitions excluded) with its balanced argument region.
    pub fn call_spans(&self, callee: &str) -> Vec<CallSpan> {
        let mut spans = Vec::new();
        for li in 0..self.lines.len() {
            let code = &self.lines[li].code;
            let mut from = 0usize;
            while let Some(col) = find_ident(code, callee, from) {
                from = col + callee.len();
                // Skip definitions: `fn <callee>` on the same line.
                let before = &code[..col];
                let trimmed = before.trim_end();
                if trimmed.ends_with("fn") {
                    continue;
                }
                // Must be a call: next non-space char is `(`.
                let after = &code[col + callee.len()..];
                if !after.trim_start().starts_with('(') {
                    continue;
                }
                if let Some(end_line) = self.match_parens(li, col + callee.len()) {
                    spans.push(CallSpan {
                        callee: callee.to_string(),
                        start_line: li,
                        end_line,
                    });
                }
            }
        }
        spans
    }

    /// Line of the `)` matching the first `(` at/after (`line`, `col`).
    fn match_parens(&self, line: usize, col: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut started = false;
        for li in line..self.lines.len() {
            let code = &self.lines[li].code;
            let start = if li == line { col } else { 0 };
            for c in code[start.min(code.len())..].chars() {
                match c {
                    '(' => {
                        depth += 1;
                        started = true;
                    }
                    ')' => {
                        depth -= 1;
                        if started && depth == 0 {
                            return Some(li);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// `r"`, `r#"`, `br#"` … at position `i`?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Not part of a longer identifier (`for`, `str` …).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Number of opener hashes and total chars consumed by the raw-string
/// opener at `i` (caller guarantees [`is_raw_string_start`]).
fn raw_string_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the `"`
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn closes_raw_string(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// `'` at `i` starts a lifetime (not a char literal)? Lifetimes are
/// `'ident` with no closing quote right after the identifier.
fn is_lifetime(bytes: &[char], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !(first.is_alphabetic() || first == '_') {
        return false; // `'\n'`, `'0'`… are char literals
    }
    // `'a'` is a char literal; `'a` / `'static` are lifetimes.
    let mut j = i + 2;
    while bytes
        .get(j)
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
    {
        j += 1;
    }
    bytes.get(j) != Some(&'\'')
}

/// Parse `sflint::allow(name[, name…])` pragmas out of one comment and
/// apply them to the comment's line and the next.
fn record_allows(comment: &str, line: usize, allows: &mut [Vec<String>], n_lines: usize) {
    let mut rest = comment;
    while let Some(pos) = rest.find("sflint::allow(") {
        let args_start = pos + "sflint::allow(".len();
        let Some(close) = rest[args_start..].find(')') else {
            break;
        };
        for name in rest[args_start..args_start + close].split(',') {
            let name = name.trim().to_string();
            if name.is_empty() {
                continue;
            }
            allows[line].push(name.clone());
            if line + 1 < n_lines {
                allows[line + 1].push(name);
            }
        }
        rest = &rest[args_start + close..];
    }
}

/// Mark lines covered by `#[cfg(test)]` items or `mod tests` blocks.
fn mark_test_regions(blanked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; blanked.len()];
    let mut depth = 0usize;
    // Depth below which an active test region ends.
    let mut test_floor: Option<usize> = None;
    // A test marker was seen; waiting for its item's `{` (cancelled by
    // a `;` first — e.g. `#[cfg(test)] use …;`).
    let mut pending: Option<usize> = None; // line of the marker

    for (li, code) in blanked.iter().enumerate() {
        if test_floor.is_none()
            && pending.is_none()
            && (code.contains("#[cfg(test)]") || find_ident_pair(code, "mod", "tests").is_some())
        {
            pending = Some(li);
        }
        if test_floor.is_some() {
            in_test[li] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(start) = pending.take() {
                        test_floor = Some(depth);
                        for cell in in_test.iter_mut().take(li + 1).skip(start) {
                            *cell = true;
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_floor.is_some_and(|floor| depth <= floor) {
                        test_floor = None;
                    }
                }
                ';' if pending.is_some() && test_floor.is_none() => {
                    // Braceless item (cfg'd use/static): only its
                    // own lines are test code.
                    let start = pending.take().unwrap_or(li);
                    for cell in in_test.iter_mut().take(li + 1).skip(start) {
                        *cell = true;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

/// Locate every `fn` item with a brace body.
fn find_fns(blanked: &[String]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut open: Vec<(String, usize, usize)> = Vec::new(); // (name, start, floor)
    let mut pending: Option<(String, usize)> = None;
    let mut depth = 0usize;
    for (li, code) in blanked.iter().enumerate() {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => {
                    if let Some((name, start)) = pending.take() {
                        open.push((name, start, depth));
                    }
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while open.last().is_some_and(|(_, _, floor)| *floor >= depth) {
                        let (name, start, _) = open.pop().unwrap_or_default();
                        fns.push(FnSpan {
                            name,
                            start_line: start,
                            end_line: li,
                        });
                    }
                    i += 1;
                }
                ';' => {
                    // Trait method declaration without a body.
                    pending = None;
                    i += 1;
                }
                'f' if ident_at(&chars, i, "fn") => {
                    // Capture the identifier after `fn`.
                    let mut j = i + 2;
                    while chars.get(j).is_some_and(|c| c.is_whitespace()) {
                        j += 1;
                    }
                    let name_start = j;
                    while chars
                        .get(j)
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    {
                        j += 1;
                    }
                    if j > name_start {
                        let name: String = chars[name_start..j].iter().collect();
                        pending = Some((name, li));
                    }
                    i = j.max(i + 2);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }
    fns.sort_by_key(|f| f.start_line);
    fns
}

/// Is `word` at position `i` of `chars`, bounded by non-identifier
/// characters on both sides?
fn ident_at(chars: &[char], i: usize, word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    if i + w.len() > chars.len() || chars[i..i + w.len()] != w[..] {
        return false;
    }
    let before_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    let after = chars.get(i + w.len());
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || *c == '_');
    before_ok && after_ok
}

/// Byte column of the first word-bounded occurrence of `ident` in
/// `code` at/after byte `from`.
pub fn find_ident(code: &str, ident: &str, from: usize) -> Option<usize> {
    let mut start = from.min(code.len());
    while let Some(rel) = code[start..].find(ident) {
        let col = start + rel;
        let before_ok = col == 0
            || !code[..col]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[col + ident.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(col);
        }
        start = col + ident.len();
    }
    None
}

/// Find `a` immediately followed (modulo spaces) by `b`, both
/// word-bounded; returns the column of `a`.
fn find_ident_pair(code: &str, a: &str, b: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(col) = find_ident(code, a, from) {
        from = col + a.len();
        let rest = &code[col + a.len()..];
        let skipped = rest.len() - rest.trim_start().len();
        let after = rest.trim_start();
        if after.starts_with(b) && find_ident(after, b, 0) == Some(0) && skipped >= 1 {
            return Some(col);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_chars_are_blanked() {
        let src = "let a = \"Vec::new()\"; // Vec::new()\nlet b = 'x'; /* vec![] */ let c = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].code.contains("Vec::new"));
        assert!(f.lines[0].code.contains("let a"));
        assert!(!f.lines[1].code.contains("vec!"));
        assert!(f.lines[1].code.contains("let c"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "let s = r#\"with_capacity(9)\"#;\nfn f<'a>(x: &'a str) -> &'a str { x }\nlet c = b'\\n';\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].code.contains("with_capacity"));
        assert!(f.lines[1].code.contains("'a str"));
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.lines[0].code.contains("let x"));
        assert!(!f.lines[0].code.contains("outer"));
    }

    #[test]
    fn test_regions_cover_cfg_test_and_mod_tests() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn allow_pragmas_cover_own_and_next_line() {
        let src = "// sflint::allow(alloc-in-hot-path)\nlet v = vec![1];\nlet w = vec![2];\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.is_allowed("alloc-in-hot-path", 0));
        assert!(f.is_allowed("alloc-in-hot-path", 1));
        assert!(!f.is_allowed("alloc-in-hot-path", 2));
    }

    #[test]
    fn fn_spans_and_call_spans() {
        let src = "fn outer() {\n    stream.for_each_fiber_in(arena, &mut |r, c, v| {\n        body();\n    });\n}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!((f.fns[0].start_line, f.fns[0].end_line), (0, 4));
        let calls = f.call_spans("for_each_fiber_in");
        assert_eq!(calls.len(), 1);
        assert_eq!((calls[0].start_line, calls[0].end_line), (1, 3));
    }

    #[test]
    fn fn_definitions_are_not_call_spans() {
        let src = "fn for_each_fiber_in(&self, a: &mut A) {\n    emit();\n}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.call_spans("for_each_fiber_in").is_empty());
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }
}

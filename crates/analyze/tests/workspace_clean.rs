//! The self-run: the live workspace must be clean modulo the committed
//! baseline. This is the same check CI's `sflint --gate` step enforces,
//! kept in-tree so `cargo test` alone catches a regression.

use sparseflex_analyze::{baseline, framework};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let report = framework::analyze_workspace(&root);
    assert!(report.files_scanned > 100, "walker found too few files");
    let base =
        baseline::read_baseline(&root.join("results/lint_baseline.json")).expect("baseline parses");
    assert!(!base.is_empty(), "committed baseline missing or empty");
    let diff = baseline::diff(&report.findings, &base);
    assert!(
        diff.new.is_empty(),
        "new findings not in baseline:\n{}",
        diff.new
            .iter()
            .map(|f| format!("  [{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries (prune with --write-baseline):\n{}",
        diff.stale
            .iter()
            .map(|f| format!("  [{}] {}:{}: {}", f.lint, f.file, f.line, f.excerpt))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn serve_crate_carries_zero_unwrap_debt() {
    // The serving layer promises typed errors end to end; its baseline
    // allotment for unwrap-in-library is exactly zero, now and forever.
    let root = workspace_root();
    let report = framework::analyze_workspace(&root);
    let serve_unwraps: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "unwrap-in-library" && f.file.starts_with("crates/serve/"))
        .collect();
    assert!(serve_unwraps.is_empty(), "{serve_unwraps:?}");
    let base =
        baseline::read_baseline(&root.join("results/lint_baseline.json")).expect("baseline parses");
    assert!(
        base.iter()
            .all(|f| !(f.lint == "unwrap-in-library" && f.file.starts_with("crates/serve/"))),
        "baseline must not carry serve unwrap debt"
    );
}

#[test]
fn lock_graph_stays_acyclic() {
    let root = workspace_root();
    let report = framework::analyze_workspace(&root);
    let cycles = report.of("lock-order-cycle");
    assert!(cycles.is_empty(), "{cycles:?}");
    // The detector is actually looking at the real lock web, not an
    // empty graph: the serve scheduler's deque->central edge must exist.
    assert!(
        report
            .edges
            .iter()
            .any(|e| e.from == "deques" && e.to == "central"),
        "expected serve work-stealing edges in {:?}",
        report.edges
    );
}

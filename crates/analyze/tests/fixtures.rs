//! Expected-findings snapshots over the seeded fixture corpus: each
//! violation class must trip its lint (so the CI gate demonstrably
//! catches regressions), and the clean fixture must pass everything.

use sparseflex_analyze::{framework, AnalysisConfig, Report};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn analyze_fixture(name: &str) -> Report {
    let root = workspace_root();
    let path = root.join("crates/analyze/fixtures").join(name);
    assert!(path.is_file(), "missing fixture {}", path.display());
    framework::analyze_paths(&root, &[path], &AnalysisConfig::everything())
}

fn lints(report: &Report) -> Vec<(&str, usize)> {
    report
        .findings
        .iter()
        .map(|f| (f.lint.as_str(), f.line))
        .collect()
}

#[test]
fn alloc_fixture_flags_each_seeded_allocation() {
    let report = analyze_fixture("alloc_hot.rs");
    let allocs: Vec<usize> = report
        .of("alloc-in-hot-path")
        .iter()
        .map(|f| f.line)
        .collect();
    // collect, vec!, and to_vec inside the two traversal call bodies —
    // and nothing from the cold path below them.
    assert_eq!(allocs.len(), 3, "{:?}", lints(&report));
    assert!(report
        .of("alloc-in-hot-path")
        .iter()
        .all(|f| !f.excerpt.contains("with_capacity")));
}

#[test]
fn lock_cycle_fixture_reports_the_opposite_order_pair() {
    let report = analyze_fixture("lock_cycle.rs");
    let cycles = report.of("lock-order-cycle");
    assert_eq!(cycles.len(), 1, "{:?}", lints(&report));
    let msg = &cycles[0].message;
    assert!(msg.contains("queue") && msg.contains("stats"), "{msg}");
    // Both directions appear in the evidence edge list.
    assert!(
        msg.contains("queue -> stats") && msg.contains("stats -> queue"),
        "{msg}"
    );
    assert!(report
        .edges
        .iter()
        .any(|e| e.from == "queue" && e.to == "stats"));
    assert!(report
        .edges
        .iter()
        .any(|e| e.from == "stats" && e.to == "queue"));
}

#[test]
fn unwrap_fixture_flags_library_panics_only() {
    let report = analyze_fixture("unwrap_lib.rs");
    let unwraps = report.of("unwrap-in-library");
    assert_eq!(unwraps.len(), 2, "{:?}", lints(&report));
    // The recoverer fn and the test module stay clean.
    assert!(unwraps.iter().all(|f| f.line <= 12));
}

#[test]
fn cast_fixture_flags_unguarded_narrowings_only() {
    let report = analyze_fixture("cast_narrow.rs");
    let casts = report.of("unchecked-narrowing-cast");
    assert_eq!(casts.len(), 2, "{:?}", lints(&report));
    assert!(casts.iter().any(|f| f.excerpt.contains("as u32")));
    assert!(casts.iter().any(|f| f.excerpt.contains("as u16")));
}

#[test]
fn spawn_fixture_flags_the_stray_thread() {
    let report = analyze_fixture("spawn_stray.rs");
    let spawns = report.of("thread-spawn-containment");
    assert_eq!(spawns.len(), 1, "{:?}", lints(&report));
    assert!(spawns[0].excerpt.contains("thread::spawn"));
}

#[test]
fn clean_fixture_has_zero_findings() {
    let report = analyze_fixture("clean.rs");
    assert!(report.findings.is_empty(), "{:?}", lints(&report));
}

#[test]
fn pragma_waives_a_seeded_violation() {
    let root = workspace_root();
    let dir = std::env::temp_dir().join("sflint-fixture-pragma");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("pragma.rs");
    std::fs::write(
        &path,
        "fn f(h: &H) {\n    // sflint::allow(unwrap-in-library)\n    let v = h.get().unwrap();\n    let w = h.get().unwrap();\n}\n",
    )
    .expect("write temp fixture");
    let report = framework::analyze_paths(&root, &[path], &AnalysisConfig::everything());
    // The pragma covers its own and the next line; the second unwrap
    // still fires.
    let unwraps = report.of("unwrap-in-library");
    assert_eq!(unwraps.len(), 1, "{:?}", lints(&report));
    assert_eq!(unwraps[0].line, 4);
}

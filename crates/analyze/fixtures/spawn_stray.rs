//! Fixture: a seeded `thread-spawn-containment` violation — ad-hoc
//! parallelism outside the sanctioned modules.
//!
//! Not compiled — lint corpus only.

fn convert_all(mats: Vec<Matrix>) -> Vec<Converted> {
    let mut handles = Vec::new();
    for m in mats {
        // VIOLATION: stray spawn bypasses the worker-count precedence
        // and arena pooling.
        handles.push(std::thread::spawn(move || convert(m)));
    }
    handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
}

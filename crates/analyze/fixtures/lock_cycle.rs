//! Fixture: a seeded `lock-order-cycle` — two mutexes acquired in
//! opposite orders by two functions.
//!
//! Not compiled — lint corpus only.

struct Pool {
    queue: Mutex<Vec<Job>>,
    stats: Mutex<Counters>,
}

fn enqueue(pool: &Pool, job: Job) {
    // queue -> stats
    let mut q = pool.queue.lock().unwrap();
    q.push(job);
    let mut s = pool.stats.lock().unwrap();
    s.enqueued += 1;
}

fn snapshot(pool: &Pool) -> usize {
    // stats -> queue: opposite order — deadlock with enqueue().
    let s = pool.stats.lock().unwrap();
    let q = pool.queue.lock().unwrap();
    s.enqueued + q.len()
}

fn disciplined(pool: &Pool) {
    // Same pair, consistent order plus an early drop: no new edge
    // direction.
    let mut q = pool.queue.lock().unwrap();
    q.clear();
    drop(q);
    let mut s = pool.stats.lock().unwrap();
    s.enqueued = 0;
}

//! Fixture: a file every lint passes — the negative control proving the
//! gate's zero-finding exit path.
//!
//! Not compiled — lint corpus only.

pub fn spmv(stream: &S, arena: &mut Arena, x: &[f64], out: &mut [f64]) -> Result<(), KernelError> {
    let scratch = arena.take_f64(stream.max_fiber_len())?;
    stream.for_each_fiber_in(arena, &mut |row, cols, vals| {
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        out[row] = acc;
    });
    arena.give_f64(scratch);
    Ok(())
}

pub fn consistent_locking(pool: &Pool) -> Result<usize, ServeError> {
    let q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
    let s = pool.stats.lock().unwrap_or_else(|e| e.into_inner());
    Ok(q.len() + s.enqueued)
}

pub fn checked_encode(w: &mut ByteWriter, dim: usize) -> Result<(), WireError> {
    if dim > u32::MAX as usize {
        return Err(WireError::Overflow("dim"));
    }
    w.put_u32(dim as u32);
    Ok(())
}

//! Fixture: seeded `unwrap-in-library` violations.
//!
//! Not compiled — lint corpus only.

pub fn decode(bytes: &[u8]) -> Frame {
    // VIOLATION: parse failure panics instead of returning WireError.
    let header = Header::parse(bytes).unwrap();
    // VIOLATION: expect in library code.
    let body = take_body(bytes, &header).expect("body after header");
    Frame { header, body }
}

pub fn recoverers_are_fine(m: &Mutex<State>) -> u64 {
    // Sanctioned alternatives: no findings.
    let guard = m.lock().unwrap_or_else(|e| e.into_inner());
    guard.generation.checked_add(1).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = super::decode(&[0u8; 16]);
        assert_eq!(v.header.len(), 16usize.checked_sub(0).unwrap());
    }
}

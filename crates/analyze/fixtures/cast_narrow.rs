//! Fixture: seeded `unchecked-narrowing-cast` violations.
//!
//! Not compiled — lint corpus only.

fn encode_ids(w: &mut ByteWriter, ids: &[usize]) {
    for &id in ids {
        // VIOLATION: silent truncation for ids above u32::MAX.
        w.put_u32(id as u32);
    }
}

fn encode_tag(w: &mut ByteWriter, tag: usize) {
    // VIOLATION: u16 narrowing with no range check.
    w.put_u16(tag as u16);
}

fn encode_dim(w: &mut ByteWriter, dim: usize) -> Result<(), WireError> {
    // Guard dominates the cast: no finding.
    if dim > u32::MAX as usize {
        return Err(WireError::Overflow("dim"));
    }
    w.put_u32(dim as u32);
    Ok(())
}

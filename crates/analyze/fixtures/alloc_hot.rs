//! Fixture: seeded `alloc-in-hot-path` violations.
//!
//! Not compiled — lint corpus only. The closures passed to the fiber
//! traversal entry points allocate, which the arena contract forbids.

fn spmv_like(stream: &S, arena: &mut Arena, out: &mut [f64]) {
    stream.for_each_fiber_in(arena, &mut |row, cols, vals| {
        // VIOLATION: fresh Vec per fiber.
        let gathered: Vec<f64> = cols.iter().map(|&c| x[c]).collect();
        // VIOLATION: vec! macro inside the traversal.
        let mut scratch = vec![0.0f64; cols.len()];
        for (v, g) in vals.iter().zip(gathered.iter()) {
            scratch[0] += v * g;
        }
        out[row] += scratch[0];
    });
}

fn ranged(stream: &S, arena: &mut Arena) {
    stream.for_each_fiber_range_in(0..8, arena, &mut |_, cols, _| {
        // VIOLATION: to_vec copies the fiber.
        let copy = cols.to_vec();
        drop(copy);
    });
}

fn cold_path_is_fine() {
    // Outside any traversal call: not a hot region, no finding.
    let warmup: Vec<f64> = Vec::with_capacity(1024);
    drop(warmup);
}

//! Host-device offload transfer model (Fig. 11).
//!
//! When format conversion runs on the host, the operand pays an H2D and
//! D2H round trip over PCIe: "transferring data can consume up to 75% of
//! the total time, and has a geomean of roughly 50%. Thus, it is critical
//! to have hardware support for format conversion" (§VII-B).

/// PCIe link + conversion-time composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadModel {
    /// Link bandwidth in bytes/s (PCIe 3.0 x16 ~ 16 GB/s).
    pub pcie_bw: f64,
    /// Per-transfer latency in seconds (DMA setup + driver).
    pub transfer_latency_s: f64,
}

impl OffloadModel {
    /// PCIe 3.0 x16 defaults.
    pub fn pcie3_x16() -> Self {
        OffloadModel {
            pcie_bw: 16.0e9,
            transfer_latency_s: 10.0e-6,
        }
    }

    /// Time to move `bytes` one way.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.pcie_bw + self.transfer_latency_s
    }

    /// Breakdown of one offloaded conversion: H2D of the input, device
    /// compute, D2H of the output.
    pub fn offload(&self, in_bytes: f64, out_bytes: f64, compute_s: f64) -> OffloadBreakdown {
        OffloadBreakdown {
            h2d_s: self.transfer_time(in_bytes),
            compute_s,
            d2h_s: self.transfer_time(out_bytes),
        }
    }
}

impl Default for OffloadModel {
    fn default() -> Self {
        Self::pcie3_x16()
    }
}

/// Time breakdown of one host-offloaded operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadBreakdown {
    /// Host-to-device transfer time.
    pub h2d_s: f64,
    /// Device compute time.
    pub compute_s: f64,
    /// Device-to-host transfer time.
    pub d2h_s: f64,
}

impl OffloadBreakdown {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.h2d_s + self.compute_s + self.d2h_s
    }

    /// The Fig. 11 metric: transfer time over total time.
    pub fn transfer_ratio(&self) -> f64 {
        (self.h2d_s + self.d2h_s) / self.total()
    }
}

/// Geometric mean helper for the Fig. 11 summary row.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_ratio_bounds() {
        let m = OffloadModel::pcie3_x16();
        let b = m.offload(1e9, 1e9, 0.01);
        let r = b.transfer_ratio();
        assert!(r > 0.0 && r < 1.0);
        // 2 GB over 16 GB/s = 125 ms vs 10 ms compute -> ratio > 90%.
        assert!(r > 0.9, "ratio {r}");
    }

    #[test]
    fn fig11_band_for_balanced_conversion() {
        // A conversion whose compute time roughly equals one transfer
        // lands near the paper's ~50% geomean.
        let m = OffloadModel::pcie3_x16();
        let bytes = 100.0e6;
        let compute = 2.0 * bytes / m.pcie_bw; // compute == both transfers
        let b = m.offload(bytes, bytes, compute);
        let r = b.transfer_ratio();
        assert!((0.4..0.6).contains(&r), "ratio {r}");
    }

    #[test]
    fn latency_floor_for_tiny_transfers() {
        let m = OffloadModel::pcie3_x16();
        assert!(m.transfer_time(1.0) >= m.transfer_latency_s);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}

//! # sparseflex-host
//!
//! Host-side (CPU/GPU) baseline models for the paper's §VII-B
//! comparisons. The paper measures Intel MKL on a Core i9-9820X and
//! cuSPARSE/cuBLAS on an NVIDIA Titan RTX; neither library nor GPU is
//! available here, so this crate substitutes:
//!
//! - [`device`] — analytic roofline models of both devices, parameterized
//!   with the paper's published specs (10 cores / 85 GB/s / 165 W TDP;
//!   4608 CUDA cores at 1.77 GHz / 672 GB/s / 280 W), driving the Fig. 5
//!   execution-time / SM-utilization / memory-utilization sweeps and the
//!   Fig. 10 conversion-time comparison.
//! - [`offload`] — the PCIe host-device transfer model behind Fig. 11's
//!   transfer-to-compute ratios.
//! - [`swconvert`] — *measured* wall-clock timing of this workspace's own
//!   multithreaded Rust conversions, a real software-conversion baseline
//!   that runs on the build machine.
//!
//! The substitution preserves what the paper's figures actually claim:
//! which algorithm wins in which density region (Fig. 5), that host
//! conversion plus PCIe round-trips dwarf MINT (Fig. 10), and that
//! transfers consume ~50% of offloaded conversion time (Fig. 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod offload;
pub mod swconvert;

pub use device::{DeviceModel, MmAlgorithm, MmEstimate};
pub use offload::{OffloadBreakdown, OffloadModel};
pub use swconvert::{time_conversion, ConversionTiming};

//! Roofline models of the paper's host devices (§VII-B).

/// A compute device modelled as a roofline: peak FLOP/s, memory
/// bandwidth, power, and per-kernel fixed overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Device name for reports.
    pub name: &'static str,
    /// Peak fused multiply-add throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Board/package power in watts (TDP).
    pub tdp_w: f64,
    /// Fixed per-kernel overhead in seconds (launch/dispatch).
    pub kernel_overhead_s: f64,
    /// Efficiency of *irregular* (sparse) kernels relative to peak —
    /// index chasing and load imbalance keep sparse libraries far from
    /// peak; 10% is typical of cuSPARSE SpMM on scattered patterns.
    pub sparse_efficiency: f64,
}

impl DeviceModel {
    /// NVIDIA Titan RTX per §VII-B: 4608 CUDA cores at 1.77 GHz (FMA =
    /// 2 FLOP/cycle/core ~ 16.3 TFLOP/s fp32), 672 GB/s, 280 W.
    pub fn titan_rtx() -> Self {
        DeviceModel {
            name: "TitanRTX",
            peak_flops: 4608.0 * 2.0 * 1.77e9,
            mem_bw: 672.0e9,
            tdp_w: 280.0,
            kernel_overhead_s: 20.0e-6,
            sparse_efficiency: 0.10,
        }
    }

    /// Intel Core i9-9820X per §VII-B: 10 cores at 3.3 GHz (AVX-512 FMA
    /// ~ 32 fp32 FLOP/cycle/core ~ 1.06 TFLOP/s), 85 GB/s, 165 W.
    pub fn core_i9() -> Self {
        DeviceModel {
            name: "Corei9-9820X",
            peak_flops: 10.0 * 32.0 * 3.3e9,
            mem_bw: 85.0e9,
            tdp_w: 165.0,
            kernel_overhead_s: 5.0e-6,
            sparse_efficiency: 0.15,
        }
    }

    /// Roofline time for a kernel with the given FLOPs and byte traffic.
    pub fn roofline_time(&self, flops: f64, bytes: f64, efficiency: f64) -> f64 {
        let compute = flops / (self.peak_flops * efficiency.max(1e-6));
        let memory = bytes / self.mem_bw;
        compute.max(memory) + self.kernel_overhead_s
    }

    /// Energy of a kernel run (TDP x time; the coarse model GPUs report).
    pub fn energy(&self, time_s: f64) -> f64 {
        self.tdp_w * time_s
    }
}

/// The four matrix-multiplication algorithms (distinct ACFs) of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmAlgorithm {
    /// cuBLAS dense GEMM — Dense(A)-Dense(B)-Dense(O).
    GemmDense,
    /// cuSPARSE SpMM — CSR(A)-Dense(B)-Dense(O).
    SpmmCsrDense,
    /// cuSPARSE SpMM, stationary-compressed — Dense(A)-CSC(B)-Dense(O).
    SpmmDenseCsc,
    /// cuSPARSE SpGEMM — CSR(A)-CSR(B)-CSR(O).
    SpgemmCsr,
}

impl MmAlgorithm {
    /// All four, in Fig. 5's legend order.
    pub const fn all() -> [MmAlgorithm; 4] {
        [
            MmAlgorithm::GemmDense,
            MmAlgorithm::SpmmCsrDense,
            MmAlgorithm::SpmmDenseCsc,
            MmAlgorithm::SpgemmCsr,
        ]
    }

    /// Short name for CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            MmAlgorithm::GemmDense => "Dense-Dense-Dense",
            MmAlgorithm::SpmmCsrDense => "CSR-Dense-Dense",
            MmAlgorithm::SpmmDenseCsc => "Dense-CSC-Dense",
            MmAlgorithm::SpgemmCsr => "CSR-CSR-CSR",
        }
    }
}

/// Predicted execution profile of one algorithm at one density point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmEstimate {
    /// Wall time in seconds.
    pub time_s: f64,
    /// Fraction of peak compute engaged (the paper's "SM utilization";
    /// dense GEMM counts zero-valued MACs as busy, which is exactly the
    /// Fig. 5b subtlety: "SM utilization includes zero valued
    /// operations").
    pub sm_util: f64,
    /// Fraction of memory bandwidth engaged.
    pub mem_util: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

/// Estimate one Fig. 5 point: `M = N = K = n`, both operands at density
/// `d`, fp32 elements.
pub fn estimate_mm(dev: &DeviceModel, alg: MmAlgorithm, n: usize, d: f64) -> MmEstimate {
    let nf = n as f64;
    let nnz = (nf * nf * d).max(1.0);
    let elem = 4.0; // fp32
    let idx = 4.0; // 32-bit indices
    let (flops, bytes, eff) = match alg {
        MmAlgorithm::GemmDense => {
            // Full cubic work regardless of sparsity.
            (2.0 * nf * nf * nf, 3.0 * nf * nf * elem, 1.0)
        }
        MmAlgorithm::SpmmCsrDense => {
            // Work on nonzeros of A against dense B.
            let flops = 2.0 * nnz * nf;
            // Traffic: CSR A + dense B re-read per row tile + dense O.
            let bytes = nnz * (elem + idx) + 2.0 * nf * nf * elem;
            (flops, bytes, dev.sparse_efficiency)
        }
        MmAlgorithm::SpmmDenseCsc => {
            let flops = 2.0 * nnz * nf;
            let bytes = nnz * (elem + idx) + 2.0 * nf * nf * elem;
            // Column-stationary form gathers A rows; slightly worse
            // locality than the CSR row form.
            (flops, bytes, dev.sparse_efficiency * 0.8)
        }
        MmAlgorithm::SpgemmCsr => {
            // Expected flops: nnz_a * avg row of B = nnz * (nnz / n) / n.
            let flops = 2.0 * nnz * (nnz / nf).max(1.0);
            let nnz_o = (nf * nf * (1.0 - (1.0 - d * d).powf(nf))).max(1.0);
            let bytes = 2.0 * nnz * (elem + idx) + nnz_o * (elem + idx);
            // SpGEMM is latency/irregularity bound: hashing and merging
            // per output row cost beyond raw FLOPs.
            (flops, bytes, dev.sparse_efficiency * 0.5)
        }
    };
    let time = dev.roofline_time(flops, bytes, eff);
    // SM utilization counts issued (not useful) operations: dense GEMM
    // keeps the SMs busy with zeros.
    let issued_flops = match alg {
        MmAlgorithm::GemmDense => 2.0 * nf * nf * nf,
        _ => flops,
    };
    let sm_util = (issued_flops / (time * dev.peak_flops)).min(1.0);
    let mem_util = (bytes / (time * dev.mem_bw)).min(1.0);
    MmEstimate {
        time_s: time,
        sm_util,
        mem_util,
        energy_j: dev.energy(time),
    }
}

/// Analytic conversion-time model for the library baselines of Fig. 10:
/// a format conversion is a memory-bound multi-pass streaming kernel.
pub fn conversion_time(dev: &DeviceModel, nnz: u64, passes: f64, bytes_per_nnz: f64) -> f64 {
    let bytes = nnz as f64 * bytes_per_nnz * passes;
    bytes / dev.mem_bw + dev.kernel_overhead_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_specs_match_paper() {
        let t = DeviceModel::titan_rtx();
        assert!((t.peak_flops - 16.31e12).abs() / 16.31e12 < 0.01);
        assert_eq!(t.mem_bw, 672.0e9);
        assert_eq!(t.tdp_w, 280.0);
    }

    #[test]
    fn fig5_dense_flat_across_density() {
        // Dense GEMM time must not depend on sparsity.
        let dev = DeviceModel::titan_rtx();
        let a = estimate_mm(&dev, MmAlgorithm::GemmDense, 11_000, 1e-8);
        let b = estimate_mm(&dev, MmAlgorithm::GemmDense, 11_000, 1.0);
        assert!((a.time_s - b.time_s).abs() < 1e-12);
    }

    #[test]
    fn fig5_crossover_dense_wins_high_density() {
        // "Dense(A)-Dense(B)-Dense(O) performs better in density regions
        // from 10% to 100%" while "CSR(A)-CSR(B)-CSR(O) performs better
        // from 1e-6% to 0.1%".
        let dev = DeviceModel::titan_rtx();
        let n = 11_000;
        let dense_hi = estimate_mm(&dev, MmAlgorithm::GemmDense, n, 0.5).time_s;
        let spgemm_hi = estimate_mm(&dev, MmAlgorithm::SpgemmCsr, n, 0.5).time_s;
        assert!(
            dense_hi < spgemm_hi,
            "dense {dense_hi} vs spgemm {spgemm_hi} at 50%"
        );
        let dense_lo = estimate_mm(&dev, MmAlgorithm::GemmDense, n, 1e-8).time_s;
        let spgemm_lo = estimate_mm(&dev, MmAlgorithm::SpgemmCsr, n, 1e-8).time_s;
        assert!(
            spgemm_lo < dense_lo,
            "spgemm {spgemm_lo} vs dense {dense_lo} at 1e-6%"
        );
    }

    #[test]
    fn fig5b_dense_sm_util_stays_high() {
        // "SM utilization includes zero valued operations" — dense GEMM
        // shows high SM utilization even on sparse data.
        let dev = DeviceModel::titan_rtx();
        let e = estimate_mm(&dev, MmAlgorithm::GemmDense, 11_000, 1e-6);
        assert!(e.sm_util > 0.5, "sm_util {}", e.sm_util);
        let s = estimate_mm(&dev, MmAlgorithm::SpmmCsrDense, 11_000, 1e-6);
        assert!(s.sm_util < 0.05, "sparse sm_util {}", s.sm_util);
    }

    #[test]
    fn spmm_is_memory_bound_at_low_density() {
        // Fig. 5c: "the other two SpMM algorithms are often memory
        // bound" — at low density the dense-B traffic dominates the
        // little compute there is.
        let dev = DeviceModel::titan_rtx();
        let e = estimate_mm(&dev, MmAlgorithm::SpmmCsrDense, 11_000, 1e-4);
        assert!(e.mem_util > 0.5, "mem_util {}", e.mem_util);
    }

    #[test]
    fn conversion_time_scales_with_nnz() {
        let dev = DeviceModel::core_i9();
        let small = conversion_time(&dev, 10_000, 3.0, 12.0);
        let large = conversion_time(&dev, 10_000_000, 3.0, 12.0);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn cpu_conversion_slower_than_gpu_at_scale() {
        // 85 GB/s vs 672 GB/s: at large nnz the GPU's bandwidth wins
        // despite its larger launch overhead.
        let cpu = conversion_time(&DeviceModel::core_i9(), 50_000_000, 3.0, 12.0);
        let gpu = conversion_time(&DeviceModel::titan_rtx(), 50_000_000, 3.0, 12.0);
        assert!(gpu < cpu);
        // At tiny sizes the overhead dominates and the CPU wins.
        let cpu_s = conversion_time(&DeviceModel::core_i9(), 1_000, 3.0, 12.0);
        let gpu_s = conversion_time(&DeviceModel::titan_rtx(), 1_000, 3.0, 12.0);
        assert!(cpu_s < gpu_s);
    }
}

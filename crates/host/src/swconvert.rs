//! Measured software conversions: real wall-clock timings of this
//! workspace's own conversion routines, used as the honest
//! software-baseline datapoint in the Fig. 10 bench.

use sparseflex_formats::{convert, CsrMatrix, DenseMatrix, SparseMatrix};
use std::time::Instant;

/// Result of timing one software conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionTiming {
    /// Best-of-N wall time in seconds.
    pub seconds: f64,
    /// Nonzeros processed.
    pub nnz: usize,
    /// Throughput in nonzeros per second.
    pub nnz_per_sec: f64,
}

/// Which conversion to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedConversion {
    /// CSR → CSC (the Fig. 10a benchmark).
    CsrToCsc,
    /// Dense → CSR (the Fig. 10b benchmark).
    DenseToCsr,
}

/// Time a software conversion, best of `reps` runs.
pub fn time_conversion(
    which: TimedConversion,
    csr: &CsrMatrix,
    dense: Option<&DenseMatrix>,
    reps: usize,
) -> ConversionTiming {
    let reps = reps.max(1);
    let mut best = f64::INFINITY;
    match which {
        TimedConversion::CsrToCsc => {
            for _ in 0..reps {
                let t0 = Instant::now();
                let out = convert::csr_to_csc(csr);
                let dt = t0.elapsed().as_secs_f64();
                // Keep the optimizer honest.
                assert_eq!(out.nnz(), csr.nnz());
                best = best.min(dt);
            }
        }
        TimedConversion::DenseToCsr => {
            let d = dense.expect("DenseToCsr needs the dense operand");
            for _ in 0..reps {
                let t0 = Instant::now();
                let out = convert::dense_to_csr(d);
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(out.nnz(), csr.nnz());
                best = best.min(dt);
            }
        }
    }
    ConversionTiming {
        seconds: best,
        nnz: csr.nnz(),
        nnz_per_sec: csr.nnz() as f64 / best.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_workloads::synth::random_matrix;

    #[test]
    fn timings_are_positive_and_scale() {
        let small = random_matrix(200, 200, 2_000, 1);
        let large = random_matrix(1000, 1000, 200_000, 2);
        let csr_s = CsrMatrix::from_coo(&small);
        let csr_l = CsrMatrix::from_coo(&large);
        let t_s = time_conversion(TimedConversion::CsrToCsc, &csr_s, None, 3);
        let t_l = time_conversion(TimedConversion::CsrToCsc, &csr_l, None, 3);
        assert!(t_s.seconds > 0.0);
        assert!(t_l.seconds > t_s.seconds / 10.0); // sanity, not strict
        assert_eq!(t_l.nnz, 200_000);
    }

    #[test]
    fn dense_to_csr_timing_runs() {
        let coo = random_matrix(300, 300, 9_000, 3);
        let dense = coo.clone().into_dense();
        let csr = CsrMatrix::from_coo(&coo);
        let t = time_conversion(TimedConversion::DenseToCsr, &csr, Some(&dense), 2);
        assert!(t.nnz_per_sec > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs the dense operand")]
    fn dense_variant_requires_dense() {
        let coo = random_matrix(10, 10, 10, 4);
        let csr = CsrMatrix::from_coo(&coo);
        let _ = time_conversion(TimedConversion::DenseToCsr, &csr, None, 1);
    }
}

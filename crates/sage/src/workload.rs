//! Workload descriptions SAGE reasons about.

use sparseflex_formats::DataType;

/// Which kernel the workload runs (determines operand sparsity roles and
/// the legal ACF dataflows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SageKernel {
    /// Sparse A x dense B.
    SpMm,
    /// Sparse A x sparse B.
    SpGemm,
}

/// A matrix-kernel instance: `O(M x N) = A(M x K) x B(K x N)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SageWorkload {
    /// Kernel kind.
    pub kernel: SageKernel,
    /// Rows of A.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B.
    pub n: usize,
    /// Nonzeros of A.
    pub nnz_a: u64,
    /// Nonzeros of B (`k * n` for SpMM).
    pub nnz_b: u64,
    /// Element datatype.
    pub dtype: DataType,
}

impl SageWorkload {
    /// SpMM workload (B fully dense).
    pub fn spmm(m: usize, k: usize, n: usize, nnz_a: u64, dtype: DataType) -> Self {
        SageWorkload {
            kernel: SageKernel::SpMm,
            m,
            k,
            n,
            nnz_a,
            nnz_b: (k * n) as u64,
            dtype,
        }
    }

    /// SpGEMM workload.
    pub fn spgemm(m: usize, k: usize, n: usize, nnz_a: u64, nnz_b: u64, dtype: DataType) -> Self {
        SageWorkload {
            kernel: SageKernel::SpGemm,
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            dtype,
        }
    }

    /// Density of A.
    pub fn density_a(&self) -> f64 {
        self.nnz_a as f64 / (self.m as f64 * self.k as f64).max(1.0)
    }

    /// Density of B.
    pub fn density_b(&self) -> f64 {
        self.nnz_b as f64 / (self.k as f64 * self.n as f64).max(1.0)
    }

    /// Expected output nonzeros under uniform random sparsity: each of
    /// the `M x N` outputs is nonzero unless all `K` partial products
    /// vanish.
    pub fn expected_nnz_out(&self) -> u64 {
        let p = self.density_a() * self.density_b();
        let m = self.m as f64;
        let n = self.n as f64;
        let k = self.k as f64;
        let p_nonzero = 1.0 - (1.0 - p).powf(k);
        (m * n * p_nonzero).ceil() as u64
    }
}

/// A tensor-kernel instance (SpTTM or MTTKRP over a 3-D tensor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorWorkload {
    /// True for MTTKRP (two factor matrices), false for SpTTM (one).
    pub mttkrp: bool,
    /// Tensor shape `(x, y, z)`.
    pub dims: (usize, usize, usize),
    /// Tensor nonzeros.
    pub nnz: u64,
    /// Factor-matrix rank (`J`; the paper uses `x/2`).
    pub rank: usize,
    /// Element datatype.
    pub dtype: DataType,
}

impl TensorWorkload {
    /// Density of the tensor.
    pub fn density(&self) -> f64 {
        let vol = self.dims.0 as f64 * self.dims.1 as f64 * self.dims.2 as f64;
        self.nnz as f64 / vol.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmm_has_dense_b() {
        let w = SageWorkload::spmm(100, 50, 30, 500, DataType::Fp32);
        assert_eq!(w.nnz_b, 1500);
        assert_eq!(w.density_b(), 1.0);
        assert_eq!(w.density_a(), 0.1);
    }

    #[test]
    fn output_nnz_expectation_bounds() {
        // Dense x dense -> fully dense output.
        let w = SageWorkload::spgemm(10, 10, 10, 100, 100, DataType::Fp32);
        assert_eq!(w.expected_nnz_out(), 100);
        // Hyper-sparse: output nnz is near nnz_a * nnz_b / k.
        let w2 = SageWorkload::spgemm(1000, 1000, 1000, 1000, 1000, DataType::Fp32);
        let e = w2.expected_nnz_out();
        assert!((900..=1100).contains(&e), "expected ~1000, got {e}");
    }

    #[test]
    fn tensor_density() {
        let t = TensorWorkload {
            mttkrp: false,
            dims: (100, 10, 10),
            nnz: 1000,
            rank: 50,
            dtype: DataType::Fp32,
        };
        assert_eq!(t.density(), 0.1);
    }
}

//! Exhaustive MCF x ACF search (the "Generation Engine" of SAGE).

use crate::eval::{ConversionMode, Evaluation, Sage};
use crate::tensor_model::{evaluate_tensor, TensorChoice, TensorEvaluation};
use crate::workload::{SageWorkload, TensorWorkload};
use sparseflex_accel::taxonomy::AcceleratorClass;
use sparseflex_accel::ConversionSupport;
use sparseflex_formats::{MatrixFormat, TensorFormat};

/// One point in the search space: MCF and ACF per operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormatChoice {
    /// Memory format of the streaming operand A.
    pub mcf_a: MatrixFormat,
    /// Memory format of the stationary operand B.
    pub mcf_b: MatrixFormat,
    /// Compute format of A.
    pub acf_a: MatrixFormat,
    /// Compute format of B.
    pub acf_b: MatrixFormat,
}

impl std::fmt::Display for FormatChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCF {}({}) ACF {}({})",
            self.mcf_a, self.mcf_b, self.acf_a, self.acf_b
        )
    }
}

/// The result of a SAGE search: the winning evaluation plus the number of
/// candidates considered.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The winning (lowest-EDP) evaluation.
    pub best: Evaluation,
    /// Candidates evaluated.
    pub candidates: usize,
}

impl Sage {
    /// Search the full MCF x ACF cross product for the lowest-EDP
    /// combination (the `Flex_Flex_HW` capability).
    pub fn recommend(&self, w: &SageWorkload) -> Recommendation {
        self.recommend_constrained(w, None, &MatrixFormat::mcf_set(), ConversionMode::Hardware)
    }

    /// Search with the MCFs pinned by the programmer ("there might be
    /// scenarios when the MCF is already predetermined ... SAGE will find
    /// the best accelerator configuration (ACF) and conversion type").
    pub fn recommend_with_fixed_mcf(
        &self,
        w: &SageWorkload,
        mcf_a: MatrixFormat,
        mcf_b: MatrixFormat,
    ) -> Recommendation {
        self.recommend_constrained(
            w,
            Some((mcf_a, mcf_b)),
            &MatrixFormat::mcf_set(),
            ConversionMode::Hardware,
        )
    }

    fn recommend_constrained(
        &self,
        w: &SageWorkload,
        fixed_mcf: Option<(MatrixFormat, MatrixFormat)>,
        mcf_set: &[MatrixFormat],
        mode: ConversionMode,
    ) -> Recommendation {
        let acf_as = [
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Coo,
            MatrixFormat::Csc,
        ];
        let acf_bs = [MatrixFormat::Dense, MatrixFormat::Csc, MatrixFormat::Csr];
        let mcf_pairs: Vec<(MatrixFormat, MatrixFormat)> = match fixed_mcf {
            Some(p) => vec![p],
            None => {
                let mut v = Vec::new();
                for &a in mcf_set {
                    for &b in mcf_set {
                        v.push((a, b));
                    }
                }
                v
            }
        };
        let mut best: Option<Evaluation> = None;
        let mut candidates = 0;
        for (mcf_a, mcf_b) in mcf_pairs {
            for acf_a in acf_as {
                for acf_b in acf_bs {
                    if !self.acf_supported(w, acf_a, acf_b) {
                        continue;
                    }
                    let choice = FormatChoice {
                        mcf_a,
                        mcf_b,
                        acf_a,
                        acf_b,
                    };
                    if let Ok(eval) = self.evaluate(w, &choice, mode) {
                        candidates += 1;
                        let better = match &best {
                            None => true,
                            Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                        };
                        if better {
                            best = Some(eval);
                        }
                    }
                }
            }
        }
        Recommendation {
            best: best.expect("at least Dense-Dense MCF/ACF always evaluates"),
            candidates,
        }
    }

    /// Best achievable evaluation for a Table II accelerator class: the
    /// search is restricted to the class's supported MCF/ACF pairs and
    /// conversion discipline.
    pub fn recommend_for_class(
        &self,
        w: &SageWorkload,
        class: &AcceleratorClass,
    ) -> Option<Recommendation> {
        let mode = match class.conversion {
            ConversionSupport::None => ConversionMode::RequireIdentity,
            ConversionSupport::Hardware => ConversionMode::Hardware,
            ConversionSupport::Software => ConversionMode::default_software(),
        };
        let mut best: Option<Evaluation> = None;
        let mut candidates = 0;
        for &(mcf_a, mcf_b) in &class.mcfs {
            for &(acf_a, acf_b) in &class.acfs {
                if class.conversion == ConversionSupport::None && (mcf_a != acf_a || mcf_b != acf_b)
                {
                    continue;
                }
                if !self.acf_supported(w, acf_a, acf_b) {
                    continue;
                }
                let choice = FormatChoice {
                    mcf_a,
                    mcf_b,
                    acf_a,
                    acf_b,
                };
                if let Ok(eval) = self.evaluate(w, &choice, mode) {
                    candidates += 1;
                    let better = match &best {
                        None => true,
                        Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                    };
                    if better {
                        best = Some(eval);
                    }
                }
            }
        }
        best.map(|b| Recommendation {
            best: b,
            candidates,
        })
    }

    /// Search tensor MCF/ACF combinations for a tensor kernel (SpTTM /
    /// MTTKRP rows of Table III).
    pub fn recommend_tensor(&self, w: &TensorWorkload) -> TensorEvaluation {
        let mut best: Option<TensorEvaluation> = None;
        for mcf in TensorFormat::mcf_set() {
            for acf in TensorFormat::acf_set() {
                let choice = TensorChoice {
                    mcf_t: mcf,
                    acf_t: acf,
                };
                let eval = evaluate_tensor(self, w, &choice);
                let better = match &best {
                    None => true,
                    Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                };
                if better {
                    best = Some(eval);
                }
            }
        }
        best.expect("tensor search space is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SageKernel;
    use sparseflex_formats::DataType;

    fn sage() -> Sage {
        Sage::default()
    }

    #[test]
    fn recommendation_never_beaten_by_any_candidate() {
        // SAGE's defining invariant: the returned choice minimizes EDP
        // over the enumerated space.
        let s = sage();
        let w = SageWorkload::spmm(2000, 2000, 1000, 200_000, DataType::Fp32);
        let rec = s.recommend(&w);
        let best_edp = rec.best.edp(s.accel.clock_hz);
        for mcf_a in MatrixFormat::mcf_set() {
            for acf_a in [MatrixFormat::Dense, MatrixFormat::Csr] {
                let choice = FormatChoice {
                    mcf_a,
                    mcf_b: MatrixFormat::Dense,
                    acf_a,
                    acf_b: MatrixFormat::Dense,
                };
                if let Ok(e) = s.evaluate(&w, &choice, crate::eval::ConversionMode::Hardware) {
                    assert!(
                        e.edp(s.accel.clock_hz) >= best_edp * 0.999,
                        "{choice} beats the recommendation"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_sparsity_prefers_compressed_streaming() {
        // m3plates-like: 11k x 11k at 0.0054% -> COO/CSR MCF and a sparse
        // streaming ACF must win over Dense.
        let s = sage();
        let w = SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32);
        let rec = s.recommend(&w);
        assert_ne!(
            rec.best.choice.mcf_a,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
        assert_ne!(
            rec.best.choice.acf_a,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
    }

    #[test]
    fn dense_region_prefers_dense_acf() {
        // journals-like: 78.5% density -> dense-style compute.
        let s = sage();
        let w = SageWorkload::spgemm(124, 124, 62, 12_068, 6_034, DataType::Fp32);
        let rec = s.recommend(&w);
        assert_eq!(
            rec.best.choice.acf_b,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
    }

    #[test]
    fn fixed_mcf_search_respects_the_pin() {
        let s = sage();
        let w = SageWorkload::spmm(1000, 1000, 500, 50_000, DataType::Fp32);
        let rec = s.recommend_with_fixed_mcf(&w, MatrixFormat::Zvc, MatrixFormat::Dense);
        assert_eq!(rec.best.choice.mcf_a, MatrixFormat::Zvc);
        assert_eq!(rec.best.choice.mcf_b, MatrixFormat::Dense);
    }

    #[test]
    fn flexible_class_never_loses_to_fixed_classes() {
        // The Fig. 13 story: Flex_Flex_HW's EDP <= every other class's,
        // because its search space is a superset.
        let s = sage();
        let suite = AcceleratorClass::table2_suite();
        for w in [
            SageWorkload::spgemm(124, 124, 62, 12_068, 6_034, DataType::Fp32),
            SageWorkload::spgemm(7_700, 2_600, 3_850, 1_000_000, 500_000, DataType::Fp32),
            SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32),
            SageWorkload::spmm(7_700, 2_600, 3_850, 1_000_000, DataType::Fp32),
        ] {
            let ours = s
                .recommend_for_class(&w, &AcceleratorClass::flex_flex_hw())
                .expect("flex class always evaluates")
                .best;
            let our_edp = ours.edp(s.accel.clock_hz);
            for class in &suite {
                if let Some(rec) = s.recommend_for_class(&w, class) {
                    assert!(
                        rec.best.edp(s.accel.clock_hz) >= our_edp * 0.999,
                        "{} beats Flex_Flex_HW on {:?} kernel",
                        class.name,
                        w.kernel
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_count_reflects_search_space() {
        let s = sage();
        let w = SageWorkload::spgemm(500, 500, 250, 2_500, 1_250, DataType::Fp32);
        let rec = s.recommend(&w);
        // 36 MCF pairs x (4x2 WS pairs + CSR-CSR) = up to 324.
        assert!(rec.candidates > 100, "only {} candidates", rec.candidates);
        assert_eq!(w.kernel, SageKernel::SpGemm);
    }
}

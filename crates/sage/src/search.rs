//! Exhaustive MCF x ACF search (the "Generation Engine" of SAGE).
//!
//! The candidate space is **derived from the descriptor preset
//! registry** ([`sparseflex_formats::descriptor::enumerate_matrix`])
//! rather than hand-maintained format lists: the paper's §VII-A MCF and
//! ACF spaces are the `McfPaper` / `AcfPaper` filters of the composed
//! level space, and the [`SearchSpace`] knob widens the same search to
//! the structured and extended spaces without touching the loops.

use crate::eval::{ConversionMode, Evaluation, Sage};
use crate::tensor_model::{evaluate_tensor, TensorChoice, TensorEvaluation};
use crate::workload::{SageWorkload, TensorWorkload};
use sparseflex_accel::taxonomy::AcceleratorClass;
use sparseflex_accel::ConversionSupport;
use sparseflex_formats::descriptor::{enumerate_matrix, enumerate_tensor};
use sparseflex_formats::{FormatDescriptor, MatrixFormat, SearchSpace, TensorFormat};

/// One point in the search space: MCF and ACF per operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormatChoice {
    /// Memory format of the streaming operand A.
    pub mcf_a: MatrixFormat,
    /// Memory format of the stationary operand B.
    pub mcf_b: MatrixFormat,
    /// Compute format of A.
    pub acf_a: MatrixFormat,
    /// Compute format of B.
    pub acf_b: MatrixFormat,
}

impl FormatChoice {
    /// The four formats as their canonical per-rank descriptors
    /// `(mcf_a, mcf_b, acf_a, acf_b)`.
    pub fn descriptors(&self) -> [FormatDescriptor; 4] {
        [
            self.mcf_a.descriptor(),
            self.mcf_b.descriptor(),
            self.acf_a.descriptor(),
            self.acf_b.descriptor(),
        ]
    }

    /// Order-sensitive stable fingerprint of the four format
    /// descriptors — the format half of a descriptor-keyed plan-cache
    /// key (equal across the enum and descriptor entry points for the
    /// same formats, stable across processes).
    pub fn descriptor_fingerprint(&self) -> u64 {
        sparseflex_formats::descriptor::combine_fingerprints(self.descriptors().iter())
    }
}

impl std::fmt::Display for FormatChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCF {}({}) ACF {}({})",
            self.mcf_a, self.mcf_b, self.acf_a, self.acf_b
        )
    }
}

/// A format choice expressed in per-rank descriptors — the
/// forward-compatible spelling of [`FormatChoice`] the descriptor entry
/// points accept. Preset descriptors translate losslessly to the legacy
/// enums; open compositions run through the custom-format path instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DescriptorChoice {
    /// Memory descriptor of the streaming operand A.
    pub mcf_a: FormatDescriptor,
    /// Memory descriptor of the stationary operand B.
    pub mcf_b: FormatDescriptor,
    /// Compute descriptor of A.
    pub acf_a: FormatDescriptor,
    /// Compute descriptor of B.
    pub acf_b: FormatDescriptor,
}

impl DescriptorChoice {
    /// Translate to the legacy enum choice (`None` when any member is an
    /// open composition with no legacy name).
    pub fn to_format_choice(&self) -> Option<FormatChoice> {
        Some(FormatChoice {
            mcf_a: self.mcf_a.to_matrix_format()?,
            mcf_b: self.mcf_b.to_matrix_format()?,
            acf_a: self.acf_a.to_matrix_format()?,
            acf_b: self.acf_b.to_matrix_format()?,
        })
    }

    /// Same fingerprint rule as [`FormatChoice::descriptor_fingerprint`]
    /// (the two spellings of one choice collide by design — both
    /// delegate to the one
    /// [`combine_fingerprints`](sparseflex_formats::descriptor::combine_fingerprints)).
    pub fn descriptor_fingerprint(&self) -> u64 {
        sparseflex_formats::descriptor::combine_fingerprints([
            &self.mcf_a,
            &self.mcf_b,
            &self.acf_a,
            &self.acf_b,
        ])
    }
}

impl From<&FormatChoice> for DescriptorChoice {
    fn from(c: &FormatChoice) -> Self {
        let [mcf_a, mcf_b, acf_a, acf_b] = c.descriptors();
        DescriptorChoice {
            mcf_a,
            mcf_b,
            acf_a,
            acf_b,
        }
    }
}

/// MCF candidates for a search space, derived from the descriptor
/// registry and rendered as enum values (members of the wider spaces
/// that have no legacy name are skipped — they are servable through the
/// custom-format path, not the closed-enum evaluator).
pub fn mcf_candidates(space: SearchSpace) -> Vec<MatrixFormat> {
    enumerate_matrix(space)
        .iter()
        .filter_map(FormatDescriptor::to_matrix_format)
        .collect()
}

/// Streaming-operand ACF candidates: the paper's ACF space in the
/// generation engine's iteration order (Dense, CSR, COO, CSC).
pub fn acf_streaming_candidates() -> Vec<MatrixFormat> {
    enumerate_matrix(SearchSpace::AcfPaper)
        .iter()
        .filter_map(FormatDescriptor::to_matrix_format)
        .collect()
}

/// Stationary-operand ACF candidates: the subset of the ACF space the
/// weight-stationary array can hold resident (Dense, CSC), plus CSR for
/// the Gustavson SpGEMM pairing.
pub fn acf_stationary_candidates() -> Vec<MatrixFormat> {
    let mut v: Vec<MatrixFormat> = enumerate_matrix(SearchSpace::AcfPaper)
        .iter()
        .filter_map(FormatDescriptor::to_matrix_format)
        .filter(|f| matches!(f, MatrixFormat::Dense | MatrixFormat::Csc))
        .collect();
    v.push(MatrixFormat::Csr);
    v
}

/// The result of a SAGE search: the winning evaluation plus the number of
/// candidates considered.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The winning (lowest-EDP) evaluation.
    pub best: Evaluation,
    /// Candidates evaluated.
    pub candidates: usize,
}

impl Sage {
    /// Search the full MCF x ACF cross product for the lowest-EDP
    /// combination (the `Flex_Flex_HW` capability). The candidate space
    /// is the paper's (`SearchSpace::McfPaper`); use
    /// [`recommend_with_space`](Self::recommend_with_space) to widen it.
    pub fn recommend(&self, w: &SageWorkload) -> Recommendation {
        self.recommend_with_space(w, SearchSpace::McfPaper)
    }

    /// Search with the MCF candidate space selected by the
    /// [`SearchSpace`] knob: the paper's six formats, the structured
    /// extension (BSR/DIA/ELL), or the extended space with quantized
    /// run-length variants. Wider spaces strictly contain narrower ones,
    /// so the recommendation can only improve.
    pub fn recommend_with_space(&self, w: &SageWorkload, space: SearchSpace) -> Recommendation {
        self.recommend_constrained(w, None, &mcf_candidates(space), ConversionMode::Hardware)
    }

    /// Search with the MCFs pinned by the programmer ("there might be
    /// scenarios when the MCF is already predetermined ... SAGE will find
    /// the best accelerator configuration (ACF) and conversion type").
    pub fn recommend_with_fixed_mcf(
        &self,
        w: &SageWorkload,
        mcf_a: MatrixFormat,
        mcf_b: MatrixFormat,
    ) -> Recommendation {
        self.recommend_constrained(
            w,
            Some((mcf_a, mcf_b)),
            &mcf_candidates(SearchSpace::McfPaper),
            ConversionMode::Hardware,
        )
    }

    fn recommend_constrained(
        &self,
        w: &SageWorkload,
        fixed_mcf: Option<(MatrixFormat, MatrixFormat)>,
        mcf_set: &[MatrixFormat],
        mode: ConversionMode,
    ) -> Recommendation {
        let acf_as = acf_streaming_candidates();
        let acf_bs = acf_stationary_candidates();
        let mcf_pairs: Vec<(MatrixFormat, MatrixFormat)> = match fixed_mcf {
            Some(p) => vec![p],
            None => {
                let mut v = Vec::new();
                for &a in mcf_set {
                    for &b in mcf_set {
                        v.push((a, b));
                    }
                }
                v
            }
        };
        let mut best: Option<Evaluation> = None;
        let mut candidates = 0;
        for (mcf_a, mcf_b) in mcf_pairs {
            for &acf_a in &acf_as {
                for &acf_b in &acf_bs {
                    if !self.acf_supported(w, acf_a, acf_b) {
                        continue;
                    }
                    let choice = FormatChoice {
                        mcf_a,
                        mcf_b,
                        acf_a,
                        acf_b,
                    };
                    if let Ok(eval) = self.evaluate(w, &choice, mode) {
                        candidates += 1;
                        let better = match &best {
                            None => true,
                            Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                        };
                        if better {
                            best = Some(eval);
                        }
                    }
                }
            }
        }
        Recommendation {
            best: best.expect("at least Dense-Dense MCF/ACF always evaluates"),
            candidates,
        }
    }

    /// Best achievable evaluation for a Table II accelerator class: the
    /// search is restricted to the class's supported MCF/ACF pairs and
    /// conversion discipline.
    pub fn recommend_for_class(
        &self,
        w: &SageWorkload,
        class: &AcceleratorClass,
    ) -> Option<Recommendation> {
        let mode = match class.conversion {
            ConversionSupport::None => ConversionMode::RequireIdentity,
            ConversionSupport::Hardware => ConversionMode::Hardware,
            ConversionSupport::Software => ConversionMode::default_software(),
        };
        let mut best: Option<Evaluation> = None;
        let mut candidates = 0;
        for &(mcf_a, mcf_b) in &class.mcfs {
            for &(acf_a, acf_b) in &class.acfs {
                if class.conversion == ConversionSupport::None && (mcf_a != acf_a || mcf_b != acf_b)
                {
                    continue;
                }
                if !self.acf_supported(w, acf_a, acf_b) {
                    continue;
                }
                let choice = FormatChoice {
                    mcf_a,
                    mcf_b,
                    acf_a,
                    acf_b,
                };
                if let Ok(eval) = self.evaluate(w, &choice, mode) {
                    candidates += 1;
                    let better = match &best {
                        None => true,
                        Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                    };
                    if better {
                        best = Some(eval);
                    }
                }
            }
        }
        best.map(|b| Recommendation {
            best: b,
            candidates,
        })
    }

    /// Search tensor MCF/ACF combinations for a tensor kernel (SpTTM /
    /// MTTKRP rows of Table III). Candidates come from the tensor
    /// descriptor registry's paper filters.
    pub fn recommend_tensor(&self, w: &TensorWorkload) -> TensorEvaluation {
        let mcfs: Vec<TensorFormat> = enumerate_tensor(SearchSpace::McfPaper)
            .iter()
            .filter_map(FormatDescriptor::to_tensor_format)
            .collect();
        let acfs: Vec<TensorFormat> = enumerate_tensor(SearchSpace::AcfPaper)
            .iter()
            .filter_map(FormatDescriptor::to_tensor_format)
            .collect();
        let mut best: Option<TensorEvaluation> = None;
        for &mcf in &mcfs {
            for &acf in &acfs {
                let choice = TensorChoice {
                    mcf_t: mcf,
                    acf_t: acf,
                };
                let eval = evaluate_tensor(self, w, &choice);
                let better = match &best {
                    None => true,
                    Some(b) => eval.edp(self.accel.clock_hz) < b.edp(self.accel.clock_hz),
                };
                if better {
                    best = Some(eval);
                }
            }
        }
        best.expect("tensor search space is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SageKernel;
    use sparseflex_formats::DataType;

    fn sage() -> Sage {
        Sage::default()
    }

    #[test]
    fn recommendation_never_beaten_by_any_candidate() {
        // SAGE's defining invariant: the returned choice minimizes EDP
        // over the enumerated space.
        let s = sage();
        let w = SageWorkload::spmm(2000, 2000, 1000, 200_000, DataType::Fp32);
        let rec = s.recommend(&w);
        let best_edp = rec.best.edp(s.accel.clock_hz);
        for mcf_a in MatrixFormat::mcf_set() {
            for acf_a in [MatrixFormat::Dense, MatrixFormat::Csr] {
                let choice = FormatChoice {
                    mcf_a,
                    mcf_b: MatrixFormat::Dense,
                    acf_a,
                    acf_b: MatrixFormat::Dense,
                };
                if let Ok(e) = s.evaluate(&w, &choice, crate::eval::ConversionMode::Hardware) {
                    assert!(
                        e.edp(s.accel.clock_hz) >= best_edp * 0.999,
                        "{choice} beats the recommendation"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_sparsity_prefers_compressed_streaming() {
        // m3plates-like: 11k x 11k at 0.0054% -> COO/CSR MCF and a sparse
        // streaming ACF must win over Dense.
        let s = sage();
        let w = SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32);
        let rec = s.recommend(&w);
        assert_ne!(
            rec.best.choice.mcf_a,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
        assert_ne!(
            rec.best.choice.acf_a,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
    }

    #[test]
    fn dense_region_prefers_dense_acf() {
        // journals-like: 78.5% density -> dense-style compute.
        let s = sage();
        let w = SageWorkload::spgemm(124, 124, 62, 12_068, 6_034, DataType::Fp32);
        let rec = s.recommend(&w);
        assert_eq!(
            rec.best.choice.acf_b,
            MatrixFormat::Dense,
            "{}",
            rec.best.choice
        );
    }

    #[test]
    fn fixed_mcf_search_respects_the_pin() {
        let s = sage();
        let w = SageWorkload::spmm(1000, 1000, 500, 50_000, DataType::Fp32);
        let rec = s.recommend_with_fixed_mcf(&w, MatrixFormat::Zvc, MatrixFormat::Dense);
        assert_eq!(rec.best.choice.mcf_a, MatrixFormat::Zvc);
        assert_eq!(rec.best.choice.mcf_b, MatrixFormat::Dense);
    }

    #[test]
    fn flexible_class_never_loses_to_fixed_classes() {
        // The Fig. 13 story: Flex_Flex_HW's EDP <= every other class's,
        // because its search space is a superset.
        let s = sage();
        let suite = AcceleratorClass::table2_suite();
        for w in [
            SageWorkload::spgemm(124, 124, 62, 12_068, 6_034, DataType::Fp32),
            SageWorkload::spgemm(7_700, 2_600, 3_850, 1_000_000, 500_000, DataType::Fp32),
            SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32),
            SageWorkload::spmm(7_700, 2_600, 3_850, 1_000_000, DataType::Fp32),
        ] {
            let ours = s
                .recommend_for_class(&w, &AcceleratorClass::flex_flex_hw())
                .expect("flex class always evaluates")
                .best;
            let our_edp = ours.edp(s.accel.clock_hz);
            for class in &suite {
                if let Some(rec) = s.recommend_for_class(&w, class) {
                    assert!(
                        rec.best.edp(s.accel.clock_hz) >= our_edp * 0.999,
                        "{} beats Flex_Flex_HW on {:?} kernel",
                        class.name,
                        w.kernel
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_count_reflects_search_space() {
        let s = sage();
        let w = SageWorkload::spgemm(500, 500, 250, 2_500, 1_250, DataType::Fp32);
        let rec = s.recommend(&w);
        // 36 MCF pairs x (4x2 WS pairs + CSR-CSR) = up to 324.
        assert!(rec.candidates > 100, "only {} candidates", rec.candidates);
        assert_eq!(w.kernel, SageKernel::SpGemm);
    }

    #[test]
    fn registry_derived_spaces_match_paper_vii_a_counts() {
        // §VII-A: "6 MCF choices ... and 4 ACF choices" — the descriptor
        // registry's paper filters must reproduce those counts exactly,
        // and element-for-element equal the legacy enum sets.
        let mcf = mcf_candidates(SearchSpace::McfPaper);
        assert_eq!(mcf.len(), 6, "paper MCF space is 6 formats");
        assert_eq!(mcf, MatrixFormat::mcf_set().to_vec());
        let acf = acf_streaming_candidates();
        assert_eq!(acf.len(), 4, "paper ACF space is 4 formats");
        for f in MatrixFormat::acf_set() {
            assert!(acf.contains(&f), "registry ACF space lost {f}");
        }
        // Stationary candidates: the WS-resident subset plus CSR.
        assert_eq!(
            acf_stationary_candidates(),
            vec![MatrixFormat::Dense, MatrixFormat::Csc, MatrixFormat::Csr]
        );
        // Tensor rows of Table III: 5 MCFs x 3 ACFs.
        use sparseflex_formats::descriptor::enumerate_tensor;
        assert_eq!(enumerate_tensor(SearchSpace::McfPaper).len(), 5);
        assert_eq!(enumerate_tensor(SearchSpace::AcfPaper).len(), 3);
    }

    #[test]
    fn exhaustive_search_enumerates_the_full_cross_product() {
        // SpGEMM: 36 MCF pairs x (4 streaming ACFs x 2 stationary + the
        // CSR-CSR Gustavson pair) = 324 candidates; SpMM drops the
        // Gustavson pair: 36 x 8 = 288.
        let s = sage();
        let spgemm = SageWorkload::spgemm(200, 200, 100, 2_000, 1_000, DataType::Fp32);
        assert_eq!(s.recommend(&spgemm).candidates, 36 * 9);
        let spmm = SageWorkload::spmm(200, 200, 100, 2_000, DataType::Fp32);
        assert_eq!(s.recommend(&spmm).candidates, 36 * 8);
    }

    #[test]
    fn wider_search_spaces_never_lose() {
        // Structured/Extended strictly contain the paper space, so their
        // best EDP can only match or improve.
        let s = sage();
        let w = SageWorkload::spgemm(1_000, 1_000, 500, 20_000, 10_000, DataType::Fp32);
        let paper = s.recommend_with_space(&w, SearchSpace::McfPaper);
        let structured = s.recommend_with_space(&w, SearchSpace::Structured);
        let extended = s.recommend_with_space(&w, SearchSpace::Extended);
        let clock = s.accel.clock_hz;
        assert!(structured.best.edp(clock) <= paper.best.edp(clock) * 1.0001);
        assert!(extended.best.edp(clock) <= structured.best.edp(clock) * 1.0001);
        assert!(structured.candidates > paper.candidates);
        assert!(extended.candidates > structured.candidates);
    }

    #[test]
    fn choice_fingerprints_agree_across_spellings() {
        let choice = FormatChoice {
            mcf_a: MatrixFormat::Zvc,
            mcf_b: MatrixFormat::Dense,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Dense,
        };
        let desc = DescriptorChoice::from(&choice);
        assert_eq!(
            choice.descriptor_fingerprint(),
            desc.descriptor_fingerprint()
        );
        assert_eq!(desc.to_format_choice(), Some(choice.clone()));
        // Operand position matters (MCF_A=ZVC differs from MCF_B=ZVC).
        let swapped = FormatChoice {
            mcf_a: MatrixFormat::Dense,
            mcf_b: MatrixFormat::Zvc,
            ..choice.clone()
        };
        assert_ne!(
            choice.descriptor_fingerprint(),
            swapped.descriptor_fingerprint()
        );
        // Open compositions have no enum spelling.
        let open = DescriptorChoice {
            mcf_a: sparseflex_formats::FormatDescriptor::new(
                sparseflex_formats::RankOrder::RowMajor,
                vec![
                    sparseflex_formats::Level::Bitmask,
                    sparseflex_formats::Level::RunLength { run_bits: 4 },
                ],
                sparseflex_formats::ValuesLayout::Contiguous,
            ),
            ..desc
        };
        assert_eq!(open.to_format_choice(), None);
    }
}

//! Structured-format extension to SAGE — the paper's stated future work
//! (§VI: "Enhancing the performance model for structured formats (e.g.
//! DIA, HiCOO, BSR and ELLPACK) is part of our future work").
//!
//! The uniform-random assumption underprices structured MCFs exactly when
//! they shine: a block-pruned weight matrix stores far fewer BSR blocks
//! than the random model expects, and a banded stiffness matrix occupies
//! a handful of diagonals. This module measures the *actual* pattern
//! (via [`matrix_storage_bits_exact`]) and extends the MCF search with
//! BSR/DIA/ELL candidates, gated by the structure statistics so scattered
//! patterns don't waste search time on hopeless encodings.

use crate::eval::{ConversionMode, Sage};
use crate::search::{FormatChoice, Recommendation};
use crate::workload::{SageKernel, SageWorkload};
use sparseflex_formats::size_model::matrix_storage_bits_exact;
use sparseflex_formats::stats::MatrixStats;
use sparseflex_formats::{CooMatrix, DataType, MatrixData, MatrixFormat, SparseMatrix};

/// An MCF candidate with its measured (exact) storage size.
#[derive(Debug, Clone, PartialEq)]
pub struct McfCandidate {
    /// The format.
    pub format: MatrixFormat,
    /// Exact storage bits for this pattern.
    pub bits: u64,
}

/// Rank all MCF candidates for an actual pattern, most compact first.
///
/// Includes the paper's six unstructured MCFs always, and BSR / DIA / ELL
/// when the pattern statistics suggest they can win.
pub fn rank_mcfs_exact(coo: &CooMatrix, dtype: DataType) -> Vec<McfCandidate> {
    let stats = MatrixStats::analyze(coo);
    let mut formats = MatrixFormat::mcf_set().to_vec();
    // Structured candidates, structure-gated.
    if stats.is_banded() {
        formats.push(MatrixFormat::Dia);
    }
    if stats.is_row_balanced() {
        formats.push(MatrixFormat::Ell);
    }
    for block in [2usize, 4, 8] {
        let (_, fill) = MatrixStats::block_occupancy(coo, block);
        // Worth encoding only when occupied blocks are mostly full.
        if fill > 0.5 {
            formats.push(MatrixFormat::Bsr {
                br: block,
                bc: block,
            });
        }
    }
    let mut out: Vec<McfCandidate> = formats
        .into_iter()
        .filter_map(|f| {
            MatrixData::encode(coo, &f).ok().map(|d| McfCandidate {
                format: f,
                bits: matrix_storage_bits_exact(&d, dtype),
            })
        })
        .collect();
    out.sort_by_key(|c| c.bits);
    out
}

impl Sage {
    /// Structure-aware recommendation: measure both operands' patterns,
    /// pick the exact most-compact MCF per operand (structured formats
    /// included), then search the ACFs with the standard models.
    ///
    /// Returns the recommendation plus the chosen per-operand MCF
    /// rankings (for reporting).
    pub fn recommend_structured(
        &self,
        a: &CooMatrix,
        b: &CooMatrix,
        kernel: SageKernel,
        dtype: DataType,
    ) -> (Recommendation, Vec<McfCandidate>, Vec<McfCandidate>) {
        let rank_a = rank_mcfs_exact(a, dtype);
        let rank_b = rank_mcfs_exact(b, dtype);
        let mcf_a = rank_a.first().expect("non-empty candidate set").format;
        let mcf_b = rank_b.first().expect("non-empty candidate set").format;
        let w = match kernel {
            SageKernel::SpMm => {
                SageWorkload::spmm(a.rows(), a.cols(), b.cols(), a.nnz() as u64, dtype)
            }
            SageKernel::SpGemm => SageWorkload::spgemm(
                a.rows(),
                a.cols(),
                b.cols(),
                a.nnz() as u64,
                b.nnz() as u64,
                dtype,
            ),
        };
        // ACF search with the MCFs pinned to the structure-exact winners.
        let mut best = None;
        let mut candidates = 0;
        for acf_a in [
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Coo,
            MatrixFormat::Csc,
        ] {
            for acf_b in [MatrixFormat::Dense, MatrixFormat::Csc, MatrixFormat::Csr] {
                if !self.acf_supported(&w, acf_a, acf_b) {
                    continue;
                }
                let choice = FormatChoice {
                    mcf_a,
                    mcf_b,
                    acf_a,
                    acf_b,
                };
                let exact = Some((rank_a[0].bits, rank_b[0].bits));
                if let Ok(e) =
                    self.evaluate_with_operand_bits(&w, &choice, ConversionMode::Hardware, exact)
                {
                    candidates += 1;
                    let is_better = best.as_ref().is_none_or(|prev: &crate::eval::Evaluation| {
                        e.edp(self.accel.clock_hz) < prev.edp(self.accel.clock_hz)
                    });
                    if is_better {
                        best = Some(e);
                    }
                }
            }
        }
        (
            Recommendation {
                best: best.expect("Dense ACFs always evaluate"),
                candidates,
            },
            rank_a,
            rank_b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_workloads::synth::{banded_matrix, blocked_matrix, random_matrix};

    #[test]
    fn blocked_pattern_ranks_bsr_first() {
        // 8x8 fully-dense blocks covering 10% of tiles: BSR's per-block
        // metadata beats per-nonzero metadata.
        let m = blocked_matrix(256, 256, 8, 0.10, 1);
        let ranks = rank_mcfs_exact(&m, DataType::Fp32);
        assert_eq!(
            ranks[0].format,
            MatrixFormat::Bsr { br: 8, bc: 8 },
            "ranking: {:?}",
            ranks.iter().map(|c| (c.format, c.bits)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn banded_pattern_ranks_dia_first() {
        let m = banded_matrix(512, 5, 2);
        let ranks = rank_mcfs_exact(&m, DataType::Fp32);
        assert_eq!(
            ranks[0].format,
            MatrixFormat::Dia,
            "ranking: {:?}",
            ranks.iter().map(|c| (c.format, c.bits)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_pattern_sticks_to_unstructured() {
        let m = random_matrix(256, 256, 2_000, 3);
        let ranks = rank_mcfs_exact(&m, DataType::Fp32);
        assert!(
            ranks[0].format.is_unstructured(),
            "random pattern picked {:?}",
            ranks[0].format
        );
    }

    #[test]
    fn structured_recommendation_runs_end_to_end() {
        let sage = Sage::default();
        let a = blocked_matrix(128, 128, 8, 0.15, 4);
        let b = random_matrix(128, 64, 128 * 64, 5); // dense factor
        let (rec, rank_a, _) = sage.recommend_structured(&a, &b, SageKernel::SpMm, DataType::Fp32);
        assert_eq!(rec.best.choice.mcf_a, rank_a[0].format);
        assert!(rec.candidates > 0);
        assert!(rec.best.total_cycles() > 0.0);
    }

    #[test]
    fn structured_mcf_beats_unstructured_on_dram_cycles() {
        // The point of the extension: on a blocked pattern, the
        // structure-aware plan moves fewer DRAM bits than the
        // uniform-random plan.
        let sage = Sage::default();
        let a = blocked_matrix(256, 256, 8, 0.10, 6);
        let b = random_matrix(256, 128, 256 * 128, 7);
        let (structured, _, _) =
            sage.recommend_structured(&a, &b, SageKernel::SpMm, DataType::Fp32);
        let w = SageWorkload::spmm(256, 256, 128, a.nnz() as u64, DataType::Fp32);
        let uniform = sage.recommend(&w);
        assert!(
            structured.best.dram_cycles <= uniform.best.dram_cycles,
            "structured {} vs uniform {}",
            structured.best.dram_cycles,
            uniform.best.dram_cycles
        );
    }
}

//! # sparseflex-sage
//!
//! SAGE — *Sparsity formAt Generation Engine* (§VI of the paper): an
//! analytical model that predicts which MCF and ACF combination yields
//! the lowest energy-delay product (EDP) for a workload, and configures
//! MINT and the accelerator accordingly.
//!
//! Inputs (Fig. 1b): workload size, datatype, density region, MINT
//! conversion cost, and accelerator hardware parameters. Outputs: the
//! chosen MCF/ACF per operand plus a full cost breakdown.
//!
//! SAGE composes three models:
//!
//! - **Cost model** — DRAM transfer cycles and energy, proportional to
//!   the MCF's compressed size (`sparseflex-accel`'s [`DramModel`] over
//!   the `sparseflex-formats` size model).
//! - **Conversion model** — MINT building-block occupancy
//!   (`sparseflex-mint`'s [`conversion_cost`]), overlapped with the DRAM
//!   stream.
//! - **Performance model** — WS-accelerator compute cycles per ACF
//!   (`sparseflex-accel`'s analytic layer, "similar to Fig. 6").
//!
//! [`Sage::recommend`] searches the full MCF x ACF cross product;
//! [`Sage::recommend_for_class`] restricts the search to what a Table II
//! accelerator class supports, which is how the Fig. 12/13 baselines are
//! produced.
//!
//! [`DramModel`]: sparseflex_accel::DramModel
//! [`conversion_cost`]: sparseflex_mint::conversion_cost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beam;
pub mod dataflow;
pub mod eval;
pub mod search;
pub mod structured;
pub mod tensor_model;
pub mod workload;

pub use beam::{BeamConfig, OpenEvaluation, OpenRecommendation, SearchObjective};
pub use dataflow::{choose_spgemm_algo, gustavson_cost, rowwise_cost, DataflowCost};
pub use eval::{Evaluation, Sage};
pub use search::{
    acf_stationary_candidates, acf_streaming_candidates, mcf_candidates, DescriptorChoice,
    FormatChoice, Recommendation,
};
pub use workload::{SageKernel, SageWorkload, TensorWorkload};

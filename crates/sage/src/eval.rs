//! Evaluation of one (MCF, ACF) choice: the composed cost, conversion
//! and performance models.

use crate::search::FormatChoice;
use crate::workload::{SageKernel, SageWorkload};
use sparseflex_accel::exec::SimError;
use sparseflex_accel::model::{spgemm_estimate, ws_estimate, WsWorkload};
use sparseflex_accel::{AccelConfig, DramModel, EnergyModel};
use sparseflex_formats::size_model::matrix_storage_bits;
use sparseflex_formats::MatrixFormat;
use sparseflex_mint::{conversion_cost, ConversionEngine};

/// How conversions are performed (Table I column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConversionMode {
    /// MCF must equal ACF; any mismatch is rejected.
    RequireIdentity,
    /// MINT hardware beside the accelerator: conversion overlaps the
    /// DRAM stream, only the excess shows up as added cycles.
    Hardware,
    /// Host software: conversion is serialized and slowed by the given
    /// factor, and operands pay a host round-trip over the interconnect
    /// (bits moved at `pcie_bits_per_cycle`).
    Software {
        /// Host slowdown vs MINT throughput.
        slowdown: f64,
        /// Interconnect bandwidth in bits per accelerator cycle
        /// (PCIe 3.0 x16 ~ 16 GB/s = 128 bits/cycle at 1 GHz).
        pcie_bits_per_cycle: f64,
    },
}

impl ConversionMode {
    /// The default host model used for `Flex_Flex_SW`.
    pub fn default_software() -> Self {
        ConversionMode::Software {
            slowdown: 10.0,
            pcie_bits_per_cycle: 128.0,
        }
    }
}

/// Full cost breakdown of one format choice on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The evaluated choice.
    pub choice: FormatChoice,
    /// DRAM cycles (fetch A + fetch B + write O).
    pub dram_cycles: f64,
    /// DRAM energy (J).
    pub dram_energy: f64,
    /// Added conversion cycles (after overlap).
    pub conv_cycles: f64,
    /// Conversion energy (J).
    pub conv_energy: f64,
    /// Accelerator compute cycles.
    pub compute_cycles: f64,
    /// On-chip compute energy (J).
    pub compute_energy: f64,
    /// Predicted PE utilization.
    pub utilization: f64,
}

impl Evaluation {
    /// Total cycles (memory + conversion + compute, the Fig. 12 stack).
    pub fn total_cycles(&self) -> f64 {
        self.dram_cycles + self.conv_cycles + self.compute_cycles
    }

    /// Total energy in joules.
    pub fn total_energy(&self) -> f64 {
        self.dram_energy + self.conv_energy + self.compute_energy
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self, clock_hz: f64) -> f64 {
        self.total_energy() * self.total_cycles() / clock_hz
    }
}

/// The SAGE predictor: hardware parameters plus the three sub-models.
#[derive(Debug, Clone)]
pub struct Sage {
    /// Accelerator configuration (PEs, buffers, bus, clock).
    pub accel: AccelConfig,
    /// DRAM interface model.
    pub dram: DramModel,
    /// MINT configuration for conversion costs.
    pub mint: ConversionEngine,
    /// Energy constants.
    pub energy: EnergyModel,
}

impl Default for Sage {
    fn default() -> Self {
        Sage {
            accel: AccelConfig::paper(),
            dram: DramModel::paper(),
            mint: ConversionEngine::default(),
            energy: EnergyModel::default_28nm(),
        }
    }
}

impl Sage {
    /// Evaluate one format choice on a matrix workload (analytic operand
    /// sizes under the uniform-random assumption).
    pub fn evaluate(
        &self,
        w: &SageWorkload,
        choice: &FormatChoice,
        mode: ConversionMode,
    ) -> Result<Evaluation, SimError> {
        self.evaluate_with_operand_bits(w, choice, mode, None)
    }

    /// Evaluate with optional *measured* operand storage sizes (used by
    /// the structured-format extension, where the analytic size model's
    /// uniform-random assumption would misprice BSR/DIA/ELL MCFs).
    pub fn evaluate_with_operand_bits(
        &self,
        w: &SageWorkload,
        choice: &FormatChoice,
        mode: ConversionMode,
        exact_bits: Option<(u64, u64)>,
    ) -> Result<Evaluation, SimError> {
        if matches!(mode, ConversionMode::RequireIdentity)
            && (choice.mcf_a != choice.acf_a || choice.mcf_b != choice.acf_b)
        {
            return Err(SimError::UnsupportedAcf {
                a: choice.acf_a,
                b: choice.acf_b,
            });
        }

        // ---- Cost model: DRAM traffic in the chosen MCFs.
        let (bits_a, bits_b) = match exact_bits {
            Some(pair) => pair,
            None => (
                matrix_storage_bits(&choice.mcf_a, w.m, w.k, w.nnz_a as usize, w.dtype),
                matrix_storage_bits(&choice.mcf_b, w.k, w.n, w.nnz_b as usize, w.dtype),
            ),
        };
        // Output writeback: dense for SpMM-like outputs, compressed for
        // sparse outputs; identical across choices so it never flips a
        // comparison, but keeps absolute numbers honest.
        let nnz_o = w.expected_nnz_out() as usize;
        let bits_o = matrix_storage_bits(&MatrixFormat::Dense, w.m, w.n, nnz_o, w.dtype).min(
            matrix_storage_bits(&MatrixFormat::Csr, w.m, w.n, nnz_o, w.dtype),
        );
        let dram_a_cycles = self.dram.transfer_cycles(bits_a) as f64;
        let dram_b_cycles = self.dram.transfer_cycles(bits_b) as f64;
        let dram_cycles = self.dram.transfer_cycles(bits_a + bits_b + bits_o) as f64;
        let dram_energy = self.dram.transfer_energy(bits_a + bits_b + bits_o);

        // ---- Performance model (needed first: hardware conversion
        // overlaps with fetch + compute).
        let ws = WsWorkload {
            m: w.m,
            k: w.k,
            n: w.n,
            nnz_a: w.nnz_a,
            nnz_b: w.nnz_b,
            acf_a: choice.acf_a,
            acf_b: choice.acf_b,
        };
        let est = if choice.acf_a == MatrixFormat::Csr && choice.acf_b == MatrixFormat::Csr {
            spgemm_estimate(&ws, &self.accel)?
        } else {
            ws_estimate(&ws, &self.accel)?
        };

        // ---- Conversion model.
        let conv_a = conversion_cost(&choice.mcf_a, &choice.acf_a, w.m, w.k, w.nnz_a, &self.mint);
        let conv_b = conversion_cost(&choice.mcf_b, &choice.acf_b, w.k, w.n, w.nnz_b, &self.mint);
        let (conv_cycles, conv_energy) = match mode {
            ConversionMode::RequireIdentity => (0.0, 0.0),
            ConversionMode::Hardware => {
                // "MINT is pipelined to start conversion while streaming
                // in data from memory" (SV-B), and the tiled runtime in
                // `sparseflex-core` additionally converts stationary tile
                // t+1 while the array computes tile t. Price that exact
                // schedule: A's conversion is prologue work hidden only
                // by its own fetch; B's spreads over the stationary tiles,
                // with tile 0 as pipeline fill and later tiles hidden
                // behind the previous tile's compute.
                let tiles = self.stationary_tiles(w);
                let added = sparseflex_mint::tiled::added_hardware_cycles(
                    conv_a.cycles as f64,
                    dram_a_cycles,
                    conv_b.cycles as f64,
                    dram_b_cycles,
                    est.cycles.total(),
                    tiles,
                );
                (added, conv_a.energy + conv_b.energy)
            }
            ConversionMode::Software {
                slowdown,
                pcie_bits_per_cycle,
            } => {
                // Host conversion: serialized, slowed, plus a PCIe round
                // trip for each converted operand (H2D + D2H).
                let mut cycles = 0.0;
                let mut energy = 0.0;
                for (conv, bits) in [(conv_a, bits_a), (conv_b, bits_b)] {
                    if conv.cycles > 0 {
                        cycles +=
                            conv.cycles as f64 * slowdown + 2.0 * bits as f64 / pcie_bits_per_cycle;
                        // Host DRAM traffic both ways dominates energy.
                        energy +=
                            conv.energy * slowdown + 2.0 * bits as f64 * self.energy.dram_per_bit();
                    }
                }
                (cycles, energy)
            }
        };

        Ok(Evaluation {
            choice: choice.clone(),
            dram_cycles,
            dram_energy,
            conv_cycles,
            conv_energy,
            compute_cycles: est.cycles.total(),
            compute_energy: est.energy(&self.energy).total(),
            utilization: est.utilization(),
        })
    }

    /// Stable fingerprint of the full hardware configuration this
    /// predictor evaluates against (accelerator, DRAM, MINT, energy
    /// constants).
    ///
    /// Two `Sage` instances with equal fingerprints provably produce
    /// equal [`Evaluation`]s for equal workloads, so the fingerprint is
    /// the hardware half of a plan-cache key: cached evaluations are
    /// reused only while the configuration they were searched under
    /// stays in force (mutating `sage.accel` naturally invalidates them).
    pub fn config_fingerprint(&self) -> u64 {
        use std::fmt::Write;
        use std::hash::Hasher;
        // The Debug rendering covers every model parameter, including
        // float fields that cannot implement `Hash` directly; it is
        // streamed straight into the hasher (no intermediate string),
        // since this runs on the warm plan-cache lookup path.
        struct HashWriter(std::collections::hash_map::DefaultHasher);
        impl Write for HashWriter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }
        let mut w = HashWriter(std::collections::hash_map::DefaultHasher::new());
        write!(w, "{self:?}").expect("hashing never fails");
        w.0.finish()
    }

    /// Stationary tiles the pipelined runtime cuts a workload into: one
    /// weight-stationary array residency (`num_pes` stationary columns)
    /// per tile, clamped to keep the model O(1).
    pub fn stationary_tiles(&self, w: &SageWorkload) -> usize {
        w.n.div_ceil(self.accel.num_pes.max(1)).clamp(1, 4096)
    }

    /// Is this ACF pair executable for this kernel on the WS array?
    pub fn acf_supported(
        &self,
        w: &SageWorkload,
        acf_a: MatrixFormat,
        acf_b: MatrixFormat,
    ) -> bool {
        let spgemm_pair = acf_a == MatrixFormat::Csr && acf_b == MatrixFormat::Csr;
        if spgemm_pair {
            // Gustavson needs a sparse B; pointless for dense B.
            return w.kernel == SageKernel::SpGemm;
        }
        matches!(
            acf_a,
            MatrixFormat::Dense | MatrixFormat::Csr | MatrixFormat::Coo | MatrixFormat::Csc
        ) && matches!(acf_b, MatrixFormat::Dense | MatrixFormat::Csc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::DataType;

    fn choice(
        mcf_a: MatrixFormat,
        mcf_b: MatrixFormat,
        acf_a: MatrixFormat,
        acf_b: MatrixFormat,
    ) -> FormatChoice {
        FormatChoice {
            mcf_a,
            mcf_b,
            acf_a,
            acf_b,
        }
    }

    #[test]
    fn identity_mode_rejects_mismatched_formats() {
        let sage = Sage::default();
        let w = SageWorkload::spmm(1000, 1000, 500, 10_000, DataType::Fp32);
        let c = choice(
            MatrixFormat::Zvc,
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        assert!(sage
            .evaluate(&w, &c, ConversionMode::RequireIdentity)
            .is_err());
        let ok = choice(
            MatrixFormat::Csr,
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        assert!(sage
            .evaluate(&w, &ok, ConversionMode::RequireIdentity)
            .is_ok());
    }

    #[test]
    fn compact_mcf_cuts_dram_share() {
        let sage = Sage::default();
        let w = SageWorkload::spmm(4000, 4000, 2000, 160_000, DataType::Fp32); // 1% dense
        let dense_mcf = choice(
            MatrixFormat::Dense,
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        let csr_mcf = choice(
            MatrixFormat::Csr,
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        let e_dense = sage
            .evaluate(&w, &dense_mcf, ConversionMode::Hardware)
            .unwrap();
        let e_csr = sage
            .evaluate(&w, &csr_mcf, ConversionMode::Hardware)
            .unwrap();
        assert!(e_csr.dram_cycles < e_dense.dram_cycles);
        assert!(e_csr.total_energy() < e_dense.total_energy());
    }

    #[test]
    fn hardware_conversion_overlaps_software_does_not() {
        let sage = Sage::default();
        let w = SageWorkload::spmm(2000, 2000, 1000, 40_000, DataType::Fp32);
        let c = choice(
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        let hw = sage.evaluate(&w, &c, ConversionMode::Hardware).unwrap();
        let sw = sage
            .evaluate(&w, &c, ConversionMode::default_software())
            .unwrap();
        assert!(
            sw.conv_cycles > 10.0 * hw.conv_cycles.max(1.0),
            "sw {} vs hw {}",
            sw.conv_cycles,
            hw.conv_cycles
        );
        assert!(sw.total_cycles() > hw.total_cycles());
    }

    #[test]
    fn edp_scales_with_clock() {
        let sage = Sage::default();
        let w = SageWorkload::spmm(500, 500, 250, 5_000, DataType::Fp32);
        let c = choice(
            MatrixFormat::Csr,
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Dense,
        );
        let e = sage.evaluate(&w, &c, ConversionMode::Hardware).unwrap();
        assert!(e.edp(1e9) > e.edp(2e9));
        assert!(e.total_cycles() > 0.0);
        assert!(e.total_energy() > 0.0);
    }

    #[test]
    fn config_fingerprint_tracks_hardware_changes() {
        let a = Sage::default();
        let mut b = Sage::default();
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        b.accel.num_pes = a.accel.num_pes / 2;
        assert_ne!(a.config_fingerprint(), b.config_fingerprint());
        b.accel.num_pes = a.accel.num_pes;
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
    }

    #[test]
    fn spgemm_pair_only_for_spgemm_kernel() {
        let sage = Sage::default();
        let spmm = SageWorkload::spmm(100, 100, 100, 1_000, DataType::Fp32);
        let spgemm = SageWorkload::spgemm(100, 100, 100, 1_000, 1_000, DataType::Fp32);
        assert!(!sage.acf_supported(&spmm, MatrixFormat::Csr, MatrixFormat::Csr));
        assert!(sage.acf_supported(&spgemm, MatrixFormat::Csr, MatrixFormat::Csr));
        assert!(sage.acf_supported(&spmm, MatrixFormat::Coo, MatrixFormat::Dense));
        assert!(!sage.acf_supported(&spmm, MatrixFormat::Zvc, MatrixFormat::Dense));
    }
}

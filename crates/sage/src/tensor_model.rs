//! Analytic model for the tensor kernels (SpTTM / MTTKRP rows of
//! Table III).
//!
//! The tensor streams over the bus in its ACF while the dense factor
//! matrix is stationary (the paper generalizes the factor to `K x M/2`).
//! Per tensor nonzero, SpTTM issues `rank` MACs and MTTKRP `2 x rank`
//! (one factor row combine each); CSF amortizes the fiber-level partial
//! sums, COO pays full coordinate traffic, Dense streams every zero.

use crate::eval::Sage;
use crate::workload::TensorWorkload;
use sparseflex_formats::size_model::tensor_storage_bits;
use sparseflex_formats::TensorFormat;
use sparseflex_mint::tensor_conversion_cost;

/// One point of the tensor search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorChoice {
    /// Memory format of the tensor.
    pub mcf_t: TensorFormat,
    /// Compute format of the tensor.
    pub acf_t: TensorFormat,
}

impl std::fmt::Display for TensorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MCFt {} ACFt {}", self.mcf_t, self.acf_t)
    }
}

/// Cost breakdown of one tensor-format choice.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEvaluation {
    /// The evaluated choice.
    pub choice: TensorChoice,
    /// DRAM cycles (tensor + factor(s) + output).
    pub dram_cycles: f64,
    /// DRAM energy.
    pub dram_energy: f64,
    /// Added conversion cycles.
    pub conv_cycles: f64,
    /// Conversion energy.
    pub conv_energy: f64,
    /// Accelerator compute cycles.
    pub compute_cycles: f64,
    /// On-chip energy.
    pub compute_energy: f64,
}

impl TensorEvaluation {
    /// Total cycles.
    pub fn total_cycles(&self) -> f64 {
        self.dram_cycles + self.conv_cycles + self.compute_cycles
    }
    /// Total energy.
    pub fn total_energy(&self) -> f64 {
        self.dram_energy + self.conv_energy + self.compute_energy
    }
    /// Energy-delay product in joule-seconds.
    pub fn edp(&self, clock_hz: f64) -> f64 {
        self.total_energy() * self.total_cycles() / clock_hz
    }
}

/// Bus slots per streamed tensor element for each ACF.
fn stream_slots_per_elem(acf: &TensorFormat) -> f64 {
    match acf {
        TensorFormat::Coo => 4.0,          // value + 3 coordinates
        TensorFormat::Csf => 2.5,          // value + z id + amortized fiber ids
        TensorFormat::HiCoo { .. } => 3.0, // value + 3 narrow offsets (amortized block ids)
        TensorFormat::Rlc { .. } => 2.0,   // value + run
        TensorFormat::Zvc => 1.2,          // value + amortized mask bits
        TensorFormat::Dense => 1.0,        // raw stream (zeros included!)
    }
}

/// Evaluate one tensor-format choice.
pub fn evaluate_tensor(sage: &Sage, w: &TensorWorkload, choice: &TensorChoice) -> TensorEvaluation {
    let dims = w.dims;
    let total = dims.0 as u64 * dims.1 as u64 * dims.2 as u64;
    let dtype = w.dtype;

    // ---- DRAM: tensor in its MCF + dense factor(s) + dense output.
    let bits_t = tensor_storage_bits(&choice.mcf_t, dims, w.nnz as usize, dtype);
    let factor_elems = (dims.2 * w.rank) as u64;
    let factors = if w.mttkrp { 2 } else { 1 };
    let bits_f = factors * factor_elems * dtype.bits();
    let out_elems = if w.mttkrp {
        (dims.0 * w.rank) as u64
    } else {
        (dims.0 * dims.1).min(w.nnz as usize * w.rank) as u64
    };
    let bits_o = out_elems * dtype.bits();
    let dram_cycles = sage.dram.transfer_cycles(bits_t + bits_f + bits_o) as f64;
    let dram_energy = sage.dram.transfer_energy(bits_t + bits_f + bits_o);

    // ---- Conversion cost (overlap applied after compute is known).
    let conv = tensor_conversion_cost(&choice.mcf_t, &choice.acf_t, dims, w.nnz, &sage.mint);
    let conv_energy = conv.energy;

    // ---- Compute: stream the tensor in its ACF; every nonzero issues
    // `rank` (SpTTM) or `2*rank` (MTTKRP) MACs spread over the array.
    let bus = sage.accel.bus_slots as f64;
    let streamed_elems = match choice.acf_t {
        TensorFormat::Dense => total as f64,
        _ => w.nnz as f64,
    };
    let beats = streamed_elems * stream_slots_per_elem(&choice.acf_t) / bus;
    let macs_per_elem = if w.mttkrp {
        2.0 * w.rank as f64
    } else {
        w.rank as f64
    };
    let flops = w.nnz as f64 * macs_per_elem;
    let lanes = sage.accel.total_macs() as f64;
    let compute_cycles = beats.max(flops / lanes);
    // Energy: MACs + stationary reads + streamed traffic.
    let e = &sage.energy;
    let compute_energy = flops * e.mac_fp32
        + flops * e.pe_buffer_access
        + streamed_elems * stream_slots_per_elem(&choice.acf_t) * e.noc_transfer;

    // MINT pipelines conversion against the fetch and the consuming
    // compute stream; only throughput excess adds latency.
    let conv_cycles = (conv.cycles as f64 - (dram_cycles + compute_cycles)).max(0.0);

    TensorEvaluation {
        choice: *choice,
        dram_cycles,
        dram_energy,
        conv_cycles,
        conv_energy,
        compute_cycles,
        compute_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::DataType;

    fn uber_like() -> TensorWorkload {
        // Uber: 4.4K x 1.1K x 1.7K, 3.3M nnz, 0.039% dense.
        TensorWorkload {
            mttkrp: false,
            dims: (4_400, 1_100, 1_700),
            nnz: 3_300_000,
            rank: 2_200,
            dtype: DataType::Fp32,
        }
    }

    fn brainq_like() -> TensorWorkload {
        // BrainQ: 60 x 70K x 9, 11M nnz, 29.1% dense.
        TensorWorkload {
            mttkrp: false,
            dims: (60, 70_000, 9),
            nnz: 11_000_000,
            rank: 30,
            dtype: DataType::Fp32,
        }
    }

    #[test]
    fn sparse_tensor_never_picks_dense_mcf() {
        let sage = Sage::default();
        let rec = sage.recommend_tensor(&uber_like());
        assert_ne!(rec.choice.mcf_t, TensorFormat::Dense, "{}", rec.choice);
        assert_ne!(rec.choice.acf_t, TensorFormat::Dense, "{}", rec.choice);
    }

    #[test]
    fn dense_region_tensor_prefers_cheap_metadata() {
        // BrainQ at 29% density: Table III picks ZVC MCF and Dense ACF.
        let sage = Sage::default();
        let rec = sage.recommend_tensor(&brainq_like());
        assert!(
            matches!(
                rec.choice.mcf_t,
                TensorFormat::Zvc | TensorFormat::Rlc { .. }
            ),
            "expected bitmap-style MCF for 29% density, got {}",
            rec.choice
        );
    }

    #[test]
    fn mttkrp_costs_more_compute_than_spttm() {
        let sage = Sage::default();
        let spttm = uber_like();
        let mttkrp = TensorWorkload {
            mttkrp: true,
            ..spttm
        };
        let c = TensorChoice {
            mcf_t: TensorFormat::Coo,
            acf_t: TensorFormat::Csf,
        };
        let a = evaluate_tensor(&sage, &spttm, &c);
        let b = evaluate_tensor(&sage, &mttkrp, &c);
        assert!(b.compute_energy > a.compute_energy);
    }

    #[test]
    fn identity_acf_has_no_conversion_cost() {
        let sage = Sage::default();
        let c = TensorChoice {
            mcf_t: TensorFormat::Csf,
            acf_t: TensorFormat::Csf,
        };
        let e = evaluate_tensor(&sage, &uber_like(), &c);
        assert_eq!(e.conv_cycles, 0.0);
        assert_eq!(e.conv_energy, 0.0);
    }

    #[test]
    fn csf_streams_fewer_slots_than_coo() {
        assert!(
            stream_slots_per_elem(&TensorFormat::Csf) < stream_slots_per_elem(&TensorFormat::Coo)
        );
    }
}

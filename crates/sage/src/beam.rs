//! Beam search over the **open** descriptor space.
//!
//! The exhaustive generation engine ([`Sage::recommend`]) scores every
//! MCF pair × ACF pair of a closed candidate list — fine for the paper's
//! six formats, quadratically painful for [`SearchSpace::Open`], whose
//! per-rank level compositions multiply into thousands of combinations.
//! This module replaces exhaustive enumeration *for the open space only*
//! with a staged beam search:
//!
//! 1. **Stage A** — stream candidates for the streaming operand A from
//!    the lazy registry iterator
//!    ([`enumerate_matrix_iter`]), each scored
//!    by an **admissible lower bound** from the descriptor size model:
//!    the DRAM floor of fetching A (plus the fixed output writeback).
//!    Total cycles ≥ DRAM cycles and total energy ≥ DRAM energy, and
//!    the DRAM model is monotone in bits, so no completion of a partial
//!    can ever score below its bound. Keep the best `width`.
//! 2. **Stage B** — extend each survivor with every stationary-operand
//!    candidate, re-bound with both operands' bits, keep the best
//!    `width` partials overall.
//! 3. **Stage C** — complete the survivors across the legal ACF pairs
//!    with the full evaluator, in ascending-bound order with
//!    branch-and-bound: once the incumbent best scores below the next
//!    partial's bound, every remaining partial is provably worse and is
//!    pruned unevaluated.
//!
//! The preset spaces keep the exhaustive engine byte-for-byte: this
//! entry point is additive, and [`OpenRecommendation`] reports how many
//! candidates the beam actually visited vs what exhaustion would have
//! scored, so callers (and the `BENCH_search` exhibit) can hold the
//! search to its < 25 %-visited contract.

use crate::eval::{ConversionMode, Evaluation, Sage};
use crate::search::DescriptorChoice;
use crate::workload::SageWorkload;
use sparseflex_accel::exec::SimError;
use sparseflex_accel::model::{spgemm_estimate, ws_estimate, WsWorkload};
use sparseflex_formats::descriptor::enumerate_matrix_iter;
use sparseflex_formats::size_model::{
    descriptor_matrix_bits, matrix_storage_bits, MatrixStructure,
};
use sparseflex_formats::{FormatDescriptor, MatrixFormat, SearchSpace};
use sparseflex_mint::{added_hardware_cycles, descriptor_conversion_cost};

/// What the beam search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchObjective {
    /// Energy-delay product (SAGE's native objective).
    #[default]
    Edp,
    /// End-to-end cycles (DRAM + conversion + compute) — the Table III
    /// "simulated cycles" comparison.
    Cycles,
}

/// Beam-search knobs. `Default` is the configuration the exhibits and
/// property suites run: width 8, the open space, EDP objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Partials kept per stage. Wider beams visit more candidates and
    /// can only improve the result; width 0 is clamped to 1.
    pub width: usize,
    /// Deterministic tie-break seed: equal-bound partials are ordered by
    /// a seed-keyed hash of their descriptor fingerprints, so reruns
    /// with one seed are identical and different seeds explore ties in a
    /// different (still deterministic) order.
    pub seed: u64,
    /// Candidate space both operands draw from.
    pub space: SearchSpace,
    /// Minimized quantity.
    pub objective: SearchObjective,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            width: 8,
            seed: 0x0BEA_4D5E_ED00_0001,
            space: SearchSpace::Open,
            objective: SearchObjective::Edp,
        }
    }
}

/// Full cost breakdown of one open-descriptor choice — the descriptor
/// spelling of [`Evaluation`], with the same cycle/energy lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenEvaluation {
    /// The evaluated choice (MCFs may be non-preset compositions; ACFs
    /// are always executable presets).
    pub choice: DescriptorChoice,
    /// DRAM cycles (fetch A + fetch B + write O).
    pub dram_cycles: f64,
    /// DRAM energy (J).
    pub dram_energy: f64,
    /// Added conversion cycles (after overlap).
    pub conv_cycles: f64,
    /// Conversion energy (J).
    pub conv_energy: f64,
    /// Accelerator compute cycles.
    pub compute_cycles: f64,
    /// On-chip compute energy (J).
    pub compute_energy: f64,
    /// Predicted PE utilization.
    pub utilization: f64,
}

impl OpenEvaluation {
    /// Total cycles (memory + conversion + compute).
    pub fn total_cycles(&self) -> f64 {
        self.dram_cycles + self.conv_cycles + self.compute_cycles
    }

    /// Total energy in joules.
    pub fn total_energy(&self) -> f64 {
        self.dram_energy + self.conv_energy + self.compute_energy
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self, clock_hz: f64) -> f64 {
        self.total_energy() * self.total_cycles() / clock_hz
    }

    /// The minimized scalar under `objective`.
    pub fn score(&self, objective: SearchObjective, clock_hz: f64) -> f64 {
        match objective {
            SearchObjective::Edp => self.edp(clock_hz),
            SearchObjective::Cycles => self.total_cycles(),
        }
    }

    /// Translate to the legacy-enum [`Evaluation`] when every member of
    /// the choice is a preset (`None` for genuinely open choices).
    pub fn to_evaluation(&self) -> Option<Evaluation> {
        Some(Evaluation {
            choice: self.choice.to_format_choice()?,
            dram_cycles: self.dram_cycles,
            dram_energy: self.dram_energy,
            conv_cycles: self.conv_cycles,
            conv_energy: self.conv_energy,
            compute_cycles: self.compute_cycles,
            compute_energy: self.compute_energy,
            utilization: self.utilization,
        })
    }
}

/// The result of an open-space beam search, with the bookkeeping that
/// lets callers audit how much of the space was actually scored.
#[derive(Debug, Clone)]
pub struct OpenRecommendation {
    /// The winning evaluation under the configured objective.
    pub best: OpenEvaluation,
    /// Candidates scored with the **full** evaluator (the expensive
    /// operation exhaustion would perform `exhaustive` times).
    pub visited: usize,
    /// Candidates an exhaustive sweep of the same space would score
    /// (MCF pairs × legal ACF pairs).
    pub exhaustive: usize,
    /// Beam partials cut by branch-and-bound (their admissible bound
    /// already exceeded the incumbent, so their completions were never
    /// evaluated).
    pub pruned: usize,
    /// The width the search ran with.
    pub width: usize,
}

impl OpenRecommendation {
    /// Fraction of the exhaustive candidate count the beam visited.
    pub fn visited_fraction(&self) -> f64 {
        self.visited as f64 / (self.exhaustive as f64).max(1.0)
    }
}

/// A stage-A/B partial: the admissible bound, the deterministic
/// tie-break key, and the chosen descriptors so far.
struct Partial {
    bound: f64,
    tiebreak: u64,
    mcf_a: FormatDescriptor,
    bits_a: u64,
    mcf_b: Option<(FormatDescriptor, u64)>,
}

/// Seed-keyed deterministic tie-break hash (splitmix-style finalizer).
fn tiebreak(seed: u64, fingerprint: u64) -> u64 {
    let mut x = seed ^ fingerprint;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sort partials by (bound, tie-break) ascending and truncate to the
/// beam width.
fn keep_beam(mut partials: Vec<Partial>, width: usize) -> Vec<Partial> {
    partials.sort_by(|p, q| {
        p.bound
            .partial_cmp(&q.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.tiebreak.cmp(&q.tiebreak))
    });
    partials.truncate(width.max(1));
    partials
}

impl Sage {
    /// Analytic storage bits of an operand under any descriptor the
    /// generic level model can size (`None` when it cannot).
    fn descriptor_bits(
        &self,
        d: &FormatDescriptor,
        rows: usize,
        cols: usize,
        nnz: u64,
    ) -> Option<u64> {
        descriptor_matrix_bits(
            d,
            &MatrixStructure::analytic(rows, cols, nnz as usize),
            self.accel.dtype,
        )
        .ok()
        .map(|b| b.total())
    }

    /// Output writeback bits — identical across choices (same rule as
    /// the closed-enum evaluator, so open and preset evaluations share
    /// one DRAM baseline).
    fn output_bits(&self, w: &SageWorkload) -> u64 {
        let nnz_o = w.expected_nnz_out() as usize;
        matrix_storage_bits(&MatrixFormat::Dense, w.m, w.n, nnz_o, w.dtype).min(
            matrix_storage_bits(&MatrixFormat::Csr, w.m, w.n, nnz_o, w.dtype),
        )
    }

    /// The admissible lower bound on a (partial) candidate's score: the
    /// DRAM floor of moving `bits` (operands chosen so far + output).
    /// Conversion and compute add nonnegative cycles and energy on top,
    /// and the DRAM model is monotone in bits, so no completion can
    /// score below this.
    fn dram_floor(&self, bits: u64, objective: SearchObjective) -> f64 {
        let cycles = self.dram.transfer_cycles(bits) as f64;
        match objective {
            SearchObjective::Cycles => cycles,
            SearchObjective::Edp => self.dram.transfer_energy(bits) * cycles / self.accel.clock_hz,
        }
    }

    /// Evaluate one open-descriptor choice: memory formats are arbitrary
    /// sizable descriptors, compute formats are the executable presets.
    /// Mirrors [`Sage::evaluate`]'s model composition exactly — operand
    /// bits from the (shared) generic level size model, MINT conversion
    /// from the descriptor cost model, the same WS/Gustavson performance
    /// estimate and hardware-conversion overlap — so an all-preset
    /// choice scores the same here as through the enum path.
    pub fn evaluate_open(
        &self,
        w: &SageWorkload,
        mcf_a: &FormatDescriptor,
        mcf_b: &FormatDescriptor,
        acf_a: MatrixFormat,
        acf_b: MatrixFormat,
        mode: ConversionMode,
    ) -> Result<OpenEvaluation, SimError> {
        let acf_a_desc = acf_a.descriptor();
        let acf_b_desc = acf_b.descriptor();
        if matches!(mode, ConversionMode::RequireIdentity)
            && (*mcf_a != acf_a_desc || *mcf_b != acf_b_desc)
        {
            return Err(SimError::UnsupportedAcf { a: acf_a, b: acf_b });
        }

        // ---- Cost model: DRAM traffic in the chosen MCF descriptors.
        let (bits_a, bits_b) = (
            self.descriptor_bits(mcf_a, w.m, w.k, w.nnz_a)
                .ok_or(SimError::UnsupportedAcf { a: acf_a, b: acf_b })?,
            self.descriptor_bits(mcf_b, w.k, w.n, w.nnz_b)
                .ok_or(SimError::UnsupportedAcf { a: acf_a, b: acf_b })?,
        );
        let bits_o = self.output_bits(w);
        let dram_a_cycles = self.dram.transfer_cycles(bits_a) as f64;
        let dram_b_cycles = self.dram.transfer_cycles(bits_b) as f64;
        let dram_cycles = self.dram.transfer_cycles(bits_a + bits_b + bits_o) as f64;
        let dram_energy = self.dram.transfer_energy(bits_a + bits_b + bits_o);

        // ---- Performance model.
        let ws = WsWorkload {
            m: w.m,
            k: w.k,
            n: w.n,
            nnz_a: w.nnz_a,
            nnz_b: w.nnz_b,
            acf_a,
            acf_b,
        };
        let est = if acf_a == MatrixFormat::Csr && acf_b == MatrixFormat::Csr {
            spgemm_estimate(&ws, &self.accel)?
        } else {
            ws_estimate(&ws, &self.accel)?
        };

        // ---- Conversion model (descriptor-general MINT costs).
        let conv_a = descriptor_conversion_cost(mcf_a, &acf_a_desc, w.m, w.k, w.nnz_a, &self.mint);
        let conv_b = descriptor_conversion_cost(mcf_b, &acf_b_desc, w.k, w.n, w.nnz_b, &self.mint);
        let (conv_cycles, conv_energy) = match mode {
            ConversionMode::RequireIdentity => (0.0, 0.0),
            ConversionMode::Hardware => {
                let tiles = self.stationary_tiles(w);
                let added = added_hardware_cycles(
                    conv_a.cycles as f64,
                    dram_a_cycles,
                    conv_b.cycles as f64,
                    dram_b_cycles,
                    est.cycles.total(),
                    tiles,
                );
                (added, conv_a.energy + conv_b.energy)
            }
            ConversionMode::Software {
                slowdown,
                pcie_bits_per_cycle,
            } => {
                let mut cycles = 0.0;
                let mut energy = 0.0;
                for (conv, bits) in [(conv_a, bits_a), (conv_b, bits_b)] {
                    if conv.cycles > 0 {
                        cycles +=
                            conv.cycles as f64 * slowdown + 2.0 * bits as f64 / pcie_bits_per_cycle;
                        energy +=
                            conv.energy * slowdown + 2.0 * bits as f64 * self.energy.dram_per_bit();
                    }
                }
                (cycles, energy)
            }
        };

        Ok(OpenEvaluation {
            choice: DescriptorChoice {
                mcf_a: mcf_a.clone(),
                mcf_b: mcf_b.clone(),
                acf_a: acf_a_desc,
                acf_b: acf_b_desc,
            },
            dram_cycles,
            dram_energy,
            conv_cycles,
            conv_energy,
            compute_cycles: est.cycles.total(),
            compute_energy: est.energy(&self.energy).total(),
            utilization: est.utilization(),
        })
    }

    /// Beam search over the open descriptor space with the default
    /// configuration (width 8, EDP objective).
    pub fn recommend_open(&self, w: &SageWorkload) -> OpenRecommendation {
        self.recommend_open_with(w, &BeamConfig::default())
    }

    /// Beam search over `cfg.space` for the choice minimizing
    /// `cfg.objective` (see the module docs for the three stages and the
    /// admissibility argument). Deterministic for a fixed config: the
    /// candidate stream, the bounds and the tie-break hash are all pure
    /// functions of the inputs.
    pub fn recommend_open_with(&self, w: &SageWorkload, cfg: &BeamConfig) -> OpenRecommendation {
        let width = cfg.width.max(1);
        let bits_o = self.output_bits(w);
        let clock = self.accel.clock_hz;

        // The legal ACF pairs for this kernel (the same streaming ×
        // stationary sets the exhaustive engine iterates).
        let acf_pairs: Vec<(MatrixFormat, MatrixFormat)> = {
            let mut v = Vec::new();
            for a in crate::search::acf_streaming_candidates() {
                for b in crate::search::acf_stationary_candidates() {
                    if self.acf_supported(w, a, b) {
                        v.push((a, b));
                    }
                }
            }
            v
        };

        // ---- Stage A: rank streaming-operand candidates by their
        // admissible DRAM floor, pulled lazily from the registry.
        let mut mcf_count = 0usize;
        let mut stage_a: Vec<Partial> = Vec::new();
        for d in enumerate_matrix_iter(cfg.space) {
            let Some(bits_a) = self.descriptor_bits(&d, w.m, w.k, w.nnz_a) else {
                continue;
            };
            mcf_count += 1;
            stage_a.push(Partial {
                bound: self.dram_floor(bits_a + bits_o, cfg.objective),
                tiebreak: tiebreak(cfg.seed, d.fingerprint()),
                mcf_a: d,
                bits_a,
                mcf_b: None,
            });
        }
        let stage_a = keep_beam(stage_a, width);

        // ---- Stage B: extend with the stationary operand.
        let mut stage_b: Vec<Partial> = Vec::new();
        for p in &stage_a {
            for d in enumerate_matrix_iter(cfg.space) {
                let Some(bits_b) = self.descriptor_bits(&d, w.k, w.n, w.nnz_b) else {
                    continue;
                };
                stage_b.push(Partial {
                    bound: self.dram_floor(p.bits_a + bits_b + bits_o, cfg.objective),
                    tiebreak: tiebreak(cfg.seed, p.mcf_a.fingerprint() ^ d.fingerprint()),
                    mcf_a: p.mcf_a.clone(),
                    bits_a: p.bits_a,
                    mcf_b: Some((d, bits_b)),
                });
            }
        }
        let stage_b = keep_beam(stage_b, width);

        // ---- Stage C: complete survivors across the ACF pairs, in
        // ascending-bound order with branch-and-bound against the
        // incumbent.
        let mut best: Option<OpenEvaluation> = None;
        let mut visited = 0usize;
        let mut pruned = 0usize;
        for (i, p) in stage_b.iter().enumerate() {
            if let Some(b) = &best {
                if p.bound >= b.score(cfg.objective, clock) {
                    // Bounds are sorted ascending: every remaining
                    // partial is provably no better than the incumbent.
                    pruned += stage_b.len() - i;
                    break;
                }
            }
            let (mcf_b, _) = p.mcf_b.as_ref().expect("stage-B partials are complete");
            for &(acf_a, acf_b) in &acf_pairs {
                if let Ok(eval) =
                    self.evaluate_open(w, &p.mcf_a, mcf_b, acf_a, acf_b, ConversionMode::Hardware)
                {
                    visited += 1;
                    let better = match &best {
                        None => true,
                        Some(b) => eval.score(cfg.objective, clock) < b.score(cfg.objective, clock),
                    };
                    if better {
                        best = Some(eval);
                    }
                }
            }
        }

        // Dense × Dense always evaluates; fall back to it should every
        // beam survivor have failed (cannot happen for the shipped
        // spaces, but the search must stay total).
        let best = best.unwrap_or_else(|| {
            self.evaluate_open(
                w,
                &FormatDescriptor::dense(),
                &FormatDescriptor::dense(),
                MatrixFormat::Dense,
                MatrixFormat::Dense,
                ConversionMode::Hardware,
            )
            .expect("Dense-Dense always evaluates")
        });

        OpenRecommendation {
            best,
            visited,
            exhaustive: mcf_count * mcf_count * acf_pairs.len(),
            pruned,
            width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SageKernel;
    use sparseflex_formats::DataType;

    fn sage() -> Sage {
        Sage::default()
    }

    /// m3plates-class hyper-sparse SpGEMM (Table III): the regime where
    /// non-preset compositions out-compress every preset MCF.
    fn hyper_sparse() -> SageWorkload {
        SageWorkload::spgemm(11_000, 11_000, 5_500, 6_600, 3_300, DataType::Fp32)
    }

    #[test]
    fn open_evaluator_matches_enum_evaluator_on_presets() {
        let s = sage();
        let w = SageWorkload::spmm(2_000, 2_000, 1_000, 40_000, DataType::Fp32);
        for (mcf_a, mcf_b) in [
            (MatrixFormat::Csr, MatrixFormat::Dense),
            (MatrixFormat::Coo, MatrixFormat::Csc),
            (MatrixFormat::Zvc, MatrixFormat::Dense),
        ] {
            let choice = crate::search::FormatChoice {
                mcf_a,
                mcf_b,
                acf_a: MatrixFormat::Csr,
                acf_b: MatrixFormat::Dense,
            };
            let legacy = s.evaluate(&w, &choice, ConversionMode::Hardware).unwrap();
            let open = s
                .evaluate_open(
                    &w,
                    &mcf_a.descriptor(),
                    &mcf_b.descriptor(),
                    MatrixFormat::Csr,
                    MatrixFormat::Dense,
                    ConversionMode::Hardware,
                )
                .unwrap();
            assert_eq!(open.dram_cycles, legacy.dram_cycles, "{mcf_a}/{mcf_b}");
            assert_eq!(open.compute_cycles, legacy.compute_cycles);
            assert_eq!(open.conv_cycles, legacy.conv_cycles);
            assert_eq!(open.to_evaluation().unwrap().choice, choice);
        }
    }

    #[test]
    fn beam_is_deterministic_for_a_fixed_seed() {
        let s = sage();
        let w = hyper_sparse();
        let cfg = BeamConfig::default();
        let r1 = s.recommend_open_with(&w, &cfg);
        let r2 = s.recommend_open_with(&w, &cfg);
        assert_eq!(r1.best.choice, r2.best.choice);
        assert_eq!(r1.visited, r2.visited);
        assert_eq!(r1.pruned, r2.pruned);
    }

    #[test]
    fn beam_visits_a_small_fraction_of_the_exhaustive_space() {
        let s = sage();
        let w = hyper_sparse();
        let rec = s.recommend_open(&w);
        assert_eq!(w.kernel, SageKernel::SpGemm);
        // 18 open MCFs squared × 9 ACF pairs.
        assert_eq!(rec.exhaustive, 18 * 18 * 9);
        assert!(
            rec.visited_fraction() < 0.25,
            "beam visited {}/{} candidates",
            rec.visited,
            rec.exhaustive
        );
        assert!(rec.visited > 0);
    }

    #[test]
    fn wider_beams_never_lose() {
        let s = sage();
        let w = hyper_sparse();
        let clock = s.accel.clock_hz;
        let narrow = s.recommend_open_with(
            &w,
            &BeamConfig {
                width: 1,
                ..BeamConfig::default()
            },
        );
        let wide = s.recommend_open_with(
            &w,
            &BeamConfig {
                width: 8,
                ..BeamConfig::default()
            },
        );
        assert!(wide.best.edp(clock) <= narrow.best.edp(clock) * 1.0001);
        assert!(wide.visited >= narrow.visited);
    }

    #[test]
    fn open_search_beats_the_preset_space_when_compositions_out_compress() {
        // The point of opening the space: on the hyper-sparse regime a
        // bitmask-outer composition out-compresses every preset, so the
        // beam's best strictly beats the exhaustive preset search under
        // the same objective.
        let s = sage();
        let w = hyper_sparse();
        let clock = s.accel.clock_hz;
        let preset = s.recommend_with_space(&w, SearchSpace::Extended);
        let open = s.recommend_open_with(
            &w,
            &BeamConfig {
                objective: SearchObjective::Edp,
                ..BeamConfig::default()
            },
        );
        assert!(
            open.best.edp(clock) < preset.best.edp(clock),
            "open {} vs preset {}",
            open.best.edp(clock),
            preset.best.edp(clock)
        );
        // And the winner is genuinely non-preset.
        assert!(
            open.best.choice.to_format_choice().is_none(),
            "winner {} is a preset",
            open.best.choice.mcf_a
        );
    }
}

//! SpGEMM dataflow pricing: Gustavson vs row-wise product.
//!
//! The kernels crate exposes two bit-for-bit identical SpGEMM dataflows
//! ([`SpgemmAlgo`]): Gustavson's row algorithm (dense sparse-accumulator
//! the width of `B`, O(1) scatter per partial product) and the row-wise
//! k-way merge product (scratch proportional to the row fan-out,
//! O(log fan-out) per partial product). Which one is cheaper is a
//! workload property, so SAGE prices both from the same statistics it
//! already holds ([`SageWorkload`]) and tells the runtime which to run —
//! the software analogue of the paper's per-workload ACF selection.
//!
//! The model counts *scratch-touch work* per output row:
//!
//! - **Gustavson** pays the partial products `F = nnz_a · c_B` (each an
//!   O(1) accumulator scatter, `c_B = nnz_b / k` average B-row fill),
//!   plus an `T · log2(T + 2)` sort of the `T` surviving outputs per row,
//!   plus an amortized share of zeroing/holding the `n`-wide dense
//!   accumulator across the `m` rows.
//! - **Row-wise** pays the same `F` partial products but each through an
//!   `O(log2(fanout + 2))` heap step, and nothing proportional to `n`.
//!
//! At moderate density Gustavson's O(1) inner step wins; in the
//! hyper-sparse wide-`B` corner (fan-out of a handful, `n` in the
//! millions) the dense accumulator dominates everything and row-wise
//! wins. The crossover this model picks matches the regimes reported for
//! merge-based SpGEMM in the literature the paper builds on.

use crate::workload::SageWorkload;
use sparseflex_kernels::SpgemmAlgo;

/// Cost breakdown for one SpGEMM dataflow, in abstract scratch-touch
/// operations (comparable between the two variants only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowCost {
    /// Which dataflow this prices.
    pub algo: SpgemmAlgo,
    /// Modeled scratch-touch operations.
    pub ops: f64,
}

/// Average nonzeros per *occupied* row of A (the rows that stream).
fn avg_row_fanout(w: &SageWorkload) -> f64 {
    w.nnz_a as f64 / (w.m as f64).max(1.0)
}

/// Average fill of a B row.
fn avg_b_row_fill(w: &SageWorkload) -> f64 {
    w.nnz_b as f64 / (w.k as f64).max(1.0)
}

/// Price Gustavson's row algorithm for `w`.
pub fn gustavson_cost(w: &SageWorkload) -> DataflowCost {
    let flops = w.nnz_a as f64 * avg_b_row_fill(w);
    // Surviving outputs per row, then the per-row sort of that many ids.
    let t_per_row = w.expected_nnz_out() as f64 / (w.m as f64).max(1.0);
    let sort = w.m as f64 * t_per_row * (t_per_row + 2.0).log2();
    // The n-wide dense accumulator: allocated once, but its cache/zeroing
    // footprint is touched per occupied row. One touch per 64 slots
    // approximates line-granular occupancy cost.
    let accumulator = w.m as f64 * (w.n as f64 / 64.0);
    DataflowCost {
        algo: SpgemmAlgo::Gustavson,
        ops: flops + sort + accumulator,
    }
}

/// Price the row-wise merge product for `w`.
pub fn rowwise_cost(w: &SageWorkload) -> DataflowCost {
    let flops = w.nnz_a as f64 * avg_b_row_fill(w);
    let heap_depth = (avg_row_fanout(w) + 2.0).log2();
    DataflowCost {
        algo: SpgemmAlgo::RowWise,
        ops: flops * heap_depth,
    }
}

/// Pick the cheaper SpGEMM dataflow for `w`.
///
/// Deterministic: ties break toward Gustavson (the default dataflow).
pub fn choose_spgemm_algo(w: &SageWorkload) -> SpgemmAlgo {
    let g = gustavson_cost(w);
    let r = rowwise_cost(w);
    if r.ops < g.ops {
        SpgemmAlgo::RowWise
    } else {
        SpgemmAlgo::Gustavson
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::DataType;

    #[test]
    fn moderate_density_prefers_gustavson() {
        // 10% dense 1k x 1k squares: heavy per-row collisions, so the
        // O(1) accumulator scatter beats the log-depth heap.
        let w = SageWorkload::spgemm(1_000, 1_000, 1_000, 100_000, 100_000, DataType::Fp32);
        assert_eq!(choose_spgemm_algo(&w), SpgemmAlgo::Gustavson);
    }

    #[test]
    fn hyper_sparse_wide_b_prefers_rowwise() {
        // A few nnz per row against a B a million columns wide: the
        // n-wide dense accumulator is the whole cost.
        let w = SageWorkload::spgemm(10_000, 10_000, 1_000_000, 30_000, 2_000_000, DataType::Fp32);
        assert_eq!(choose_spgemm_algo(&w), SpgemmAlgo::RowWise);
    }

    #[test]
    fn pricing_is_deterministic() {
        let w = SageWorkload::spgemm(500, 400, 300, 2_000, 1_500, DataType::Fp32);
        let first = (gustavson_cost(&w), rowwise_cost(&w), choose_spgemm_algo(&w));
        for _ in 0..3 {
            assert_eq!(
                (gustavson_cost(&w), rowwise_cost(&w), choose_spgemm_algo(&w)),
                first
            );
        }
    }

    #[test]
    fn empty_workload_defaults_to_gustavson() {
        let w = SageWorkload::spgemm(0, 0, 0, 0, 0, DataType::Fp32);
        assert_eq!(choose_spgemm_algo(&w), SpgemmAlgo::Gustavson);
    }
}

//! Zero-Value Compression (ZVC) format for matrices and 3-D tensors.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::tensor::CooTensor3;
use crate::traits::{SparseMatrix, SparseTensor3};
use crate::Value;

/// Zero-value compressed matrix (Fig. 3a, "Zero-value Compression (ZVC)").
///
/// "ZVC stores nonzero elements along with a string of bits to represent
/// each element (a bit value of 1 for a nonzero element and a bit value of
/// 0 for a zero valued element)" (§II). The mask covers the row-major
/// flattened matrix, one bit per logical element, packed into `u64` words.
/// Metadata cost is exactly `rows * cols` bits regardless of sparsity,
/// which is why ZVC wins the mid-density band of Fig. 4a.
#[derive(Debug, Clone, PartialEq)]
pub struct ZvcMatrix {
    rows: usize,
    cols: usize,
    mask: Vec<u64>,
    values: Vec<Value>,
}

#[inline]
fn mask_words(len: usize) -> usize {
    len.div_ceil(64)
}

impl ZvcMatrix {
    /// Encode from the COO hub.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let mut mask = vec![0u64; mask_words(rows * cols)];
        let mut values = Vec::with_capacity(coo.nnz());
        for (r, c, v) in coo.iter() {
            let flat = r * cols + c;
            mask[flat / 64] |= 1u64 << (flat % 64);
            values.push(v);
        }
        ZvcMatrix {
            rows,
            cols,
            mask,
            values,
        }
    }

    /// Build from a raw mask and packed values (tests / MINT output).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        mask: Vec<u64>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if mask.len() != mask_words(rows * cols) {
            return Err(FormatError::LengthMismatch {
                what: "zvc mask words",
                expected: mask_words(rows * cols),
                actual: mask.len(),
            });
        }
        // Bits beyond rows*cols must be clear.
        let tail_bits = rows * cols;
        if !tail_bits.is_multiple_of(64) {
            if let Some(&last) = mask.last() {
                if last >> (tail_bits % 64) != 0 {
                    return Err(FormatError::MalformedPointer {
                        what: "zvc mask tail bits set",
                    });
                }
            }
        }
        let popcount: u32 = mask.iter().map(|w| w.count_ones()).sum();
        if popcount as usize != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "zvc mask popcount vs values",
                expected: popcount as usize,
                actual: values.len(),
            });
        }
        Ok(ZvcMatrix {
            rows,
            cols,
            mask,
            values,
        })
    }

    /// Packed mask words (row-major flat order, LSB first).
    #[inline]
    pub fn mask(&self) -> &[u64] {
        &self.mask
    }

    /// Packed nonzero values in row-major order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Is the bit for flat position `i` set?
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        (self.mask[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits strictly before flat position `i` (rank query;
    /// gives the `values` index of a set position).
    pub fn rank(&self, i: usize) -> usize {
        let word = i / 64;
        let mut count: usize = self.mask[..word]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if !i.is_multiple_of(64) {
            count += (self.mask[word] & ((1u64 << (i % 64)) - 1)).count_ones() as usize;
        }
        count
    }
}

impl SparseMatrix for ZvcMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let flat = row * self.cols + col;
        if self.bit(flat) {
            self.values[self.rank(flat)]
        } else {
            0.0
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.values.len());
        let mut vi = 0;
        for flat in 0..self.rows * self.cols {
            if self.bit(flat) {
                triplets.push((flat / self.cols, flat % self.cols, self.values[vi]));
                vi += 1;
            }
        }
        CooMatrix::from_sorted_triplets(self.rows, self.cols, triplets)
            .expect("mask scan is row-major ordered")
    }
}

/// Zero-value compressed 3-D tensor over the `x -> y -> z` (z fastest)
/// flattened stream (Fig. 3b's ZVC example).
#[derive(Debug, Clone, PartialEq)]
pub struct ZvcTensor3 {
    dims: (usize, usize, usize),
    mask: Vec<u64>,
    values: Vec<Value>,
}

impl ZvcTensor3 {
    /// Encode from the COO tensor hub.
    pub fn from_coo(coo: &CooTensor3) -> Self {
        let (dx, dy, dz) = coo.shape();
        let mut mask = vec![0u64; mask_words(dx * dy * dz)];
        let mut values = Vec::with_capacity(coo.nnz());
        for (x, y, z, v) in coo.iter() {
            let flat = (x * dy + y) * dz + z;
            mask[flat / 64] |= 1u64 << (flat % 64);
            values.push(v);
        }
        ZvcTensor3 {
            dims: (dx, dy, dz),
            mask,
            values,
        }
    }

    /// Packed mask words.
    #[inline]
    pub fn mask(&self) -> &[u64] {
        &self.mask
    }

    /// Packed nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Is the bit for flat position `i` set? (Shared with the fiber-stream
    /// traversal in `traverse`.)
    #[inline]
    pub(crate) fn bit(&self, i: usize) -> bool {
        (self.mask[i / 64] >> (i % 64)) & 1 == 1
    }

    pub(crate) fn rank(&self, i: usize) -> usize {
        let word = i / 64;
        let mut count: usize = self.mask[..word]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if !i.is_multiple_of(64) {
            count += (self.mask[word] & ((1u64 << (i % 64)) - 1)).count_ones() as usize;
        }
        count
    }
}

impl SparseTensor3 for ZvcTensor3 {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        let flat = (x * self.dims.1 + y) * self.dims.2 + z;
        if self.bit(flat) {
            self.values[self.rank(flat)]
        } else {
            0.0
        }
    }
    fn to_coo(&self) -> CooTensor3 {
        let (dy, dz) = (self.dims.1, self.dims.2);
        let mut quads = Vec::with_capacity(self.values.len());
        let mut vi = 0;
        for flat in 0..self.dims.0 * dy * dz {
            if self.bit(flat) {
                let x = flat / (dy * dz);
                let y = (flat / dz) % dy;
                let z = flat % dz;
                quads.push((x, y, z, self.values[vi]));
                vi += 1;
            }
        }
        CooTensor3::from_quads(self.dims.0, dy, dz, quads)
            .expect("mask scan coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mask_bits_match_fig3a() {
        // Fig. 3a ZVC mask: 1100 1100 0010 0001 over the flat stream.
        let zvc = ZvcMatrix::from_coo(&sample());
        let expected_bits = [
            true, true, false, false, true, true, false, false, false, false, true, false, false,
            false, false, true,
        ];
        for (i, &b) in expected_bits.iter().enumerate() {
            assert_eq!(zvc.bit(i), b, "bit {i}");
        }
        assert_eq!(zvc.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn roundtrip() {
        let coo = sample();
        let zvc = ZvcMatrix::from_coo(&coo);
        assert_eq!(zvc.to_coo(), coo);
        assert_eq!(zvc.nnz(), 6);
    }

    #[test]
    fn rank_and_get() {
        let zvc = ZvcMatrix::from_coo(&sample());
        assert_eq!(zvc.rank(0), 0);
        assert_eq!(zvc.rank(5), 3);
        assert_eq!(zvc.get(1, 1), 4.0);
        assert_eq!(zvc.get(3, 0), 0.0);
        assert_eq!(zvc.get(3, 3), 6.0);
    }

    #[test]
    fn large_matrix_crosses_word_boundaries() {
        let triplets: Vec<_> = (0..100)
            .map(|i| (i, (i * 7) % 100, (i + 1) as f64))
            .collect();
        let coo = CooMatrix::from_triplets(100, 100, triplets).unwrap();
        let zvc = ZvcMatrix::from_coo(&coo);
        assert_eq!(zvc.to_coo(), coo);
        assert_eq!(zvc.mask().len(), (100 * 100usize).div_ceil(64));
    }

    #[test]
    fn from_parts_validates() {
        // Wrong number of mask words.
        assert!(ZvcMatrix::from_parts(4, 4, vec![0, 0], vec![]).is_err());
        // Popcount mismatch.
        assert!(ZvcMatrix::from_parts(4, 4, vec![0b11], vec![1.0]).is_err());
        // Tail bits set beyond rows*cols.
        assert!(ZvcMatrix::from_parts(2, 2, vec![1 << 10], vec![1.0]).is_err());
        assert!(ZvcMatrix::from_parts(4, 4, vec![0b11], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn tensor_roundtrip() {
        let coo = CooTensor3::from_quads(
            2,
            3,
            4,
            vec![(0, 0, 3, 1.0), (1, 1, 0, 2.0), (1, 2, 3, 3.0)],
        )
        .unwrap();
        let zvc = ZvcTensor3::from_coo(&coo);
        assert_eq!(zvc.to_coo(), coo);
        assert_eq!(zvc.get(1, 1, 0), 2.0);
        assert_eq!(zvc.get(0, 0, 0), 0.0);
        assert_eq!(zvc.nnz(), 3);
    }
}

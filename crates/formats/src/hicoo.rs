//! Hierarchical Coordinate (HiCOO) format for 3-D tensors.

use crate::error::FormatError;
use crate::tensor::CooTensor3;
use crate::traits::SparseTensor3;
use crate::Value;

/// Hierarchical COO tensor (Fig. 3b, "Hierarchical Coordinate (HiCOO)
/// 2x2x2 blocks"; Li et al. SC'18).
///
/// Nonzeros are grouped into cubic blocks of edge `block`: per block the
/// format stores one set of (wide) block coordinates `bx, by, bz` plus a
/// pointer `bptr` into the element arrays, and per nonzero only (narrow,
/// `log2(block)`-bit) element offsets `ex, ey, ez`. Clustering makes the
/// per-nonzero metadata cheap when nonzeros are spatially correlated.
#[derive(Debug, Clone, PartialEq)]
pub struct HiCooTensor {
    dims: (usize, usize, usize),
    block: usize,
    /// `num_blocks + 1` pointers into the element arrays.
    bptr: Vec<usize>,
    /// Block coordinates (units of `block`).
    bx: Vec<usize>,
    /// Block coordinates (units of `block`).
    by: Vec<usize>,
    /// Block coordinates (units of `block`).
    bz: Vec<usize>,
    /// Element offsets within the block (`< block`).
    ex: Vec<u8>,
    /// Element offsets within the block (`< block`).
    ey: Vec<u8>,
    /// Element offsets within the block (`< block`).
    ez: Vec<u8>,
    /// Nonzero values.
    values: Vec<Value>,
}

impl HiCooTensor {
    /// Encode from the COO hub with cubic blocks of edge `block`
    /// (must be a power of two no larger than 256, so offsets fit in `u8`
    /// and hardware divides reduce to shifts).
    pub fn from_coo(coo: &CooTensor3, block: usize) -> Result<Self, FormatError> {
        if block == 0 || !block.is_power_of_two() || block > 256 {
            return Err(FormatError::InvalidBlockSize { block });
        }
        // Sort nonzeros by (block key, element key).
        let mut order: Vec<usize> = (0..coo.nnz()).collect();
        let key = |i: usize| {
            let (x, y, z) = (coo.x_ids()[i], coo.y_ids()[i], coo.z_ids()[i]);
            (
                (x / block, y / block, z / block),
                (x % block, y % block, z % block),
            )
        };
        order.sort_unstable_by_key(|&i| key(i));

        let mut t = HiCooTensor {
            dims: coo.shape(),
            block,
            bptr: vec![0],
            bx: Vec::new(),
            by: Vec::new(),
            bz: Vec::new(),
            ex: Vec::with_capacity(coo.nnz()),
            ey: Vec::with_capacity(coo.nnz()),
            ez: Vec::with_capacity(coo.nnz()),
            values: Vec::with_capacity(coo.nnz()),
        };
        let mut last_block: Option<(usize, usize, usize)> = None;
        for &i in &order {
            let (x, y, z) = (coo.x_ids()[i], coo.y_ids()[i], coo.z_ids()[i]);
            let b = (x / block, y / block, z / block);
            if last_block != Some(b) {
                if last_block.is_some() {
                    t.bptr.push(t.values.len());
                }
                t.bx.push(b.0);
                t.by.push(b.1);
                t.bz.push(b.2);
                last_block = Some(b);
            }
            t.ex.push((x % block) as u8);
            t.ey.push((y % block) as u8);
            t.ez.push((z % block) as u8);
            t.values.push(coo.values()[i]);
        }
        t.bptr.push(t.values.len());
        // Empty tensor: bptr should be just [0].
        if t.values.is_empty() {
            t.bptr = vec![0];
        }
        Ok(t)
    }

    /// Cubic block edge length.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of occupied blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bx.len()
    }

    /// Block pointer array (`num_blocks + 1` entries, or `[0]` when empty).
    #[inline]
    pub fn bptr(&self) -> &[usize] {
        &self.bptr
    }

    /// Block x coordinates.
    #[inline]
    pub fn bx(&self) -> &[usize] {
        &self.bx
    }
    /// Block y coordinates.
    #[inline]
    pub fn by(&self) -> &[usize] {
        &self.by
    }
    /// Block z coordinates.
    #[inline]
    pub fn bz(&self) -> &[usize] {
        &self.bz
    }
    /// Element x offsets within blocks.
    #[inline]
    pub fn ex(&self) -> &[u8] {
        &self.ex
    }
    /// Element y offsets within blocks.
    #[inline]
    pub fn ey(&self) -> &[u8] {
        &self.ey
    }
    /// Element z offsets within blocks.
    #[inline]
    pub fn ez(&self) -> &[u8] {
        &self.ez
    }
    /// Nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterate `(x, y, z, value)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, Value)> + '_ {
        (0..self.num_blocks()).flat_map(move |b| {
            (self.bptr[b]..self.bptr[b + 1]).map(move |i| {
                (
                    self.bx[b] * self.block + self.ex[i] as usize,
                    self.by[b] * self.block + self.ey[i] as usize,
                    self.bz[b] * self.block + self.ez[i] as usize,
                    self.values[i],
                )
            })
        })
    }
}

impl SparseTensor3 for HiCooTensor {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        let b = (x / self.block, y / self.block, z / self.block);
        // Blocks are sorted by (bx, by, bz): binary search.
        let mut lo = 0usize;
        let mut hi = self.num_blocks();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mk = (self.bx[mid], self.by[mid], self.bz[mid]);
            match mk.cmp(&b) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let (e, f) = (
                        (x % self.block) as u8,
                        ((y % self.block) as u8, (z % self.block) as u8),
                    );
                    for i in self.bptr[mid]..self.bptr[mid + 1] {
                        if self.ex[i] == e && (self.ey[i], self.ez[i]) == f {
                            return self.values[i];
                        }
                    }
                    return 0.0;
                }
            }
        }
        0.0
    }
    fn to_coo(&self) -> CooTensor3 {
        let quads: Vec<_> = self.iter().collect();
        CooTensor3::from_quads(self.dims.0, self.dims.1, self.dims.2, quads)
            .expect("HiCOO coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3b tensor (same nonzeros as the CSF test).
    fn fig3b() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            4,
            4,
            vec![
                (0, 0, 0, 1.0), // a
                (0, 0, 1, 2.0), // b
                (1, 2, 2, 3.0), // c
                (2, 1, 0, 4.0), // d
                (2, 1, 3, 5.0), // e
                (3, 0, 3, 6.0), // f
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3b_blocks_2x2x2() {
        let h = HiCooTensor::from_coo(&fig3b(), 2).unwrap();
        // Expected 2x2x2 block keys of the 6 nonzeros:
        // a,b -> (0,0,0); c -> (0,1,1); d -> (1,0,0); e -> (1,0,1); f -> (1,0,1).
        assert_eq!(h.num_blocks(), 4);
        assert_eq!(h.bptr(), &[0, 2, 3, 4, 6]);
        assert_eq!(h.nnz(), 6);
    }

    #[test]
    fn roundtrip() {
        let coo = fig3b();
        let h = HiCooTensor::from_coo(&coo, 2).unwrap();
        assert_eq!(h.to_coo(), coo);
    }

    #[test]
    fn get_searches_blocks() {
        let h = HiCooTensor::from_coo(&fig3b(), 2).unwrap();
        assert_eq!(h.get(2, 1, 3), 5.0);
        assert_eq!(h.get(3, 0, 3), 6.0);
        assert_eq!(h.get(0, 0, 2), 0.0);
        assert_eq!(h.get(3, 3, 3), 0.0);
    }

    #[test]
    fn rejects_bad_block_sizes() {
        let coo = fig3b();
        assert!(HiCooTensor::from_coo(&coo, 0).is_err());
        assert!(HiCooTensor::from_coo(&coo, 3).is_err());
        assert!(HiCooTensor::from_coo(&coo, 512).is_err());
        assert!(HiCooTensor::from_coo(&coo, 4).is_ok());
    }

    #[test]
    fn block_larger_than_tensor_gives_single_block() {
        let coo = fig3b();
        let h = HiCooTensor::from_coo(&coo, 8).unwrap();
        assert_eq!(h.num_blocks(), 1);
        assert_eq!(h.to_coo(), coo);
    }

    #[test]
    fn empty_tensor() {
        let coo = CooTensor3::empty(4, 4, 4);
        let h = HiCooTensor::from_coo(&coo, 2).unwrap();
        assert_eq!(h.num_blocks(), 0);
        assert_eq!(h.bptr(), &[0]);
        assert_eq!(h.to_coo(), coo);
    }

    #[test]
    fn clustered_pattern_uses_few_blocks() {
        // 8 nonzeros all inside one 2x2x2 corner.
        let quads: Vec<_> = (0..2)
            .flat_map(|x| (0..2).flat_map(move |y| (0..2).map(move |z| (x, y, z, 1.0 + x as f64))))
            .collect();
        let coo = CooTensor3::from_quads(16, 16, 16, quads).unwrap();
        let h = HiCooTensor::from_coo(&coo, 2).unwrap();
        assert_eq!(h.num_blocks(), 1);
        assert_eq!(h.nnz(), 8);
    }
}

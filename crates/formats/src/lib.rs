//! # sparseflex-formats
//!
//! Compression formats for sparse matrices and 3-D tensors, the software
//! reference conversions between them, and the storage-size (compactness)
//! model used throughout the `sparseflex` workspace.
//!
//! This crate implements every format discussed in Fig. 3 of
//! *"Extending Sparse Tensor Accelerators to Support Multiple Compression
//! Formats"* (IPDPS 2021):
//!
//! **Matrix formats** (all hold an `rows x cols` logical matrix):
//! - [`DenseMatrix`] — uncompressed row-major storage.
//! - [`CooMatrix`] — coordinate list `(row_id, col_id, value)`.
//! - [`CsrMatrix`] — compressed sparse row.
//! - [`CscMatrix`] — compressed sparse column.
//! - [`BsrMatrix`] — block compressed row (CSR over dense blocks).
//! - [`DiaMatrix`] — diagonal storage.
//! - [`EllMatrix`] — ELLPACK (padded rows; listed as future work in the
//!   paper's performance model, implemented here as an extension).
//! - [`RlcMatrix`] — run-length coding (zero-run, value) pairs.
//! - [`ZvcMatrix`] — zero-value compression (bitmask + packed nonzeros).
//!
//! **3-D tensor formats**:
//! - [`DenseTensor3`], [`CooTensor3`], [`CsfTensor`] (compressed sparse
//!   fiber), [`HiCooTensor`] (hierarchical COO), [`RlcTensor3`],
//!   [`ZvcTensor3`].
//!
//! The [`size_model`] module reproduces the paper's §III-A compactness
//! analysis: each metadata field is charged `ceil(log2(max_value + 1))`
//! bits, and each stored element is charged the bit-width of the
//! [`DataType`].
//!
//! The [`convert`] module provides software reference conversions between
//! all format pairs (used both as the `Flex_Flex_SW` baseline and as the
//! functional oracle for the MINT hardware converter).
//!
//! The [`traverse`] module exposes every format as a **fiber stream**
//! ([`RowMajorStream`] / [`FiberStream3`]): the uniform streaming traversal
//! the format-generic kernels in `sparseflex-kernels` consume, so a kernel
//! written once runs over any of these formats without pre-conversion.
//!
//! The [`tiler`] module cuts any [`MatrixData`] into scratchpad-sized
//! column tiles over those same streams — the unit of work the pipelined
//! runtime in `sparseflex-core` converts and computes on in overlap.
//!
//! ## Example
//!
//! ```
//! use sparseflex_formats::{CooMatrix, CsrMatrix, DataType, MatrixFormat};
//! use sparseflex_formats::size_model::matrix_storage_bits;
//!
//! // A small sparse matrix in the spirit of Fig. 3a of the paper.
//! let coo = CooMatrix::from_triplets(
//!     4, 4,
//!     vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0), (2, 2, 5.0), (3, 3, 6.0)],
//! ).unwrap();
//! let csr = CsrMatrix::from_coo(&coo);
//! assert_eq!(csr.row_ptr(), &[0, 2, 4, 5, 6]);
//!
//! // Compactness model: at moderate density CSR's single coordinate per
//! // nonzero beats COO's two (Fig. 4a); at extreme sparsity COO wins.
//! let coo_bits = matrix_storage_bits(&MatrixFormat::Coo, 1000, 1000, 50_000, DataType::Fp32);
//! let csr_bits = matrix_storage_bits(&MatrixFormat::Csr, 1000, 1000, 50_000, DataType::Fp32);
//! assert!(csr_bits < coo_bits);
//! let coo_sparse = matrix_storage_bits(&MatrixFormat::Coo, 1000, 1000, 10, DataType::Fp32);
//! let csr_sparse = matrix_storage_bits(&MatrixFormat::Csr, 1000, 1000, 10, DataType::Fp32);
//! assert!(coo_sparse < csr_sparse);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bsr;
pub mod bytes;
pub mod convert;
pub mod coo;
pub mod csc;
pub mod csf;
pub mod csr;
pub mod custom;
pub mod dense;
pub mod descriptor;
pub mod dia;
pub mod dtype;
pub mod ell;
pub mod error;
pub mod formats;
pub mod hicoo;
pub mod rlc;
#[cfg(test)]
mod roundtrip_tests;
pub mod size_model;
pub mod stats;
pub mod tensor;
pub mod tiler;
pub mod traits;
pub mod traverse;
pub mod zvc;

pub use arena::{ArenaPool, StreamArena};
pub use bsr::BsrMatrix;
pub use bytes::{fnv1a, ByteError, ByteReader, ByteWriter};
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csf::CsfTensor;
pub use csr::CsrMatrix;
pub use custom::{encode_with_descriptor, CustomMatrix, MatrixEncoding};
pub use dense::DenseMatrix;
pub use descriptor::{FormatDescriptor, Level, RankOrder, SearchSpace, ValuesLayout};
pub use dia::DiaMatrix;
pub use dtype::DataType;
pub use ell::EllMatrix;
pub use error::FormatError;
pub use formats::{MatrixData, MatrixFormat, TensorData, TensorFormat};
pub use hicoo::HiCooTensor;
pub use rlc::{RlcMatrix, RlcTensor3};
pub use tensor::{CooTensor3, DenseTensor3};
pub use tiler::{
    bounded_column_ranges, plan_column_schedule, tile_column_ranges, uniform_column_ranges,
    ColumnSchedule, MatrixTile, TilePolicy,
};
pub use traits::{SparseMatrix, SparseTensor3};
pub use traverse::{
    csr_cow, csr_cow_in, csr_from_stream, csr_from_stream_in, split_by_prefix,
    split_by_sorted_keys, FiberStream3, RowMajorStream,
};
pub use zvc::{ZvcMatrix, ZvcTensor3};

/// Scalar element type used for all functional (value-carrying) storage.
///
/// The *logical* datatype of an experiment (int8/int16/fp32, which governs
/// storage-size accounting) is tracked separately via [`DataType`]; `f64`
/// carries the numeric payload so functional results stay exact for the
/// integer-valued test matrices used across the workspace.
pub type Value = f64;

/// Ceiling of `log2(x)` for `x >= 1`; 0 for `x <= 1`.
///
/// This is the paper's metadata-width rule: "the number of metadata bits
/// required is the log of the maximum possible value" (§III-A). An index
/// field that must represent values in `0..x` needs `ceil_log2(x)` bits.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod lib_tests {
    use super::ceil_log2;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn ceil_log2_large_values() {
        assert_eq!(ceil_log2(1 << 40), 40);
        assert_eq!(ceil_log2((1 << 40) + 1), 41);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }
}

//! Block Compressed Sparse Row (BSR) format.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Block Compressed Sparse Row matrix (Fig. 3a, "Block Compressed Row
/// (BSR) 2x2 blocks").
///
/// A CSR structure over dense `block_rows x block_cols` tiles. "Given that
/// the nonzeros follow a pattern, BSR reduces the metadata overhead and
/// enables a more regular memory access pattern" (§II). Blocks are stored
/// row-major internally; incomplete blocks are zero-padded, so `values`
/// may contain explicit zeros (the paper's Fig. 8e calls this out: "zeros
/// are inserted into the values if the blocks are not complete").
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    /// Block-row pointer: `num_block_rows + 1` entries.
    row_ptr: Vec<usize>,
    /// Block-column index of each stored block.
    col_ids: Vec<usize>,
    /// Dense payload of each block, `block_rows * block_cols` values each,
    /// stored consecutively.
    values: Vec<Value>,
}

impl BsrMatrix {
    /// Convert from the COO hub with the given block shape.
    pub fn from_coo(
        coo: &CooMatrix,
        block_rows: usize,
        block_cols: usize,
    ) -> Result<Self, FormatError> {
        if block_rows == 0 || block_cols == 0 {
            return Err(FormatError::InvalidBlockSize { block: 0 });
        }
        let rows = coo.rows();
        let cols = coo.cols();
        let nbr = rows.div_ceil(block_rows);
        let block_area = block_rows * block_cols;

        // Pass 1: identify the set of occupied blocks per block-row.
        // COO is row-major sorted, so entries of one block-row are contiguous.
        let mut row_ptr = vec![0usize; nbr + 1];
        let mut col_ids: Vec<usize> = Vec::new();
        let mut values: Vec<Value> = Vec::new();

        let mut i = 0;
        let n = coo.nnz();
        let rids = coo.row_ids();
        let cids = coo.col_ids();
        let vals = coo.values();
        for br in 0..nbr {
            let row_end = (br + 1) * block_rows;
            let start = i;
            while i < n && rids[i] < row_end {
                i += 1;
            }
            // Occupied block columns in this block-row.
            let mut bcs: Vec<usize> = (start..i).map(|k| cids[k] / block_cols).collect();
            bcs.sort_unstable();
            bcs.dedup();
            let base_block = col_ids.len();
            row_ptr[br + 1] = row_ptr[br] + bcs.len();
            values.resize(values.len() + bcs.len() * block_area, 0.0);
            // Scatter the entries into their block payloads.
            for k in start..i {
                let bc = cids[k] / block_cols;
                let slot = base_block
                    + bcs
                        .binary_search(&bc)
                        .expect("block column was registered above");
                let local = (rids[k] - br * block_rows) * block_cols + (cids[k] % block_cols);
                values[slot * block_area + local] = vals[k];
            }
            col_ids.extend_from_slice(&bcs);
        }
        Ok(BsrMatrix {
            rows,
            cols,
            block_rows,
            block_cols,
            row_ptr,
            col_ids,
            values,
        })
    }

    /// Block shape `(block_rows, block_cols)`.
    #[inline]
    pub fn block_shape(&self) -> (usize, usize) {
        (self.block_rows, self.block_cols)
    }

    /// Number of stored blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.col_ids.len()
    }

    /// Number of block rows.
    #[inline]
    pub fn num_block_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Block-row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Block-column indices.
    #[inline]
    pub fn col_ids(&self) -> &[usize] {
        &self.col_ids
    }

    /// Raw block payloads (including padding zeros).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Dense payload of the `i`-th stored block.
    #[inline]
    pub fn block(&self, i: usize) -> &[Value] {
        let a = self.block_rows * self.block_cols;
        &self.values[i * a..(i + 1) * a]
    }

    /// Count of *stored* values including block padding (what the hardware
    /// must actually move; used by the size model).
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored values that are padding zeros.
    pub fn padding_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let nz = self.values.iter().filter(|v| **v != 0.0).count();
        1.0 - nz as f64 / self.values.len() as f64
    }
}

impl SparseMatrix for BsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let br = row / self.block_rows;
        let bc = col / self.block_cols;
        let (s, e) = (self.row_ptr[br], self.row_ptr[br + 1]);
        match self.col_ids[s..e].binary_search(&bc) {
            Ok(off) => {
                let i = s + off;
                let local = (row % self.block_rows) * self.block_cols + (col % self.block_cols);
                self.block(i)[local]
            }
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.values.len());
        for br in 0..self.num_block_rows() {
            for i in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_ids[i];
                let blk = self.block(i);
                for lr in 0..self.block_rows {
                    let r = br * self.block_rows + lr;
                    if r >= self.rows {
                        break;
                    }
                    for lc in 0..self.block_cols {
                        let c = bc * self.block_cols + lc;
                        if c >= self.cols {
                            break;
                        }
                        let v = blk[lr * self.block_cols + lc];
                        if v != 0.0 {
                            triplets.push((r, c, v));
                        }
                    }
                }
            }
        }
        CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("block coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3a BSR example matrix:
    /// ```text
    /// a b . .
    /// c d . .
    /// . . e .
    /// . . f .
    /// ```
    /// 2x2 blocks -> values `a b c d e * f *` (with padded zeros),
    /// col_ids `0 1`, row_ptr `0 1 2`.
    fn fig3a() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0), // a
                (0, 1, 2.0), // b
                (1, 0, 3.0), // c
                (1, 1, 4.0), // d
                (2, 2, 5.0), // e
                (3, 2, 6.0), // f
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3a_block_structure() {
        let bsr = BsrMatrix::from_coo(&fig3a(), 2, 2).unwrap();
        assert_eq!(bsr.num_blocks(), 2);
        assert_eq!(bsr.row_ptr(), &[0, 1, 2]);
        assert_eq!(bsr.col_ids(), &[0, 1]);
        assert_eq!(bsr.block(0), &[1.0, 2.0, 3.0, 4.0]);
        // Second block is the e/f column with padding: e * f *.
        assert_eq!(bsr.block(1), &[5.0, 0.0, 6.0, 0.0]);
        assert_eq!(bsr.padding_ratio(), 0.25);
    }

    #[test]
    fn rejects_zero_block() {
        assert!(BsrMatrix::from_coo(&fig3a(), 0, 2).is_err());
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let coo = fig3a();
        let bsr = BsrMatrix::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
        assert_eq!(bsr.nnz(), 6);
        assert_eq!(bsr.stored_values(), 8);
    }

    #[test]
    fn non_dividing_block_sizes_pad() {
        // 5x5 matrix with 2x2 blocks: ragged edges must still round-trip.
        let coo = CooMatrix::from_triplets(
            5,
            5,
            vec![(4, 4, 1.0), (4, 0, 2.0), (0, 4, 3.0), (2, 2, 4.0)],
        )
        .unwrap();
        let bsr = BsrMatrix::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
        assert_eq!(bsr.get(4, 4), 1.0);
        assert_eq!(bsr.get(3, 3), 0.0);
    }

    #[test]
    fn rectangular_blocks() {
        let coo = CooMatrix::from_triplets(4, 6, vec![(1, 5, 2.0), (3, 0, 1.0)]).unwrap();
        let bsr = BsrMatrix::from_coo(&coo, 2, 3).unwrap();
        assert_eq!(bsr.block_shape(), (2, 3));
        assert_eq!(bsr.to_coo(), coo);
    }

    #[test]
    fn padding_zeros_do_not_count_as_nonzeros() {
        // Incomplete blocks store explicit zeros; the traits.rs contract
        // says nnz()/density() count stored nonzeros only, matching
        // to_coo() element-for-element.
        let coo = CooMatrix::from_triplets(5, 5, vec![(0, 0, 1.0), (4, 4, 2.0)]).unwrap();
        let bsr = BsrMatrix::from_coo(&coo, 2, 2).unwrap();
        assert!(bsr.stored_values() > bsr.nnz(), "blocks must be padded");
        assert_eq!(bsr.nnz(), 2);
        assert_eq!(bsr.nnz(), bsr.to_coo().nnz());
        assert!((bsr.density() - 2.0 / 25.0).abs() < 1e-15);
    }

    #[test]
    fn get_outside_blocks_is_zero() {
        let bsr = BsrMatrix::from_coo(&fig3a(), 2, 2).unwrap();
        assert_eq!(bsr.get(0, 2), 0.0);
        assert_eq!(bsr.get(3, 0), 0.0);
    }
}

//! Compressed Sparse Fiber (CSF) format for 3-D tensors.

use crate::error::FormatError;
use crate::tensor::CooTensor3;
use crate::traits::SparseTensor3;
use crate::Value;

/// Compressed Sparse Fiber tensor (Fig. 3b; Smith & Karypis).
///
/// "CSF constructs a tree to hold tensors" (§II): a three-level structure
/// for mode order `x -> y -> z`. Level 0 stores the distinct x slices;
/// each x slice points at a run of (x, y) fibers in level 1; each fiber
/// points at a run of z coordinates + values in level 2. The paper's
/// Dense→CSF MINT pipeline (Fig. 8f) produces exactly this layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor {
    dims: (usize, usize, usize),
    /// Distinct x coordinates, sorted.
    x_fids: Vec<usize>,
    /// `x_fids.len() + 1` pointers into the level-1 fiber arrays.
    x_ptr: Vec<usize>,
    /// y coordinate of each (x, y) fiber.
    y_fids: Vec<usize>,
    /// `y_fids.len() + 1` pointers into the level-2 arrays.
    y_ptr: Vec<usize>,
    /// z coordinate of each nonzero.
    z_fids: Vec<usize>,
    /// Nonzero values, parallel to `z_fids`.
    values: Vec<Value>,
}

impl CsfTensor {
    /// Build from the COO hub (already x-major sorted, so this is a single
    /// linear pass — the same traversal MINT's tree-construction logic
    /// performs in step 6 of Fig. 8f).
    pub fn from_coo(coo: &CooTensor3) -> Self {
        let (dx, dy, dz) = coo.shape();
        let mut x_fids: Vec<usize> = Vec::new();
        let mut x_ptr: Vec<usize> = Vec::new();
        let mut y_fids: Vec<usize> = Vec::new();
        let mut y_ptr: Vec<usize> = Vec::new();
        let mut z_fids = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        let mut last_x: Option<usize> = None;
        let mut last_xy: Option<(usize, usize)> = None;
        for (x, y, z, v) in coo.iter() {
            if last_x != Some(x) {
                x_fids.push(x);
                x_ptr.push(y_fids.len()); // slice begins at the current fiber count
                last_x = Some(x);
                last_xy = None;
            }
            if last_xy != Some((x, y)) {
                y_fids.push(y);
                y_ptr.push(z_fids.len()); // fiber begins at the current nnz count
                last_xy = Some((x, y));
            }
            z_fids.push(z);
            values.push(v);
        }
        x_ptr.push(y_fids.len());
        y_ptr.push(z_fids.len());
        CsfTensor {
            dims: (dx, dy, dz),
            x_fids,
            x_ptr,
            y_fids,
            y_ptr,
            z_fids,
            values,
        }
    }

    /// Build from raw arrays, validating tree structure.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        dims: (usize, usize, usize),
        x_fids: Vec<usize>,
        x_ptr: Vec<usize>,
        y_fids: Vec<usize>,
        y_ptr: Vec<usize>,
        z_fids: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if x_ptr.len() != x_fids.len() + 1 {
            return Err(FormatError::LengthMismatch {
                what: "csf x_ptr vs x_fids+1",
                expected: x_fids.len() + 1,
                actual: x_ptr.len(),
            });
        }
        if y_ptr.len() != y_fids.len() + 1 {
            return Err(FormatError::LengthMismatch {
                what: "csf y_ptr vs y_fids+1",
                expected: y_fids.len() + 1,
                actual: y_ptr.len(),
            });
        }
        if z_fids.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "csf z_fids vs values",
                expected: values.len(),
                actual: z_fids.len(),
            });
        }
        if x_ptr.first() != Some(&0)
            || x_ptr.last() != Some(&y_fids.len())
            || x_ptr.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(FormatError::MalformedPointer { what: "csf x_ptr" });
        }
        if y_ptr.first() != Some(&0)
            || y_ptr.last() != Some(&values.len())
            || y_ptr.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(FormatError::MalformedPointer { what: "csf y_ptr" });
        }
        if x_fids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::MalformedPointer {
                what: "csf x_fids not sorted",
            });
        }
        for &x in &x_fids {
            if x >= dims.0 {
                return Err(FormatError::IndexOutOfBounds {
                    index: x,
                    bound: dims.0,
                    axis: 0,
                });
            }
        }
        for &y in &y_fids {
            if y >= dims.1 {
                return Err(FormatError::IndexOutOfBounds {
                    index: y,
                    bound: dims.1,
                    axis: 1,
                });
            }
        }
        for &z in &z_fids {
            if z >= dims.2 {
                return Err(FormatError::IndexOutOfBounds {
                    index: z,
                    bound: dims.2,
                    axis: 2,
                });
            }
        }
        Ok(CsfTensor {
            dims,
            x_fids,
            x_ptr,
            y_fids,
            y_ptr,
            z_fids,
            values,
        })
    }

    /// Distinct x slice coordinates (level 0 of the tree).
    #[inline]
    pub fn x_fids(&self) -> &[usize] {
        &self.x_fids
    }
    /// Pointers from x slices into the fiber arrays.
    #[inline]
    pub fn x_ptr(&self) -> &[usize] {
        &self.x_ptr
    }
    /// y coordinate of each (x, y) fiber (level 1).
    #[inline]
    pub fn y_fids(&self) -> &[usize] {
        &self.y_fids
    }
    /// Pointers from fibers into the nonzero arrays.
    #[inline]
    pub fn y_ptr(&self) -> &[usize] {
        &self.y_ptr
    }
    /// z coordinate of each nonzero (level 2).
    #[inline]
    pub fn z_fids(&self) -> &[usize] {
        &self.z_fids
    }
    /// Nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of (x, y) fibers.
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.y_fids.len()
    }

    /// Number of occupied x slices.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.x_fids.len()
    }

    /// Iterate `(x, y, z, value)` in tree order (x-major sorted).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, Value)> + '_ {
        self.x_fids.iter().enumerate().flat_map(move |(si, &x)| {
            (self.x_ptr[si]..self.x_ptr[si + 1]).flat_map(move |fi| {
                let y = self.y_fids[fi];
                (self.y_ptr[fi]..self.y_ptr[fi + 1])
                    .map(move |zi| (x, y, self.z_fids[zi], self.values[zi]))
            })
        })
    }
}

impl SparseTensor3 for CsfTensor {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        let si = match self.x_fids.binary_search(&x) {
            Ok(i) => i,
            Err(_) => return 0.0,
        };
        let fibers = &self.y_fids[self.x_ptr[si]..self.x_ptr[si + 1]];
        let fi = match fibers.binary_search(&y) {
            Ok(i) => self.x_ptr[si] + i,
            Err(_) => return 0.0,
        };
        let zs = &self.z_fids[self.y_ptr[fi]..self.y_ptr[fi + 1]];
        match zs.binary_search(&z) {
            Ok(i) => self.values[self.y_ptr[fi] + i],
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooTensor3 {
        let quads: Vec<_> = self.iter().collect();
        CooTensor3::from_quads(self.dims.0, self.dims.1, self.dims.2, quads)
            .expect("CSF coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3b tensor: nonzeros a..f at COO coordinates
    /// x: 0 0 1 2 2 3, y: 0 0 2 1 1 0, z: 0 1 2 0 3 3.
    fn fig3b() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            4,
            4,
            vec![
                (0, 0, 0, 1.0), // a
                (0, 0, 1, 2.0), // b
                (1, 2, 2, 3.0), // c
                (2, 1, 0, 4.0), // d
                (2, 1, 3, 5.0), // e
                (3, 0, 3, 6.0), // f
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3b_tree_shape() {
        let csf = CsfTensor::from_coo(&fig3b());
        // 4 occupied slices (x = 0,1,2,3), 4 fibers, 6 nonzeros.
        assert_eq!(csf.x_fids(), &[0, 1, 2, 3]);
        assert_eq!(csf.num_fibers(), 4);
        assert_eq!(csf.y_fids(), &[0, 2, 1, 0]);
        assert_eq!(csf.x_ptr(), &[0, 1, 2, 3, 4]);
        assert_eq!(csf.y_ptr(), &[0, 2, 3, 5, 6]);
        assert_eq!(csf.z_fids(), &[0, 1, 2, 0, 3, 3]);
        assert_eq!(csf.nnz(), 6);
    }

    #[test]
    fn roundtrip() {
        let coo = fig3b();
        let csf = CsfTensor::from_coo(&coo);
        assert_eq!(csf.to_coo(), coo);
    }

    #[test]
    fn get_traverses_tree() {
        let csf = CsfTensor::from_coo(&fig3b());
        assert_eq!(csf.get(2, 1, 3), 5.0);
        assert_eq!(csf.get(2, 1, 1), 0.0);
        assert_eq!(csf.get(2, 2, 0), 0.0);
        assert_eq!(csf.get(1, 2, 2), 3.0);
    }

    #[test]
    fn shared_fibers_compress() {
        // Two nonzeros in the same (x, y) fiber should share one level-1
        // entry.
        let coo = CooTensor3::from_quads(
            2,
            2,
            8,
            vec![(0, 0, 0, 1.0), (0, 0, 7, 2.0), (1, 1, 3, 3.0)],
        )
        .unwrap();
        let csf = CsfTensor::from_coo(&coo);
        assert_eq!(csf.num_slices(), 2);
        assert_eq!(csf.num_fibers(), 2);
        assert_eq!(csf.to_coo(), coo);
    }

    #[test]
    fn empty_tensor() {
        let coo = CooTensor3::empty(3, 3, 3);
        let csf = CsfTensor::from_coo(&coo);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.num_slices(), 0);
        assert_eq!(csf.to_coo(), coo);
    }

    #[test]
    fn from_parts_validates() {
        // Mismatched pointer lengths.
        assert!(CsfTensor::from_parts(
            (2, 2, 2),
            vec![0],
            vec![0],
            vec![0],
            vec![0, 1],
            vec![0],
            vec![1.0],
        )
        .is_err());
        // Valid single-entry tensor.
        assert!(CsfTensor::from_parts(
            (2, 2, 2),
            vec![1],
            vec![0, 1],
            vec![1],
            vec![0, 1],
            vec![1],
            vec![1.0],
        )
        .is_ok());
        // z out of bounds.
        assert!(CsfTensor::from_parts(
            (2, 2, 2),
            vec![1],
            vec![0, 1],
            vec![1],
            vec![0, 1],
            vec![5],
            vec![1.0],
        )
        .is_err());
    }

    #[test]
    fn iter_is_sorted_x_major() {
        let csf = CsfTensor::from_coo(&fig3b());
        let keys: Vec<_> = csf.iter().map(|(x, y, z, _)| (x, y, z)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}

//! Grow-only scratch arena for the fiber-stream traversals.
//!
//! The streaming traversals in [`crate::traverse`] assemble fibers for
//! padded or transposed layouts (CSC, BSR, ELL, DIA, RLC, Dense, HiCOO)
//! in scratch buffers. Before the arena, every `for_each_fiber` call
//! built fresh `Vec`s, so a consumer that streams the same operand
//! repeatedly — the tile loop in `sparseflex-core`'s pipeline, a batch
//! worker, a kernel bench — paid heap allocations on every pass.
//!
//! [`StreamArena`] owns those buffers instead. Buffers only grow: after
//! a warm-up pass over an operand, streaming it again through
//! [`RowMajorStream::for_each_fiber_in`](crate::traverse::RowMajorStream::for_each_fiber_in)
//! or
//! [`FiberStream3::for_each_fiber_in`](crate::traverse::FiberStream3::for_each_fiber_in)
//! performs **zero** heap allocations (the property the workspace's
//! alloc-counting test harness pins). The arena also recycles the output
//! capacity of [`csr_from_stream_in`](crate::traverse::csr_from_stream_in)
//! via [`recycle_csr`](StreamArena::recycle_csr), so repeated
//! stream→CSR materializations (one per stationary tile in the pipeline)
//! reuse their `row_ptr`/`col_ids`/`values` allocations across tiles.
//!
//! # Lifecycle
//!
//! ```
//! use sparseflex_formats::{CooMatrix, MatrixData, MatrixFormat, StreamArena};
//! use sparseflex_formats::traverse::RowMajorStream;
//!
//! let coo = CooMatrix::from_triplets(3, 4, vec![(0, 1, 2.0), (2, 0, 1.0)]).unwrap();
//! let csc = MatrixData::encode(&coo, &MatrixFormat::Csc).unwrap();
//! let mut arena = StreamArena::new();
//! // Warm-up pass: the CSC transpose scratch grows to fit the operand.
//! csc.row_stream().for_each_fiber_in(&mut arena, &mut |_, _, _| {});
//! // Steady state: the same traversal allocates nothing.
//! csc.row_stream().for_each_fiber_in(&mut arena, &mut |_, _, _| {});
//! ```
//!
//! The buffers are plain public fields on purpose: each traversal names
//! the buffers it uses, and a consumer threading the arena through both
//! a traversal and its own accumulation takes the buffer it needs out
//! with [`std::mem::take`] and puts it back after (the pattern the
//! kernel crate's `*_in` entry points use), so the borrow checker keeps
//! traversal scratch and consumer scratch disjoint.

use crate::Value;

/// Reusable, grow-only scratch buffers for fiber-stream traversal.
///
/// See the [module docs](self) for the lifecycle. A fresh arena holds no
/// heap memory at all (`Vec::new` everywhere), so the compatibility
/// wrappers that build one per call are no worse than the pre-arena
/// code; reuse is what buys the zero-alloc steady state.
#[derive(Debug, Default)]
pub struct StreamArena {
    /// Primary coordinate scratch: the column ids (matrices) or z ids
    /// (tensors) of the fiber being assembled.
    pub coords: Vec<usize>,
    /// Values parallel to [`coords`](Self::coords).
    pub vals: Vec<Value>,
    /// Secondary index scratch (the CSC/column-major transpose's row
    /// pointer array).
    pub idx_a: Vec<usize>,
    /// Tertiary index scratch (the transpose's next-free-slot cursors).
    pub idx_b: Vec<usize>,
    /// `(coord, value)` pairs for traversals that must re-sort a fiber
    /// (ELL rows with unsorted slots).
    pub pairs: Vec<(usize, Value)>,
    /// `(row, col, value)` triples for traversals that must bucket the
    /// whole operand by row (the descriptor-composed column-major
    /// transpose in [`crate::custom`]).
    pub triples: Vec<(usize, usize, Value)>,
    /// `(x, y, z, value)` quads for block-clustered tensor traversals
    /// that must re-sort the whole operand (HiCOO).
    pub quads: Vec<(usize, usize, usize, Value)>,
    /// Dense accumulator lane for stream consumers (kernel partial-sum
    /// rows); taken out with `std::mem::take` around a traversal and put
    /// back after, so it never aliases traversal scratch.
    pub acc: Vec<Value>,
    // Recycled csr_from_stream_in output capacity (private: only the
    // take/recycle pair below may touch these, keeping the invariant
    // that they are never aliased by an in-flight traversal).
    csr_row_ptr: Vec<usize>,
    csr_col_ids: Vec<usize>,
    csr_values: Vec<Value>,
}

impl StreamArena {
    /// A fresh arena holding no heap memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recycled CSR output buffers (cleared, capacity kept).
    /// Used by [`csr_from_stream_in`](crate::traverse::csr_from_stream_in);
    /// pair with [`recycle_csr`](Self::recycle_csr) to return capacity.
    pub(crate) fn take_csr_buffers(&mut self) -> (Vec<usize>, Vec<usize>, Vec<Value>) {
        let mut row_ptr = std::mem::take(&mut self.csr_row_ptr);
        let mut col_ids = std::mem::take(&mut self.csr_col_ids);
        let mut values = std::mem::take(&mut self.csr_values);
        row_ptr.clear();
        col_ids.clear();
        values.clear();
        (row_ptr, col_ids, values)
    }

    /// Return a CSR matrix's allocations to the arena so the next
    /// [`csr_from_stream_in`](crate::traverse::csr_from_stream_in) call
    /// reuses their capacity instead of allocating.
    ///
    /// This is the steady-state half of the tile-loop contract: convert
    /// a tile, simulate it, recycle the materialized CSR, repeat — after
    /// the largest tile has been seen, conversions stop allocating.
    pub fn recycle_csr(&mut self, csr: crate::CsrMatrix) {
        let (_, _, row_ptr, col_ids, values) = csr.into_parts();
        // Keep the larger capacity if the arena already holds one.
        if row_ptr.capacity() > self.csr_row_ptr.capacity() {
            self.csr_row_ptr = row_ptr;
        }
        if col_ids.capacity() > self.csr_col_ids.capacity() {
            self.csr_col_ids = col_ids;
        }
        if values.capacity() > self.csr_values.capacity() {
            self.csr_values = values;
        }
    }
}

/// A grow-only pool of [`StreamArena`]s for data-parallel stream fan-out.
///
/// The two-phase parallel kernels give each scoped worker thread its own
/// arena so every per-thread traversal keeps the zero-alloc steady state.
/// The pool owns those arenas across calls: the first parallel kernel
/// invocation grows each worker's arena to fit its slice, and every later
/// invocation at the same (or lower) worker count allocates nothing.
///
/// Two access patterns:
/// - [`slots`](Self::slots) hands out a mutable slice of `n` warm arenas
///   — the scoped-thread pattern (`iter_mut` splits them across workers,
///   the borrow ends with the scope). Zero-alloc once grown.
/// - [`lease`](Self::lease)/[`restore`](Self::restore) move `n` arenas
///   out and back — for callers that must cross a `Mutex` or otherwise
///   detach the arenas from the pool borrow (the planner's tile executor).
#[derive(Debug, Default)]
pub struct ArenaPool {
    arenas: Vec<StreamArena>,
}

impl ArenaPool {
    /// A fresh pool holding no arenas (and no heap memory).
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow `n` warm arenas, growing the pool with fresh (heap-free)
    /// arenas if it holds fewer. Existing arenas keep their capacity, so
    /// steady-state calls allocate nothing.
    pub fn slots(&mut self, n: usize) -> &mut [StreamArena] {
        if self.arenas.len() < n {
            self.arenas.resize_with(n, StreamArena::new);
        }
        &mut self.arenas[..n]
    }

    /// Move `n` arenas out of the pool (warmest first), topping up with
    /// fresh ones if needed. Pair with [`restore`](Self::restore).
    pub fn lease(&mut self, n: usize) -> Vec<StreamArena> {
        if self.arenas.len() < n {
            self.arenas.resize_with(n, StreamArena::new);
        }
        self.arenas.split_off(self.arenas.len() - n)
    }

    /// Return leased arenas (with whatever capacity they grew) to the
    /// pool for the next caller.
    pub fn restore(&mut self, arenas: Vec<StreamArena>) {
        self.arenas.extend(arenas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn pool_slots_grow_and_keep_capacity() {
        let mut pool = ArenaPool::new();
        {
            let slots = pool.slots(3);
            assert_eq!(slots.len(), 3);
            slots[1].coords.reserve(100);
        }
        let cap = pool.slots(3)[1].coords.capacity();
        assert!(cap >= 100, "slot capacity must survive re-borrow");
        assert_eq!(pool.slots(2).len(), 2);
    }

    #[test]
    fn pool_lease_restore_round_trips_capacity() {
        let mut pool = ArenaPool::new();
        let mut leased = pool.lease(2);
        leased[0].vals.reserve(64);
        pool.restore(leased);
        let again = pool.lease(2);
        assert!(again.iter().any(|a| a.vals.capacity() >= 64));
        pool.restore(again);
    }

    #[test]
    fn fresh_arena_holds_no_heap_memory() {
        let a = StreamArena::new();
        assert_eq!(a.coords.capacity(), 0);
        assert_eq!(a.vals.capacity(), 0);
        assert_eq!(a.idx_a.capacity(), 0);
        assert_eq!(a.idx_b.capacity(), 0);
        assert_eq!(a.pairs.capacity(), 0);
        assert_eq!(a.triples.capacity(), 0);
        assert_eq!(a.quads.capacity(), 0);
        assert_eq!(a.acc.capacity(), 0);
    }

    #[test]
    fn recycle_keeps_the_larger_capacity() {
        let mut arena = StreamArena::new();
        let big =
            CsrMatrix::from_parts(2, 4, vec![0, 2, 3], vec![0, 3, 1], vec![1.0, 2.0, 3.0]).unwrap();
        arena.recycle_csr(big);
        let (rp, ci, vs) = arena.take_csr_buffers();
        assert!(rp.capacity() >= 3 && rp.is_empty());
        assert!(ci.capacity() >= 3 && ci.is_empty());
        assert!(vs.capacity() >= 3 && vs.is_empty());
        // Returning a smaller CSR must not shrink the stored capacity.
        let mut arena2 = StreamArena::new();
        arena2.recycle_csr(
            CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap(),
        );
        arena2.recycle_csr(CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]).unwrap());
        let (rp2, _, _) = arena2.take_csr_buffers();
        assert!(rp2.capacity() >= 3);
    }
}

//! Coordinate (COO) format — the conversion hub of the crate.

use crate::dense::DenseMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Coordinate-list sparse matrix (Fig. 3a, "Coordinate (COO)").
///
/// Stores parallel arrays `(row_ids, col_ids, values)` sorted row-major
/// (row, then column) with no duplicates and no explicit zeros. COO is the
/// paper's most compact MCF at extreme sparsity (Fig. 4a, left of the first
/// red line) and also serves as the intermediate hub for the generic
/// any-to-any conversions in both software ([`crate::convert`]) and MINT.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_ids: Vec<usize>,
    col_ids: Vec<usize>,
    values: Vec<Value>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            row_ids: Vec::new(),
            col_ids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from unsorted triplets. Sorts row-major, sums duplicates, and
    /// drops entries whose accumulated value is exactly zero.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, Value)>,
    ) -> Result<Self, FormatError> {
        for &(r, c, _) in &triplets {
            if r >= rows {
                return Err(FormatError::IndexOutOfBounds {
                    index: r,
                    bound: rows,
                    axis: 0,
                });
            }
            if c >= cols {
                return Err(FormatError::IndexOutOfBounds {
                    index: c,
                    bound: cols,
                    axis: 1,
                });
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ids = Vec::with_capacity(triplets.len());
        let mut col_ids = Vec::with_capacity(triplets.len());
        let mut values: Vec<Value> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if let (Some(&lr), Some(&lc)) = (row_ids.last(), col_ids.last()) {
                if lr == r && lc == c {
                    *values.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            row_ids.push(r);
            col_ids.push(c);
            values.push(v);
        }
        // Drop exact zeros (possible after duplicate cancellation).
        let mut keep_r = Vec::with_capacity(row_ids.len());
        let mut keep_c = Vec::with_capacity(col_ids.len());
        let mut keep_v = Vec::with_capacity(values.len());
        for i in 0..values.len() {
            if values[i] != 0.0 {
                keep_r.push(row_ids[i]);
                keep_c.push(col_ids[i]);
                keep_v.push(values[i]);
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            row_ids: keep_r,
            col_ids: keep_c,
            values: keep_v,
        })
    }

    /// Build from triplets already sorted row-major with no duplicates.
    /// Verifies ordering and bounds; prefer this in hot paths where the
    /// producer guarantees order (all `to_coo` implementations do).
    pub fn from_sorted_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, Value)>,
    ) -> Result<Self, FormatError> {
        let mut row_ids = Vec::with_capacity(triplets.len());
        let mut col_ids = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            if r >= rows {
                return Err(FormatError::IndexOutOfBounds {
                    index: r,
                    bound: rows,
                    axis: 0,
                });
            }
            if c >= cols {
                return Err(FormatError::IndexOutOfBounds {
                    index: c,
                    bound: cols,
                    axis: 1,
                });
            }
            if let Some(p) = prev {
                if p >= (r, c) {
                    return Err(FormatError::MalformedPointer {
                        what: "COO triplets not strictly row-major sorted",
                    });
                }
            }
            prev = Some((r, c));
            if v != 0.0 {
                row_ids.push(r);
                col_ids.push(c);
                values.push(v);
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            row_ids,
            col_ids,
            values,
        })
    }

    /// Build directly from parallel arrays (sorted row-major, deduplicated).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ids: Vec<usize>,
        col_ids: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if row_ids.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "row_ids vs values",
                expected: values.len(),
                actual: row_ids.len(),
            });
        }
        if col_ids.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "col_ids vs values",
                expected: values.len(),
                actual: col_ids.len(),
            });
        }
        let triplets: Vec<_> = row_ids
            .into_iter()
            .zip(col_ids)
            .zip(values)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        Self::from_sorted_triplets(rows, cols, triplets)
    }

    /// Row coordinates, parallel to [`values`](Self::values).
    #[inline]
    pub fn row_ids(&self) -> &[usize] {
        &self.row_ids
    }

    /// Column coordinates, parallel to [`values`](Self::values).
    #[inline]
    pub fn col_ids(&self) -> &[usize] {
        &self.col_ids
    }

    /// Stored nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterate `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.values.len()).map(move |i| (self.row_ids[i], self.col_ids[i], self.values[i]))
    }

    /// Consume into a dense matrix.
    pub fn into_dense(self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.values.len() {
            out.set(self.row_ids[i], self.col_ids[i], self.values[i]);
        }
        out
    }

    /// Transpose: swaps the roles of rows and columns and re-sorts.
    pub fn transpose(&self) -> CooMatrix {
        let triplets: Vec<_> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CooMatrix::from_triplets(self.cols, self.rows, triplets)
            .expect("transposed coordinates remain in-bounds")
    }
}

impl SparseMatrix for CooMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        // Binary search over the sorted (row, col) keys.
        let mut lo = self.row_ids.partition_point(|&r| r < row);
        let hi = self.row_ids.partition_point(|&r| r <= row);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.col_ids[mid].cmp(&col) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => {
                    if mid == lo {
                        return 0.0;
                    }
                    return self.get_linear(lo, mid, col);
                }
                std::cmp::Ordering::Equal => return self.values[mid],
            }
        }
        0.0
    }
    fn to_coo(&self) -> CooMatrix {
        self.clone()
    }
}

impl CooMatrix {
    fn get_linear(&self, lo: usize, hi: usize, col: usize) -> Value {
        for i in lo..hi {
            if self.col_ids[i] == col {
                return self.values[i];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3a example: the 4x4 matrix with nonzeros a..f.
    /// Layout (row-major): a at (0,0), b at (0,2)... we use the paper's
    /// coordinates: values a b c d e f at
    /// (0,0) (1,0) (0,1) (1,1) (2,2) (3,3) sorted row-major.
    pub(crate) fn fig3a() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0), // a
                (0, 1, 2.0), // c  (paper stores column-major letters; values differ)
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_and_dedups() {
        let m = CooMatrix::from_triplets(
            3,
            3,
            vec![(2, 2, 5.0), (0, 1, 1.0), (0, 1, 2.0), (1, 0, 4.0)],
        )
        .unwrap();
        assert_eq!(m.row_ids(), &[0, 1, 2]);
        assert_eq!(m.col_ids(), &[1, 0, 2]);
        assert_eq!(m.values(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn duplicate_cancellation_drops_zero() {
        let m =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn bounds_checked() {
        assert!(matches!(
            CooMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]),
            Err(FormatError::IndexOutOfBounds { axis: 0, .. })
        ));
        assert!(matches!(
            CooMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]),
            Err(FormatError::IndexOutOfBounds { axis: 1, .. })
        ));
    }

    #[test]
    fn sorted_constructor_rejects_unsorted() {
        assert!(CooMatrix::from_sorted_triplets(2, 2, vec![(1, 0, 1.0), (0, 0, 1.0)]).is_err());
        assert!(CooMatrix::from_sorted_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 1.0)]).is_err());
    }

    #[test]
    fn get_finds_all_entries() {
        let m = fig3a();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(3, 3), 6.0);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(3, 0), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = fig3a();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn dense_roundtrip() {
        let m = fig3a();
        let d = m.clone().into_dense();
        assert_eq!(d.to_coo(), m);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(CooMatrix::from_parts(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(CooMatrix::from_parts(2, 2, vec![0], vec![0], vec![1.0, 2.0]).is_err());
        assert!(CooMatrix::from_parts(2, 2, vec![0], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn empty_matrix() {
        let m = CooMatrix::empty(5, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.get(4, 6), 0.0);
    }
}

//! Exhaustive dense <-> compressed round-trip coverage: every
//! [`MatrixFormat`] and [`TensorFormat`] variant must losslessly encode
//! and decode a family of deterministic fixture patterns, including the
//! degenerate shapes (empty, single element, first/last position, fully
//! dense) that the random property suites only hit by chance.

use crate::formats::{MatrixData, MatrixFormat, TensorData, TensorFormat};
use crate::traits::{SparseMatrix, SparseTensor3};
use crate::{CooMatrix, CooTensor3, DiaMatrix, EllMatrix, HiCooTensor, ZvcMatrix, ZvcTensor3};

/// Every matrix format variant, with small parameters where required.
fn every_matrix_format() -> Vec<MatrixFormat> {
    vec![
        MatrixFormat::Dense,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
        MatrixFormat::Bsr { br: 2, bc: 2 },
        MatrixFormat::Bsr { br: 3, bc: 2 },
        MatrixFormat::Dia,
        MatrixFormat::Ell,
        MatrixFormat::Rlc { run_bits: 2 },
        MatrixFormat::Rlc { run_bits: 8 },
        MatrixFormat::Zvc,
    ]
}

/// Every tensor format variant, with small parameters where required.
fn every_tensor_format() -> Vec<TensorFormat> {
    vec![
        TensorFormat::Dense,
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::HiCoo { block: 2 },
        TensorFormat::HiCoo { block: 4 },
        TensorFormat::Rlc { run_bits: 2 },
        TensorFormat::Zvc,
    ]
}

/// Deterministic fixture matrices hitting the encoders' edge positions.
fn fixture_matrices() -> Vec<(&'static str, CooMatrix)> {
    let full = CooMatrix::from_triplets(
        3,
        4,
        (0..3)
            .flat_map(|r| (0..4).map(move |c| (r, c, (r * 4 + c + 1) as f64)))
            .collect(),
    )
    .unwrap();
    let banded = CooMatrix::from_triplets(
        6,
        6,
        (0..6)
            .flat_map(|r: usize| {
                [(r, r, 2.0), (r, r + 1, -1.0)]
                    .into_iter()
                    .filter(|&(_, c, _)| c < 6)
                    .collect::<Vec<_>>()
            })
            .collect(),
    )
    .unwrap();
    vec![
        ("empty", CooMatrix::empty(5, 7)),
        (
            "single_first",
            CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.5)]).unwrap(),
        ),
        (
            "single_last",
            CooMatrix::from_triplets(4, 5, vec![(3, 4, -2.5)]).unwrap(),
        ),
        (
            "one_by_one",
            CooMatrix::from_triplets(1, 1, vec![(0, 0, 9.0)]).unwrap(),
        ),
        ("full_dense", full),
        ("banded", banded),
        (
            "single_column",
            CooMatrix::from_triplets(6, 1, vec![(0, 0, 1.0), (3, 0, 2.0), (5, 0, 3.0)]).unwrap(),
        ),
        (
            "single_row",
            CooMatrix::from_triplets(1, 8, vec![(0, 1, 4.0), (0, 6, 5.0)]).unwrap(),
        ),
        (
            "ragged",
            CooMatrix::from_triplets(
                5,
                6,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 2.0),
                    (0, 2, 3.0),
                    (0, 5, 4.0),
                    (2, 3, 5.0),
                    (4, 0, 6.0),
                    (4, 5, 7.0),
                ],
            )
            .unwrap(),
        ),
    ]
}

/// Deterministic fixture tensors (same idea, one dimension up).
fn fixture_tensors() -> Vec<(&'static str, CooTensor3)> {
    let full = CooTensor3::from_quads(
        2,
        2,
        2,
        (0..2)
            .flat_map(|x| {
                (0..2).flat_map(move |y| {
                    (0..2).map(move |z| (x, y, z, (x * 4 + y * 2 + z + 1) as f64))
                })
            })
            .collect(),
    )
    .unwrap();
    vec![
        ("empty", CooTensor3::from_quads(3, 4, 5, vec![]).unwrap()),
        (
            "corners",
            CooTensor3::from_quads(3, 3, 3, vec![(0, 0, 0, 1.0), (2, 2, 2, -1.0)]).unwrap(),
        ),
        ("full_dense", full),
        (
            "one_fiber",
            CooTensor3::from_quads(
                4,
                4,
                4,
                vec![(1, 2, 0, 1.0), (1, 2, 1, 2.0), (1, 2, 3, 3.0)],
            )
            .unwrap(),
        ),
        (
            "scattered",
            CooTensor3::from_quads(
                5,
                4,
                6,
                vec![
                    (0, 0, 5, 1.0),
                    (2, 1, 0, 2.0),
                    (2, 3, 3, 3.0),
                    (4, 0, 0, 4.0),
                    (4, 3, 5, 5.0),
                ],
            )
            .unwrap(),
        ),
    ]
}

/// Look a fixture up by name, so tests don't depend on list order.
fn matrix_fixture(name: &str) -> CooMatrix {
    fixture_matrices()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no matrix fixture named {name}"))
        .1
}

#[test]
fn every_matrix_variant_roundtrips_every_fixture() {
    for (name, coo) in fixture_matrices() {
        for fmt in every_matrix_format() {
            let data = MatrixData::encode(&coo, &fmt)
                .unwrap_or_else(|e| panic!("{fmt} failed to encode fixture {name}: {e}"));
            assert_eq!(
                data.to_coo(),
                coo,
                "roundtrip mismatch for {fmt} on fixture {name}"
            );
            assert_eq!(
                data.nnz(),
                coo.nnz(),
                "nnz mismatch for {fmt} on fixture {name}"
            );
        }
    }
}

#[test]
fn every_matrix_variant_random_access_matches_dense() {
    for (name, coo) in fixture_matrices() {
        for fmt in every_matrix_format() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            for r in 0..coo.rows() {
                for c in 0..coo.cols() {
                    assert_eq!(
                        data.get(r, c),
                        coo.get(r, c),
                        "{fmt} fixture {name} disagrees at ({r},{c})"
                    );
                }
            }
        }
    }
}

#[test]
fn every_tensor_variant_roundtrips_every_fixture() {
    for (name, coo) in fixture_tensors() {
        for fmt in every_tensor_format() {
            let data = TensorData::encode(&coo, &fmt)
                .unwrap_or_else(|e| panic!("{fmt} failed to encode fixture {name}: {e}"));
            assert_eq!(
                data.to_coo(),
                coo,
                "roundtrip mismatch for {fmt} on fixture {name}"
            );
            assert_eq!(
                data.nnz(),
                coo.nnz(),
                "nnz mismatch for {fmt} on fixture {name}"
            );
        }
    }
}

// Direct concrete-type round-trips for the formats the seed suites
// exercise only through the MatrixData dispatcher.

#[test]
fn dia_direct_roundtrip_and_access() {
    let banded = matrix_fixture("banded");
    let dia = DiaMatrix::from_coo(&banded);
    assert_eq!(dia.to_coo(), banded);
    assert_eq!(dia.get(0, 0), 2.0);
    assert_eq!(dia.get(0, 1), -1.0);
    assert_eq!(dia.get(5, 0), 0.0);
    // An anti-diagonal matrix stresses the offset bookkeeping: every
    // nonzero sits on a distinct diagonal.
    let anti = CooMatrix::from_triplets(4, 4, (0..4).map(|i| (i, 3 - i, 1.0 + i as f64)).collect())
        .unwrap();
    let dia = DiaMatrix::from_coo(&anti);
    assert_eq!(dia.num_diagonals(), 4);
    assert_eq!(dia.to_coo(), anti);
}

#[test]
fn ell_direct_roundtrip_handles_ragged_rows() {
    let ragged = matrix_fixture("ragged");
    let ell = EllMatrix::from_coo(&ragged);
    assert_eq!(ell.to_coo(), ragged);
    // Longest row has 4 entries; padding must not leak into decode.
    for r in 0..ragged.rows() {
        for c in 0..ragged.cols() {
            assert_eq!(ell.get(r, c), ragged.get(r, c), "({r},{c})");
        }
    }
    let empty = CooMatrix::empty(3, 3);
    assert_eq!(EllMatrix::from_coo(&empty).to_coo(), empty);
}

#[test]
fn zvc_matrix_and_tensor_direct_roundtrip() {
    for (name, coo) in fixture_matrices() {
        let zvc = ZvcMatrix::from_coo(&coo);
        assert_eq!(zvc.to_coo(), coo, "zvc matrix fixture {name}");
    }
    for (name, coo) in fixture_tensors() {
        let zvc = ZvcTensor3::from_coo(&coo);
        assert_eq!(zvc.to_coo(), coo, "zvc tensor fixture {name}");
    }
}

#[test]
fn hicoo_direct_roundtrip_across_block_sizes() {
    for (name, coo) in fixture_tensors() {
        for block in [1usize, 2, 4, 8] {
            let hicoo = HiCooTensor::from_coo(&coo, block)
                .unwrap_or_else(|e| panic!("block {block} fixture {name}: {e}"));
            assert_eq!(hicoo.to_coo(), coo, "hicoo block {block} fixture {name}");
            assert_eq!(hicoo.nnz(), coo.nnz());
        }
    }
}

#[test]
fn hicoo_block_larger_than_tensor_degenerates_to_one_block() {
    let coo = CooTensor3::from_quads(3, 3, 3, vec![(0, 1, 2, 1.0), (2, 0, 1, 2.0)]).unwrap();
    let hicoo = HiCooTensor::from_coo(&coo, 8).unwrap();
    assert_eq!(hicoo.to_coo(), coo);
}

//! Logical element datatypes and bit-width accounting.
//!
//! The paper's compactness study (Fig. 4) sweeps the element datatype
//! (32-bit, 16-bit, 8-bit): "As the number of bits per data element goes
//! down, the percentage of memory that goes to the compression format
//! metadata goes up." Every size-model function in this crate is therefore
//! parameterized on a [`DataType`].

/// Logical datatype of tensor elements, used for storage and energy
/// accounting (the functional payload is always carried as `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 8-bit integer (quantized DL inference).
    Int8,
    /// 16-bit integer.
    Int16,
    /// 16-bit brain floating point.
    Bf16,
    /// 32-bit integer (metadata arithmetic inside the accelerator).
    Int32,
    /// 32-bit IEEE float — the paper's default evaluation datatype.
    Fp32,
    /// 64-bit IEEE float (scientific computing extension).
    Fp64,
}

impl DataType {
    /// Bit width of one element.
    #[inline]
    pub const fn bits(self) -> u64 {
        match self {
            DataType::Int8 => 8,
            DataType::Int16 | DataType::Bf16 => 16,
            DataType::Int32 | DataType::Fp32 => 32,
            DataType::Fp64 => 64,
        }
    }

    /// Byte width of one element (bits / 8).
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.bits() / 8
    }

    /// All datatypes swept by the paper's Fig. 4 analysis.
    pub const fn sweep() -> [DataType; 3] {
        [DataType::Fp32, DataType::Int16, DataType::Int8]
    }

    /// Short human-readable name, used in benchmark CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Int8 => "int8",
            DataType::Int16 => "int16",
            DataType::Bf16 => "bf16",
            DataType::Int32 => "int32",
            DataType::Fp32 => "fp32",
            DataType::Fp64 => "fp64",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::DataType;

    #[test]
    fn bit_widths() {
        assert_eq!(DataType::Int8.bits(), 8);
        assert_eq!(DataType::Int16.bits(), 16);
        assert_eq!(DataType::Bf16.bits(), 16);
        assert_eq!(DataType::Int32.bits(), 32);
        assert_eq!(DataType::Fp32.bits(), 32);
        assert_eq!(DataType::Fp64.bits(), 64);
    }

    #[test]
    fn byte_widths_consistent_with_bits() {
        for dt in [
            DataType::Int8,
            DataType::Int16,
            DataType::Bf16,
            DataType::Int32,
            DataType::Fp32,
            DataType::Fp64,
        ] {
            assert_eq!(dt.bytes() * 8, dt.bits());
        }
    }

    #[test]
    fn names_unique() {
        let names: Vec<_> = [
            DataType::Int8,
            DataType::Int16,
            DataType::Bf16,
            DataType::Int32,
            DataType::Fp32,
            DataType::Fp64,
        ]
        .iter()
        .map(|d| d.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}

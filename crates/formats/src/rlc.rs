//! Run-Length Coding (RLC) format for matrices and 3-D tensors.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::tensor::CooTensor3;
use crate::traits::{SparseMatrix, SparseTensor3};
use crate::Value;

/// One RLC entry: `zeros` zero elements followed by one stored element.
///
/// Fig. 3a's example stream `0 a 0 b 2 c 0 d 4 e 4 f` is exactly this
/// encoding over the row-major flattened matrix. When a run of zeros
/// exceeds the representable maximum (`2^run_bits - 1`), the encoder emits
/// *extension entries* whose stored element is itself zero — the same
/// saturating-run trick Eyeriss uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlcEntry {
    /// Number of zeros preceding `value` (`<= max_run`).
    pub zeros: u64,
    /// The stored element (zero only for run-extension entries).
    pub value: Value,
}

/// Default run-field width in bits. With 4 bits a run saturates at 15,
/// matching the RLC deployments the paper cites (Eyeriss).
pub const DEFAULT_RUN_BITS: u32 = 4;

/// Run-length coded sparse matrix over the row-major flattened stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RlcMatrix {
    rows: usize,
    cols: usize,
    run_bits: u32,
    entries: Vec<RlcEntry>,
    /// Zeros after the final entry (not entry-encoded; the size model
    /// charges extension entries for them).
    trailing_zeros: u64,
}

impl RlcMatrix {
    /// Encode from the COO hub with the given run-field width.
    pub fn from_coo(coo: &CooMatrix, run_bits: u32) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        // Walk the row-major flat index space, emitting runs between
        // consecutive nonzeros without materializing the dense stream.
        let max_run = (1u64 << run_bits) - 1;
        let mut entries = Vec::with_capacity(coo.nnz());
        let mut cursor = 0u64; // next flat index to account for
        for (r, c, v) in coo.iter() {
            let flat = (r * cols + c) as u64;
            let mut gap = flat - cursor;
            while gap > max_run {
                entries.push(RlcEntry {
                    zeros: max_run,
                    value: 0.0,
                });
                gap -= max_run + 1;
            }
            entries.push(RlcEntry {
                zeros: gap,
                value: v,
            });
            cursor = flat + 1;
        }
        let trailing_zeros = (rows * cols) as u64 - cursor;
        RlcMatrix {
            rows,
            cols,
            run_bits,
            entries,
            trailing_zeros,
        }
    }

    /// Encode with [`DEFAULT_RUN_BITS`].
    pub fn from_coo_default(coo: &CooMatrix) -> Self {
        Self::from_coo(coo, DEFAULT_RUN_BITS)
    }

    /// Build from raw entries (tests / MINT decoder output).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        run_bits: u32,
        entries: Vec<RlcEntry>,
        trailing_zeros: u64,
    ) -> Result<Self, FormatError> {
        let max_run = (1u64 << run_bits) - 1;
        let mut total = trailing_zeros;
        for e in &entries {
            if e.zeros > max_run {
                return Err(FormatError::MalformedPointer {
                    what: "RLC run exceeds run_bits",
                });
            }
            total += e.zeros + 1;
        }
        if total != (rows * cols) as u64 {
            return Err(FormatError::LengthMismatch {
                what: "RLC stream length vs rows*cols",
                expected: rows * cols,
                actual: total as usize,
            });
        }
        Ok(RlcMatrix {
            rows,
            cols,
            run_bits,
            entries,
            trailing_zeros,
        })
    }

    /// Run-field width in bits.
    #[inline]
    pub fn run_bits(&self) -> u32 {
        self.run_bits
    }

    /// Encoded entries (including run-extension entries).
    #[inline]
    pub fn entries(&self) -> &[RlcEntry] {
        &self.entries
    }

    /// Zeros after the final entry.
    #[inline]
    pub fn trailing_zeros(&self) -> u64 {
        self.trailing_zeros
    }

    /// Total entries the *encoded stream* carries — the unit of bus traffic
    /// for an RLC MCF (each entry = run field + element).
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }
}

impl SparseMatrix for RlcMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.entries.iter().filter(|e| e.value != 0.0).count()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let target = (row * self.cols + col) as u64;
        let mut cursor = 0u64;
        for e in &self.entries {
            let pos = cursor + e.zeros;
            if target < pos {
                return 0.0;
            }
            if target == pos {
                return e.value;
            }
            cursor = pos + 1;
        }
        0.0
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.entries.len());
        let mut cursor = 0u64;
        for e in &self.entries {
            let pos = cursor + e.zeros;
            if e.value != 0.0 {
                let r = (pos as usize) / self.cols;
                let c = (pos as usize) % self.cols;
                triplets.push((r, c, e.value));
            }
            cursor = pos + 1;
        }
        CooMatrix::from_sorted_triplets(self.rows, self.cols, triplets)
            .expect("RLC stream is row-major ordered")
    }
}

/// Run-length coded 3-D tensor over the `x -> y -> z` (z fastest)
/// flattened stream, matching Fig. 3b's RLC example.
#[derive(Debug, Clone, PartialEq)]
pub struct RlcTensor3 {
    dims: (usize, usize, usize),
    run_bits: u32,
    entries: Vec<RlcEntry>,
    trailing_zeros: u64,
}

impl RlcTensor3 {
    /// Encode from the COO tensor hub.
    pub fn from_coo(coo: &CooTensor3, run_bits: u32) -> Self {
        let (dx, dy, dz) = coo.shape();
        let max_run = (1u64 << run_bits) - 1;
        let mut entries = Vec::with_capacity(coo.nnz());
        let mut cursor = 0u64;
        for (x, y, z, v) in coo.iter() {
            let flat = ((x * dy + y) * dz + z) as u64;
            let mut gap = flat - cursor;
            while gap > max_run {
                entries.push(RlcEntry {
                    zeros: max_run,
                    value: 0.0,
                });
                gap -= max_run + 1;
            }
            entries.push(RlcEntry {
                zeros: gap,
                value: v,
            });
            cursor = flat + 1;
        }
        let trailing_zeros = (dx * dy * dz) as u64 - cursor;
        RlcTensor3 {
            dims: (dx, dy, dz),
            run_bits,
            entries,
            trailing_zeros,
        }
    }

    /// Run-field width in bits.
    #[inline]
    pub fn run_bits(&self) -> u32 {
        self.run_bits
    }

    /// Encoded entries.
    #[inline]
    pub fn entries(&self) -> &[RlcEntry] {
        &self.entries
    }

    /// Total encoded entries (bus-traffic unit).
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }
}

impl SparseTensor3 for RlcTensor3 {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.entries.iter().filter(|e| e.value != 0.0).count()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        let target = ((x * self.dims.1 + y) * self.dims.2 + z) as u64;
        let mut cursor = 0u64;
        for e in &self.entries {
            let pos = cursor + e.zeros;
            if target < pos {
                return 0.0;
            }
            if target == pos {
                return e.value;
            }
            cursor = pos + 1;
        }
        0.0
    }
    fn to_coo(&self) -> CooTensor3 {
        let (dy, dz) = (self.dims.1, self.dims.2);
        let mut quads = Vec::with_capacity(self.entries.len());
        let mut cursor = 0u64;
        for e in &self.entries {
            let pos = cursor + e.zeros;
            if e.value != 0.0 {
                let p = pos as usize;
                let x = p / (dy * dz);
                let y = (p / dz) % dy;
                let z = p % dz;
                quads.push((x, y, z, e.value));
            }
            cursor = pos + 1;
        }
        CooTensor3::from_quads(self.dims.0, dy, dz, quads)
            .expect("RLC tensor stream coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3a's RLC stream: `0 a 0 b 2 c 0 d 4 e 4 f` followed by a
    /// trailing run of 4 zeros — a 4x4 matrix with nonzeros at flat
    /// positions 0, 2, 5, 6, 11... Let's verify against a literal layout.
    fn fig3a_like() -> CooMatrix {
        // Flat positions: a@1 (run 0 means "0 zeros then a"? The figure
        // starts `0 a`, i.e. run=0, value=a at flat 0). We use:
        // a@0, b@1(run 0)... Simplest faithful check: encode a known
        // pattern and verify runs.
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_runs_match_layout() {
        // Flat nonzeros at 0,1,4,5,10,15.
        let rlc = RlcMatrix::from_coo(&fig3a_like(), 4);
        let runs: Vec<u64> = rlc.entries().iter().map(|e| e.zeros).collect();
        assert_eq!(runs, vec![0, 0, 2, 0, 4, 4]);
        assert_eq!(rlc.trailing_zeros(), 0);
        assert_eq!(rlc.stored_entries(), 6);
    }

    #[test]
    fn roundtrip() {
        let coo = fig3a_like();
        let rlc = RlcMatrix::from_coo(&coo, 4);
        assert_eq!(rlc.to_coo(), coo);
        assert_eq!(rlc.nnz(), 6);
    }

    #[test]
    fn long_runs_saturate_into_extension_entries() {
        // One nonzero at the end of a 1x40 row with 3-bit runs (max 7).
        let coo = CooMatrix::from_triplets(1, 40, vec![(0, 39, 9.0)]).unwrap();
        let rlc = RlcMatrix::from_coo(&coo, 3);
        // 39 zeros = 4 extension entries (4*8=32 elements) + run of 7.
        assert_eq!(rlc.stored_entries(), 5);
        let last = rlc.entries().last().unwrap();
        assert_eq!(last.zeros, 7);
        assert_eq!(last.value, 9.0);
        assert_eq!(rlc.to_coo(), coo);
        assert_eq!(rlc.nnz(), 1);
    }

    #[test]
    fn trailing_zeros_accounted() {
        let coo = CooMatrix::from_triplets(2, 4, vec![(0, 1, 3.0)]).unwrap();
        let rlc = RlcMatrix::from_coo(&coo, 4);
        assert_eq!(rlc.trailing_zeros(), 6);
        assert_eq!(rlc.to_coo(), coo);
    }

    #[test]
    fn get_scans_stream() {
        let coo = fig3a_like();
        let rlc = RlcMatrix::from_coo(&coo, 4);
        assert_eq!(rlc.get(2, 2), 5.0);
        assert_eq!(rlc.get(2, 3), 0.0);
        assert_eq!(rlc.get(3, 3), 6.0);
    }

    #[test]
    fn from_parts_validates_stream_length() {
        let e = vec![RlcEntry {
            zeros: 1,
            value: 2.0,
        }];
        assert!(RlcMatrix::from_parts(1, 4, 4, e.clone(), 2).is_ok());
        assert!(RlcMatrix::from_parts(1, 4, 4, e.clone(), 3).is_err());
        let bad = vec![RlcEntry {
            zeros: 99,
            value: 2.0,
        }];
        assert!(RlcMatrix::from_parts(1, 128, 4, bad, 28).is_err());
    }

    #[test]
    fn tensor_roundtrip() {
        let coo = CooTensor3::from_quads(
            3,
            3,
            3,
            vec![(0, 0, 1, 1.0), (1, 2, 0, 2.0), (2, 2, 2, 3.0)],
        )
        .unwrap();
        let rlc = RlcTensor3::from_coo(&coo, 4);
        assert_eq!(rlc.to_coo(), coo);
        assert_eq!(rlc.nnz(), 3);
        assert_eq!(rlc.get(1, 2, 0), 2.0);
        assert_eq!(rlc.get(1, 2, 1), 0.0);
    }

    #[test]
    fn empty_matrix_is_all_trailing() {
        let coo = CooMatrix::empty(4, 4);
        let rlc = RlcMatrix::from_coo(&coo, 4);
        assert_eq!(rlc.stored_entries(), 0);
        assert_eq!(rlc.trailing_zeros(), 16);
        assert_eq!(rlc.to_coo(), coo);
    }
}

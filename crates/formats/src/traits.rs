//! Common traits implemented by every matrix / tensor format.

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::tensor::{CooTensor3, DenseTensor3};
use crate::Value;

/// Behaviour common to every 2-D format in this crate.
///
/// Every format can report its logical shape and nonzero count, perform a
/// (possibly slow) random-access read, and round-trip through [`CooMatrix`],
/// which acts as the conversion hub.
pub trait SparseMatrix {
    /// Number of rows (`M` in the paper's notation).
    fn rows(&self) -> usize;
    /// Number of columns (`K` for the streaming operand, `N` for outputs).
    fn cols(&self) -> usize;
    /// Number of *stored* nonzero elements. Blocked/padded formats (BSR,
    /// DIA, ELL) may store explicit zeros; those are never counted here.
    /// The physical slot count lives in one place:
    /// `MatrixData::stored_elements()` (vs `MatrixData::logical_nnz()`),
    /// computed from the format's per-rank descriptor.
    fn nnz(&self) -> usize;
    /// Random-access read of element `(row, col)`; zero if not stored.
    fn get(&self, row: usize, col: usize) -> Value;
    /// Convert to the COO hub representation (sorted row-major, no
    /// duplicates, no explicit zeros).
    fn to_coo(&self) -> CooMatrix;

    /// Density in `[0, 1]`: `nnz / (rows * cols)`.
    fn density(&self) -> f64 {
        if self.rows() == 0 || self.cols() == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows() as f64 * self.cols() as f64)
        }
    }

    /// Materialize as a dense matrix (test/debug helper; allocates
    /// `rows * cols` values).
    fn to_dense(&self) -> DenseMatrix {
        self.to_coo().into_dense()
    }
}

/// Behaviour common to every 3-D tensor format in this crate.
///
/// Dimension naming follows the paper's Fig. 3b: a tensor of shape
/// `(x_dim, y_dim, z_dim)`.
pub trait SparseTensor3 {
    /// Extent of the first (x) mode.
    fn dim_x(&self) -> usize;
    /// Extent of the second (y) mode.
    fn dim_y(&self) -> usize;
    /// Extent of the third (z) mode.
    fn dim_z(&self) -> usize;
    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;
    /// Random-access read; zero if not stored.
    fn get(&self, x: usize, y: usize, z: usize) -> Value;
    /// Convert to the COO hub representation (sorted x-major).
    fn to_coo(&self) -> CooTensor3;

    /// Shape as a `(x, y, z)` triple.
    fn shape(&self) -> (usize, usize, usize) {
        (self.dim_x(), self.dim_y(), self.dim_z())
    }

    /// Density in `[0, 1]`.
    fn density(&self) -> f64 {
        let vol = self.dim_x() as f64 * self.dim_y() as f64 * self.dim_z() as f64;
        if vol == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / vol
        }
    }

    /// Materialize as a dense tensor (test/debug helper).
    fn to_dense(&self) -> DenseTensor3 {
        self.to_coo().into_dense()
    }
}

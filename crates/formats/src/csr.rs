//! Compressed Sparse Row (CSR) format.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Compressed Sparse Row matrix (Fig. 3a).
///
/// `row_ptr[r]..row_ptr[r+1]` indexes the `col_ids`/`values` slice of row
/// `r`. CSR is the paper's normalization baseline for the compactness study
/// (Fig. 4a is "normalized to CSR") and the preferred ACF for the streaming
/// operand at low density (Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_ids: Vec<usize>,
    values: Vec<Value>,
}

impl CsrMatrix {
    /// Build from raw parts, validating the pointer structure.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_ids: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if row_ptr.len() != rows + 1 {
            return Err(FormatError::LengthMismatch {
                what: "row_ptr vs rows+1",
                expected: rows + 1,
                actual: row_ptr.len(),
            });
        }
        if col_ids.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "col_ids vs values",
                expected: values.len(),
                actual: col_ids.len(),
            });
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&values.len()) {
            return Err(FormatError::MalformedPointer {
                what: "row_ptr endpoints",
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::MalformedPointer {
                what: "row_ptr not monotonic",
            });
        }
        for r in 0..rows {
            let seg = &col_ids[row_ptr[r]..row_ptr[r + 1]];
            if seg.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::MalformedPointer {
                    what: "col_ids not strictly increasing within a row",
                });
            }
            if let Some(&c) = seg.last() {
                if c >= cols {
                    return Err(FormatError::IndexOutOfBounds {
                        index: c,
                        bound: cols,
                        axis: 1,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_ids,
            values,
        })
    }

    /// Convert from the COO hub (linear time; COO is already row-major).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0usize; rows + 1];
        for &r in coo.row_ids() {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_ids: coo.col_ids().to_vec(),
            values: coo.values().to_vec(),
        }
    }

    /// Row pointer array (`rows + 1` entries; `row_ptr[0] == 0`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, parallel to [`values`](Self::values).
    #[inline]
    pub fn col_ids(&self) -> &[usize] {
        &self.col_ids
    }

    /// Stored nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// `(col_ids, values)` slices of one row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[Value]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_ids[s..e], &self.values[s..e])
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterate `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cs, vs) = self.row(r);
            cs.iter().zip(vs).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Decompose into `(rows, cols, row_ptr, col_ids, values)`, giving the
    /// caller ownership of the backing arrays — the inverse of
    /// [`from_parts`](Self::from_parts). Used by the stream arena to
    /// recycle conversion buffers across tile loops.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<Value>) {
        (
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_ids,
            self.values,
        )
    }

    /// Transpose by converting to CSC-ordered arrays and reinterpreting —
    /// the classic counting-sort transpose (same algorithm MINT runs in
    /// hardware for CSR→CSC, Fig. 8c).
    pub fn transpose(&self) -> CsrMatrix {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_ids {
            col_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut next = col_ptr.clone();
        let mut out_rows = vec![0usize; self.values.len()];
        let mut out_vals = vec![0.0; self.values.len()];
        for (r, c, v) in self.iter() {
            let slot = next[c];
            next[c] += 1;
            out_rows[slot] = r;
            out_vals[slot] = v;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr: col_ptr,
            col_ids: out_rows,
            values: out_vals,
        }
    }
}

impl SparseMatrix for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let (cs, vs) = self.row(row);
        match cs.binary_search(&col) {
            Ok(i) => vs[i],
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let triplets: Vec<_> = self.iter().collect();
        CooMatrix::from_sorted_triplets(self.rows, self.cols, triplets)
            .expect("CSR iteration is row-major sorted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3a CSR example: values `a c b d e f`,
    /// col_ids `0 1 0 1 2 3`, row_ptr `0 2 4 5 6`.
    fn fig3a_csr() -> CsrMatrix {
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 4, 5, 6],
            vec![0, 1, 0, 1, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn fig3a_structure() {
        let m = fig3a_csr();
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(2), 1);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn from_parts_validation() {
        // Bad row_ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Endpoint wrong.
        assert!(CsrMatrix::from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        // Non-monotonic.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Duplicate column within a row.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn coo_roundtrip() {
        let m = fig3a_csr();
        let coo = m.to_coo();
        assert_eq!(CsrMatrix::from_coo(&coo), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = fig3a_csr();
        let td = m.to_dense().transpose();
        assert_eq!(m.transpose().to_dense(), td);
    }

    #[test]
    fn transpose_rectangular() {
        let coo =
            CooMatrix::from_triplets(2, 5, vec![(0, 4, 1.0), (1, 0, 2.0), (1, 3, 3.0)]).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(4, 0), 1.0);
        assert_eq!(t.get(3, 1), 3.0);
    }

    #[test]
    fn iter_order_is_row_major() {
        let m = fig3a_csr();
        let keys: Vec<_> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn empty_rows_handled() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(3, 3, 9.0)]).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.row_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.get(3, 3), 9.0);
    }
}

//! Byte-level primitives for binary wire encodings.
//!
//! The serving layer (`sparseflex-serve`) speaks a compact little-endian
//! binary protocol; this module holds the format-agnostic half of it — a
//! bounds-checked [`ByteReader`] / [`ByteWriter`] pair plus the FNV-1a
//! checksum the frames carry — so any crate can assemble or parse wire
//! payloads without pulling in the service itself. Every read is
//! length-checked and returns the typed [`ByteError`] instead of
//! panicking, which is what lets the wire decoder reject truncated or
//! garbled buffers gracefully.

/// Errors raised by the bounds-checked byte reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Bytes the field requires.
        needed: usize,
        /// Bytes remaining in the buffer.
        available: usize,
    },
    /// A length or count field exceeds what the platform (or sanity)
    /// allows.
    Overflow(&'static str),
}

impl std::fmt::Display for ByteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByteError::Truncated { needed, available } => {
                write!(f, "buffer truncated: need {needed} bytes, have {available}")
            }
            ByteError::Overflow(what) => write!(f, "field overflow: {what}"),
        }
    }
}

impl std::error::Error for ByteError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern, little-endian —
    /// the round-trip is bit-exact, including signed zeros and NaNs.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite 8 previously-written bytes at `offset` with a `u64`
    /// (used to patch a checksum into a frame header after the body is
    /// known). Panics if the span was never written — a caller bug, not
    /// a wire condition.
    pub fn patch_u64(&mut self, offset: usize, v: u64) {
        self.buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian byte source. Every `take_*` either
/// yields the value or the typed [`ByteError::Truncated`] — no panics on
/// hostile input.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ByteError> {
        if self.remaining() < n {
            return Err(ByteError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, ByteError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16` little-endian.
    pub fn take_u16(&mut self) -> Result<u16, ByteError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32` little-endian.
    pub fn take_u32(&mut self) -> Result<u32, ByteError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` little-endian.
    pub fn take_u64(&mut self) -> Result<u64, ByteError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern (bit-exact).
    pub fn take_f64(&mut self) -> Result<f64, ByteError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a `u64` that must fit a `usize` on this platform.
    pub fn take_len(&mut self, what: &'static str) -> Result<usize, ByteError> {
        usize::try_from(self.take_u64()?).map_err(|_| ByteError::Overflow(what))
    }

    /// Read `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], ByteError> {
        self.take(n)
    }
}

/// FNV-1a over a byte slice — the cheap, dependency-free integrity
/// checksum the wire frames carry (the same family the descriptor
/// fingerprints use). Not cryptographic; it exists to catch truncation
/// and accidental corruption, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip_is_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(1.5e-300);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        let z = r.take_f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_f64().unwrap(), 1.5e-300);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_not_panics() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u16().unwrap(), 0x0201);
        assert_eq!(
            r.take_u32(),
            Err(ByteError::Truncated {
                needed: 4,
                available: 1
            })
        );
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take_u8().unwrap(), 3);
    }

    #[test]
    fn checksum_patching_and_fnv() {
        let mut w = ByteWriter::new();
        w.put_u64(0); // checksum placeholder
        w.put_bytes(b"payload");
        let sum = fnv1a(&w.as_slice()[8..]);
        w.patch_u64(0, sum);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u64().unwrap(), sum);
        assert_eq!(fnv1a(b"payload"), sum);
        // FNV-1a reference vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

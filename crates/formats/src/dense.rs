//! Dense (uncompressed) matrix storage.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Row-major dense matrix.
///
/// "Dense (uncompressed)" is both an MCF and ACF choice in the paper: at
/// high densities its lack of metadata makes it the most compact MCF
/// (Fig. 4a, right of the second red line) and the most compute-efficient
/// ACF (Fig. 5a, 10%-100% density).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Value>,
}

impl DenseMatrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major buffer. Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Value>) -> Result<Self, FormatError> {
        if data.len() != rows * cols {
            return Err(FormatError::LengthMismatch {
                what: "dense data vs rows*cols",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Build from nested rows (test convenience). Fails on ragged input.
    pub fn from_rows(rows: Vec<Vec<Value>>) -> Result<Self, FormatError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            if row.len() != c {
                return Err(FormatError::LengthMismatch {
                    what: "ragged dense rows",
                    expected: c,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Immutable view of the row-major backing buffer.
    #[inline]
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Value] {
        &mut self.data
    }

    /// One row as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Value] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Write access to element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Value) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Add `v` into element `(r, c)` (accumulation helper for kernels).
    #[inline]
    pub fn add_assign(&mut self, r: usize, c: usize, v: Value) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Count of explicitly nonzero elements (scans the buffer).
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }
}

impl SparseMatrix for DenseMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.count_nonzeros()
    }
    #[inline]
    fn get(&self, row: usize, col: usize) -> Value {
        self.data[row * self.cols + col]
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.data[r * self.cols + c];
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        CooMatrix::from_sorted_triplets(self.rows, self.cols, triplets)
            .expect("dense scan yields sorted, in-bounds triplets")
    }
    fn to_dense(&self) -> DenseMatrix {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![3.0, 4.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(3, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        m.add_assign(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 8.0);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn nnz_counts_explicit_nonzeros() {
        assert_eq!(sample().nnz(), 4);
        assert_eq!(sample().density(), 4.0 / 9.0);
    }

    #[test]
    fn to_coo_roundtrip() {
        let m = sample();
        let coo = m.to_coo();
        assert_eq!(coo.nnz(), 4);
        assert_eq!(coo.into_dense(), m);
    }

    #[test]
    fn row_slice() {
        let m = sample();
        assert_eq!(m.row(2), &[3.0, 4.0, 0.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = sample();
        let mut b = sample();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }
}

//! Storage-size (compactness) model — §III-A of the paper.
//!
//! Two layers are provided:
//!
//! 1. **Analytic** ([`matrix_storage_bits`], [`tensor_storage_bits`]):
//!    closed-form expected sizes given only `(dims, nnz, datatype)`,
//!    assuming the paper's uniform-random nonzero distribution. These
//!    drive the Fig. 4 sweeps and SAGE's cost model.
//! 2. **Exact** ([`matrix_storage_bits_exact`]): measures an actual encoded
//!    payload, including structure-dependent quantities (BSR block count,
//!    DIA diagonal count, ELL width, actual RLC extension entries).
//!
//! Bit accounting follows the paper's rule: every metadata field is charged
//! `ceil(log2(max_possible_value))` bits ([`crate::ceil_log2`]), every
//! element the [`DataType`] width.

use crate::ceil_log2;
use crate::dtype::DataType;
use crate::formats::{MatrixData, MatrixFormat, TensorFormat};
use crate::traits::SparseMatrix;

/// Expected number of RLC entries (nonzero entries + run-extension
/// entries) for a stream of `total` elements containing `nnz` nonzeros and
/// a run field of `run_bits` bits.
///
/// Extension entries are charged as `zeros / (max_run + 1)` — exact when
/// zeros are evenly spread and an upper bound otherwise. This keeps both
/// asymptotes of Fig. 4a: at high density RLC degenerates to one entry per
/// nonzero, at extreme sparsity it floors at `total / (max_run + 1)`
/// entries (why COO overtakes RLC left of the first red line).
pub fn rlc_expected_entries(total: u64, nnz: u64, run_bits: u32) -> u64 {
    let zeros = total.saturating_sub(nnz);
    let max_run = (1u64 << run_bits) - 1;
    nnz + zeros / (max_run + 1)
}

/// Expected number of occupied `br x bc` blocks for a uniform-random
/// `rows x cols` pattern with `nnz` nonzeros.
pub fn bsr_expected_blocks(rows: usize, cols: usize, nnz: usize, br: usize, bc: usize) -> u64 {
    let nbr = rows.div_ceil(br) as f64;
    let nbc = cols.div_ceil(bc) as f64;
    let total = (rows * cols) as f64;
    if total == 0.0 {
        return 0;
    }
    let d = nnz as f64 / total;
    // P(block occupied) = 1 - (1 - d)^(block area)
    let p = 1.0 - (1.0 - d).powi((br * bc) as i32);
    (nbr * nbc * p).ceil() as u64
}

/// Analytic storage size in bits of a matrix with the given shape/nnz in
/// the given format, assuming uniformly random nonzero positions.
///
/// `rows x cols` with `nnz` stored nonzeros and element type `dtype`.
pub fn matrix_storage_bits(
    format: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: usize,
    dtype: DataType,
) -> u64 {
    let m = rows as u64;
    let k = cols as u64;
    let n = nnz as u64;
    let b = dtype.bits();
    match *format {
        MatrixFormat::Dense => m * k * b,
        MatrixFormat::Coo => n * (b + u64::from(ceil_log2(m)) + u64::from(ceil_log2(k))),
        MatrixFormat::Csr => {
            n * (b + u64::from(ceil_log2(k))) + (m + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixFormat::Csc => {
            n * (b + u64::from(ceil_log2(m))) + (k + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixFormat::Rlc { run_bits } => {
            rlc_expected_entries(m * k, n, run_bits) * (b + u64::from(run_bits))
        }
        MatrixFormat::Zvc => n * b + m * k,
        MatrixFormat::Bsr { br, bc } => {
            let blocks = bsr_expected_blocks(rows, cols, nnz, br, bc);
            let nbr = rows.div_ceil(br) as u64;
            let nbc = cols.div_ceil(bc) as u64;
            blocks * ((br * bc) as u64 * b + u64::from(ceil_log2(nbc)))
                + (nbr + 1) * u64::from(ceil_log2(blocks + 1))
        }
        MatrixFormat::Dia => {
            // Expected occupied diagonals for a uniform pattern: each of
            // the (m + k - 1) diagonals of length L_i is occupied with
            // probability 1 - (1-d)^L_i; approximate with the average
            // diagonal length.
            let total = m * k;
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            let ndiags_max = m + k - 1;
            let avg_len = total as f64 / ndiags_max as f64;
            let p = 1.0 - (1.0 - d).powf(avg_len);
            let ndiags = (ndiags_max as f64 * p).ceil() as u64;
            ndiags * (m * b + u64::from(ceil_log2(m + k)))
        }
        MatrixFormat::Ell => {
            // Expected ELL width for uniform random: mean row population
            // plus a dispersion slack of ~2 standard deviations (binomial).
            let total = m * k;
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            let mean = k as f64 * d;
            let sd = (k as f64 * d * (1.0 - d)).sqrt();
            let width = (mean + 2.0 * sd).ceil().max(if n > 0 { 1.0 } else { 0.0 }) as u64;
            let width = width.min(k);
            m * width * (b + u64::from(ceil_log2(k)))
        }
    }
}

/// Exact storage size in bits of an encoded matrix payload.
pub fn matrix_storage_bits_exact(data: &MatrixData, dtype: DataType) -> u64 {
    let rows = data.rows() as u64;
    let cols = data.cols() as u64;
    let b = dtype.bits();
    match data {
        MatrixData::Dense(_) => rows * cols * b,
        MatrixData::Coo(m) => {
            m.nnz() as u64 * (b + u64::from(ceil_log2(rows)) + u64::from(ceil_log2(cols)))
        }
        MatrixData::Csr(m) => {
            let n = m.nnz() as u64;
            n * (b + u64::from(ceil_log2(cols))) + (rows + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixData::Csc(m) => {
            let n = m.nnz() as u64;
            n * (b + u64::from(ceil_log2(rows))) + (cols + 1) * u64::from(ceil_log2(n + 1))
        }
        MatrixData::Bsr(m) => {
            let (br, bc) = m.block_shape();
            let blocks = m.num_blocks() as u64;
            let nbr = m.rows().div_ceil(br) as u64;
            let nbc = m.cols().div_ceil(bc) as u64;
            blocks * ((br * bc) as u64 * b + u64::from(ceil_log2(nbc)))
                + (nbr + 1) * u64::from(ceil_log2(blocks + 1))
        }
        MatrixData::Dia(m) => {
            m.num_diagonals() as u64 * (rows * b + u64::from(ceil_log2(rows + cols)))
        }
        MatrixData::Ell(m) => rows * m.width() as u64 * (b + u64::from(ceil_log2(cols))),
        MatrixData::Rlc(m) => {
            // Trailing zeros are charged the extension entries a streaming
            // encoder would emit for them.
            let max_run = (1u64 << m.run_bits()) - 1;
            let tail_entries = m.trailing_zeros() / (max_run + 1);
            (m.stored_entries() as u64 + tail_entries) * (b + u64::from(m.run_bits()))
        }
        MatrixData::Zvc(m) => m.nnz() as u64 * b + rows * cols,
    }
}

/// Analytic storage size in bits of a 3-D tensor in the given format,
/// assuming uniformly random nonzero positions.
pub fn tensor_storage_bits(
    format: &TensorFormat,
    dims: (usize, usize, usize),
    nnz: usize,
    dtype: DataType,
) -> u64 {
    let (x, y, z) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    let n = nnz as u64;
    let b = dtype.bits();
    let total = x * y * z;
    match *format {
        TensorFormat::Dense => total * b,
        TensorFormat::Coo => {
            n * (b + u64::from(ceil_log2(x)) + u64::from(ceil_log2(y)) + u64::from(ceil_log2(z)))
        }
        TensorFormat::Csf => {
            if total == 0 {
                return 0;
            }
            let d = n as f64 / total as f64;
            // Expected occupied slices and fibers under uniform random.
            let slices = (x as f64 * (1.0 - (1.0 - d).powf((y * z) as f64))).ceil() as u64;
            let fibers = ((x * y) as f64 * (1.0 - (1.0 - d).powf(z as f64))).ceil() as u64;
            n * (b + u64::from(ceil_log2(z)))
                + fibers * u64::from(ceil_log2(y))
                + (fibers + 1) * u64::from(ceil_log2(n + 1))
                + slices * u64::from(ceil_log2(x))
                + (slices + 1) * u64::from(ceil_log2(fibers + 1))
        }
        TensorFormat::HiCoo { block } => {
            if total == 0 {
                return 0;
            }
            let bl = block as u64;
            let d = n as f64 / total as f64;
            let nb = (x.div_ceil(bl) * y.div_ceil(bl) * z.div_ceil(bl)) as f64;
            let p = 1.0 - (1.0 - d).powf((bl * bl * bl) as f64);
            let blocks = (nb * p).ceil() as u64;
            let bbits = u64::from(ceil_log2(x.div_ceil(bl)))
                + u64::from(ceil_log2(y.div_ceil(bl)))
                + u64::from(ceil_log2(z.div_ceil(bl)));
            let ebits = 3 * u64::from(ceil_log2(bl));
            blocks * bbits + (blocks + 1) * u64::from(ceil_log2(n + 1)) + n * (b + ebits)
        }
        TensorFormat::Rlc { run_bits } => {
            rlc_expected_entries(total, n, run_bits) * (b + u64::from(run_bits))
        }
        TensorFormat::Zvc => n * b + total,
    }
}

/// Convenience: analytic size in **bytes** (rounded up).
pub fn matrix_storage_bytes(
    format: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: usize,
    dtype: DataType,
) -> u64 {
    matrix_storage_bits(format, rows, cols, nnz, dtype).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    const FP32: DataType = DataType::Fp32;

    #[test]
    fn dense_size_is_shape_times_bits() {
        assert_eq!(
            matrix_storage_bits(&MatrixFormat::Dense, 10, 20, 5, FP32),
            10 * 20 * 32
        );
        assert_eq!(
            matrix_storage_bits(&MatrixFormat::Dense, 10, 20, 5, DataType::Int8),
            10 * 20 * 8
        );
    }

    #[test]
    fn coo_beats_csr_at_extreme_sparsity() {
        // Fig. 4a: left of the first red line, COO is most compact.
        let (m, k) = (11_000, 11_000);
        let nnz = ((m as f64) * (k as f64) * 1e-8).ceil() as usize; // 10^-6 %
        let coo = matrix_storage_bits(&MatrixFormat::Coo, m, k, nnz, FP32);
        let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, FP32);
        let zvc = matrix_storage_bits(&MatrixFormat::Zvc, m, k, nnz, FP32);
        assert!(coo < csr, "COO {coo} should beat CSR {csr} at 1e-8 density");
        assert!(csr < zvc, "CSR {csr} should beat ZVC {zvc} at 1e-8 density");
    }

    #[test]
    fn zvc_or_rlc_win_mid_density() {
        // Fig. 4a: middle region is "well suited for RLC and ZVC".
        let (m, k) = (11_000, 11_000);
        let nnz = ((m as f64) * (k as f64) * 0.5) as usize; // 50%
        let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, FP32);
        let zvc = matrix_storage_bits(&MatrixFormat::Zvc, m, k, nnz, FP32);
        let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, FP32);
        assert!(zvc < dense, "ZVC {zvc} should beat Dense {dense} at 50%");
        assert!(zvc < csr, "ZVC {zvc} should beat CSR {csr} at 50%");
    }

    #[test]
    fn dense_wins_at_full_density() {
        let (m, k) = (11_000, 11_000);
        let nnz = m * k;
        let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, FP32);
        for fmt in [
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Zvc,
            MatrixFormat::Rlc { run_bits: 4 },
        ] {
            let s = matrix_storage_bits(&fmt, m, k, nnz, FP32);
            assert!(dense <= s, "Dense {dense} should beat {fmt} {s} at 100%");
        }
    }

    #[test]
    fn quantization_shifts_crossovers() {
        // Fig. 4a(i) vs 4a(ii): with 8-bit data the metadata share grows,
        // so the density at which Dense overtakes CSR (the second red
        // line) moves left — CSR's ~14 bits of column metadata per nonzero
        // hurt more when each element is only 8 bits.
        let (m, k) = (11_000, 11_000);
        let find_dense_crossover = |dtype: DataType| -> f64 {
            // Lowest density at which Dense is at least as compact as CSR.
            for i in 1..1000 {
                let dens = i as f64 / 1000.0;
                let nnz = ((m * k) as f64 * dens) as usize;
                let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, dtype);
                let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, dtype);
                if dense <= csr {
                    return dens;
                }
            }
            1.0
        };
        let cross32 = find_dense_crossover(DataType::Fp32);
        let cross8 = find_dense_crossover(DataType::Int8);
        assert!(
            cross8 < cross32,
            "int8 Dense/CSR crossover {cross8} should sit left of fp32 crossover {cross32}"
        );
        // Both crossovers live in a sensible band (Fig. 4a puts them
        // between ~30% and ~80% density).
        assert!(
            cross32 > 0.3 && cross32 < 0.9,
            "fp32 crossover {cross32} out of band"
        );
    }

    #[test]
    fn rlc_entry_model_asymptotes() {
        // Dense end: one entry per nonzero.
        assert_eq!(rlc_expected_entries(100, 100, 4), 100);
        // Empty stream: pure extension entries.
        assert_eq!(rlc_expected_entries(160, 0, 4), 10);
        // Mixed.
        assert_eq!(rlc_expected_entries(100, 10, 4), 10 + 90 / 16);
    }

    #[test]
    fn exact_matches_analytic_for_unstructured() {
        // For COO/CSR/CSC/ZVC/Dense the exact and analytic models must
        // agree (they depend only on dims and nnz).
        let coo = CooMatrix::from_triplets(
            30,
            40,
            (0..57)
                .map(|i| (i % 30, (i * 7) % 40, 1.0 + i as f64))
                .collect(),
        )
        .unwrap();
        let nnz = coo.nnz();
        for fmt in [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Zvc,
        ] {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            assert_eq!(
                matrix_storage_bits_exact(&data, FP32),
                matrix_storage_bits(&fmt, 30, 40, nnz, FP32),
                "mismatch for {fmt}"
            );
        }
    }

    #[test]
    fn exact_bsr_uses_real_block_count() {
        // A perfectly blocked matrix has far fewer blocks than the uniform
        // model expects.
        let mut triplets = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                triplets.push((r, c, 1.0));
            }
        }
        let coo = CooMatrix::from_triplets(64, 64, triplets).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Bsr { br: 4, bc: 4 }).unwrap();
        let exact = matrix_storage_bits_exact(&data, FP32);
        let analytic = matrix_storage_bits(&MatrixFormat::Bsr { br: 4, bc: 4 }, 64, 64, 16, FP32);
        assert!(
            exact <= analytic,
            "clustered exact {exact} should be <= analytic {analytic}"
        );
    }

    #[test]
    fn tensor_sizes_ordering_at_extreme_sparsity() {
        let dims = (1000, 1000, 100);
        let nnz = 500;
        let coo = tensor_storage_bits(&TensorFormat::Coo, dims, nnz, FP32);
        let dense = tensor_storage_bits(&TensorFormat::Dense, dims, nnz, FP32);
        let zvc = tensor_storage_bits(&TensorFormat::Zvc, dims, nnz, FP32);
        assert!(coo < zvc);
        assert!(zvc < dense);
    }

    #[test]
    fn csf_beats_coo_when_fibers_shared() {
        // Dense-ish fibers: many nonzeros share (x, y) prefixes.
        let dims = (100, 100, 1000);
        let nnz = 100 * 100 * 10; // every fiber holds ~10 nonzeros
        let csf = tensor_storage_bits(&TensorFormat::Csf, dims, nnz, FP32);
        let coo = tensor_storage_bits(&TensorFormat::Coo, dims, nnz, FP32);
        assert!(
            csf < coo,
            "CSF {csf} should beat COO {coo} with shared fibers"
        );
    }

    #[test]
    fn bytes_rounds_up() {
        let bits = matrix_storage_bits(&MatrixFormat::Coo, 3, 3, 1, DataType::Int8);
        assert_eq!(
            matrix_storage_bytes(&MatrixFormat::Coo, 3, 3, 1, DataType::Int8),
            bits.div_ceil(8)
        );
    }
}

//! Storage-size (compactness) model — §III-A of the paper — computed
//! **generically from per-rank level descriptors**.
//!
//! The model charges each rank of a [`FormatDescriptor`] for the
//! metadata its [`Level`] keeps (coordinate arrays, offset/pointer
//! arrays, presence bitmasks, run fields) and the values for their
//! [`ValuesLayout`] (contiguous, padded fibers, dense blocks); the sum
//! over ranks is the footprint. The legacy per-format entry points
//! ([`matrix_storage_bits`], [`tensor_storage_bits`],
//! [`matrix_storage_bits_exact`]) are thin wrappers that translate the
//! enum to its descriptor — they are pinned **bit-identical** to the
//! paper's closed-form per-format formulas by the
//! `tests/descriptor_properties.rs` suite, so nothing downstream (SAGE's
//! cost model, the Fig. 4 sweeps, the Table III selections) moves.
//!
//! Two structure sources feed the per-level quantities:
//!
//! 1. **Analytic** ([`MatrixStructure::analytic`]): closed-form expected
//!    counts (occupied blocks, diagonals, ELL width, RLC entries) under
//!    the paper's uniform-random nonzero assumption, given only
//!    `(dims, nnz)`.
//! 2. **Exact** ([`MatrixStructure::exact`]): counts measured from an
//!    actual encoded payload.
//!
//! Bit accounting follows the paper's rule: every metadata field is
//! charged `ceil(log2(max_possible_value))` bits ([`crate::ceil_log2`]),
//! every element the [`DataType`] width.

use crate::ceil_log2;
use crate::descriptor::{FormatDescriptor, Level, RankOrder, ValuesLayout};
use crate::dtype::DataType;
use crate::error::FormatError;
use crate::formats::{MatrixData, MatrixFormat, TensorFormat};
use crate::traits::SparseMatrix;

/// Expected number of RLC entries (nonzero entries + run-extension
/// entries) for a stream of `total` elements containing `nnz` nonzeros and
/// a run field of `run_bits` bits.
///
/// Extension entries are charged as `zeros / (max_run + 1)` — exact when
/// zeros are evenly spread and an upper bound otherwise. This keeps both
/// asymptotes of Fig. 4a: at high density RLC degenerates to one entry per
/// nonzero, at extreme sparsity it floors at `total / (max_run + 1)`
/// entries (why COO overtakes RLC left of the first red line).
pub fn rlc_expected_entries(total: u64, nnz: u64, run_bits: u32) -> u64 {
    let zeros = total.saturating_sub(nnz);
    let max_run = (1u64 << run_bits) - 1;
    nnz + zeros / (max_run + 1)
}

/// Expected number of occupied `br x bc` blocks for a uniform-random
/// `rows x cols` pattern with `nnz` nonzeros.
pub fn bsr_expected_blocks(rows: usize, cols: usize, nnz: usize, br: usize, bc: usize) -> u64 {
    let nbr = rows.div_ceil(br) as f64;
    let nbc = cols.div_ceil(bc) as f64;
    let total = (rows * cols) as f64;
    if total == 0.0 {
        return 0;
    }
    let d = nnz as f64 / total;
    // P(block occupied) = 1 - (1 - d)^(block area)
    let p = 1.0 - (1.0 - d).powi((br * bc) as i32);
    (nbr * nbc * p).ceil() as u64
}

/// Expected number of occupied diagonals for a uniform-random pattern:
/// each of the `(rows + cols - 1)` diagonals of length `L_i` is occupied
/// with probability `1 - (1-d)^L_i`; approximated with the average
/// diagonal length.
pub fn dia_expected_diagonals(rows: usize, cols: usize, nnz: usize) -> u64 {
    let (m, k, n) = (rows as u64, cols as u64, nnz as u64);
    let total = m * k;
    if total == 0 {
        return 0;
    }
    let d = n as f64 / total as f64;
    let ndiags_max = m + k - 1;
    let avg_len = total as f64 / ndiags_max as f64;
    let p = 1.0 - (1.0 - d).powf(avg_len);
    (ndiags_max as f64 * p).ceil() as u64
}

/// Expected ELL width for a uniform-random pattern: mean row population
/// plus a dispersion slack of ~2 standard deviations (binomial).
pub fn ell_expected_width(rows: usize, cols: usize, nnz: usize) -> u64 {
    let (m, k, n) = (rows as u64, cols as u64, nnz as u64);
    let total = m * k;
    if total == 0 {
        return 0;
    }
    let d = n as f64 / total as f64;
    let mean = k as f64 * d;
    let sd = (k as f64 * d * (1.0 - d)).sqrt();
    let width = (mean + 2.0 * sd).ceil().max(if n > 0 { 1.0 } else { 0.0 }) as u64;
    width.min(k)
}

/// Expected number of non-empty fibers (rows of a row-major matrix) for
/// a uniform-random pattern: `fibers * (1 - (1-d)^extent)`.
pub fn expected_nonempty_fibers(fibers: u64, extent: u64, nnz: u64) -> u64 {
    let total = fibers * extent;
    if total == 0 {
        return 0;
    }
    let d = nnz as f64 / total as f64;
    let p = 1.0 - (1.0 - d).powf(extent as f64);
    ((fibers as f64 * p).ceil() as u64)
        .min(fibers)
        .max(u64::from(nnz > 0))
}

/// The per-operand structural quantities the level model consumes.
/// `None` fields fall back to the analytic (uniform-random) estimates;
/// [`MatrixStructure::exact`] fills them from a real payload instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatrixStructure {
    /// Logical rows.
    pub rows: usize,
    /// Logical columns.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Occupied blocks (blocked outer ranks).
    pub blocks: Option<u64>,
    /// Occupied diagonals (diagonal rank order).
    pub diagonals: Option<u64>,
    /// Padded row width (padded-fiber singleton ranks).
    pub ell_width: Option<u64>,
    /// Stored run-length entries, extension entries included.
    pub rlc_entries: Option<u64>,
    /// Non-empty outer fibers (bitmask outer ranks).
    pub nonempty_fibers: Option<u64>,
}

impl MatrixStructure {
    /// A structure with only `(dims, nnz)` known — every level quantity
    /// uses its analytic uniform-random estimate.
    pub fn analytic(rows: usize, cols: usize, nnz: usize) -> Self {
        MatrixStructure {
            rows,
            cols,
            nnz,
            ..Default::default()
        }
    }

    /// Measure the structure of an actual encoded payload, so the level
    /// model charges real block/diagonal/width/run counts.
    pub fn exact(data: &MatrixData) -> Self {
        let mut s = MatrixStructure::analytic(data.rows(), data.cols(), data.nnz());
        match data {
            MatrixData::Bsr(m) => s.blocks = Some(m.num_blocks() as u64),
            MatrixData::Dia(m) => s.diagonals = Some(m.num_diagonals() as u64),
            MatrixData::Ell(m) => s.ell_width = Some(m.width() as u64),
            MatrixData::Rlc(m) => {
                // Trailing zeros are charged the extension entries a
                // streaming encoder would emit for them.
                let max_run = (1u64 << m.run_bits()) - 1;
                let tail_entries = m.trailing_zeros() / (max_run + 1);
                s.rlc_entries = Some(m.stored_entries() as u64 + tail_entries);
            }
            _ => {}
        }
        s
    }
}

/// One rank's metadata charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankCharge {
    /// The level this rank is encoded with.
    pub level: Level,
    /// Bits in explicit coordinate arrays.
    pub coord_bits: u64,
    /// Bits in offset/pointer arrays delimiting parent fibers.
    pub ptr_bits: u64,
    /// Bits in presence bitmasks.
    pub mask_bits: u64,
    /// Bits in run-length fields.
    pub run_bits: u64,
}

impl RankCharge {
    fn new(level: Level) -> Self {
        RankCharge {
            level,
            coord_bits: 0,
            ptr_bits: 0,
            mask_bits: 0,
            run_bits: 0,
        }
    }

    /// All metadata bits this rank charges.
    pub fn metadata_bits(&self) -> u64 {
        self.coord_bits + self.ptr_bits + self.mask_bits + self.run_bits
    }
}

/// A descriptor-sized footprint, broken down by rank — what
/// `ExecutionPlan::explain` and the compactness exhibits render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Per-rank metadata charges, outermost first.
    pub ranks: Vec<RankCharge>,
    /// Bits spent on stored value slots (padding included).
    pub values_bits: u64,
    /// Value slots stored (≥ nnz for padded/blocked/run layouts).
    pub stored_elements: u64,
}

impl SizeBreakdown {
    /// Total footprint in bits.
    pub fn total(&self) -> u64 {
        self.ranks
            .iter()
            .map(RankCharge::metadata_bits)
            .sum::<u64>()
            + self.values_bits
    }

    /// Metadata share of the footprint (0 for dense).
    pub fn metadata_bits(&self) -> u64 {
        self.total() - self.values_bits
    }
}

/// Extents of the two matrix ranks under the descriptor's traversal
/// order (`Diagonal` enumerates the `rows + cols` signed offsets
/// outermost, full-length `rows` strips innermost).
fn matrix_extents(order: RankOrder, rows: u64, cols: u64) -> (u64, u64) {
    match order {
        RankOrder::RowMajor => (rows, cols),
        RankOrder::ColMajor => (cols, rows),
        RankOrder::Diagonal => (rows + cols, rows),
    }
}

/// Size a matrix descriptor from per-rank level metadata — the generic
/// model every matrix entry point delegates to. Returns the per-rank
/// breakdown; unsupported level compositions yield an error rather than
/// a guess.
pub fn descriptor_matrix_bits(
    desc: &FormatDescriptor,
    s: &MatrixStructure,
    dtype: DataType,
) -> Result<SizeBreakdown, FormatError> {
    use Level as L;
    let (m, k, n) = (s.rows as u64, s.cols as u64, s.nnz as u64);
    let total = m * k;
    let b = dtype.bits();
    let (e0, e1) = matrix_extents(desc.order, m, k);
    let lg = |x: u64| u64::from(ceil_log2(x));

    let mut ranks: Vec<RankCharge> = desc.levels.iter().map(|&l| RankCharge::new(l)).collect();
    let values_slots: u64;

    match (desc.levels.as_slice(), desc.values) {
        // ---- linearized single-rank encodings ---------------------------
        ([L::Uncompressed], ValuesLayout::Contiguous)
        | ([L::Uncompressed, L::Uncompressed], ValuesLayout::Contiguous) => {
            values_slots = total;
        }
        ([L::RunLength { run_bits }], ValuesLayout::Contiguous) => {
            let entries = s
                .rlc_entries
                .unwrap_or_else(|| rlc_expected_entries(total, n, *run_bits));
            ranks[0].run_bits = entries * u64::from(*run_bits);
            values_slots = entries;
        }
        ([L::Bitmask], ValuesLayout::Contiguous) => {
            ranks[0].mask_bits = total;
            values_slots = n;
        }
        // ---- coordinate pairs (COO) -------------------------------------
        ([L::Singleton, L::Singleton], ValuesLayout::Contiguous) => {
            ranks[0].coord_bits = n * lg(e0);
            ranks[1].coord_bits = n * lg(e1);
            values_slots = n;
        }
        // ---- offset-compressed inner rank (CSR / CSC / custom [U,S]) ----
        ([L::Uncompressed, L::CompressedOffsets], ValuesLayout::Contiguous)
        | ([L::Uncompressed, L::Singleton], ValuesLayout::Contiguous) => {
            ranks[1].ptr_bits = (e0 + 1) * lg(n + 1);
            ranks[1].coord_bits = n * lg(e1);
            values_slots = n;
        }
        // ---- blocked outer rank (BSR) -----------------------------------
        ([L::Blocked { br, bc }, L::CompressedOffsets], ValuesLayout::DenseBlocks) => {
            let blocks = s
                .blocks
                .unwrap_or_else(|| bsr_expected_blocks(s.rows, s.cols, s.nnz, *br, *bc));
            let nbr = s.rows.div_ceil(*br) as u64;
            let nbc = s.cols.div_ceil(*bc) as u64;
            ranks[1].coord_bits = blocks * lg(nbc);
            ranks[1].ptr_bits = (nbr + 1) * lg(blocks + 1);
            values_slots = blocks * (*br * *bc) as u64;
        }
        // ---- padded fibers with explicit fiber coords (DIA) -------------
        ([L::Singleton, L::Uncompressed], ValuesLayout::PaddedFibers) => {
            let fibers = s
                .diagonals
                .unwrap_or_else(|| dia_expected_diagonals(s.rows, s.cols, s.nnz));
            ranks[0].coord_bits = fibers * lg(e0);
            values_slots = fibers * e1;
        }
        // ---- uniform padded rows with per-slot coords (ELL) -------------
        ([L::Uncompressed, L::Singleton], ValuesLayout::PaddedFibers) => {
            let width = s
                .ell_width
                .unwrap_or_else(|| ell_expected_width(s.rows, s.cols, s.nnz));
            ranks[1].coord_bits = e0 * width * lg(e1);
            values_slots = e0 * width;
        }
        // ---- open compositions: bitmask / run-length ranks --------------
        ([L::Bitmask, inner], ValuesLayout::Contiguous) => {
            let stored = s
                .nonempty_fibers
                .unwrap_or_else(|| expected_nonempty_fibers(e0, e1, n));
            ranks[0].mask_bits = e0;
            match inner {
                L::CompressedOffsets | L::Singleton => {
                    ranks[1].ptr_bits = (stored + 1) * lg(n + 1);
                    ranks[1].coord_bits = n * lg(e1);
                    values_slots = n;
                }
                L::Bitmask => {
                    ranks[1].mask_bits = stored * e1;
                    values_slots = n;
                }
                L::RunLength { run_bits } => {
                    let entries = s
                        .rlc_entries
                        .unwrap_or_else(|| rlc_expected_entries(stored * e1, n, *run_bits));
                    ranks[1].ptr_bits = (stored + 1) * lg(entries + 1);
                    ranks[1].run_bits = entries * u64::from(*run_bits);
                    values_slots = entries;
                }
                _ => {
                    return Err(FormatError::Unsupported(
                        "bitmask outer rank requires a compressed inner rank",
                    ))
                }
            }
        }
        ([L::Uncompressed, L::Bitmask], ValuesLayout::Contiguous) => {
            ranks[1].mask_bits = e0 * e1;
            values_slots = n;
        }
        ([L::Uncompressed, L::RunLength { run_bits }], ValuesLayout::Contiguous) => {
            let entries = s
                .rlc_entries
                .unwrap_or_else(|| rlc_expected_entries(total, n, *run_bits));
            ranks[1].ptr_bits = (e0 + 1) * lg(entries + 1);
            ranks[1].run_bits = entries * u64::from(*run_bits);
            values_slots = entries;
        }
        _ => {
            return Err(FormatError::Unsupported(
                "level composition has no size model",
            ))
        }
    }

    Ok(SizeBreakdown {
        ranks,
        values_bits: values_slots * b,
        stored_elements: values_slots,
    })
}

/// Tensor structural quantities (the 3-D analogue of
/// [`MatrixStructure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TensorStructure {
    /// Tensor shape.
    pub dims: (usize, usize, usize),
    /// Stored nonzeros.
    pub nnz: usize,
    /// Occupied x-slices (CSF top rank).
    pub slices: Option<u64>,
    /// Occupied (x, y) fibers (CSF middle rank).
    pub fibers: Option<u64>,
    /// Occupied cubic blocks (HiCOO outer rank).
    pub blocks: Option<u64>,
    /// Stored run-length entries, extension entries included.
    pub rlc_entries: Option<u64>,
}

impl TensorStructure {
    /// A structure with only `(dims, nnz)` known.
    pub fn analytic(dims: (usize, usize, usize), nnz: usize) -> Self {
        TensorStructure {
            dims,
            nnz,
            ..Default::default()
        }
    }
}

/// Expected occupied x-slices of a uniform-random tensor.
pub fn csf_expected_slices(dims: (usize, usize, usize), nnz: usize) -> u64 {
    let (x, y, z) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    let total = x * y * z;
    if total == 0 {
        return 0;
    }
    let d = nnz as f64 / total as f64;
    (x as f64 * (1.0 - (1.0 - d).powf((y * z) as f64))).ceil() as u64
}

/// Expected occupied (x, y) fibers of a uniform-random tensor.
pub fn csf_expected_fibers(dims: (usize, usize, usize), nnz: usize) -> u64 {
    let (x, y, z) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    let total = x * y * z;
    if total == 0 {
        return 0;
    }
    let d = nnz as f64 / total as f64;
    ((x * y) as f64 * (1.0 - (1.0 - d).powf(z as f64))).ceil() as u64
}

/// Expected occupied cubic blocks of edge `block` for a uniform-random
/// tensor.
pub fn hicoo_expected_blocks(dims: (usize, usize, usize), nnz: usize, block: usize) -> u64 {
    let (x, y, z) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    let total = x * y * z;
    if total == 0 {
        return 0;
    }
    let bl = block as u64;
    let d = nnz as f64 / total as f64;
    let nb = (x.div_ceil(bl) * y.div_ceil(bl) * z.div_ceil(bl)) as f64;
    let p = 1.0 - (1.0 - d).powf((bl * bl * bl) as f64);
    (nb * p).ceil() as u64
}

/// Size a 3-D tensor descriptor from per-rank level metadata.
pub fn descriptor_tensor_bits(
    desc: &FormatDescriptor,
    s: &TensorStructure,
    dtype: DataType,
) -> Result<SizeBreakdown, FormatError> {
    use Level as L;
    let (x, y, z) = (s.dims.0 as u64, s.dims.1 as u64, s.dims.2 as u64);
    let n = s.nnz as u64;
    let total = x * y * z;
    let b = dtype.bits();
    let lg = |v: u64| u64::from(ceil_log2(v));

    let mut ranks: Vec<RankCharge> = desc.levels.iter().map(|&l| RankCharge::new(l)).collect();
    let values_slots: u64;

    match (desc.levels.as_slice(), desc.values) {
        ([L::Uncompressed, L::Uncompressed, L::Uncompressed], ValuesLayout::Contiguous) => {
            values_slots = total;
        }
        ([L::Singleton, L::Singleton, L::Singleton], ValuesLayout::Contiguous) => {
            ranks[0].coord_bits = n * lg(x);
            ranks[1].coord_bits = n * lg(y);
            ranks[2].coord_bits = n * lg(z);
            values_slots = n;
        }
        (
            [L::CompressedOffsets, L::CompressedOffsets, L::CompressedOffsets],
            ValuesLayout::Contiguous,
        ) => {
            let slices = s
                .slices
                .unwrap_or_else(|| csf_expected_slices(s.dims, s.nnz));
            let fibers = s
                .fibers
                .unwrap_or_else(|| csf_expected_fibers(s.dims, s.nnz));
            // The outermost compressed rank stores only its coordinate
            // list (the stored-slice count is a header quantity); each
            // inner compressed rank additionally keeps the offsets array
            // delimiting its parent's fibers.
            ranks[0].coord_bits = slices * lg(x);
            ranks[1].ptr_bits = (slices + 1) * lg(fibers + 1);
            ranks[1].coord_bits = fibers * lg(y);
            ranks[2].ptr_bits = (fibers + 1) * lg(n + 1);
            ranks[2].coord_bits = n * lg(z);
            values_slots = n;
        }
        ([L::Blocked { br, bc }, L::Singleton], ValuesLayout::Contiguous) if br == bc => {
            let bl = *br as u64;
            let blocks = s
                .blocks
                .unwrap_or_else(|| hicoo_expected_blocks(s.dims, s.nnz, *br));
            let bbits = lg(x.div_ceil(bl)) + lg(y.div_ceil(bl)) + lg(z.div_ceil(bl));
            ranks[0].coord_bits = blocks * bbits;
            ranks[0].ptr_bits = (blocks + 1) * lg(n + 1);
            ranks[1].coord_bits = n * 3 * lg(bl);
            values_slots = n;
        }
        ([L::RunLength { run_bits }], ValuesLayout::Contiguous) => {
            let entries = s
                .rlc_entries
                .unwrap_or_else(|| rlc_expected_entries(total, n, *run_bits));
            ranks[0].run_bits = entries * u64::from(*run_bits);
            values_slots = entries;
        }
        ([L::Bitmask], ValuesLayout::Contiguous) => {
            ranks[0].mask_bits = total;
            values_slots = n;
        }
        _ => {
            return Err(FormatError::Unsupported(
                "level composition has no tensor size model",
            ))
        }
    }

    Ok(SizeBreakdown {
        ranks,
        values_bits: values_slots * b,
        stored_elements: values_slots,
    })
}

/// Analytic storage size in bits of a matrix with the given shape/nnz in
/// the given format, assuming uniformly random nonzero positions.
///
/// `rows x cols` with `nnz` stored nonzeros and element type `dtype`.
/// Thin wrapper over [`descriptor_matrix_bits`] via the format's
/// [`FormatDescriptor`].
pub fn matrix_storage_bits(
    format: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: usize,
    dtype: DataType,
) -> u64 {
    descriptor_matrix_bits(
        &FormatDescriptor::from(*format),
        &MatrixStructure::analytic(rows, cols, nnz),
        dtype,
    )
    .expect("every preset descriptor has a size model")
    .total()
}

/// Exact storage size in bits of an encoded matrix payload: the same
/// level model fed with the payload's measured structure
/// ([`MatrixStructure::exact`]).
pub fn matrix_storage_bits_exact(data: &MatrixData, dtype: DataType) -> u64 {
    descriptor_matrix_bits(&data.descriptor(), &MatrixStructure::exact(data), dtype)
        .expect("every preset descriptor has a size model")
        .total()
}

/// Analytic storage size in bits of a 3-D tensor in the given format,
/// assuming uniformly random nonzero positions. Thin wrapper over
/// [`descriptor_tensor_bits`].
pub fn tensor_storage_bits(
    format: &TensorFormat,
    dims: (usize, usize, usize),
    nnz: usize,
    dtype: DataType,
) -> u64 {
    descriptor_tensor_bits(
        &FormatDescriptor::from(*format),
        &TensorStructure::analytic(dims, nnz),
        dtype,
    )
    .expect("every tensor preset descriptor has a size model")
    .total()
}

/// Convenience: analytic size in **bytes** (rounded up).
pub fn matrix_storage_bytes(
    format: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: usize,
    dtype: DataType,
) -> u64 {
    matrix_storage_bits(format, rows, cols, nnz, dtype).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::descriptor::{Level, RankOrder, ValuesLayout};

    const FP32: DataType = DataType::Fp32;

    #[test]
    fn dense_size_is_shape_times_bits() {
        assert_eq!(
            matrix_storage_bits(&MatrixFormat::Dense, 10, 20, 5, FP32),
            10 * 20 * 32
        );
        assert_eq!(
            matrix_storage_bits(&MatrixFormat::Dense, 10, 20, 5, DataType::Int8),
            10 * 20 * 8
        );
    }

    #[test]
    fn coo_beats_csr_at_extreme_sparsity() {
        // Fig. 4a: left of the first red line, COO is most compact.
        let (m, k) = (11_000, 11_000);
        let nnz = ((m as f64) * (k as f64) * 1e-8).ceil() as usize; // 10^-6 %
        let coo = matrix_storage_bits(&MatrixFormat::Coo, m, k, nnz, FP32);
        let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, FP32);
        let zvc = matrix_storage_bits(&MatrixFormat::Zvc, m, k, nnz, FP32);
        assert!(coo < csr, "COO {coo} should beat CSR {csr} at 1e-8 density");
        assert!(csr < zvc, "CSR {csr} should beat ZVC {zvc} at 1e-8 density");
    }

    #[test]
    fn zvc_or_rlc_win_mid_density() {
        // Fig. 4a: middle region is "well suited for RLC and ZVC".
        let (m, k) = (11_000, 11_000);
        let nnz = ((m as f64) * (k as f64) * 0.5) as usize; // 50%
        let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, FP32);
        let zvc = matrix_storage_bits(&MatrixFormat::Zvc, m, k, nnz, FP32);
        let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, FP32);
        assert!(zvc < dense, "ZVC {zvc} should beat Dense {dense} at 50%");
        assert!(zvc < csr, "ZVC {zvc} should beat CSR {csr} at 50%");
    }

    #[test]
    fn dense_wins_at_full_density() {
        let (m, k) = (11_000, 11_000);
        let nnz = m * k;
        let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, FP32);
        for fmt in [
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Zvc,
            MatrixFormat::Rlc { run_bits: 4 },
        ] {
            let s = matrix_storage_bits(&fmt, m, k, nnz, FP32);
            assert!(dense <= s, "Dense {dense} should beat {fmt} {s} at 100%");
        }
    }

    #[test]
    fn quantization_shifts_crossovers() {
        // Fig. 4a(i) vs 4a(ii): with 8-bit data the metadata share grows,
        // so the density at which Dense overtakes CSR (the second red
        // line) moves left — CSR's ~14 bits of column metadata per nonzero
        // hurt more when each element is only 8 bits.
        let (m, k) = (11_000, 11_000);
        let find_dense_crossover = |dtype: DataType| -> f64 {
            // Lowest density at which Dense is at least as compact as CSR.
            for i in 1..1000 {
                let dens = i as f64 / 1000.0;
                let nnz = ((m * k) as f64 * dens) as usize;
                let csr = matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, dtype);
                let dense = matrix_storage_bits(&MatrixFormat::Dense, m, k, nnz, dtype);
                if dense <= csr {
                    return dens;
                }
            }
            1.0
        };
        let cross32 = find_dense_crossover(DataType::Fp32);
        let cross8 = find_dense_crossover(DataType::Int8);
        assert!(
            cross8 < cross32,
            "int8 Dense/CSR crossover {cross8} should sit left of fp32 crossover {cross32}"
        );
        // Both crossovers live in a sensible band (Fig. 4a puts them
        // between ~30% and ~80% density).
        assert!(
            cross32 > 0.3 && cross32 < 0.9,
            "fp32 crossover {cross32} out of band"
        );
    }

    #[test]
    fn rlc_entry_model_asymptotes() {
        // Dense end: one entry per nonzero.
        assert_eq!(rlc_expected_entries(100, 100, 4), 100);
        // Empty stream: pure extension entries.
        assert_eq!(rlc_expected_entries(160, 0, 4), 10);
        // Mixed.
        assert_eq!(rlc_expected_entries(100, 10, 4), 10 + 90 / 16);
    }

    #[test]
    fn exact_matches_analytic_for_unstructured() {
        // For COO/CSR/CSC/ZVC/Dense the exact and analytic models must
        // agree (they depend only on dims and nnz).
        let coo = CooMatrix::from_triplets(
            30,
            40,
            (0..57)
                .map(|i| (i % 30, (i * 7) % 40, 1.0 + i as f64))
                .collect(),
        )
        .unwrap();
        let nnz = coo.nnz();
        for fmt in [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Zvc,
        ] {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            assert_eq!(
                matrix_storage_bits_exact(&data, FP32),
                matrix_storage_bits(&fmt, 30, 40, nnz, FP32),
                "mismatch for {fmt}"
            );
        }
    }

    #[test]
    fn exact_bsr_uses_real_block_count() {
        // A perfectly blocked matrix has far fewer blocks than the uniform
        // model expects.
        let mut triplets = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                triplets.push((r, c, 1.0));
            }
        }
        let coo = CooMatrix::from_triplets(64, 64, triplets).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Bsr { br: 4, bc: 4 }).unwrap();
        let exact = matrix_storage_bits_exact(&data, FP32);
        let analytic = matrix_storage_bits(&MatrixFormat::Bsr { br: 4, bc: 4 }, 64, 64, 16, FP32);
        assert!(
            exact <= analytic,
            "clustered exact {exact} should be <= analytic {analytic}"
        );
    }

    #[test]
    fn tensor_sizes_ordering_at_extreme_sparsity() {
        let dims = (1000, 1000, 100);
        let nnz = 500;
        let coo = tensor_storage_bits(&TensorFormat::Coo, dims, nnz, FP32);
        let dense = tensor_storage_bits(&TensorFormat::Dense, dims, nnz, FP32);
        let zvc = tensor_storage_bits(&TensorFormat::Zvc, dims, nnz, FP32);
        assert!(coo < zvc);
        assert!(zvc < dense);
    }

    #[test]
    fn csf_beats_coo_when_fibers_shared() {
        // Dense-ish fibers: many nonzeros share (x, y) prefixes.
        let dims = (100, 100, 1000);
        let nnz = 100 * 100 * 10; // every fiber holds ~10 nonzeros
        let csf = tensor_storage_bits(&TensorFormat::Csf, dims, nnz, FP32);
        let coo = tensor_storage_bits(&TensorFormat::Coo, dims, nnz, FP32);
        assert!(
            csf < coo,
            "CSF {csf} should beat COO {coo} with shared fibers"
        );
    }

    #[test]
    fn bytes_rounds_up() {
        let bits = matrix_storage_bits(&MatrixFormat::Coo, 3, 3, 1, DataType::Int8);
        assert_eq!(
            matrix_storage_bytes(&MatrixFormat::Coo, 3, 3, 1, DataType::Int8),
            bits.div_ceil(8)
        );
    }

    #[test]
    fn breakdown_attributes_metadata_to_the_right_rank() {
        // CSR: all pointer bits on the inner rank, no outer metadata.
        let s = MatrixStructure::analytic(100, 200, 1_000);
        let bd = descriptor_matrix_bits(&FormatDescriptor::csr(), &s, FP32).unwrap();
        assert_eq!(bd.ranks[0].metadata_bits(), 0);
        assert_eq!(bd.ranks[1].ptr_bits, 101 * u64::from(ceil_log2(1_001)));
        assert_eq!(bd.ranks[1].coord_bits, 1_000 * u64::from(ceil_log2(200)));
        assert_eq!(bd.values_bits, 1_000 * 32);
        assert_eq!(
            bd.total(),
            matrix_storage_bits(&MatrixFormat::Csr, 100, 200, 1_000, FP32)
        );
        // ZVC: a single bitmask rank.
        let bd = descriptor_matrix_bits(&FormatDescriptor::zvc(), &s, FP32).unwrap();
        assert_eq!(bd.ranks[0].mask_bits, 100 * 200);
        assert_eq!(bd.metadata_bits(), 100 * 200);
    }

    #[test]
    fn open_compositions_are_sizable() {
        // Bitmask rows x run-length columns: the example composition.
        let desc = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
            ValuesLayout::Contiguous,
        );
        let s = MatrixStructure::analytic(1_000, 1_000, 50);
        let bd = descriptor_matrix_bits(&desc, &s, FP32).unwrap();
        assert_eq!(bd.ranks[0].mask_bits, 1_000);
        assert!(bd.ranks[1].run_bits > 0);
        assert!(bd.total() > 0);
        // On a hyper-sparse operand the row bitmask skips the empty rows
        // entirely, beating ZVC's full mask (that is the point of
        // composing per-rank levels).
        let zvc = matrix_storage_bits(&MatrixFormat::Zvc, 1_000, 1_000, 50, FP32);
        assert!(
            bd.total() < zvc,
            "row-bitmask+RLC {} should beat flat ZVC {zvc} at 0.005% density",
            bd.total()
        );
    }

    #[test]
    fn unsupported_compositions_error_instead_of_guessing() {
        let bad = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Singleton, Level::CompressedOffsets],
            ValuesLayout::Contiguous,
        );
        let s = MatrixStructure::analytic(10, 10, 5);
        assert!(descriptor_matrix_bits(&bad, &s, FP32).is_err());
    }

    #[test]
    fn nonempty_fiber_model_saturates() {
        assert_eq!(expected_nonempty_fibers(10, 10, 0), 0);
        assert_eq!(expected_nonempty_fibers(10, 10, 100), 10);
        let mid = expected_nonempty_fibers(100, 100, 50);
        assert!((1..=50).contains(&mid), "mid {mid}");
    }
}

//! Diagonal (DIA) format.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Diagonal sparse matrix storage (Fig. 3a, "Diagonal (DIA)").
///
/// Stores a dense strip for each occupied diagonal, identified by its
/// offset `k = col - row` (0 = main diagonal, negative = below). Each strip
/// holds `rows` entries; positions falling outside the matrix are padding
/// (the `*` entries in the paper's figure). DIA is one of the structured
/// formats the paper's §VI flags for its future-work performance model —
/// we implement the full functional format and its size model here.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    rows: usize,
    cols: usize,
    /// Sorted diagonal offsets (`col - row`).
    offsets: Vec<isize>,
    /// `offsets.len() * rows` payload, one strip per diagonal, indexed by
    /// row: element `(d, r)` holds `M[r][r + offsets[d]]`.
    data: Vec<Value>,
}

impl DiaMatrix {
    /// Convert from the COO hub. Every occupied diagonal gets a strip, so
    /// scattered patterns can explode storage (that is the point of the
    /// format trade-off study; see `size_model`).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let mut offsets: Vec<isize> = coo
            .iter()
            .map(|(r, c, _)| c as isize - r as isize)
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        let mut data = vec![0.0; offsets.len() * rows];
        for (r, c, v) in coo.iter() {
            let k = c as isize - r as isize;
            let d = offsets.binary_search(&k).expect("offset registered above");
            data[d * rows + r] = v;
        }
        DiaMatrix {
            rows,
            cols,
            offsets,
            data,
        }
    }

    /// Build from explicit strips (tests / generators).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        offsets: Vec<isize>,
        data: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if data.len() != offsets.len() * rows {
            return Err(FormatError::LengthMismatch {
                what: "dia data vs offsets*rows",
                expected: offsets.len() * rows,
                actual: data.len(),
            });
        }
        if offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::MalformedPointer {
                what: "dia offsets not sorted/unique",
            });
        }
        for &k in &offsets {
            if k <= -(rows as isize) || k >= cols as isize {
                return Err(FormatError::IndexOutOfBounds {
                    index: k.unsigned_abs(),
                    bound: if k < 0 { rows } else { cols },
                    axis: if k < 0 { 0 } else { 1 },
                });
            }
        }
        Ok(DiaMatrix {
            rows,
            cols,
            offsets,
            data,
        })
    }

    /// Occupied diagonal offsets, sorted ascending.
    #[inline]
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Number of stored diagonals.
    #[inline]
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Raw strip payload (`num_diagonals * rows` values, padding included).
    #[inline]
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Count of stored values including padding (hardware traffic volume).
    pub fn stored_values(&self) -> usize {
        self.data.len()
    }
}

impl SparseMatrix for DiaMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        // Only count entries that map inside the matrix and are nonzero.
        let mut n = 0;
        for (d, &k) in self.offsets.iter().enumerate() {
            for r in 0..self.rows {
                let c = r as isize + k;
                if c >= 0 && (c as usize) < self.cols && self.data[d * self.rows + r] != 0.0 {
                    n += 1;
                }
            }
        }
        n
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let k = col as isize - row as isize;
        match self.offsets.binary_search(&k) {
            Ok(d) => self.data[d * self.rows + row],
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::new();
        for (d, &k) in self.offsets.iter().enumerate() {
            for r in 0..self.rows {
                let c = r as isize + k;
                if c >= 0 && (c as usize) < self.cols {
                    let v = self.data[d * self.rows + r];
                    if v != 0.0 {
                        triplets.push((r, c as usize, v));
                    }
                }
            }
        }
        CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("diagonal coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3a DIA example:
    /// ```text
    /// * a b      offsets -1 0 1 with strips
    /// c d 0      data = [* a b / c d 0 / 0 e 0 / 0 f *] per figure
    /// 0 e 0
    /// 0 f *
    /// ```
    /// (4x3 matrix, offsets -1, 0, +1).
    fn fig3a() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            3,
            vec![
                (0, 1, 1.0), // a (offset +1)
                (0, 2, 2.0), // b? figure shows b on +2? Using +1/+2 pattern:
                (1, 0, 3.0), // c (offset -1)
                (1, 1, 4.0), // d (offset 0)
                (2, 1, 5.0), // e (offset -1)
                (3, 1, 6.0), // f (offset -2)
            ],
        )
        .unwrap()
    }

    #[test]
    fn structure_matches_occupied_diagonals() {
        let dia = DiaMatrix::from_coo(&fig3a());
        assert_eq!(dia.offsets(), &[-2, -1, 0, 1, 2]);
        assert_eq!(dia.num_diagonals(), 5);
        assert_eq!(dia.stored_values(), 5 * 4);
    }

    #[test]
    fn roundtrip() {
        let coo = fig3a();
        let dia = DiaMatrix::from_coo(&coo);
        assert_eq!(dia.to_coo(), coo);
        assert_eq!(dia.nnz(), 6);
    }

    #[test]
    fn tridiagonal_is_compact() {
        // Classic DIA sweet spot: banded matrix.
        let n = 16;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, t).unwrap();
        let dia = DiaMatrix::from_coo(&coo);
        assert_eq!(dia.num_diagonals(), 3);
        assert_eq!(dia.to_coo(), coo);
    }

    #[test]
    fn get_on_missing_diagonal_is_zero() {
        let dia = DiaMatrix::from_coo(&fig3a());
        assert_eq!(dia.get(3, 0), 0.0);
        assert_eq!(dia.get(0, 0), 0.0); // main diagonal strip exists but entry is 0
    }

    #[test]
    fn strip_padding_does_not_count_as_nonzeros() {
        // A strip slot can be (a) outside the matrix or (b) an explicit
        // zero inside it; neither counts toward nnz() under the traits.rs
        // "stored nonzeros, no explicit zeros" contract.
        let dia = DiaMatrix::from_parts(
            3,
            3,
            vec![-1, 0],
            // offset -1 strip: [pad, 4.0, 0.0]; main diagonal: [1.0, 0.0, 3.0].
            vec![9.0, 4.0, 0.0, 1.0, 0.0, 3.0],
        )
        .unwrap();
        assert_eq!(dia.stored_values(), 6);
        assert_eq!(dia.nnz(), 3);
        assert_eq!(dia.nnz(), dia.to_coo().nnz());
        assert!((dia.density() - 3.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn from_parts_validates() {
        // Wrong payload length.
        assert!(DiaMatrix::from_parts(3, 3, vec![0], vec![1.0; 2]).is_err());
        // Unsorted offsets.
        assert!(DiaMatrix::from_parts(3, 3, vec![1, 0], vec![0.0; 6]).is_err());
        // Offset outside matrix.
        assert!(DiaMatrix::from_parts(3, 3, vec![5], vec![0.0; 3]).is_err());
        assert!(DiaMatrix::from_parts(3, 3, vec![0], vec![1.0, 2.0, 3.0]).is_ok());
    }
}

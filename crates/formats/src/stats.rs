//! Sparsity-structure statistics.
//!
//! The paper's SAGE assumes "a uniform random distribution of the dense
//! values" (paper SVI), explicitly deferring structured formats (DIA, HiCOO, BSR,
//! ELLPACK) to future work (§VI). This module provides the structure
//! metrics that extension needs: per-row population dispersion (ELL),
//! occupied-diagonal counts (DIA) and block occupancy (BSR), measured on
//! an actual pattern instead of assumed.

use crate::coo::CooMatrix;
use crate::traits::SparseMatrix;

/// Structure metrics of one sparse matrix pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Minimum nonzeros in any row.
    pub row_nnz_min: usize,
    /// Maximum nonzeros in any row (the ELL width).
    pub row_nnz_max: usize,
    /// Mean nonzeros per row.
    pub row_nnz_mean: f64,
    /// Coefficient of variation of row populations (0 = perfectly
    /// balanced; large = ELL-hostile).
    pub row_nnz_cv: f64,
    /// Number of occupied diagonals (the DIA strip count).
    pub occupied_diagonals: usize,
}

impl MatrixStats {
    /// Analyze a pattern.
    pub fn analyze(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let mut row_counts = vec![0usize; rows];
        let mut diags = std::collections::HashSet::new();
        for (r, c, _) in coo.iter() {
            row_counts[r] += 1;
            diags.insert(c as isize - r as isize);
        }
        let nnz = coo.nnz();
        let mean = if rows == 0 {
            0.0
        } else {
            nnz as f64 / rows as f64
        };
        let var = if rows == 0 {
            0.0
        } else {
            row_counts
                .iter()
                .map(|&x| (x as f64 - mean).powi(2))
                .sum::<f64>()
                / rows as f64
        };
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        MatrixStats {
            rows,
            cols,
            nnz,
            row_nnz_min: row_counts.iter().copied().min().unwrap_or(0),
            row_nnz_max: row_counts.iter().copied().max().unwrap_or(0),
            row_nnz_mean: mean,
            row_nnz_cv: cv,
            occupied_diagonals: diags.len(),
        }
    }

    /// Density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Occupancy of `block x block` tiles: `(occupied_blocks, fill)`
    /// where `fill` is the fraction of occupied-block slots holding real
    /// nonzeros (1.0 = perfectly blocked, → density for random patterns).
    pub fn block_occupancy(coo: &CooMatrix, block: usize) -> (usize, f64) {
        assert!(block > 0, "block must be positive");
        let mut blocks = std::collections::HashSet::new();
        for (r, c, _) in coo.iter() {
            blocks.insert((r / block, c / block));
        }
        let occupied = blocks.len();
        if occupied == 0 {
            return (0, 0.0);
        }
        let fill = coo.nnz() as f64 / (occupied * block * block) as f64;
        (occupied, fill)
    }

    /// Is this pattern a good DIA candidate? (Few diagonals hold all the
    /// nonzeros.)
    pub fn is_banded(&self) -> bool {
        let max_diags = self.rows + self.cols;
        self.occupied_diagonals > 0
            && self.occupied_diagonals <= (max_diags / 20).max(4)
            && self.nnz >= self.occupied_diagonals * self.rows.min(self.cols) / 2
    }

    /// Is this pattern ELL-friendly? (Balanced row populations.)
    pub fn is_row_balanced(&self) -> bool {
        self.row_nnz_cv < 0.25 && self.row_nnz_max > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiagonal_is_banded() {
        let n = 64;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, t).unwrap();
        let s = MatrixStats::analyze(&coo);
        assert_eq!(s.occupied_diagonals, 3);
        assert!(s.is_banded());
        assert!(s.is_row_balanced());
    }

    #[test]
    fn scattered_pattern_is_not_banded() {
        let coo = CooMatrix::from_triplets(
            50,
            50,
            (0..100)
                .map(|i| ((i * 7) % 50, (i * 13) % 50, 1.0))
                .collect(),
        )
        .unwrap();
        let s = MatrixStats::analyze(&coo);
        assert!(s.occupied_diagonals > 20);
        assert!(!s.is_banded());
    }

    #[test]
    fn block_occupancy_detects_blocked_structure() {
        // One fully dense 4x4 block.
        let mut t = Vec::new();
        for r in 8..12 {
            for c in 4..8 {
                t.push((r, c, 1.0));
            }
        }
        let coo = CooMatrix::from_triplets(16, 16, t).unwrap();
        let (blocks, fill) = MatrixStats::block_occupancy(&coo, 4);
        assert_eq!(blocks, 1);
        assert_eq!(fill, 1.0);
        // Same nnz scattered: many blocks, low fill.
        let scattered =
            CooMatrix::from_triplets(16, 16, (0..16).map(|i| (i, (i * 5) % 16, 1.0)).collect())
                .unwrap();
        let (b2, f2) = MatrixStats::block_occupancy(&scattered, 4);
        assert!(b2 > 8);
        assert!(f2 < 0.2);
    }

    #[test]
    fn row_balance_metrics() {
        // All nonzeros in one row: maximal imbalance.
        let coo = CooMatrix::from_triplets(10, 20, (0..20).map(|c| (0, c, 1.0)).collect()).unwrap();
        let s = MatrixStats::analyze(&coo);
        assert_eq!(s.row_nnz_max, 20);
        assert_eq!(s.row_nnz_min, 0);
        assert!(s.row_nnz_cv > 1.0);
        assert!(!s.is_row_balanced());
    }

    #[test]
    fn empty_matrix_stats() {
        let s = MatrixStats::analyze(&CooMatrix::empty(5, 5));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.occupied_diagonals, 0);
        assert_eq!(s.density(), 0.0);
        assert!(!s.is_banded());
    }
}

//! Compressed Sparse Column (CSC) format.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// Compressed Sparse Column matrix (Fig. 3a).
///
/// The column-major dual of CSR: `col_ptr[c]..col_ptr[c+1]` indexes the
/// `row_ids`/`values` slice of column `c`. CSC is the natural ACF for the
/// *stationary* operand of the paper's weight-stationary accelerator
/// (Fig. 6b stores matrix B per-column in the PE buffers), and CSR→CSC is
/// the canonical conversion for transposing weights during backpropagation
/// (§III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_ids: Vec<usize>,
    values: Vec<Value>,
}

impl CscMatrix {
    /// Build from raw parts, validating the pointer structure.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_ids: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if col_ptr.len() != cols + 1 {
            return Err(FormatError::LengthMismatch {
                what: "col_ptr vs cols+1",
                expected: cols + 1,
                actual: col_ptr.len(),
            });
        }
        if row_ids.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                what: "row_ids vs values",
                expected: values.len(),
                actual: row_ids.len(),
            });
        }
        if col_ptr.first() != Some(&0) || col_ptr.last() != Some(&values.len()) {
            return Err(FormatError::MalformedPointer {
                what: "col_ptr endpoints",
            });
        }
        if col_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::MalformedPointer {
                what: "col_ptr not monotonic",
            });
        }
        for c in 0..cols {
            let seg = &row_ids[col_ptr[c]..col_ptr[c + 1]];
            if seg.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::MalformedPointer {
                    what: "row_ids not strictly increasing within a column",
                });
            }
            if let Some(&r) = seg.last() {
                if r >= rows {
                    return Err(FormatError::IndexOutOfBounds {
                        index: r,
                        bound: rows,
                        axis: 0,
                    });
                }
            }
        }
        Ok(CscMatrix {
            rows,
            cols,
            col_ptr,
            row_ids,
            values,
        })
    }

    /// Convert from the COO hub with a counting sort on columns.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols + 1];
        for &c in coo.col_ids() {
            col_ptr[c + 1] += 1;
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut next = col_ptr.clone();
        let mut row_ids = vec![0usize; coo.nnz()];
        let mut values = vec![0.0; coo.nnz()];
        for (r, c, v) in coo.iter() {
            let slot = next[c];
            next[c] += 1;
            row_ids[slot] = r;
            values[slot] = v;
        }
        CscMatrix {
            rows: coo.rows(),
            cols,
            col_ptr,
            row_ids,
            values,
        }
    }

    /// Column pointer array (`cols + 1` entries).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, parallel to [`values`](Self::values).
    #[inline]
    pub fn row_ids(&self) -> &[usize] {
        &self.row_ids
    }

    /// Stored nonzero values (column-major order).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// `(row_ids, values)` slices of one column.
    #[inline]
    pub fn col(&self, c: usize) -> (&[usize], &[Value]) {
        let (s, e) = (self.col_ptr[c], self.col_ptr[c + 1]);
        (&self.row_ids[s..e], &self.values[s..e])
    }

    /// Number of nonzeros in column `c`.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Iterate `(row, col, value)` in **column-major** order.
    pub fn iter_col_major(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (rs, vs) = self.col(c);
            rs.iter().zip(vs).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// View this CSC matrix as the CSR representation of its transpose
    /// (zero-copy reinterpretation: identical arrays, swapped roles).
    pub fn transpose_as_csr(&self) -> CsrMatrix {
        CsrMatrix::from_parts(
            self.cols,
            self.rows,
            self.col_ptr.clone(),
            self.row_ids.clone(),
            self.values.clone(),
        )
        .expect("valid CSC arrays are a valid CSR of the transpose")
    }
}

impl SparseMatrix for CscMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let (rs, vs) = self.col(col);
        match rs.binary_search(&row) {
            Ok(i) => vs[i],
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let triplets: Vec<_> = self.iter_col_major().collect();
        CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("CSC coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3a CSC example: values `a b c d e f`,
    /// row_ids `0 1 0 1 2 3`, col_ptr `0 2 4 5 6`.
    fn fig3a_csc() -> CscMatrix {
        CscMatrix::from_parts(
            4,
            4,
            vec![0, 2, 4, 5, 6],
            vec![0, 1, 0, 1, 2, 3],
            vec![1.0, 3.0, 2.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn fig3a_structure() {
        let m = fig3a_csc();
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(3), 1);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(3, 0), 0.0);
    }

    #[test]
    fn coo_roundtrip_matches_csr_view() {
        let m = fig3a_csc();
        let coo = m.to_coo();
        assert_eq!(CscMatrix::from_coo(&coo), m);
        // CSC of M is CSR of Mᵀ.
        let csr_t = m.transpose_as_csr();
        assert_eq!(csr_t.to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn from_parts_validation() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_parts(2, 1, vec![0, 1], vec![4], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn column_access() {
        let m = fig3a_csc();
        let (rs, vs) = m.col(1);
        assert_eq!(rs, &[0, 1]);
        assert_eq!(vs, &[2.0, 4.0]);
    }

    #[test]
    fn csr_csc_agree_on_random_pattern() {
        let coo = CooMatrix::from_triplets(
            5,
            7,
            vec![
                (0, 6, 1.0),
                (2, 3, 2.0),
                (2, 4, 3.0),
                (4, 0, 4.0),
                (4, 6, 5.0),
            ],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(csr.get(r, c), csc.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }
}

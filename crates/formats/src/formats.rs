//! Format descriptors and dynamically-typed format containers.
//!
//! [`MatrixFormat`] / [`TensorFormat`] are the *names* (plus structural
//! parameters) that SAGE searches over and MINT converts between;
//! [`MatrixData`] / [`TensorData`] hold an actual encoded operand in any of
//! those formats behind one type, which is what flows through the
//! accelerator simulator and the conversion pipelines.

use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csf::CsfTensor;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::descriptor::FormatDescriptor;
use crate::dia::DiaMatrix;
use crate::ell::EllMatrix;
use crate::error::FormatError;
use crate::hicoo::HiCooTensor;
use crate::rlc::{RlcMatrix, RlcTensor3, DEFAULT_RUN_BITS};
use crate::tensor::{CooTensor3, DenseTensor3};
use crate::traits::{SparseMatrix, SparseTensor3};
use crate::zvc::{ZvcMatrix, ZvcTensor3};
use crate::Value;

/// A matrix compression format (with structural parameters where needed).
///
/// The paper's MCF search space is `{Dense, RLC, ZVC, COO, CSR, CSC}` and
/// its ACF space is `{Dense, COO, CSR, CSC}` (§VII-A); BSR/DIA/ELL extend
/// the structured-format coverage flagged as future work in §VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixFormat {
    /// Uncompressed row-major.
    Dense,
    /// Coordinate list.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column.
    Csc,
    /// Block compressed row with `br x bc` blocks.
    Bsr {
        /// Block rows.
        br: usize,
        /// Block columns.
        bc: usize,
    },
    /// Diagonal storage.
    Dia,
    /// ELLPACK padded rows.
    Ell,
    /// Run-length coding with the given run-field width.
    Rlc {
        /// Bits in the zero-run field.
        run_bits: u32,
    },
    /// Zero-value compression (bitmask).
    Zvc,
}

impl MatrixFormat {
    /// The per-rank [`FormatDescriptor`] this named format is a preset
    /// of — the canonical format identity (the enum is a thin wrapper
    /// kept for one release; see [`crate::descriptor`]).
    pub fn descriptor(&self) -> FormatDescriptor {
        FormatDescriptor::from(*self)
    }

    /// Recover the named preset from a descriptor (`None` for open
    /// compositions that have no legacy name).
    pub fn from_descriptor(desc: &FormatDescriptor) -> Option<MatrixFormat> {
        desc.to_matrix_format()
    }

    /// The six MCF choices evaluated in the paper (§VII-A), with default
    /// structural parameters. This is the
    /// [`SearchSpace::McfPaper`](crate::descriptor::SearchSpace) filter
    /// of the descriptor space rendered as enum values (pinned equal by
    /// the descriptor round-trip tests).
    pub const fn mcf_set() -> [MatrixFormat; 6] {
        [
            MatrixFormat::Dense,
            MatrixFormat::Rlc {
                run_bits: DEFAULT_RUN_BITS,
            },
            MatrixFormat::Zvc,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
        ]
    }

    /// The four ACF choices evaluated in the paper (§VII-A) — the
    /// [`SearchSpace::AcfPaper`](crate::descriptor::SearchSpace) filter
    /// of the descriptor space.
    pub const fn acf_set() -> [MatrixFormat; 4] {
        [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
        ]
    }

    /// Short name for CSV/log output.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixFormat::Dense => "Dense",
            MatrixFormat::Coo => "COO",
            MatrixFormat::Csr => "CSR",
            MatrixFormat::Csc => "CSC",
            MatrixFormat::Bsr { .. } => "BSR",
            MatrixFormat::Dia => "DIA",
            MatrixFormat::Ell => "ELL",
            MatrixFormat::Rlc { .. } => "RLC",
            MatrixFormat::Zvc => "ZVC",
        }
    }

    /// True for the formats whose size/compute models do not depend on the
    /// spatial structure of the nonzeros (the paper's performance model
    /// covers exactly these; structured formats are its future work).
    pub const fn is_unstructured(&self) -> bool {
        !matches!(
            self,
            MatrixFormat::Bsr { .. } | MatrixFormat::Dia | MatrixFormat::Ell
        )
    }
}

impl std::fmt::Display for MatrixFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixFormat::Bsr { br, bc } => write!(f, "BSR{br}x{bc}"),
            MatrixFormat::Rlc { run_bits } => write!(f, "RLC(r{run_bits})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A 3-D tensor compression format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorFormat {
    /// Uncompressed (z fastest).
    Dense,
    /// Coordinate list.
    Coo,
    /// Compressed sparse fiber.
    Csf,
    /// Hierarchical COO with cubic blocks of the given edge.
    HiCoo {
        /// Cubic block edge (power of two, <= 256).
        block: usize,
    },
    /// Run-length coding over the flattened stream.
    Rlc {
        /// Bits in the zero-run field.
        run_bits: u32,
    },
    /// Zero-value compression over the flattened stream.
    Zvc,
}

impl TensorFormat {
    /// The per-rank [`FormatDescriptor`] this named format is a preset
    /// of (see [`crate::descriptor`]).
    pub fn descriptor(&self) -> FormatDescriptor {
        FormatDescriptor::from(*self)
    }

    /// Recover the named preset from a descriptor.
    pub fn from_descriptor(desc: &FormatDescriptor) -> Option<TensorFormat> {
        desc.to_tensor_format()
    }

    /// Tensor MCF choices used in the Table III tensor rows.
    pub const fn mcf_set() -> [TensorFormat; 5] {
        [
            TensorFormat::Dense,
            TensorFormat::Rlc {
                run_bits: DEFAULT_RUN_BITS,
            },
            TensorFormat::Zvc,
            TensorFormat::Coo,
            TensorFormat::Csf,
        ]
    }

    /// Tensor ACF choices (Dense, COO, CSF — matching Table III).
    pub const fn acf_set() -> [TensorFormat; 3] {
        [TensorFormat::Dense, TensorFormat::Coo, TensorFormat::Csf]
    }

    /// Short name for CSV/log output.
    pub fn name(&self) -> &'static str {
        match self {
            TensorFormat::Dense => "Dense",
            TensorFormat::Coo => "COO",
            TensorFormat::Csf => "CSF",
            TensorFormat::HiCoo { .. } => "HiCOO",
            TensorFormat::Rlc { .. } => "RLC",
            TensorFormat::Zvc => "ZVC",
        }
    }
}

impl std::fmt::Display for TensorFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorFormat::HiCoo { block } => write!(f, "HiCOO(b{block})"),
            TensorFormat::Rlc { run_bits } => write!(f, "RLC(r{run_bits})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A matrix operand encoded in any supported format.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixData {
    /// Dense payload.
    Dense(DenseMatrix),
    /// COO payload.
    Coo(CooMatrix),
    /// CSR payload.
    Csr(CsrMatrix),
    /// CSC payload.
    Csc(CscMatrix),
    /// BSR payload.
    Bsr(BsrMatrix),
    /// DIA payload.
    Dia(DiaMatrix),
    /// ELL payload.
    Ell(EllMatrix),
    /// RLC payload.
    Rlc(RlcMatrix),
    /// ZVC payload.
    Zvc(ZvcMatrix),
}

impl MatrixData {
    /// The canonical per-rank descriptor of this payload (see
    /// [`crate::descriptor`]).
    pub fn descriptor(&self) -> FormatDescriptor {
        FormatDescriptor::from(self.format())
    }

    /// Value slots this encoding physically stores, padding and explicit
    /// zeros included — the **one** place the BSR/DIA/ELL (and Dense/RLC)
    /// explicit-zero accounting lives. Always `>=` [`Self::logical_nnz`];
    /// equal for the compact encodings (COO/CSR/CSC/ZVC).
    pub fn stored_elements(&self) -> u64 {
        crate::size_model::descriptor_matrix_bits(
            &self.descriptor(),
            &crate::size_model::MatrixStructure::exact(self),
            crate::dtype::DataType::Fp32, // slot counts are dtype-independent
        )
        .expect("every preset descriptor has a size model")
        .stored_elements
    }

    /// Stored nonzeros — the [`SparseMatrix::nnz`] contract (explicit
    /// zeros and padding slots are never counted).
    pub fn logical_nnz(&self) -> u64 {
        self.nnz() as u64
    }

    /// The named format of this payload.
    pub fn format(&self) -> MatrixFormat {
        match self {
            MatrixData::Dense(_) => MatrixFormat::Dense,
            MatrixData::Coo(_) => MatrixFormat::Coo,
            MatrixData::Csr(_) => MatrixFormat::Csr,
            MatrixData::Csc(_) => MatrixFormat::Csc,
            MatrixData::Bsr(b) => {
                let (br, bc) = b.block_shape();
                MatrixFormat::Bsr { br, bc }
            }
            MatrixData::Dia(_) => MatrixFormat::Dia,
            MatrixData::Ell(_) => MatrixFormat::Ell,
            MatrixData::Rlc(r) => MatrixFormat::Rlc {
                run_bits: r.run_bits(),
            },
            MatrixData::Zvc(_) => MatrixFormat::Zvc,
        }
    }

    /// Borrow as the common trait object.
    pub fn as_sparse(&self) -> &dyn SparseMatrix {
        match self {
            MatrixData::Dense(m) => m,
            MatrixData::Coo(m) => m,
            MatrixData::Csr(m) => m,
            MatrixData::Csc(m) => m,
            MatrixData::Bsr(m) => m,
            MatrixData::Dia(m) => m,
            MatrixData::Ell(m) => m,
            MatrixData::Rlc(m) => m,
            MatrixData::Zvc(m) => m,
        }
    }

    /// Encode a COO hub matrix into the given format.
    pub fn encode(coo: &CooMatrix, target: &MatrixFormat) -> Result<MatrixData, FormatError> {
        Ok(match *target {
            MatrixFormat::Dense => MatrixData::Dense(coo.clone().into_dense()),
            MatrixFormat::Coo => MatrixData::Coo(coo.clone()),
            MatrixFormat::Csr => MatrixData::Csr(CsrMatrix::from_coo(coo)),
            MatrixFormat::Csc => MatrixData::Csc(CscMatrix::from_coo(coo)),
            MatrixFormat::Bsr { br, bc } => MatrixData::Bsr(BsrMatrix::from_coo(coo, br, bc)?),
            MatrixFormat::Dia => MatrixData::Dia(DiaMatrix::from_coo(coo)),
            MatrixFormat::Ell => MatrixData::Ell(EllMatrix::from_coo(coo)),
            MatrixFormat::Rlc { run_bits } => MatrixData::Rlc(RlcMatrix::from_coo(coo, run_bits)),
            MatrixFormat::Zvc => MatrixData::Zvc(ZvcMatrix::from_coo(coo)),
        })
    }

    /// Convert this payload into the given format (via the COO hub; the
    /// dedicated fast paths live in [`crate::convert`]).
    pub fn convert_to(&self, target: &MatrixFormat) -> Result<MatrixData, FormatError> {
        if self.format() == *target {
            return Ok(self.clone());
        }
        Self::encode(&self.as_sparse().to_coo(), target)
    }
}

impl SparseMatrix for MatrixData {
    fn rows(&self) -> usize {
        self.as_sparse().rows()
    }
    fn cols(&self) -> usize {
        self.as_sparse().cols()
    }
    fn nnz(&self) -> usize {
        self.as_sparse().nnz()
    }
    fn get(&self, row: usize, col: usize) -> Value {
        self.as_sparse().get(row, col)
    }
    fn to_coo(&self) -> CooMatrix {
        self.as_sparse().to_coo()
    }
}

/// A 3-D tensor operand encoded in any supported format.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Dense payload.
    Dense(DenseTensor3),
    /// COO payload.
    Coo(CooTensor3),
    /// CSF payload.
    Csf(CsfTensor),
    /// HiCOO payload.
    HiCoo(HiCooTensor),
    /// RLC payload.
    Rlc(RlcTensor3),
    /// ZVC payload.
    Zvc(ZvcTensor3),
}

impl TensorData {
    /// The canonical per-rank descriptor of this payload.
    pub fn descriptor(&self) -> FormatDescriptor {
        FormatDescriptor::from(self.format())
    }

    /// The named format of this payload.
    pub fn format(&self) -> TensorFormat {
        match self {
            TensorData::Dense(_) => TensorFormat::Dense,
            TensorData::Coo(_) => TensorFormat::Coo,
            TensorData::Csf(_) => TensorFormat::Csf,
            TensorData::HiCoo(h) => TensorFormat::HiCoo { block: h.block() },
            TensorData::Rlc(r) => TensorFormat::Rlc {
                run_bits: r.run_bits(),
            },
            TensorData::Zvc(_) => TensorFormat::Zvc,
        }
    }

    /// Borrow as the common trait object.
    pub fn as_sparse(&self) -> &dyn SparseTensor3 {
        match self {
            TensorData::Dense(t) => t,
            TensorData::Coo(t) => t,
            TensorData::Csf(t) => t,
            TensorData::HiCoo(t) => t,
            TensorData::Rlc(t) => t,
            TensorData::Zvc(t) => t,
        }
    }

    /// Encode a COO hub tensor into the given format.
    pub fn encode(coo: &CooTensor3, target: &TensorFormat) -> Result<TensorData, FormatError> {
        Ok(match *target {
            TensorFormat::Dense => TensorData::Dense(coo.clone().into_dense()),
            TensorFormat::Coo => TensorData::Coo(coo.clone()),
            TensorFormat::Csf => TensorData::Csf(CsfTensor::from_coo(coo)),
            TensorFormat::HiCoo { block } => TensorData::HiCoo(HiCooTensor::from_coo(coo, block)?),
            TensorFormat::Rlc { run_bits } => TensorData::Rlc(RlcTensor3::from_coo(coo, run_bits)),
            TensorFormat::Zvc => TensorData::Zvc(ZvcTensor3::from_coo(coo)),
        })
    }

    /// Convert this payload into the given format via the COO hub.
    pub fn convert_to(&self, target: &TensorFormat) -> Result<TensorData, FormatError> {
        if self.format() == *target {
            return Ok(self.clone());
        }
        Self::encode(&self.as_sparse().to_coo(), target)
    }
}

impl SparseTensor3 for TensorData {
    fn dim_x(&self) -> usize {
        self.as_sparse().dim_x()
    }
    fn dim_y(&self) -> usize {
        self.as_sparse().dim_y()
    }
    fn dim_z(&self) -> usize {
        self.as_sparse().dim_z()
    }
    fn nnz(&self) -> usize {
        self.as_sparse().nnz()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        self.as_sparse().get(x, y, z)
    }
    fn to_coo(&self) -> CooTensor3 {
        self.as_sparse().to_coo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            6,
            5,
            vec![
                (0, 0, 1.0),
                (1, 3, 2.0),
                (2, 2, 3.0),
                (4, 4, 4.0),
                (5, 0, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn every_matrix_format_roundtrips_through_encode() {
        let coo = sample_coo();
        let formats = [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Zvc,
        ];
        for fmt in formats {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            assert_eq!(data.to_coo(), coo, "roundtrip failed for {fmt}");
            assert_eq!(data.rows(), 6);
            assert_eq!(data.cols(), 5);
        }
    }

    #[test]
    fn convert_between_all_pairs() {
        let coo = sample_coo();
        let formats = MatrixFormat::mcf_set();
        for src in formats {
            let a = MatrixData::encode(&coo, &src).unwrap();
            for dst in formats {
                let b = a.convert_to(&dst).unwrap();
                assert_eq!(b.format(), dst);
                assert_eq!(b.to_coo(), coo, "convert {src} -> {dst} lost data");
            }
        }
    }

    #[test]
    fn format_descriptor_carries_params() {
        let coo = sample_coo();
        let b = MatrixData::encode(&coo, &MatrixFormat::Bsr { br: 3, bc: 2 }).unwrap();
        assert_eq!(b.format(), MatrixFormat::Bsr { br: 3, bc: 2 });
        let r = MatrixData::encode(&coo, &MatrixFormat::Rlc { run_bits: 7 }).unwrap();
        assert_eq!(r.format(), MatrixFormat::Rlc { run_bits: 7 });
    }

    #[test]
    fn tensor_formats_roundtrip() {
        let coo = CooTensor3::from_quads(
            4,
            5,
            6,
            vec![(0, 0, 0, 1.0), (1, 4, 5, 2.0), (3, 2, 3, 3.0)],
        )
        .unwrap();
        let formats = [
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 6 },
            TensorFormat::Zvc,
        ];
        for fmt in formats {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            assert_eq!(data.to_coo(), coo, "tensor roundtrip failed for {fmt}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MatrixFormat::Bsr { br: 2, bc: 4 }.to_string(), "BSR2x4");
        assert_eq!(MatrixFormat::Rlc { run_bits: 4 }.to_string(), "RLC(r4)");
        assert_eq!(MatrixFormat::Csr.to_string(), "CSR");
        assert_eq!(TensorFormat::HiCoo { block: 8 }.to_string(), "HiCOO(b8)");
    }

    #[test]
    fn mcf_acf_sets_match_paper() {
        assert_eq!(MatrixFormat::mcf_set().len(), 6);
        assert_eq!(MatrixFormat::acf_set().len(), 4);
        assert!(MatrixFormat::acf_set().iter().all(|f| f.is_unstructured()));
    }
}

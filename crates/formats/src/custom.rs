//! Executable encodings for **open** (non-preset) format descriptors.
//!
//! The nine named matrix formats each have a dedicated container; this
//! module makes the *rest* of the descriptor space runnable.
//! [`CustomMatrix`] stores an operand exactly the way its
//! [`FormatDescriptor`] says — a presence structure for the outer rank,
//! a per-fiber encoding for the inner rank — and exposes the same
//! [`RowMajorStream`] traversal every generic kernel consumes, so a
//! composition like *bitmask rows × run-length columns* flows through
//! SpMM (and the accelerator runtime's CSR materialization) without a
//! single new kernel.
//!
//! Supported open compositions (validated at encode time):
//!
//! - outer rank: [`Level::Uncompressed`] (every fiber present) or
//!   [`Level::Bitmask`] (presence mask over fibers);
//! - inner rank: [`Level::CompressedOffsets`] / [`Level::Singleton`]
//!   (explicit coordinates), [`Level::Bitmask`] (per-fiber mask), or
//!   [`Level::RunLength`] (per-fiber zero runs);
//! - order: row-major or column-major (column fibers are transposed into
//!   the row-major stream on traversal, the same counting-sort MINT's
//!   CSC pipeline runs in hardware);
//! - values: contiguous.
//!
//! Descriptors that *do* name a preset are routed to the native
//! containers by [`encode_with_descriptor`] instead, so the preset paths
//! never regress.

use crate::arena::StreamArena;
use crate::coo::CooMatrix;
use crate::descriptor::{FormatDescriptor, Level, RankOrder, ValuesLayout};
use crate::dtype::DataType;
use crate::error::FormatError;
use crate::formats::{MatrixData, MatrixFormat};
use crate::size_model::{descriptor_matrix_bits, MatrixStructure, SizeBreakdown};
use crate::traits::SparseMatrix;
use crate::traverse::{split_by_prefix, RowFiberSink, RowMajorStream};
use crate::Value;
use std::ops::Range;

/// Outer-rank presence structure.
#[derive(Debug, Clone, PartialEq)]
enum OuterStore {
    /// `Uncompressed`: all fibers present (possibly empty).
    Dense,
    /// `Bitmask`: one bit per fiber, set when the fiber stores entries.
    Mask(Vec<u64>),
}

/// Inner-rank per-fiber encoding.
#[derive(Debug, Clone, PartialEq)]
enum InnerStore {
    /// `CompressedOffsets` / `Singleton`: explicit coordinates, one per
    /// stored value.
    Coords(Vec<usize>),
    /// `Bitmask`: one fixed-width mask per *stored* fiber.
    Mask {
        /// 64-bit words per fiber mask.
        words_per_fiber: usize,
        /// Concatenated fiber masks, stored-fiber order.
        bits: Vec<u64>,
    },
    /// `RunLength`: `(zero_run, value)` entries per fiber; runs longer
    /// than the field emits extension entries with a zero value, exactly
    /// like the flat RLC preset.
    Runs {
        /// Width of the zero-run field.
        run_bits: u32,
        /// Entries in fiber order, delimited by `ptr`.
        entries: Vec<(u64, Value)>,
    },
}

/// A matrix encoded per an open [`FormatDescriptor`] — real level
/// storage, not a façade over COO (see the module docs for the supported
/// composition set).
#[derive(Debug, Clone, PartialEq)]
pub struct CustomMatrix {
    desc: FormatDescriptor,
    rows: usize,
    cols: usize,
    nnz: usize,
    outer: OuterStore,
    /// Entry ranges per stored fiber (`len == stored_fibers + 1`). For
    /// `Runs` inners the ranges index entries; otherwise values/coords.
    ptr: Vec<usize>,
    inner: InnerStore,
    /// Stored nonzero values (empty for `Runs`, whose entries carry the
    /// values inline).
    values: Vec<Value>,
}

impl CustomMatrix {
    /// Encode a COO hub matrix per the given open descriptor.
    ///
    /// Fails for descriptors outside the supported open set; preset
    /// descriptors are accepted too (callers normally route them to the
    /// native containers via [`encode_with_descriptor`]).
    pub fn encode(coo: &CooMatrix, desc: &FormatDescriptor) -> Result<CustomMatrix, FormatError> {
        desc.validate_matrix()
            .map_err(|_| FormatError::Unsupported("descriptor fails validation"))?;
        if desc.levels.len() != 2 || desc.values != ValuesLayout::Contiguous {
            return Err(FormatError::Unsupported(
                "custom encoding covers two-rank contiguous descriptors",
            ));
        }
        let (outer_level, inner_level) = (desc.levels[0], desc.levels[1]);
        if !matches!(outer_level, Level::Uncompressed | Level::Bitmask) {
            return Err(FormatError::Unsupported(
                "custom outer rank must be uncompressed or bitmask",
            ));
        }
        let (rows, cols) = (coo.rows(), coo.cols());
        let (outer_extent, inner_extent) = match desc.order {
            RankOrder::RowMajor => (rows, cols),
            RankOrder::ColMajor => (cols, rows),
            RankOrder::Diagonal => {
                return Err(FormatError::Unsupported(
                    "diagonal order is served by the DIA preset",
                ))
            }
        };

        // Group the triplets into fibers of the outer rank.
        let mut fibers: Vec<Vec<(usize, Value)>> = vec![Vec::new(); outer_extent];
        for (r, c, v) in coo.iter() {
            let (f, i) = match desc.order {
                RankOrder::RowMajor => (r, c),
                _ => (c, r),
            };
            fibers[f].push((i, v));
        }
        for f in &mut fibers {
            f.sort_unstable_by_key(|&(i, _)| i);
        }

        // Outer presence structure + the stored-fiber list.
        let stored: Vec<usize> = match outer_level {
            Level::Uncompressed => (0..outer_extent).collect(),
            Level::Bitmask => (0..outer_extent)
                .filter(|&f| !fibers[f].is_empty())
                .collect(),
            _ => unreachable!("outer level checked above"),
        };
        let outer = match outer_level {
            Level::Uncompressed => OuterStore::Dense,
            _ => {
                let mut mask = vec![0u64; outer_extent.div_ceil(64)];
                for &f in &stored {
                    mask[f / 64] |= 1u64 << (f % 64);
                }
                OuterStore::Mask(mask)
            }
        };

        // Inner per-fiber encoding.
        let mut ptr = Vec::with_capacity(stored.len() + 1);
        ptr.push(0usize);
        let mut values = Vec::with_capacity(coo.nnz());
        let inner = match inner_level {
            Level::CompressedOffsets | Level::Singleton => {
                let mut coords = Vec::with_capacity(coo.nnz());
                for &f in &stored {
                    for &(i, v) in &fibers[f] {
                        coords.push(i);
                        values.push(v);
                    }
                    ptr.push(coords.len());
                }
                InnerStore::Coords(coords)
            }
            Level::Bitmask => {
                let words_per_fiber = inner_extent.div_ceil(64);
                let mut bits = Vec::with_capacity(stored.len() * words_per_fiber);
                for &f in &stored {
                    let base = bits.len();
                    bits.resize(base + words_per_fiber, 0u64);
                    for &(i, v) in &fibers[f] {
                        bits[base + i / 64] |= 1u64 << (i % 64);
                        values.push(v);
                    }
                    ptr.push(values.len());
                }
                InnerStore::Mask {
                    words_per_fiber,
                    bits,
                }
            }
            Level::RunLength { run_bits } => {
                let max_run = (1u64 << run_bits) - 1;
                let mut entries: Vec<(u64, Value)> = Vec::new();
                for &f in &stored {
                    let mut cursor = 0u64;
                    for &(i, v) in &fibers[f] {
                        let mut gap = i as u64 - cursor;
                        while gap > max_run {
                            entries.push((max_run, 0.0)); // extension entry
                            gap -= max_run + 1;
                        }
                        entries.push((gap, v));
                        cursor = i as u64 + 1;
                    }
                    ptr.push(entries.len());
                }
                InnerStore::Runs { run_bits, entries }
            }
            _ => {
                return Err(FormatError::Unsupported(
                    "custom inner rank must be compressed, singleton, bitmask or run-length",
                ))
            }
        };

        Ok(CustomMatrix {
            desc: desc.clone(),
            rows,
            cols,
            nnz: coo.nnz(),
            outer,
            ptr,
            inner,
            values,
        })
    }

    /// The descriptor this payload is encoded per.
    pub fn descriptor(&self) -> &FormatDescriptor {
        &self.desc
    }

    /// Exact storage footprint of this payload under the generic level
    /// model, fed with the measured structure (stored fibers, stored
    /// run entries).
    pub fn storage_breakdown(&self, dtype: DataType) -> SizeBreakdown {
        let mut s = MatrixStructure::analytic(self.rows, self.cols, self.nnz);
        s.nonempty_fibers = Some((self.ptr.len() - 1) as u64);
        if let InnerStore::Runs { entries, .. } = &self.inner {
            s.rlc_entries = Some(entries.len() as u64);
        }
        descriptor_matrix_bits(&self.desc, &s, dtype)
            .expect("encodable descriptors are sizable by construction")
    }

    /// Exact storage footprint in bits.
    pub fn storage_bits(&self, dtype: DataType) -> u64 {
        self.storage_breakdown(dtype).total()
    }

    /// Stored fibers of the outer rank, ascending.
    fn stored_fibers(&self) -> Vec<usize> {
        match &self.outer {
            OuterStore::Dense => (0..self.outer_extent()).collect(),
            OuterStore::Mask(mask) => (0..self.outer_extent())
                .filter(|&f| mask[f / 64] >> (f % 64) & 1 == 1)
                .collect(),
        }
    }

    /// Dense storage index of outer fiber `f`, or `None` when the fiber
    /// is absent (bitmask rank-select: popcount of the mask below `f`).
    fn stored_index_of(&self, f: usize) -> Option<usize> {
        if f >= self.outer_extent() {
            return None;
        }
        match &self.outer {
            OuterStore::Dense => Some(f),
            OuterStore::Mask(mask) => {
                if mask[f / 64] >> (f % 64) & 1 == 0 {
                    return None;
                }
                let below: u32 = mask[..f / 64].iter().map(|w| w.count_ones()).sum();
                let partial = (mask[f / 64] & ((1u64 << (f % 64)) - 1)).count_ones();
                Some((below + partial) as usize)
            }
        }
    }

    fn outer_extent(&self) -> usize {
        match self.desc.order {
            RankOrder::ColMajor => self.cols,
            _ => self.rows,
        }
    }

    fn inner_extent(&self) -> usize {
        match self.desc.order {
            RankOrder::ColMajor => self.rows,
            _ => self.cols,
        }
    }

    /// Decode one stored fiber (by its dense index in `0..ptr.len()-1`)
    /// into `(inner coordinates, values)`.
    fn decode_fiber(&self, si: usize, coords: &mut Vec<usize>, vals: &mut Vec<Value>) {
        coords.clear();
        vals.clear();
        let (s, e) = (self.ptr[si], self.ptr[si + 1]);
        match &self.inner {
            InnerStore::Coords(c) => {
                coords.extend_from_slice(&c[s..e]);
                vals.extend_from_slice(&self.values[s..e]);
            }
            InnerStore::Mask {
                words_per_fiber,
                bits,
            } => {
                let base = si * words_per_fiber;
                let mut vi = s;
                for i in 0..self.inner_extent() {
                    if bits[base + i / 64] >> (i % 64) & 1 == 1 {
                        coords.push(i);
                        vals.push(self.values[vi]);
                        vi += 1;
                    }
                }
                debug_assert_eq!(vi, e);
            }
            InnerStore::Runs { entries, .. } => {
                let mut cursor = 0u64;
                for &(gap, v) in &entries[s..e] {
                    let pos = cursor + gap;
                    cursor = pos + 1;
                    if v != 0.0 {
                        coords.push(pos as usize);
                        vals.push(v);
                    }
                }
            }
        }
    }
}

impl RowMajorStream for CustomMatrix {
    /// Row-major traversal: native fiber walk for row-major orders, a
    /// counting-sort transpose (the CSC algorithm) for column-major. All
    /// scratch comes from the arena, so repeat traversals allocate
    /// nothing once its buffers have grown to fit the operand.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        let stored = self.stored_fibers();
        let StreamArena {
            coords,
            vals,
            idx_a: row_ptr,
            idx_b: next,
            triples,
            ..
        } = arena;
        if self.desc.order != RankOrder::ColMajor {
            for (si, &f) in stored.iter().enumerate() {
                self.decode_fiber(si, coords, vals);
                if !coords.is_empty() {
                    emit(f, coords, vals);
                }
            }
            return;
        }
        // Column-major: bucket all entries by row, columns stay sorted
        // because fibers are visited in ascending column order.
        row_ptr.clear();
        row_ptr.resize(self.rows + 1, 0);
        triples.clear();
        triples.reserve(self.nnz);
        for (si, &col) in stored.iter().enumerate() {
            self.decode_fiber(si, coords, vals);
            for (&r, &v) in coords.iter().zip(&*vals) {
                row_ptr[r + 1] += 1;
                triples.push((r, col, v));
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        // The per-fiber decode scratch is free again — reuse it as the
        // scatter target holding the row-bucketed columns and values.
        coords.clear();
        coords.resize(triples.len(), 0);
        vals.clear();
        vals.resize(triples.len(), 0.0);
        next.clear();
        next.extend_from_slice(row_ptr);
        for &(r, c, v) in triples.iter() {
            let slot = next[r];
            next[r] += 1;
            coords[slot] = c;
            vals[slot] = v;
        }
        for r in 0..self.rows {
            let (s, e) = (row_ptr[r], row_ptr[r + 1]);
            if s < e {
                emit(r, &coords[s..e], &vals[s..e]);
            }
        }
    }

    /// Ranged walk: row-major orders skip/clip the stored-fiber list (it is
    /// sorted ascending); column-major runs the full counting-sort
    /// transpose and emits only the requested row band.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        if self.desc.order != RankOrder::ColMajor {
            let stored = self.stored_fibers();
            let StreamArena { coords, vals, .. } = arena;
            for (si, &f) in stored.iter().enumerate() {
                if f < range.start {
                    continue;
                }
                if f >= range.end {
                    break;
                }
                self.decode_fiber(si, coords, vals);
                if !coords.is_empty() {
                    emit(f, coords, vals);
                }
            }
            return;
        }
        let hi = range.end.min(self.rows);
        if range.start >= hi {
            return;
        }
        self.for_each_fiber_in(arena, &mut |r, cols, vals| {
            if r >= range.start && r < hi {
                emit(r, cols, vals);
            }
        });
    }

    /// Generic counting pass: one full traversal histograms stored
    /// nonzeros per row, then the prefix splits as usual.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        let mut prefix = vec![0usize; self.rows + 1];
        let mut arena = StreamArena::new();
        self.for_each_fiber_in(&mut arena, &mut |r, cols, _| {
            prefix[r + 1] += cols.len();
        });
        for r in 0..self.rows {
            prefix[r + 1] += prefix[r];
        }
        split_by_prefix(&prefix, parts)
    }
}

impl SparseMatrix for CustomMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn get(&self, row: usize, col: usize) -> Value {
        // Decode only the fiber holding (row, col), not the whole matrix.
        let (f, i) = match self.desc.order {
            RankOrder::ColMajor => (col, row),
            _ => (row, col),
        };
        let Some(si) = self.stored_index_of(f) else {
            return 0.0;
        };
        let mut coords = Vec::new();
        let mut vals = Vec::new();
        self.decode_fiber(si, &mut coords, &mut vals);
        match coords.binary_search(&i) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        self.for_each_nnz(&mut |r, c, v| triplets.push((r, c, v)));
        CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("stream coordinates are in bounds by construction")
    }
}

/// A matrix payload addressed by descriptor: the preset containers when
/// the descriptor names one, [`CustomMatrix`] for the open space.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixEncoding {
    /// One of the nine named formats, in its native container.
    Preset(MatrixData),
    /// An open composition in the generic level container.
    Custom(CustomMatrix),
}

impl MatrixEncoding {
    /// The canonical descriptor of this payload.
    pub fn descriptor(&self) -> FormatDescriptor {
        match self {
            MatrixEncoding::Preset(d) => d.descriptor(),
            MatrixEncoding::Custom(c) => c.descriptor().clone(),
        }
    }

    /// Borrow as the row-major fiber stream every generic consumer uses.
    pub fn row_stream(&self) -> &dyn RowMajorStream {
        match self {
            MatrixEncoding::Preset(d) => d.row_stream(),
            MatrixEncoding::Custom(c) => c,
        }
    }

    /// Borrow as the common sparse-matrix trait object.
    pub fn as_sparse(&self) -> &dyn SparseMatrix {
        match self {
            MatrixEncoding::Preset(d) => d.as_sparse(),
            MatrixEncoding::Custom(c) => c,
        }
    }

    /// Exact storage footprint in bits under the generic level model.
    pub fn storage_bits(&self, dtype: DataType) -> u64 {
        match self {
            MatrixEncoding::Preset(d) => crate::size_model::matrix_storage_bits_exact(d, dtype),
            MatrixEncoding::Custom(c) => c.storage_bits(dtype),
        }
    }
}

/// Encode a COO hub matrix per **any** supported descriptor: native
/// containers for the nine presets, [`CustomMatrix`] for the open
/// compositions — the descriptor-first replacement for
/// [`MatrixData::encode`].
pub fn encode_with_descriptor(
    coo: &CooMatrix,
    desc: &FormatDescriptor,
) -> Result<MatrixEncoding, FormatError> {
    match MatrixFormat::from_descriptor(desc) {
        Some(fmt) => Ok(MatrixEncoding::Preset(MatrixData::encode(coo, &fmt)?)),
        None => Ok(MatrixEncoding::Custom(CustomMatrix::encode(coo, desc)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SearchSpace;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            7,
            40,
            vec![
                (0, 0, 1.0),
                (0, 39, 2.0),
                (2, 5, 3.0),
                (2, 6, -4.0),
                (2, 21, 5.0),
                (6, 17, 6.0),
            ],
        )
        .unwrap()
    }

    fn open_two_rank_descriptors() -> Vec<FormatDescriptor> {
        crate::descriptor::enumerate_matrix(SearchSpace::Open)
            .into_iter()
            .filter(|d| {
                d.to_matrix_format().is_none()
                    && d.to_tensor_format().is_none()
                    && d.levels.len() == 2
            })
            .collect()
    }

    #[test]
    fn every_open_composition_round_trips_through_the_stream() {
        let coo = sample();
        let descs = open_two_rank_descriptors();
        assert!(!descs.is_empty(), "open space enumerated no compositions");
        for desc in descs {
            let enc = CustomMatrix::encode(&coo, &desc).unwrap_or_else(|e| {
                panic!("{desc} failed to encode: {e}");
            });
            assert_eq!(enc.to_coo(), coo, "stream round trip lost data for {desc}");
            assert_eq!(enc.nnz(), coo.nnz());
            assert!(enc.storage_bits(DataType::Fp32) > 0);
        }
    }

    #[test]
    fn bitmask_rows_runlength_cols_streams_ordered() {
        let coo = sample();
        let desc = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask, Level::RunLength { run_bits: 3 }],
            ValuesLayout::Contiguous,
        );
        let enc = CustomMatrix::encode(&coo, &desc).unwrap();
        // Long gaps must have produced extension entries (gap 39 > 7).
        let InnerStore::Runs { entries, .. } = &enc.inner else {
            panic!("expected run-length inner storage");
        };
        assert!(
            entries.iter().any(|&(_, v)| v == 0.0),
            "expected run-extension entries for the 39-column gap"
        );
        // And the stream must still be exactly the stored nonzeros.
        let mut last_row = None;
        enc.for_each_fiber(&mut |r, cs, vs| {
            assert!(last_row.is_none_or(|lr| lr < r));
            assert!(cs.windows(2).all(|w| w[0] < w[1]));
            assert!(vs.iter().all(|&v| v != 0.0));
            last_row = Some(r);
        });
        assert_eq!(enc.to_coo(), coo);
    }

    #[test]
    fn column_major_custom_transposes_into_row_order() {
        let coo = sample();
        let desc = FormatDescriptor::new(
            RankOrder::ColMajor,
            vec![Level::Bitmask, Level::Singleton],
            ValuesLayout::Contiguous,
        );
        let enc = CustomMatrix::encode(&coo, &desc).unwrap();
        assert_eq!(enc.to_coo(), coo);
    }

    #[test]
    fn encode_with_descriptor_routes_presets_natively() {
        let coo = sample();
        let enc = encode_with_descriptor(&coo, &FormatDescriptor::csr()).unwrap();
        assert!(matches!(enc, MatrixEncoding::Preset(MatrixData::Csr(_))));
        let custom = encode_with_descriptor(
            &coo,
            &FormatDescriptor::new(
                RankOrder::RowMajor,
                vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
                ValuesLayout::Contiguous,
            ),
        )
        .unwrap();
        assert!(matches!(custom, MatrixEncoding::Custom(_)));
        assert_eq!(custom.as_sparse().to_coo(), coo);
    }

    #[test]
    fn exact_bits_match_the_generic_model_structure() {
        // The exact accounting must charge the *actual* stored-fiber and
        // run-entry counts, not the uniform-random expectations.
        let coo = sample();
        let desc = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
            ValuesLayout::Contiguous,
        );
        let enc = CustomMatrix::encode(&coo, &desc).unwrap();
        let bd = enc.storage_breakdown(DataType::Fp32);
        // 3 non-empty rows of 7; mask covers all 7 fibers.
        assert_eq!(bd.ranks[0].mask_bits, 7);
        let InnerStore::Runs { entries, .. } = &enc.inner else {
            unreachable!()
        };
        assert_eq!(bd.stored_elements, entries.len() as u64);
    }

    #[test]
    fn random_access_decodes_only_the_target_fiber() {
        let coo = sample();
        let dense = coo.clone().into_dense();
        for desc in open_two_rank_descriptors() {
            let enc = CustomMatrix::encode(&coo, &desc).unwrap();
            for r in 0..7 {
                for c in 0..40 {
                    assert_eq!(enc.get(r, c), dense.get(r, c), "{desc} at ({r},{c})");
                }
            }
            // Out-of-bounds coordinates read as zero, not a panic.
            assert_eq!(enc.get(100, 0), 0.0);
        }
    }

    #[test]
    fn unsupported_compositions_are_rejected() {
        let coo = sample();
        let dia_like = FormatDescriptor::dia();
        assert!(CustomMatrix::encode(&coo, &dia_like).is_err());
        let three_levels = FormatDescriptor::csf();
        assert!(CustomMatrix::encode(&coo, &three_levels).is_err());
    }
}

//! Dense and coordinate 3-D tensor storage.

use crate::error::FormatError;
use crate::traits::SparseTensor3;
use crate::Value;

/// Dense 3-D tensor, flattened `x -> y -> z` with z fastest.
///
/// The flattening order matches the paper's Fig. 8f Dense→CSF walkthrough
/// ("the dense format equivalent in z → y → x order"), i.e. z is the
/// innermost loop of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor3 {
    dims: (usize, usize, usize),
    data: Vec<Value>,
}

impl DenseTensor3 {
    /// All-zeros tensor of the given shape.
    pub fn zeros(dx: usize, dy: usize, dz: usize) -> Self {
        DenseTensor3 {
            dims: (dx, dy, dz),
            data: vec![0.0; dx * dy * dz],
        }
    }

    /// Build from a flat buffer (z fastest). Fails on length mismatch.
    pub fn from_vec(
        dx: usize,
        dy: usize,
        dz: usize,
        data: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if data.len() != dx * dy * dz {
            return Err(FormatError::LengthMismatch {
                what: "dense tensor data vs volume",
                expected: dx * dy * dz,
                actual: data.len(),
            });
        }
        Ok(DenseTensor3 {
            dims: (dx, dy, dz),
            data,
        })
    }

    /// Flat backing buffer.
    #[inline]
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Mutable flat backing buffer (z fastest) — lets kernels update a
    /// whole `(x, y)` output fiber as one contiguous lane.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Value] {
        &mut self.data
    }

    /// Write access to element `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: Value) {
        let i = (x * self.dims.1 + y) * self.dims.2 + z;
        self.data[i] = v;
    }

    /// Add into element `(x, y, z)`.
    #[inline]
    pub fn add_assign(&mut self, x: usize, y: usize, z: usize, v: Value) {
        let i = (x * self.dims.1 + y) * self.dims.2 + z;
        self.data[i] += v;
    }

    /// Count explicit nonzeros.
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }
}

impl SparseTensor3 for DenseTensor3 {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.count_nonzeros()
    }
    #[inline]
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        self.data[(x * self.dims.1 + y) * self.dims.2 + z]
    }
    fn to_coo(&self) -> CooTensor3 {
        let (dx, dy, dz) = self.dims;
        let mut quads = Vec::new();
        for x in 0..dx {
            for y in 0..dy {
                for z in 0..dz {
                    let v = self.get(x, y, z);
                    if v != 0.0 {
                        quads.push((x, y, z, v));
                    }
                }
            }
        }
        CooTensor3::from_quads(dx, dy, dz, quads).expect("scan order is sorted and in-bounds")
    }
    fn to_dense(&self) -> DenseTensor3 {
        self.clone()
    }
}

/// Coordinate-list 3-D tensor (Fig. 3b "Coordinate (COO)"): parallel
/// arrays `(x_ids, y_ids, z_ids, values)` sorted x-major.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor3 {
    dims: (usize, usize, usize),
    x_ids: Vec<usize>,
    y_ids: Vec<usize>,
    z_ids: Vec<usize>,
    values: Vec<Value>,
}

impl CooTensor3 {
    /// Empty tensor of the given shape.
    pub fn empty(dx: usize, dy: usize, dz: usize) -> Self {
        CooTensor3 {
            dims: (dx, dy, dz),
            x_ids: Vec::new(),
            y_ids: Vec::new(),
            z_ids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(x, y, z, value)` quads: sorts, sums duplicates, drops
    /// resulting zeros.
    pub fn from_quads(
        dx: usize,
        dy: usize,
        dz: usize,
        mut quads: Vec<(usize, usize, usize, Value)>,
    ) -> Result<Self, FormatError> {
        for &(x, y, z, _) in &quads {
            if x >= dx {
                return Err(FormatError::IndexOutOfBounds {
                    index: x,
                    bound: dx,
                    axis: 0,
                });
            }
            if y >= dy {
                return Err(FormatError::IndexOutOfBounds {
                    index: y,
                    bound: dy,
                    axis: 1,
                });
            }
            if z >= dz {
                return Err(FormatError::IndexOutOfBounds {
                    index: z,
                    bound: dz,
                    axis: 2,
                });
            }
        }
        quads.sort_unstable_by_key(|&(x, y, z, _)| (x, y, z));
        let mut t = CooTensor3::empty(dx, dy, dz);
        for (x, y, z, v) in quads {
            if t.values.last().is_some()
                && *t.x_ids.last().unwrap() == x
                && *t.y_ids.last().unwrap() == y
                && *t.z_ids.last().unwrap() == z
            {
                *t.values.last_mut().unwrap() += v;
                continue;
            }
            t.x_ids.push(x);
            t.y_ids.push(y);
            t.z_ids.push(z);
            t.values.push(v);
        }
        // Drop exact zeros after duplicate accumulation.
        let mut keep = CooTensor3::empty(dx, dy, dz);
        for i in 0..t.values.len() {
            if t.values[i] != 0.0 {
                keep.x_ids.push(t.x_ids[i]);
                keep.y_ids.push(t.y_ids[i]);
                keep.z_ids.push(t.z_ids[i]);
                keep.values.push(t.values[i]);
            }
        }
        Ok(keep)
    }

    /// x coordinates, parallel to `values`.
    #[inline]
    pub fn x_ids(&self) -> &[usize] {
        &self.x_ids
    }
    /// y coordinates, parallel to `values`.
    #[inline]
    pub fn y_ids(&self) -> &[usize] {
        &self.y_ids
    }
    /// z coordinates, parallel to `values`.
    #[inline]
    pub fn z_ids(&self) -> &[usize] {
        &self.z_ids
    }
    /// Stored nonzero values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterate `(x, y, z, value)` in x-major sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, Value)> + '_ {
        (0..self.values.len())
            .map(move |i| (self.x_ids[i], self.y_ids[i], self.z_ids[i], self.values[i]))
    }

    /// Consume into a dense tensor.
    pub fn into_dense(self) -> DenseTensor3 {
        let (dx, dy, dz) = self.dims;
        let mut out = DenseTensor3::zeros(dx, dy, dz);
        for i in 0..self.values.len() {
            out.set(self.x_ids[i], self.y_ids[i], self.z_ids[i], self.values[i]);
        }
        out
    }
}

impl SparseTensor3 for CooTensor3 {
    fn dim_x(&self) -> usize {
        self.dims.0
    }
    fn dim_y(&self) -> usize {
        self.dims.1
    }
    fn dim_z(&self) -> usize {
        self.dims.2
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, x: usize, y: usize, z: usize) -> Value {
        // Binary search on the sorted (x, y, z) key.
        let key = (x, y, z);
        let mut lo = 0usize;
        let mut hi = self.values.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mk = (self.x_ids[mid], self.y_ids[mid], self.z_ids[mid]);
            match mk.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return self.values[mid],
            }
        }
        0.0
    }
    fn to_coo(&self) -> CooTensor3 {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            4,
            4,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 1, 2.0),
                (1, 2, 2, 3.0),
                (2, 1, 0, 4.0),
                (2, 1, 3, 5.0),
                (3, 0, 3, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn quads_sort_and_dedup() {
        let t = CooTensor3::from_quads(
            2,
            2,
            2,
            vec![(1, 1, 1, 5.0), (0, 0, 0, 1.0), (0, 0, 0, 2.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(0, 0, 0), 3.0);
    }

    #[test]
    fn bounds_checked_per_axis() {
        assert!(matches!(
            CooTensor3::from_quads(2, 2, 2, vec![(2, 0, 0, 1.0)]),
            Err(FormatError::IndexOutOfBounds { axis: 0, .. })
        ));
        assert!(matches!(
            CooTensor3::from_quads(2, 2, 2, vec![(0, 2, 0, 1.0)]),
            Err(FormatError::IndexOutOfBounds { axis: 1, .. })
        ));
        assert!(matches!(
            CooTensor3::from_quads(2, 2, 2, vec![(0, 0, 2, 1.0)]),
            Err(FormatError::IndexOutOfBounds { axis: 2, .. })
        ));
    }

    #[test]
    fn dense_roundtrip() {
        let t = sample();
        let d = t.clone().into_dense();
        assert_eq!(d.to_coo(), t);
        assert_eq!(d.nnz(), 6);
    }

    #[test]
    fn get_via_binary_search() {
        let t = sample();
        assert_eq!(t.get(2, 1, 3), 5.0);
        assert_eq!(t.get(2, 1, 2), 0.0);
        assert_eq!(t.get(3, 3, 3), 0.0);
    }

    #[test]
    fn dense_tensor_set_get() {
        let mut d = DenseTensor3::zeros(2, 3, 4);
        d.set(1, 2, 3, 9.0);
        d.add_assign(1, 2, 3, 1.0);
        assert_eq!(d.get(1, 2, 3), 10.0);
        assert_eq!(d.nnz(), 1);
        assert_eq!(d.shape(), (2, 3, 4));
    }

    #[test]
    fn dense_from_vec_validates() {
        assert!(DenseTensor3::from_vec(2, 2, 2, vec![0.0; 7]).is_err());
        assert!(DenseTensor3::from_vec(2, 2, 2, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn duplicate_cancellation() {
        let t = CooTensor3::from_quads(2, 2, 2, vec![(0, 1, 1, 2.0), (0, 1, 1, -2.0)]).unwrap();
        assert_eq!(t.nnz(), 0);
    }
}

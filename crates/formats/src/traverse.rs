//! Fiber-stream traversal: one streaming interface over every format.
//!
//! The paper's central claim is that a sparse tensor accelerator should
//! consume operands in *any* compression format (Fig. 3). The natural unit
//! of consumption is the **fiber** — Fig. 3's terminology for a
//! one-dimensional slice of the operand holding all stored elements that
//! share their remaining coordinates. For a matrix streamed row-major, a
//! fiber is one compressed row (`row_id`, the sorted column ids, and the
//! stored values); for a 3-D tensor it is one `(x, y)` mode-z fiber —
//! exactly the runs CSF's tree levels point at (Fig. 3b) and the order the
//! paper's Algorithm 1 consumes nonzeros in.
//!
//! [`RowMajorStream`] and [`FiberStream3`] expose that traversal uniformly:
//! every matrix format can push its fibers row-major, and every 3-D tensor
//! format can push its mode-z fibers x-major, regardless of how the bits
//! are laid out. Formats whose storage *is* fiber-shaped (CSR's rows, COO's
//! sorted runs, CSF's level-2 slices, ZVC's packed per-row values) stream
//! zero-copy; padded or transposed layouts (BSR, ELL, DIA, CSC, RLC, Dense)
//! assemble each fiber in scratch borrowed from a [`StreamArena`] as they
//! walk their native structure — no COO hub round-trip, no format
//! conversion, and (once the arena is warm) no heap allocation.
//!
//! Kernels written against these traits run unchanged over every format
//! (see `sparseflex-kernels`' format-generic `spmv`/`spmm`/`spgemm`/
//! `mttkrp`/`spttm`), which is the software analogue of the paper's
//! flexible-ACF accelerator: implement one traversal per format, get every
//! kernel for free.
//!
//! # Scratch discipline
//!
//! The required methods are the `*_in` variants taking a `&mut
//! StreamArena`; the arena-less methods are provided wrappers that build a
//! fresh (heap-free) arena per call, so one-shot callers keep the PR-2
//! signature and cost. Hot loops — the tile pipeline, kernel dispatchers,
//! benches — thread one arena through every traversal so scratch-hungry
//! formats (CSC's counting-sort transpose, HiCOO's re-sort, ELL/DIA/BSR
//! fiber assembly) reach a zero-allocation steady state. See
//! [`crate::arena`] for the buffer-ownership rules.
//!
//! # Ordering contract
//!
//! Implementations **must** emit exactly the elements their `to_coo()`
//! produces (stored nonzeros only — padding slots and explicit zeros are
//! skipped), grouped into non-empty fibers, with fiber ids strictly
//! ascending and coordinates strictly ascending within each fiber. This
//! makes the stream a drop-in replacement for the COO hub in any
//! order-sensitive consumer (CSR construction, merge-joins, the
//! weight-stationary dataflow). The arena-threaded and arena-less paths
//! must be bit-for-bit identical.

use crate::arena::StreamArena;
use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csf::CsfTensor;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::formats::{MatrixData, TensorData};
use crate::hicoo::HiCooTensor;
use crate::rlc::{RlcMatrix, RlcTensor3};
use crate::tensor::{CooTensor3, DenseTensor3};
use crate::zvc::{ZvcMatrix, ZvcTensor3};
use crate::Value;

/// Callback consuming one matrix row fiber: `(row, col_ids, values)`.
pub type RowFiberSink<'a> = dyn FnMut(usize, &[usize], &[Value]) + 'a;

/// Callback consuming one tensor mode-z fiber: `(x, y, z_ids, values)`.
pub type FiberSink3<'a> = dyn FnMut(usize, usize, &[usize], &[Value]) + 'a;

/// Row-major fiber traversal over any 2-D format.
///
/// One call to [`for_each_fiber_in`](Self::for_each_fiber_in) pushes every
/// stored row fiber `(row, cols, vals)` through the callback, rows
/// ascending and columns ascending within each row — the order the paper's
/// streaming dataflows (Alg. 1, Fig. 6) consume the operand in. Scratch
/// comes from the caller's [`StreamArena`], so repeat traversals allocate
/// nothing; [`for_each_fiber`](Self::for_each_fiber) is the one-shot
/// wrapper. Hub-only consumers that want individual nonzeros can use the
/// derived triple streams [`for_each_nnz_in`](Self::for_each_nnz_in) /
/// [`for_each_nnz`](Self::for_each_nnz) instead.
pub trait RowMajorStream {
    /// Push each non-empty row fiber `(row, col_ids, values)` in row-major
    /// order, assembling scratch-built fibers in `arena`. `col_ids` and
    /// `values` are parallel slices (borrowed from the format where the
    /// layout allows, from the arena otherwise) and are only valid for the
    /// duration of the callback. Implementations may use any arena buffer
    /// except [`StreamArena::acc`], which is reserved for consumers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>);

    /// One-shot wrapper around [`for_each_fiber_in`](Self::for_each_fiber_in)
    /// with a fresh (heap-free until used) arena.
    fn for_each_fiber(&self, emit: &mut RowFiberSink<'_>) {
        self.for_each_fiber_in(&mut StreamArena::new(), emit);
    }

    /// Push individual `(row, col, value)` triples in row-major order — the
    /// nnz stream view of the same traversal — using the caller's arena.
    fn for_each_nnz_in(&self, arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.for_each_fiber_in(arena, &mut |r, cols, vals| {
            for (&c, &v) in cols.iter().zip(vals) {
                emit(r, c, v);
            }
        });
    }

    /// One-shot wrapper around [`for_each_nnz_in`](Self::for_each_nnz_in).
    fn for_each_nnz(&self, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.for_each_nnz_in(&mut StreamArena::new(), emit);
    }
}

/// Mode-z fiber traversal over any 3-D tensor format.
///
/// One call to [`for_each_fiber_in`](Self::for_each_fiber_in) pushes every
/// non-empty `(x, y)` fiber — the z-direction runs of Fig. 3b that CSF's
/// tree levels index — with `(x, y)` lexicographically ascending and z
/// ascending within each fiber. Scratch comes from the caller's
/// [`StreamArena`]; [`for_each_fiber`](Self::for_each_fiber) is the
/// one-shot wrapper.
pub trait FiberStream3 {
    /// Push each non-empty fiber `(x, y, z_ids, values)` in `(x, y)`
    /// lexicographic order, assembling scratch-built fibers in `arena`.
    /// `z_ids` and `values` are parallel slices valid only for the duration
    /// of the callback. Implementations may use any arena buffer except
    /// [`StreamArena::acc`], which is reserved for consumers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>);

    /// One-shot wrapper around [`for_each_fiber_in`](Self::for_each_fiber_in)
    /// with a fresh (heap-free until used) arena.
    fn for_each_fiber(&self, emit: &mut FiberSink3<'_>) {
        self.for_each_fiber_in(&mut StreamArena::new(), emit);
    }

    /// Push individual `(x, y, z, value)` quads in x-major order using the
    /// caller's arena.
    fn for_each_nnz_in(
        &self,
        arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        self.for_each_fiber_in(arena, &mut |x, y, zs, vals| {
            for (&z, &v) in zs.iter().zip(vals) {
                emit(x, y, z, v);
            }
        });
    }

    /// One-shot wrapper around [`for_each_nnz_in`](Self::for_each_nnz_in).
    fn for_each_nnz(&self, emit: &mut dyn FnMut(usize, usize, usize, Value)) {
        self.for_each_nnz_in(&mut StreamArena::new(), emit);
    }
}

// ---------------------------------------------------------------------------
// Matrix implementations
// ---------------------------------------------------------------------------

impl RowMajorStream for CsrMatrix {
    /// Zero-copy: CSR rows *are* fibers. The arena is untouched.
    fn for_each_fiber_in(&self, _arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        for r in 0..self.rows() {
            let (cols, vals) = self.row(r);
            if !cols.is_empty() {
                emit(r, cols, vals);
            }
        }
    }
}

impl RowMajorStream for CooMatrix {
    /// Zero-copy: the hub arrays are row-major sorted, so each row's
    /// entries form a contiguous run. The arena is untouched.
    fn for_each_fiber_in(&self, _arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        let rids = self.row_ids();
        let mut s = 0;
        while s < rids.len() {
            let r = rids[s];
            let mut e = s + 1;
            while e < rids.len() && rids[e] == r {
                e += 1;
            }
            emit(r, &self.col_ids()[s..e], &self.values()[s..e]);
            s = e;
        }
    }

    fn for_each_nnz_in(&self, _arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        for (r, c, v) in self.iter() {
            emit(r, c, v);
        }
    }
}

impl RowMajorStream for DenseMatrix {
    /// Arena-scratch: compacts each dense row's nonzeros into one fiber
    /// (the stream equivalent of `to_coo`'s row scan).
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let StreamArena { coords, vals, .. } = arena;
        for r in 0..self.rows() {
            coords.clear();
            vals.clear();
            for (c, &v) in self.row(r).iter().enumerate() {
                if v != 0.0 {
                    coords.push(c);
                    vals.push(v);
                }
            }
            if !coords.is_empty() {
                emit(r, coords, vals);
            }
        }
    }
}

impl RowMajorStream for CscMatrix {
    /// Arena-scratch counting-sort transpose: one O(nnz) bucketing pass
    /// (the same algorithm MINT's CSC→CSR pipeline runs in hardware,
    /// Fig. 8c), then a zero-copy walk of the transposed runs. Steady
    /// state reuses the arena's `idx_a`/`idx_b`/`coords`/`vals` capacity.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let nnz = self.values().len();
        let rows = self.rows();
        let StreamArena {
            coords,
            vals,
            idx_a: row_ptr,
            idx_b: next,
            ..
        } = arena;
        row_ptr.clear();
        row_ptr.resize(rows + 1, 0);
        for &r in self.row_ids() {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        coords.clear();
        coords.resize(nnz, 0);
        vals.clear();
        vals.resize(nnz, 0.0);
        next.clear();
        next.extend_from_slice(row_ptr);
        // Column-major scan fills each row bucket in ascending column order.
        for (r, c, v) in self.iter_col_major() {
            let slot = next[r];
            next[r] += 1;
            coords[slot] = c;
            vals[slot] = v;
        }
        for r in 0..rows {
            let (s, e) = (row_ptr[r], row_ptr[r + 1]);
            if s < e {
                emit(r, &coords[s..e], &vals[s..e]);
            }
        }
    }
}

impl RowMajorStream for BsrMatrix {
    /// Arena-scratch: walks each block row once, merging the stored blocks'
    /// local rows (block columns are sorted, so concatenation is already
    /// column-ascending) and skipping padding zeros.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let (br_h, bc_w) = self.block_shape();
        let StreamArena { coords, vals, .. } = arena;
        for br in 0..self.num_block_rows() {
            for lr in 0..br_h {
                let r = br * br_h + lr;
                if r >= self.rows() {
                    break;
                }
                coords.clear();
                vals.clear();
                for i in self.row_ptr()[br]..self.row_ptr()[br + 1] {
                    let bc = self.col_ids()[i];
                    let blk = self.block(i);
                    for lc in 0..bc_w {
                        let c = bc * bc_w + lc;
                        if c >= self.cols() {
                            break;
                        }
                        let v = blk[lr * bc_w + lc];
                        if v != 0.0 {
                            coords.push(c);
                            vals.push(v);
                        }
                    }
                }
                if !coords.is_empty() {
                    emit(r, coords, vals);
                }
            }
        }
    }
}

impl RowMajorStream for EllMatrix {
    /// Arena-scratch, single pass: sentinel slots and explicit zeros are
    /// dropped *while* scanning the padded row (not filtered from a
    /// materialized copy), and sortedness is detected on the fly — rows
    /// whose stored slots are already column-ascending (the common case
    /// for encoder-produced ELL) emit directly; only genuinely unsorted
    /// builder-supplied rows pay the re-sort through `pairs`.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let StreamArena {
            coords,
            vals,
            pairs,
            ..
        } = arena;
        for r in 0..self.rows() {
            let (cs, vs) = self.row(r);
            coords.clear();
            vals.clear();
            let mut sorted = true;
            for (&c, &v) in cs.iter().zip(vs) {
                if c != ELL_PAD && v != 0.0 {
                    if let Some(&last) = coords.last() {
                        sorted &= last < c;
                    }
                    coords.push(c);
                    vals.push(v);
                }
            }
            if coords.is_empty() {
                continue;
            }
            if !sorted {
                pairs.clear();
                pairs.extend(coords.iter().copied().zip(vals.iter().copied()));
                pairs.sort_unstable_by_key(|&(c, _)| c);
                coords.clear();
                vals.clear();
                for &(c, v) in pairs.iter() {
                    coords.push(c);
                    vals.push(v);
                }
            }
            emit(r, coords, vals);
        }
    }
}

impl RowMajorStream for DiaMatrix {
    /// Arena-scratch: per row, the sorted diagonal offsets yield columns in
    /// ascending order directly (`col = row + offset`). The valid offset
    /// window `0 <= row + k < cols` is located by binary search over the
    /// sorted offsets, so out-of-bounds strip slots are never visited;
    /// padding zeros inside the window are skipped during the scan.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let offsets = self.offsets();
        let StreamArena { coords, vals, .. } = arena;
        for r in 0..rows {
            coords.clear();
            vals.clear();
            let lo = offsets.partition_point(|&k| r as isize + k < 0);
            let hi = offsets.partition_point(|&k| r as isize + k < cols_n as isize);
            for (i, &k) in offsets[lo..hi].iter().enumerate() {
                let v = self.data()[(lo + i) * rows + r];
                if v != 0.0 {
                    coords.push((r as isize + k) as usize);
                    vals.push(v);
                }
            }
            if !coords.is_empty() {
                emit(r, coords, vals);
            }
        }
    }
}

impl RowMajorStream for RlcMatrix {
    /// Native stream: decodes the run-length entries in flat order (which
    /// is row-major by construction), batching each row into one fiber in
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let cols_n = self.cols();
        let mut cur_row = usize::MAX;
        let StreamArena { coords, vals, .. } = arena;
        coords.clear();
        vals.clear();
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if e.value == 0.0 {
                continue; // run-extension entry
            }
            let r = (pos as usize) / cols_n;
            if r != cur_row {
                if !coords.is_empty() {
                    emit(cur_row, coords, vals);
                    coords.clear();
                    vals.clear();
                }
                cur_row = r;
            }
            coords.push((pos as usize) % cols_n);
            vals.push(e.value);
        }
        if !coords.is_empty() {
            emit(cur_row, coords, vals);
        }
    }
}

impl RowMajorStream for ZvcMatrix {
    /// Half zero-copy: values are packed row-major, so each row's values
    /// form a contiguous slice; only the column ids are decoded from the
    /// bitmask into arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let coords = &mut arena.coords;
        let mut vi = 0usize;
        for r in 0..rows {
            coords.clear();
            let start = vi;
            for c in 0..cols_n {
                if self.bit(r * cols_n + c) {
                    coords.push(c);
                    vi += 1;
                }
            }
            if !coords.is_empty() {
                emit(r, coords, &self.values()[start..vi]);
            }
        }
    }
}

impl RowMajorStream for MatrixData {
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        self.row_stream().for_each_fiber_in(arena, emit);
    }
    fn for_each_nnz_in(&self, arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.row_stream().for_each_nnz_in(arena, emit);
    }
}

impl MatrixData {
    /// Borrow the payload as a row-major fiber stream — the format-agnostic
    /// traversal every generic kernel consumes.
    pub fn row_stream(&self) -> &dyn RowMajorStream {
        match self {
            MatrixData::Dense(m) => m,
            MatrixData::Coo(m) => m,
            MatrixData::Csr(m) => m,
            MatrixData::Csc(m) => m,
            MatrixData::Bsr(m) => m,
            MatrixData::Dia(m) => m,
            MatrixData::Ell(m) => m,
            MatrixData::Rlc(m) => m,
            MatrixData::Zvc(m) => m,
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor implementations
// ---------------------------------------------------------------------------

impl FiberStream3 for CooTensor3 {
    /// Zero-copy: the hub arrays are x-major sorted, so each `(x, y)`
    /// fiber's entries form a contiguous run. The arena is untouched.
    fn for_each_fiber_in(&self, _arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        let (xs, ys) = (self.x_ids(), self.y_ids());
        let mut s = 0;
        while s < xs.len() {
            let (x, y) = (xs[s], ys[s]);
            let mut e = s + 1;
            while e < xs.len() && xs[e] == x && ys[e] == y {
                e += 1;
            }
            emit(x, y, &self.z_ids()[s..e], &self.values()[s..e]);
            s = e;
        }
    }

    fn for_each_nnz_in(
        &self,
        _arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        for (x, y, z, v) in self.iter() {
            emit(x, y, z, v);
        }
    }
}

impl FiberStream3 for CsfTensor {
    /// Zero-copy tree walk: CSF's level-2 slices *are* the fibers — each
    /// `y_ptr` range is one `(x, y)` fiber's z ids and values.
    fn for_each_fiber_in(&self, _arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        for (si, &x) in self.x_fids().iter().enumerate() {
            for fi in self.x_ptr()[si]..self.x_ptr()[si + 1] {
                let (s, e) = (self.y_ptr()[fi], self.y_ptr()[fi + 1]);
                if s < e {
                    emit(
                        x,
                        self.y_fids()[fi],
                        &self.z_fids()[s..e],
                        &self.values()[s..e],
                    );
                }
            }
        }
    }
}

impl FiberStream3 for DenseTensor3 {
    /// Arena-scratch: each `(x, y)` run of the flat buffer (z fastest) is
    /// one fiber; zeros are compacted away.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let StreamArena {
            coords: zs, vals, ..
        } = arena;
        for x in 0..dx {
            for y in 0..dy {
                let base = (x * dy + y) * dz;
                zs.clear();
                vals.clear();
                for (z, &v) in self.data()[base..base + dz].iter().enumerate() {
                    if v != 0.0 {
                        zs.push(z);
                        vals.push(v);
                    }
                }
                if !zs.is_empty() {
                    emit(x, y, zs, vals);
                }
            }
        }
    }
}

impl FiberStream3 for HiCooTensor {
    /// Arena sort: HiCOO clusters nonzeros by spatial block, so one
    /// `(x, y)` fiber may be split across blocks; the walk decodes the
    /// block-relative coordinates into the arena's `quads` and re-sorts
    /// them x-major once (O(nnz log nnz)) before emitting fibers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        let StreamArena {
            coords: zs,
            vals,
            quads,
            ..
        } = arena;
        quads.clear();
        quads.extend(self.iter());
        quads.sort_unstable_by_key(|&(x, y, z, _)| (x, y, z));
        let mut s = 0;
        while s < quads.len() {
            let (x, y) = (quads[s].0, quads[s].1);
            zs.clear();
            vals.clear();
            let mut e = s;
            while e < quads.len() && quads[e].0 == x && quads[e].1 == y {
                zs.push(quads[e].2);
                vals.push(quads[e].3);
                e += 1;
            }
            emit(x, y, zs, vals);
            s = e;
        }
    }
}

impl FiberStream3 for RlcTensor3 {
    /// Native stream: the flattened run-length entries decode in `(x, y, z)`
    /// order; consecutive same-`(x, y)` elements batch into one fiber in
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        let (dy, dz) = (self.dim_y(), self.dim_z());
        let mut cur: Option<(usize, usize)> = None;
        let StreamArena {
            coords: zs, vals, ..
        } = arena;
        zs.clear();
        vals.clear();
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if e.value == 0.0 {
                continue; // run-extension entry
            }
            let p = pos as usize;
            let xy = (p / (dy * dz), (p / dz) % dy);
            if cur != Some(xy) {
                if let Some((x, y)) = cur {
                    if !zs.is_empty() {
                        emit(x, y, zs, vals);
                        zs.clear();
                        vals.clear();
                    }
                }
                cur = Some(xy);
            }
            zs.push(p % dz);
            vals.push(e.value);
        }
        if let Some((x, y)) = cur {
            if !zs.is_empty() {
                emit(x, y, zs, vals);
            }
        }
    }
}

impl FiberStream3 for ZvcTensor3 {
    /// Half zero-copy: values are packed in flat order, so each `(x, y)`
    /// fiber's values are contiguous; z ids decode from the bitmask into
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let zs = &mut arena.coords;
        let mut vi = 0usize;
        for x in 0..dx {
            for y in 0..dy {
                let base = (x * dy + y) * dz;
                zs.clear();
                let start = vi;
                for z in 0..dz {
                    if self.bit(base + z) {
                        zs.push(z);
                        vi += 1;
                    }
                }
                if !zs.is_empty() {
                    emit(x, y, zs, &self.values()[start..vi]);
                }
            }
        }
    }
}

impl FiberStream3 for TensorData {
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        self.fiber_stream().for_each_fiber_in(arena, emit);
    }
    fn for_each_nnz_in(
        &self,
        arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        self.fiber_stream().for_each_nnz_in(arena, emit);
    }
}

impl TensorData {
    /// Borrow the payload as a mode-z fiber stream — the format-agnostic
    /// traversal the generic tensor kernels consume.
    pub fn fiber_stream(&self) -> &dyn FiberStream3 {
        match self {
            TensorData::Dense(t) => t,
            TensorData::Coo(t) => t,
            TensorData::Csf(t) => t,
            TensorData::HiCoo(t) => t,
            TensorData::Rlc(t) => t,
            TensorData::Zvc(t) => t,
        }
    }
}

// ---------------------------------------------------------------------------
// Stream consumers
// ---------------------------------------------------------------------------

/// Materialize any row-major stream as CSR in one pass, drawing both the
/// traversal scratch and the output buffers from `arena` — the streaming
/// replacement for the `to_coo()` hub round-trip when a consumer needs
/// random row access (Gustavson SpGEMM, the weight-stationary simulator).
///
/// The output `row_ptr`/`col_ids`/`values` take their capacity from the
/// arena's recycled-CSR pool; return the produced matrix with
/// [`StreamArena::recycle_csr`] when done and repeated conversions (the
/// tile loop in `core::pipeline`) stop allocating once the largest tile
/// has been seen.
pub fn csr_from_stream_in(
    arena: &mut StreamArena,
    rows: usize,
    cols: usize,
    stream: &dyn RowMajorStream,
) -> CsrMatrix {
    let (mut row_ptr, mut col_ids, mut values) = arena.take_csr_buffers();
    row_ptr.reserve(rows + 1);
    row_ptr.push(0usize);
    stream.for_each_fiber_in(arena, &mut |r, cs, vs| {
        while row_ptr.len() <= r {
            row_ptr.push(col_ids.len());
        }
        col_ids.extend_from_slice(cs);
        values.extend_from_slice(vs);
    });
    while row_ptr.len() <= rows {
        row_ptr.push(col_ids.len());
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_ids, values)
        .expect("the stream ordering contract yields valid CSR")
}

/// One-shot wrapper around [`csr_from_stream_in`] with a fresh arena.
pub fn csr_from_stream(rows: usize, cols: usize, stream: &dyn RowMajorStream) -> CsrMatrix {
    csr_from_stream_in(&mut StreamArena::new(), rows, cols, stream)
}

/// Borrow the operand's CSR payload when it already is CSR, else
/// materialize one via [`csr_from_stream_in`] — the zero-copy view shared
/// by the kernel dispatchers and the accelerator runtimes. Owned results
/// can be recycled into the arena with [`StreamArena::recycle_csr`].
pub fn csr_cow_in<'a>(
    arena: &mut StreamArena,
    data: &'a MatrixData,
) -> std::borrow::Cow<'a, CsrMatrix> {
    use crate::traits::SparseMatrix;
    match data {
        MatrixData::Csr(c) => std::borrow::Cow::Borrowed(c),
        other => std::borrow::Cow::Owned(csr_from_stream_in(
            arena,
            other.rows(),
            other.cols(),
            other.row_stream(),
        )),
    }
}

/// One-shot wrapper around [`csr_cow_in`] with a fresh arena.
pub fn csr_cow(data: &MatrixData) -> std::borrow::Cow<'_, CsrMatrix> {
    csr_cow_in(&mut StreamArena::new(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{MatrixFormat, TensorFormat};
    use crate::traits::SparseMatrix;

    fn all_matrix_formats() -> Vec<MatrixFormat> {
        vec![
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 3 },
            MatrixFormat::Zvc,
        ]
    }

    fn all_tensor_formats() -> Vec<TensorFormat> {
        vec![
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 3 },
            TensorFormat::Zvc,
        ]
    }

    fn sample_matrix() -> CooMatrix {
        CooMatrix::from_triplets(
            7,
            6,
            vec![
                (0, 0, 1.0),
                (0, 5, 2.0),
                (1, 2, 3.0),
                (3, 0, 4.0),
                (3, 1, 5.0),
                (3, 5, 6.0),
                (6, 3, -7.0),
                (6, 4, 8.0),
            ],
        )
        .unwrap()
    }

    fn sample_tensor() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            3,
            5,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 4, 2.0),
                (0, 2, 1, 3.0),
                (2, 1, 0, 4.0),
                (2, 1, 3, -5.0),
                (3, 2, 2, 6.0),
            ],
        )
        .unwrap()
    }

    /// Streaming any format must enumerate exactly `to_coo()`'s triples in
    /// the same order — the core traversal contract.
    #[test]
    fn matrix_streams_match_coo_hub_for_every_format() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let mut streamed: Vec<(usize, usize, Value)> = Vec::new();
            data.for_each_nnz(&mut |r, c, v| streamed.push((r, c, v)));
            let expect: Vec<_> = coo.iter().collect();
            assert_eq!(streamed, expect, "nnz stream mismatch for {fmt}");

            // Fiber view: rows strictly ascending, cols strictly ascending.
            let mut last_row = None;
            data.for_each_fiber(&mut |r, cs, vs| {
                assert!(!cs.is_empty(), "{fmt} emitted an empty fiber");
                assert_eq!(cs.len(), vs.len());
                assert!(last_row.is_none_or(|lr| lr < r), "{fmt} rows not ascending");
                assert!(
                    cs.windows(2).all(|w| w[0] < w[1]),
                    "{fmt} cols not ascending in row {r}"
                );
                assert!(vs.iter().all(|&v| v != 0.0), "{fmt} emitted explicit zero");
                last_row = Some(r);
            });
        }
    }

    /// A shared warm arena must produce exactly the same stream as the
    /// one-shot wrapper, across repeated traversals of different operands.
    #[test]
    fn shared_arena_streams_match_one_shot_streams() {
        let coo = sample_matrix();
        let mut arena = StreamArena::new();
        for _pass in 0..3 {
            for fmt in all_matrix_formats() {
                let data = MatrixData::encode(&coo, &fmt).unwrap();
                let mut one_shot: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
                data.for_each_fiber(&mut |r, cs, vs| one_shot.push((r, cs.to_vec(), vs.to_vec())));
                let mut warmed: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
                data.for_each_fiber_in(&mut arena, &mut |r, cs, vs| {
                    warmed.push((r, cs.to_vec(), vs.to_vec()))
                });
                assert_eq!(one_shot, warmed, "arena changed the stream for {fmt}");
            }
        }
        let tco = sample_tensor();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&tco, &fmt).unwrap();
            let mut one_shot: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber(&mut |x, y, zs, vs| {
                one_shot.push((x, y, zs.to_vec(), vs.to_vec()))
            });
            let mut warmed: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber_in(&mut arena, &mut |x, y, zs, vs| {
                warmed.push((x, y, zs.to_vec(), vs.to_vec()))
            });
            assert_eq!(one_shot, warmed, "arena changed the stream for {fmt}");
        }
    }

    #[test]
    fn tensor_streams_match_coo_hub_for_every_format() {
        let coo = sample_tensor();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let mut streamed: Vec<(usize, usize, usize, Value)> = Vec::new();
            data.for_each_nnz(&mut |x, y, z, v| streamed.push((x, y, z, v)));
            let expect: Vec<_> = coo.iter().collect();
            assert_eq!(streamed, expect, "nnz stream mismatch for {fmt}");

            let mut last_fiber = None;
            data.for_each_fiber(&mut |x, y, zs, vs| {
                assert!(!zs.is_empty(), "{fmt} emitted an empty fiber");
                assert_eq!(zs.len(), vs.len());
                assert!(
                    last_fiber.is_none_or(|lf| lf < (x, y)),
                    "{fmt} fibers not ascending"
                );
                assert!(zs.windows(2).all(|w| w[0] < w[1]));
                last_fiber = Some((x, y));
            });
        }
    }

    #[test]
    fn empty_operands_stream_nothing() {
        let coo = CooMatrix::empty(5, 4);
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            data.for_each_fiber(&mut |_, _, _| panic!("empty matrix emitted a fiber"));
        }
        let tco = CooTensor3::empty(3, 3, 3);
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&tco, &fmt).unwrap();
            data.for_each_fiber(&mut |_, _, _, _| panic!("empty tensor emitted a fiber"));
        }
    }

    /// RLC saturating runs insert zero-valued extension entries; the stream
    /// must skip them (they are metadata, not elements).
    #[test]
    fn rlc_extension_entries_are_skipped() {
        let coo = CooMatrix::from_triplets(2, 40, vec![(0, 39, 9.0), (1, 20, 3.0)]).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Rlc { run_bits: 3 }).unwrap();
        let mut streamed = Vec::new();
        data.for_each_nnz(&mut |r, c, v| streamed.push((r, c, v)));
        assert_eq!(streamed, vec![(0, 39, 9.0), (1, 20, 3.0)]);
    }

    /// ELL rows with builder-supplied out-of-order slots must still stream
    /// column-ascending (the on-the-fly sortedness detection's slow path).
    #[test]
    fn ell_unsorted_slots_are_resorted() {
        use crate::ell::EllMatrix;
        let m = EllMatrix::from_parts(
            2,
            6,
            3,
            vec![5, 0, 2, 1, ELL_PAD, ELL_PAD],
            vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0],
        )
        .unwrap();
        let mut fibers: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
        let mut arena = StreamArena::new();
        m.for_each_fiber_in(&mut arena, &mut |r, cs, vs| {
            fibers.push((r, cs.to_vec(), vs.to_vec()))
        });
        assert_eq!(
            fibers,
            vec![
                (0, vec![0, 2, 5], vec![2.0, 3.0, 1.0]),
                (1, vec![1], vec![4.0]),
            ]
        );
    }

    #[test]
    fn csr_from_stream_round_trips_every_format() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let csr = csr_from_stream(data.rows(), data.cols(), data.row_stream());
            assert_eq!(csr, CsrMatrix::from_coo(&coo), "csr_from_stream for {fmt}");
        }
        // Trailing empty rows must still be pointed at.
        let tall = CooMatrix::from_triplets(6, 3, vec![(1, 1, 2.0)]).unwrap();
        let csr = csr_from_stream(6, 3, &tall);
        assert_eq!(csr.row_ptr(), &[0, 0, 1, 1, 1, 1, 1]);
    }

    /// The arena-backed conversion with CSR recycling must keep producing
    /// correct matrices while reusing the recycled capacity.
    #[test]
    fn csr_from_stream_in_recycles_capacity() {
        let coo = sample_matrix();
        let expect = CsrMatrix::from_coo(&coo);
        let mut arena = StreamArena::new();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let csr = csr_from_stream_in(&mut arena, data.rows(), data.cols(), data.row_stream());
            assert_eq!(csr, expect, "recycled csr_from_stream_in for {fmt}");
            arena.recycle_csr(csr);
        }
    }

    /// A non-cubic HiCOO block assignment splits (x, y) fibers across
    /// blocks; the stream must still emit them merged and ordered.
    #[test]
    fn hicoo_reorders_block_clustered_elements() {
        let coo = CooTensor3::from_quads(
            8,
            8,
            8,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 7, 2.0), // same fiber, different z-block
                (7, 7, 1, 3.0),
                (0, 7, 0, 4.0),
            ],
        )
        .unwrap();
        let data = TensorData::encode(&coo, &TensorFormat::HiCoo { block: 2 }).unwrap();
        let mut fibers: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        data.for_each_fiber(&mut |x, y, zs, _| fibers.push((x, y, zs.to_vec())));
        assert_eq!(
            fibers,
            vec![(0, 0, vec![0, 7]), (0, 7, vec![0]), (7, 7, vec![1]),]
        );
    }
}

//! Fiber-stream traversal: one streaming interface over every format.
//!
//! The paper's central claim is that a sparse tensor accelerator should
//! consume operands in *any* compression format (Fig. 3). The natural unit
//! of consumption is the **fiber** — Fig. 3's terminology for a
//! one-dimensional slice of the operand holding all stored elements that
//! share their remaining coordinates. For a matrix streamed row-major, a
//! fiber is one compressed row (`row_id`, the sorted column ids, and the
//! stored values); for a 3-D tensor it is one `(x, y)` mode-z fiber —
//! exactly the runs CSF's tree levels point at (Fig. 3b) and the order the
//! paper's Algorithm 1 consumes nonzeros in.
//!
//! [`RowMajorStream`] and [`FiberStream3`] expose that traversal uniformly:
//! every matrix format can push its fibers row-major, and every 3-D tensor
//! format can push its mode-z fibers x-major, regardless of how the bits
//! are laid out. Formats whose storage *is* fiber-shaped (CSR's rows, COO's
//! sorted runs, CSF's level-2 slices, ZVC's packed per-row values) stream
//! zero-copy; padded or transposed layouts (BSR, ELL, DIA, CSC, RLC, Dense)
//! assemble each fiber in scratch borrowed from a [`StreamArena`] as they
//! walk their native structure — no COO hub round-trip, no format
//! conversion, and (once the arena is warm) no heap allocation.
//!
//! Kernels written against these traits run unchanged over every format
//! (see `sparseflex-kernels`' format-generic `spmv`/`spmm`/`spgemm`/
//! `mttkrp`/`spttm`), which is the software analogue of the paper's
//! flexible-ACF accelerator: implement one traversal per format, get every
//! kernel for free.
//!
//! # Scratch discipline
//!
//! The required methods are the `*_in` variants taking a `&mut
//! StreamArena`; the arena-less methods are provided wrappers that build a
//! fresh (heap-free) arena per call, so one-shot callers keep the PR-2
//! signature and cost. Hot loops — the tile pipeline, kernel dispatchers,
//! benches — thread one arena through every traversal so scratch-hungry
//! formats (CSC's counting-sort transpose, HiCOO's re-sort, ELL/DIA/BSR
//! fiber assembly) reach a zero-allocation steady state. See
//! [`crate::arena`] for the buffer-ownership rules.
//!
//! # Ordering contract
//!
//! Implementations **must** emit exactly the elements their `to_coo()`
//! produces (stored nonzeros only — padding slots and explicit zeros are
//! skipped), grouped into non-empty fibers, with fiber ids strictly
//! ascending and coordinates strictly ascending within each fiber. This
//! makes the stream a drop-in replacement for the COO hub in any
//! order-sensitive consumer (CSR construction, merge-joins, the
//! weight-stationary dataflow). The arena-threaded and arena-less paths
//! must be bit-for-bit identical.
//!
//! # Ranged traversal (the two-phase parallel split)
//!
//! Every stream also supports a **ranged** walk for data-parallel
//! consumers: phase 1, [`RowMajorStream::row_partition`] /
//! [`FiberStream3::fiber_partition`] cuts the fiber-id space into
//! contiguous ranges of near-equal stored-nonzero weight in one cheap
//! index pass (no values are touched beyond the explicit-zero skip each
//! format's stream already performs); phase 2, each worker walks only its
//! slice via `for_each_fiber_range_in` with its **own** [`StreamArena`].
//! The contract: concatenating the ranged walks of a partition, in range
//! order, yields **exactly** the full `for_each_fiber_in` stream — same
//! fibers, same order, same scratch discipline — so parallel kernels
//! built on top are bit-for-bit identical to their sequential twins.
//! Matrix ranges are over row ids `0..rows`; tensor ranges are over the
//! linearized fiber key `x * dim_y + y` in `0..dim_x * dim_y`.

use crate::arena::StreamArena;
use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csf::CsfTensor;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::formats::{MatrixData, TensorData};
use crate::hicoo::HiCooTensor;
use crate::rlc::{RlcMatrix, RlcTensor3};
use crate::tensor::{CooTensor3, DenseTensor3};
use crate::zvc::{ZvcMatrix, ZvcTensor3};
use crate::Value;
use std::ops::Range;

/// Callback consuming one matrix row fiber: `(row, col_ids, values)`.
pub type RowFiberSink<'a> = dyn FnMut(usize, &[usize], &[Value]) + 'a;

/// Callback consuming one tensor mode-z fiber: `(x, y, z_ids, values)`.
pub type FiberSink3<'a> = dyn FnMut(usize, usize, &[usize], &[Value]) + 'a;

/// Cut `0..prefix.len()-1` units (rows / fiber keys) into contiguous
/// ranges of near-equal weight, where `prefix` is the inclusive weight
/// prefix sum (`prefix[0] == 0`, `prefix[u]` = total weight of units
/// `0..u`). Boundary `p` is placed at the first unit whose prefix reaches
/// `p/parts` of the total (one [`slice::partition_point`] each), so every
/// range's weight is within one maximum-unit-weight of the ideal
/// `total/parts`. Duplicate boundaries collapse: the result has at most
/// `parts` non-empty ranges, ascending, disjoint, covering every unit.
pub fn split_by_prefix(prefix: &[usize], parts: usize) -> Vec<Range<usize>> {
    let units = prefix.len().saturating_sub(1);
    if units == 0 {
        return Vec::new();
    }
    let parts = parts.max(1);
    let total = prefix[units];
    let mut out = Vec::with_capacity(parts.min(units));
    let mut start = 0usize;
    for p in 1..parts {
        let target = ((total as u128 * p as u128) / parts as u128) as usize;
        let end = prefix.partition_point(|&w| w < target).min(units);
        if end <= start {
            continue;
        }
        out.push(start..end);
        start = end;
    }
    if start < units {
        out.push(start..units);
    }
    out
}

/// [`split_by_prefix`] for streams whose elements are stored sorted by
/// unit key (COO's row ids, a tensor's `x*dim_y + y` fiber keys): instead
/// of building a prefix array, boundary `p` is the key of element
/// `p/parts * n_elems` — elements sharing that key stay in the next range,
/// so ranges never split a fiber and carry the same near-equal-weight
/// guarantee. `key_at(i)` must be non-decreasing in `i`.
pub fn split_by_sorted_keys(
    n_elems: usize,
    key_end: usize,
    parts: usize,
    key_at: &dyn Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    if key_end == 0 {
        return Vec::new();
    }
    let parts = parts.max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..parts {
        let t = ((n_elems as u128 * p as u128) / parts as u128) as usize;
        let end = if t >= n_elems { key_end } else { key_at(t) };
        if end <= start {
            continue;
        }
        out.push(start..end);
        start = end;
    }
    if start < key_end {
        out.push(start..key_end);
    }
    out
}

/// First index in `0..n` for which `below` turns false (standard binary
/// search over an implicitly sorted predicate — the index-pair analogue of
/// [`slice::partition_point`] for streams keyed by two parallel arrays).
fn lower_bound(n: usize, below: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if below(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Row-major fiber traversal over any 2-D format.
///
/// One call to [`for_each_fiber_in`](Self::for_each_fiber_in) pushes every
/// stored row fiber `(row, cols, vals)` through the callback, rows
/// ascending and columns ascending within each row — the order the paper's
/// streaming dataflows (Alg. 1, Fig. 6) consume the operand in. Scratch
/// comes from the caller's [`StreamArena`], so repeat traversals allocate
/// nothing; [`for_each_fiber`](Self::for_each_fiber) is the one-shot
/// wrapper. Hub-only consumers that want individual nonzeros can use the
/// derived triple streams [`for_each_nnz_in`](Self::for_each_nnz_in) /
/// [`for_each_nnz`](Self::for_each_nnz) instead.
/// The `Sync` supertrait lets parallel kernels share one `&dyn
/// RowMajorStream` across scoped worker threads; every format is plain
/// owned data, so this costs implementations nothing.
pub trait RowMajorStream: Sync {
    /// Push each non-empty row fiber `(row, col_ids, values)` in row-major
    /// order, assembling scratch-built fibers in `arena`. `col_ids` and
    /// `values` are parallel slices (borrowed from the format where the
    /// layout allows, from the arena otherwise) and are only valid for the
    /// duration of the callback. Implementations may use any arena buffer
    /// except [`StreamArena::acc`], which is reserved for consumers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>);

    /// Ranged walk: [`for_each_fiber_in`](Self::for_each_fiber_in)
    /// restricted to rows in `range` — same fibers, same order, same
    /// scratch discipline, so concatenating the walks of a
    /// [`row_partition`](Self::row_partition) reproduces the full stream
    /// exactly. Implementations seek to the range using their native
    /// structure (offset `partition_point`, run skip-scan, bitmask rank,
    /// …) rather than filtering the full walk wherever the layout allows.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    );

    /// Phase 1 of the two-phase parallel split: cut `0..rows` into at most
    /// `parts` contiguous row ranges of near-equal stored-nonzero weight
    /// (each range within one maximum-row-weight of `nnz/parts`), in a
    /// single structure pass. Ranges are ascending, disjoint, and cover
    /// every row; an empty matrix yields no ranges.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>>;

    /// One-shot wrapper around [`for_each_fiber_in`](Self::for_each_fiber_in)
    /// with a fresh (heap-free until used) arena.
    fn for_each_fiber(&self, emit: &mut RowFiberSink<'_>) {
        self.for_each_fiber_in(&mut StreamArena::new(), emit);
    }

    /// Push individual `(row, col, value)` triples in row-major order — the
    /// nnz stream view of the same traversal — using the caller's arena.
    fn for_each_nnz_in(&self, arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.for_each_fiber_in(arena, &mut |r, cols, vals| {
            for (&c, &v) in cols.iter().zip(vals) {
                emit(r, c, v);
            }
        });
    }

    /// One-shot wrapper around [`for_each_nnz_in`](Self::for_each_nnz_in).
    fn for_each_nnz(&self, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.for_each_nnz_in(&mut StreamArena::new(), emit);
    }
}

/// Mode-z fiber traversal over any 3-D tensor format.
///
/// One call to [`for_each_fiber_in`](Self::for_each_fiber_in) pushes every
/// non-empty `(x, y)` fiber — the z-direction runs of Fig. 3b that CSF's
/// tree levels index — with `(x, y)` lexicographically ascending and z
/// ascending within each fiber. Scratch comes from the caller's
/// [`StreamArena`]; [`for_each_fiber`](Self::for_each_fiber) is the
/// one-shot wrapper.
/// The `Sync` supertrait lets parallel kernels share one `&dyn
/// FiberStream3` across scoped worker threads.
pub trait FiberStream3: Sync {
    /// Push each non-empty fiber `(x, y, z_ids, values)` in `(x, y)`
    /// lexicographic order, assembling scratch-built fibers in `arena`.
    /// `z_ids` and `values` are parallel slices valid only for the duration
    /// of the callback. Implementations may use any arena buffer except
    /// [`StreamArena::acc`], which is reserved for consumers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>);

    /// Ranged walk over the linearized fiber keys `x * dim_y + y`:
    /// [`for_each_fiber_in`](Self::for_each_fiber_in) restricted to fibers
    /// whose key lies in `range`, seeking via the native structure.
    /// Concatenating the walks of a
    /// [`fiber_partition`](Self::fiber_partition) reproduces the full
    /// stream exactly.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    );

    /// Phase 1 of the two-phase parallel split: cut the fiber-key space
    /// `0..dim_x * dim_y` into at most `parts` contiguous ranges of
    /// near-equal stored-nonzero weight in one structure pass. Ranges are
    /// ascending, disjoint, and cover every key; an empty key space yields
    /// no ranges.
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>>;

    /// One-shot wrapper around [`for_each_fiber_in`](Self::for_each_fiber_in)
    /// with a fresh (heap-free until used) arena.
    fn for_each_fiber(&self, emit: &mut FiberSink3<'_>) {
        self.for_each_fiber_in(&mut StreamArena::new(), emit);
    }

    /// Push individual `(x, y, z, value)` quads in x-major order using the
    /// caller's arena.
    fn for_each_nnz_in(
        &self,
        arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        self.for_each_fiber_in(arena, &mut |x, y, zs, vals| {
            for (&z, &v) in zs.iter().zip(vals) {
                emit(x, y, z, v);
            }
        });
    }

    /// One-shot wrapper around [`for_each_nnz_in`](Self::for_each_nnz_in).
    fn for_each_nnz(&self, emit: &mut dyn FnMut(usize, usize, usize, Value)) {
        self.for_each_nnz_in(&mut StreamArena::new(), emit);
    }
}

// ---------------------------------------------------------------------------
// Matrix implementations
// ---------------------------------------------------------------------------

impl RowMajorStream for CsrMatrix {
    /// Zero-copy: CSR rows *are* fibers. The arena is untouched.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        _arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        for r in range.start..range.end.min(self.rows()) {
            let (cols, vals) = self.row(r);
            if !cols.is_empty() {
                emit(r, cols, vals);
            }
        }
    }

    /// The row pointer *is* the weight prefix sum.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        split_by_prefix(self.row_ptr(), parts)
    }
}

impl RowMajorStream for CooMatrix {
    /// Zero-copy: the hub arrays are row-major sorted, so each row's
    /// entries form a contiguous run. The arena is untouched.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    /// Seeks the element window with two `partition_point`s on the sorted
    /// row ids, then run-scans only that window.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        _arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        let rids = self.row_ids();
        let mut s = rids.partition_point(|&r| r < range.start);
        let stop = rids.partition_point(|&r| r < range.end);
        while s < stop {
            let r = rids[s];
            let mut e = s + 1;
            while e < stop && rids[e] == r {
                e += 1;
            }
            emit(r, &self.col_ids()[s..e], &self.values()[s..e]);
            s = e;
        }
    }

    /// Quantile split over the sorted row ids — no counting pass needed.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let rids = self.row_ids();
        split_by_sorted_keys(rids.len(), self.rows(), parts, &|i| rids[i])
    }

    fn for_each_nnz_in(&self, _arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        for (r, c, v) in self.iter() {
            emit(r, c, v);
        }
    }
}

impl RowMajorStream for DenseMatrix {
    /// Arena-scratch: compacts each dense row's nonzeros into one fiber
    /// (the stream equivalent of `to_coo`'s row scan).
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let StreamArena { coords, vals, .. } = arena;
        for r in range.start..range.end.min(self.rows()) {
            coords.clear();
            vals.clear();
            for (c, &v) in self.row(r).iter().enumerate() {
                if v != 0.0 {
                    coords.push(c);
                    vals.push(v);
                }
            }
            if !coords.is_empty() {
                emit(r, coords, vals);
            }
        }
    }

    /// Counts the nonzeros the stream will emit per row (one value scan —
    /// dense storage has no cheaper structure to consult).
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let rows = self.rows();
        let mut prefix = Vec::with_capacity(rows + 1);
        prefix.push(0usize);
        for r in 0..rows {
            let nz = self.row(r).iter().filter(|&&v| v != 0.0).count();
            prefix.push(prefix[r] + nz);
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for CscMatrix {
    /// Arena-scratch counting-sort transpose: one O(nnz) bucketing pass
    /// (the same algorithm MINT's CSC→CSR pipeline runs in hardware,
    /// Fig. 8c), then a zero-copy walk of the transposed runs. Steady
    /// state reuses the arena's `idx_a`/`idx_b`/`coords`/`vals` capacity.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    /// The counting sort restricted to the row band `range`: each worker
    /// still scans the full column-major index (CSC stores nothing
    /// row-contiguous to seek by), but buckets, scatters, and emits only
    /// its own rows, so scratch is band-sized and bands are independent.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let rows = self.rows();
        let lo = range.start.min(rows);
        let hi = range.end.min(rows);
        if lo >= hi {
            return;
        }
        let band = hi - lo;
        let StreamArena {
            coords,
            vals,
            idx_a: row_ptr,
            idx_b: next,
            ..
        } = arena;
        row_ptr.clear();
        row_ptr.resize(band + 1, 0);
        for &r in self.row_ids() {
            if r >= lo && r < hi {
                row_ptr[r - lo + 1] += 1;
            }
        }
        for i in 0..band {
            row_ptr[i + 1] += row_ptr[i];
        }
        let band_nnz = row_ptr[band];
        coords.clear();
        coords.resize(band_nnz, 0);
        vals.clear();
        vals.resize(band_nnz, 0.0);
        next.clear();
        next.extend_from_slice(row_ptr);
        // Column-major scan fills each row bucket in ascending column order.
        for (r, c, v) in self.iter_col_major() {
            if r >= lo && r < hi {
                let slot = next[r - lo];
                next[r - lo] += 1;
                coords[slot] = c;
                vals[slot] = v;
            }
        }
        for i in 0..band {
            let (s, e) = (row_ptr[i], row_ptr[i + 1]);
            if s < e {
                emit(lo + i, &coords[s..e], &vals[s..e]);
            }
        }
    }

    /// Reuses the transpose's counting pass as the weight histogram.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let rows = self.rows();
        let mut prefix = vec![0usize; rows + 1];
        for &r in self.row_ids() {
            prefix[r + 1] += 1;
        }
        for r in 0..rows {
            prefix[r + 1] += prefix[r];
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for BsrMatrix {
    /// Arena-scratch: walks each block row once, merging the stored blocks'
    /// local rows (block columns are sorted, so concatenation is already
    /// column-ascending) and skipping padding zeros.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    /// Clamps the block-row window to `range.start / br_h ..
    /// ceil(range.end / br_h)` via the block offsets, then skips the local
    /// rows outside the range inside the two boundary block rows.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let (br_h, bc_w) = self.block_shape();
        let lo = range.start.min(self.rows());
        let hi = range.end.min(self.rows());
        if lo >= hi || br_h == 0 {
            return;
        }
        let StreamArena { coords, vals, .. } = arena;
        for br in lo / br_h..hi.div_ceil(br_h).min(self.num_block_rows()) {
            for lr in 0..br_h {
                let r = br * br_h + lr;
                if r >= hi {
                    break;
                }
                if r < lo {
                    continue;
                }
                coords.clear();
                vals.clear();
                for i in self.row_ptr()[br]..self.row_ptr()[br + 1] {
                    let bc = self.col_ids()[i];
                    let blk = self.block(i);
                    for lc in 0..bc_w {
                        let c = bc * bc_w + lc;
                        if c >= self.cols() {
                            break;
                        }
                        let v = blk[lr * bc_w + lc];
                        if v != 0.0 {
                            coords.push(c);
                            vals.push(v);
                        }
                    }
                }
                if !coords.is_empty() {
                    emit(r, coords, vals);
                }
            }
        }
    }

    /// One pass over the stored blocks, histogramming the nonzero block
    /// values into their global rows (padding zeros excluded, matching
    /// what the stream emits).
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let (br_h, bc_w) = self.block_shape();
        let rows = self.rows();
        let mut prefix = vec![0usize; rows + 1];
        for br in 0..self.num_block_rows() {
            for i in self.row_ptr()[br]..self.row_ptr()[br + 1] {
                let bc = self.col_ids()[i];
                let blk = self.block(i);
                for lr in 0..br_h {
                    let r = br * br_h + lr;
                    if r >= rows {
                        break;
                    }
                    for lc in 0..bc_w {
                        let c = bc * bc_w + lc;
                        if c >= self.cols() {
                            break;
                        }
                        if blk[lr * bc_w + lc] != 0.0 {
                            prefix[r + 1] += 1;
                        }
                    }
                }
            }
        }
        for r in 0..rows {
            prefix[r + 1] += prefix[r];
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for EllMatrix {
    /// Arena-scratch, single pass: sentinel slots and explicit zeros are
    /// dropped *while* scanning the padded row (not filtered from a
    /// materialized copy), and sortedness is detected on the fly — rows
    /// whose stored slots are already column-ascending (the common case
    /// for encoder-produced ELL) emit directly; only genuinely unsorted
    /// builder-supplied rows pay the re-sort through `pairs`.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let StreamArena {
            coords,
            vals,
            pairs,
            ..
        } = arena;
        for r in range.start..range.end.min(self.rows()) {
            let (cs, vs) = self.row(r);
            coords.clear();
            vals.clear();
            let mut sorted = true;
            for (&c, &v) in cs.iter().zip(vs) {
                if c != ELL_PAD && v != 0.0 {
                    if let Some(&last) = coords.last() {
                        sorted &= last < c;
                    }
                    coords.push(c);
                    vals.push(v);
                }
            }
            if coords.is_empty() {
                continue;
            }
            if !sorted {
                pairs.clear();
                pairs.extend(coords.iter().copied().zip(vals.iter().copied()));
                pairs.sort_unstable_by_key(|&(c, _)| c);
                coords.clear();
                vals.clear();
                for &(c, v) in pairs.iter() {
                    coords.push(c);
                    vals.push(v);
                }
            }
            emit(r, coords, vals);
        }
    }

    /// One pass over the padded slots counting the entries the stream
    /// keeps (`c != ELL_PAD && v != 0.0`).
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let rows = self.rows();
        let mut prefix = Vec::with_capacity(rows + 1);
        prefix.push(0usize);
        for r in 0..rows {
            let (cs, vs) = self.row(r);
            let nz = cs
                .iter()
                .zip(vs)
                .filter(|&(&c, &v)| c != ELL_PAD && v != 0.0)
                .count();
            prefix.push(prefix[r] + nz);
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for DiaMatrix {
    /// Arena-scratch: per row, the sorted diagonal offsets yield columns in
    /// ascending order directly (`col = row + offset`). The valid offset
    /// window `0 <= row + k < cols` is located by binary search over the
    /// sorted offsets, so out-of-bounds strip slots are never visited;
    /// padding zeros inside the window are skipped during the scan.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let offsets = self.offsets();
        let StreamArena { coords, vals, .. } = arena;
        for r in range.start..range.end.min(rows) {
            coords.clear();
            vals.clear();
            let lo = offsets.partition_point(|&k| r as isize + k < 0);
            let hi = offsets.partition_point(|&k| r as isize + k < cols_n as isize);
            for (i, &k) in offsets[lo..hi].iter().enumerate() {
                let v = self.data()[(lo + i) * rows + r];
                if v != 0.0 {
                    coords.push((r as isize + k) as usize);
                    vals.push(v);
                }
            }
            if !coords.is_empty() {
                emit(r, coords, vals);
            }
        }
    }

    /// Per-row scan of the valid diagonal window (the same binary-searched
    /// window the traversal walks), counting stored nonzeros.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let offsets = self.offsets();
        let mut prefix = Vec::with_capacity(rows + 1);
        prefix.push(0usize);
        for r in 0..rows {
            let lo = offsets.partition_point(|&k| r as isize + k < 0);
            let hi = offsets.partition_point(|&k| r as isize + k < cols_n as isize);
            let nz = (lo..hi)
                .filter(|&i| self.data()[i * rows + r] != 0.0)
                .count();
            prefix.push(prefix[r] + nz);
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for RlcMatrix {
    /// Native stream: decodes the run-length entries in flat order (which
    /// is row-major by construction), batching each row into one fiber in
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    /// Skip-scan: the cursor decodes entry *positions* only (no fiber
    /// assembly) until it reaches the range, and stops at the first
    /// position past it — runs are strictly position-ascending.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let cols_n = self.cols();
        if cols_n == 0 {
            return;
        }
        let lo_pos = range.start as u64 * cols_n as u64;
        let hi_pos = range.end.min(self.rows()) as u64 * cols_n as u64;
        let mut cur_row = usize::MAX;
        let StreamArena { coords, vals, .. } = arena;
        coords.clear();
        vals.clear();
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if pos >= hi_pos {
                break;
            }
            if e.value == 0.0 || pos < lo_pos {
                continue; // run-extension entry, or before the range
            }
            let r = (pos as usize) / cols_n;
            if r != cur_row {
                if !coords.is_empty() {
                    emit(cur_row, coords, vals);
                    coords.clear();
                    vals.clear();
                }
                cur_row = r;
            }
            coords.push((pos as usize) % cols_n);
            vals.push(e.value);
        }
        if !coords.is_empty() {
            emit(cur_row, coords, vals);
        }
    }

    /// One decode pass over the run entries, histogramming the value
    /// entries (extension entries excluded) into their rows.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let mut prefix = vec![0usize; rows + 1];
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if e.value == 0.0 {
                continue;
            }
            // checked_div: a zero-column matrix stores no positions at
            // all, so `None` just skips the (impossible) entry.
            if let Some(r) = (pos as usize).checked_div(cols_n) {
                prefix[r + 1] += 1;
            }
        }
        for r in 0..rows {
            prefix[r + 1] += prefix[r];
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for ZvcMatrix {
    /// Half zero-copy: values are packed row-major, so each row's values
    /// form a contiguous slice; only the column ids are decoded from the
    /// bitmask into arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        use crate::traits::SparseMatrix;
        self.for_each_fiber_range_in(0..self.rows(), arena, emit);
    }

    /// Seeks the packed-value cursor with one rank query (popcount of the
    /// mask words before the range), then decodes only the range's bits.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let lo = range.start.min(rows);
        let hi = range.end.min(rows);
        let coords = &mut arena.coords;
        let mut vi = self.rank(lo * cols_n);
        for r in lo..hi {
            coords.clear();
            let start = vi;
            for c in 0..cols_n {
                if self.bit(r * cols_n + c) {
                    coords.push(c);
                    vi += 1;
                }
            }
            if !coords.is_empty() {
                emit(r, coords, &self.values()[start..vi]);
            }
        }
    }

    /// Histogram of set mask bits per row — pure index work.
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseMatrix;
        let (rows, cols_n) = (self.rows(), self.cols());
        let mut prefix = Vec::with_capacity(rows + 1);
        prefix.push(0usize);
        for r in 0..rows {
            let nz = (0..cols_n).filter(|&c| self.bit(r * cols_n + c)).count();
            prefix.push(prefix[r] + nz);
        }
        split_by_prefix(&prefix, parts)
    }
}

impl RowMajorStream for MatrixData {
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut RowFiberSink<'_>) {
        self.row_stream().for_each_fiber_in(arena, emit);
    }
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut RowFiberSink<'_>,
    ) {
        self.row_stream()
            .for_each_fiber_range_in(range, arena, emit);
    }
    fn row_partition(&self, parts: usize) -> Vec<Range<usize>> {
        self.row_stream().row_partition(parts)
    }
    fn for_each_nnz_in(&self, arena: &mut StreamArena, emit: &mut dyn FnMut(usize, usize, Value)) {
        self.row_stream().for_each_nnz_in(arena, emit);
    }
}

impl MatrixData {
    /// Borrow the payload as a row-major fiber stream — the format-agnostic
    /// traversal every generic kernel consumes.
    pub fn row_stream(&self) -> &dyn RowMajorStream {
        match self {
            MatrixData::Dense(m) => m,
            MatrixData::Coo(m) => m,
            MatrixData::Csr(m) => m,
            MatrixData::Csc(m) => m,
            MatrixData::Bsr(m) => m,
            MatrixData::Dia(m) => m,
            MatrixData::Ell(m) => m,
            MatrixData::Rlc(m) => m,
            MatrixData::Zvc(m) => m,
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor implementations
// ---------------------------------------------------------------------------

impl FiberStream3 for CooTensor3 {
    /// Zero-copy: the hub arrays are x-major sorted, so each `(x, y)`
    /// fiber's entries form a contiguous run. The arena is untouched.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Seek: binary-search the sorted hub keys for the range window, then
    /// run-scan only that window.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let _ = arena;
        let dy = self.dim_y();
        let (xs, ys) = (self.x_ids(), self.y_ids());
        let key = |i: usize| xs[i] * dy + ys[i];
        let mut s = lower_bound(xs.len(), |i| key(i) < range.start);
        let stop = lower_bound(xs.len(), |i| key(i) < range.end);
        while s < stop {
            let (x, y) = (xs[s], ys[s]);
            let mut e = s + 1;
            while e < stop && xs[e] == x && ys[e] == y {
                e += 1;
            }
            emit(x, y, &self.z_ids()[s..e], &self.values()[s..e]);
            s = e;
        }
    }

    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let dy = self.dim_y();
        let xs = self.x_ids();
        let ys = self.y_ids();
        split_by_sorted_keys(xs.len(), self.dim_x() * dy, parts, &|i| xs[i] * dy + ys[i])
    }

    fn for_each_nnz_in(
        &self,
        _arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        for (x, y, z, v) in self.iter() {
            emit(x, y, z, v);
        }
    }
}

impl FiberStream3 for CsfTensor {
    /// Zero-copy tree walk: CSF's level-2 slices *are* the fibers — each
    /// `y_ptr` range is one `(x, y)` fiber's z ids and values.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Seek: the tree walk skips whole x slices entirely outside the key
    /// range and clips the fiber loop at both ends (keys ascend within a
    /// slice because `y_fids` are sorted per slice).
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let _ = arena;
        let dy = self.dim_y();
        for (si, &x) in self.x_fids().iter().enumerate() {
            if (x + 1) * dy <= range.start {
                continue;
            }
            if x * dy >= range.end {
                break;
            }
            for fi in self.x_ptr()[si]..self.x_ptr()[si + 1] {
                let key = x * dy + self.y_fids()[fi];
                if key < range.start {
                    continue;
                }
                if key >= range.end {
                    break;
                }
                let (s, e) = (self.y_ptr()[fi], self.y_ptr()[fi + 1]);
                if s < e {
                    emit(
                        x,
                        self.y_fids()[fi],
                        &self.z_fids()[s..e],
                        &self.values()[s..e],
                    );
                }
            }
        }
    }

    /// Quantile split over the stored elements: element `e` belongs to the
    /// fiber found by two `partition_point` descents through the tree
    /// pointers (`y_ptr` locates the fiber, `x_ptr` locates its slice).
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let dy = self.dim_y();
        let key_at = |e: usize| {
            let fi = self.y_ptr().partition_point(|&p| p <= e) - 1;
            let si = self.x_ptr().partition_point(|&p| p <= fi) - 1;
            self.x_fids()[si] * dy + self.y_fids()[fi]
        };
        split_by_sorted_keys(self.values().len(), self.dim_x() * dy, parts, &key_at)
    }
}

impl FiberStream3 for DenseTensor3 {
    /// Arena-scratch: each `(x, y)` run of the flat buffer (z fastest) is
    /// one fiber; zeros are compacted away.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Direct seek: keys address the flat buffer, so the ranged walk is the
    /// same compaction loop over `range` keys only.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let StreamArena {
            coords: zs, vals, ..
        } = arena;
        for key in range.start..range.end.min(dx * dy) {
            let (x, y) = (key / dy, key % dy);
            let base = key * dz;
            zs.clear();
            vals.clear();
            for (z, &v) in self.data()[base..base + dz].iter().enumerate() {
                if v != 0.0 {
                    zs.push(z);
                    vals.push(v);
                }
            }
            if !zs.is_empty() {
                emit(x, y, zs, vals);
            }
        }
    }

    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let keys = dx * dy;
        let mut prefix = vec![0usize; keys + 1];
        for key in 0..keys {
            let base = key * dz;
            let nnz = self.data()[base..base + dz]
                .iter()
                .filter(|&&v| v != 0.0)
                .count();
            prefix[key + 1] = prefix[key] + nnz;
        }
        split_by_prefix(&prefix, parts)
    }
}

impl FiberStream3 for HiCooTensor {
    /// Arena sort: HiCOO clusters nonzeros by spatial block, so one
    /// `(x, y)` fiber may be split across blocks; the walk decodes the
    /// block-relative coordinates into the arena's `quads` and re-sorts
    /// them x-major once (O(nnz log nnz)) before emitting fibers.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Block filter: only quads whose fiber key falls in `range` enter the
    /// arena sort, so each worker sorts just its share of the nonzeros.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let dy = self.dim_y();
        let StreamArena {
            coords: zs,
            vals,
            quads,
            ..
        } = arena;
        quads.clear();
        quads.extend(self.iter().filter(|&(x, y, _, _)| {
            let key = x * dy + y;
            key >= range.start && key < range.end
        }));
        quads.sort_unstable_by_key(|&(x, y, z, _)| (x, y, z));
        let mut s = 0;
        while s < quads.len() {
            let (x, y) = (quads[s].0, quads[s].1);
            zs.clear();
            vals.clear();
            let mut e = s;
            while e < quads.len() && quads[e].0 == x && quads[e].1 == y {
                zs.push(quads[e].2);
                vals.push(quads[e].3);
                e += 1;
            }
            emit(x, y, zs, vals);
            s = e;
        }
    }

    /// Block scan: decode every quad's fiber key once, sort the keys, and
    /// quantile-split — the per-block clustering means no single structure
    /// pass yields sorted keys for free.
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let dy = self.dim_y();
        let mut keys: Vec<usize> = self.iter().map(|(x, y, _, _)| x * dy + y).collect();
        keys.sort_unstable();
        split_by_sorted_keys(keys.len(), self.dim_x() * dy, parts, &|i| keys[i])
    }
}

impl FiberStream3 for RlcTensor3 {
    /// Native stream: the flattened run-length entries decode in `(x, y, z)`
    /// order; consecutive same-`(x, y)` elements batch into one fiber in
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Run skip-scan: decode positions ascend monotonically, so the walk
    /// skips entries below the range window and stops at the first entry
    /// past it.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        if dy == 0 || dz == 0 {
            return;
        }
        let lo_pos = range.start as u64 * dz as u64;
        let hi_pos = range.end.min(dx * dy) as u64 * dz as u64;
        let mut cur: Option<(usize, usize)> = None;
        let StreamArena {
            coords: zs, vals, ..
        } = arena;
        zs.clear();
        vals.clear();
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if pos >= hi_pos {
                break;
            }
            if e.value == 0.0 || pos < lo_pos {
                continue; // run-extension entry or before the window
            }
            let p = pos as usize;
            let xy = (p / (dy * dz), (p / dz) % dy);
            if cur != Some(xy) {
                if let Some((x, y)) = cur {
                    if !zs.is_empty() {
                        emit(x, y, zs, vals);
                        zs.clear();
                        vals.clear();
                    }
                }
                cur = Some(xy);
            }
            zs.push(p % dz);
            vals.push(e.value);
        }
        if let Some((x, y)) = cur {
            if !zs.is_empty() {
                emit(x, y, zs, vals);
            }
        }
    }

    /// Run scan: one decode pass histograms stored elements per fiber key
    /// into a prefix array.
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let keys = dx * dy;
        if dz == 0 {
            return Vec::new();
        }
        let mut prefix = vec![0usize; keys + 1];
        let mut cursor = 0u64;
        for e in self.entries() {
            let pos = cursor + e.zeros;
            cursor = pos + 1;
            if e.value != 0.0 {
                prefix[pos as usize / dz + 1] += 1;
            }
        }
        for k in 0..keys {
            prefix[k + 1] += prefix[k];
        }
        split_by_prefix(&prefix, parts)
    }
}

impl FiberStream3 for ZvcTensor3 {
    /// Half zero-copy: values are packed in flat order, so each `(x, y)`
    /// fiber's values are contiguous; z ids decode from the bitmask into
    /// arena scratch.
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        use crate::traits::SparseTensor3;
        self.for_each_fiber_range_in(0..self.dim_x() * self.dim_y(), arena, emit);
    }

    /// Bitmask rank seek: the packed-value cursor for the first in-range
    /// fiber is `rank(range.start * dz)` (a popcount over the mask prefix);
    /// from there the walk is the usual bit decode.
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let lo = range.start.min(dx * dy);
        let hi = range.end.min(dx * dy);
        let zs = &mut arena.coords;
        let mut vi = self.rank(lo * dz);
        for key in lo..hi {
            let (x, y) = (key / dy, key % dy);
            let base = key * dz;
            zs.clear();
            let start = vi;
            for z in 0..dz {
                if self.bit(base + z) {
                    zs.push(z);
                    vi += 1;
                }
            }
            if !zs.is_empty() {
                emit(x, y, zs, &self.values()[start..vi]);
            }
        }
    }

    /// Mask scan: per-key popcount into a prefix array.
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        use crate::traits::SparseTensor3;
        let (dx, dy, dz) = (self.dim_x(), self.dim_y(), self.dim_z());
        let keys = dx * dy;
        let mut prefix = vec![0usize; keys + 1];
        for key in 0..keys {
            let base = key * dz;
            let nnz = (0..dz).filter(|&z| self.bit(base + z)).count();
            prefix[key + 1] = prefix[key] + nnz;
        }
        split_by_prefix(&prefix, parts)
    }
}

impl FiberStream3 for TensorData {
    fn for_each_fiber_in(&self, arena: &mut StreamArena, emit: &mut FiberSink3<'_>) {
        self.fiber_stream().for_each_fiber_in(arena, emit);
    }
    fn for_each_fiber_range_in(
        &self,
        range: Range<usize>,
        arena: &mut StreamArena,
        emit: &mut FiberSink3<'_>,
    ) {
        self.fiber_stream()
            .for_each_fiber_range_in(range, arena, emit);
    }
    fn fiber_partition(&self, parts: usize) -> Vec<Range<usize>> {
        self.fiber_stream().fiber_partition(parts)
    }
    fn for_each_nnz_in(
        &self,
        arena: &mut StreamArena,
        emit: &mut dyn FnMut(usize, usize, usize, Value),
    ) {
        self.fiber_stream().for_each_nnz_in(arena, emit);
    }
}

impl TensorData {
    /// Borrow the payload as a mode-z fiber stream — the format-agnostic
    /// traversal the generic tensor kernels consume.
    pub fn fiber_stream(&self) -> &dyn FiberStream3 {
        match self {
            TensorData::Dense(t) => t,
            TensorData::Coo(t) => t,
            TensorData::Csf(t) => t,
            TensorData::HiCoo(t) => t,
            TensorData::Rlc(t) => t,
            TensorData::Zvc(t) => t,
        }
    }
}

// ---------------------------------------------------------------------------
// Stream consumers
// ---------------------------------------------------------------------------

/// Materialize any row-major stream as CSR in one pass, drawing both the
/// traversal scratch and the output buffers from `arena` — the streaming
/// replacement for the `to_coo()` hub round-trip when a consumer needs
/// random row access (Gustavson SpGEMM, the weight-stationary simulator).
///
/// The output `row_ptr`/`col_ids`/`values` take their capacity from the
/// arena's recycled-CSR pool; return the produced matrix with
/// [`StreamArena::recycle_csr`] when done and repeated conversions (the
/// tile loop in `core::pipeline`) stop allocating once the largest tile
/// has been seen.
pub fn csr_from_stream_in(
    arena: &mut StreamArena,
    rows: usize,
    cols: usize,
    stream: &dyn RowMajorStream,
) -> CsrMatrix {
    let (mut row_ptr, mut col_ids, mut values) = arena.take_csr_buffers();
    row_ptr.reserve(rows + 1);
    row_ptr.push(0usize);
    stream.for_each_fiber_in(arena, &mut |r, cs, vs| {
        while row_ptr.len() <= r {
            row_ptr.push(col_ids.len());
        }
        col_ids.extend_from_slice(cs);
        values.extend_from_slice(vs);
    });
    while row_ptr.len() <= rows {
        row_ptr.push(col_ids.len());
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_ids, values)
        .expect("the stream ordering contract yields valid CSR")
}

/// One-shot wrapper around [`csr_from_stream_in`] with a fresh arena.
pub fn csr_from_stream(rows: usize, cols: usize, stream: &dyn RowMajorStream) -> CsrMatrix {
    csr_from_stream_in(&mut StreamArena::new(), rows, cols, stream)
}

/// Borrow the operand's CSR payload when it already is CSR, else
/// materialize one via [`csr_from_stream_in`] — the zero-copy view shared
/// by the kernel dispatchers and the accelerator runtimes. Owned results
/// can be recycled into the arena with [`StreamArena::recycle_csr`].
pub fn csr_cow_in<'a>(
    arena: &mut StreamArena,
    data: &'a MatrixData,
) -> std::borrow::Cow<'a, CsrMatrix> {
    use crate::traits::SparseMatrix;
    match data {
        MatrixData::Csr(c) => std::borrow::Cow::Borrowed(c),
        other => std::borrow::Cow::Owned(csr_from_stream_in(
            arena,
            other.rows(),
            other.cols(),
            other.row_stream(),
        )),
    }
}

/// One-shot wrapper around [`csr_cow_in`] with a fresh arena.
pub fn csr_cow(data: &MatrixData) -> std::borrow::Cow<'_, CsrMatrix> {
    csr_cow_in(&mut StreamArena::new(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{MatrixFormat, TensorFormat};
    use crate::traits::SparseMatrix;

    fn all_matrix_formats() -> Vec<MatrixFormat> {
        vec![
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 3 },
            MatrixFormat::Zvc,
        ]
    }

    fn all_tensor_formats() -> Vec<TensorFormat> {
        vec![
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 2 },
            TensorFormat::Rlc { run_bits: 3 },
            TensorFormat::Zvc,
        ]
    }

    fn sample_matrix() -> CooMatrix {
        CooMatrix::from_triplets(
            7,
            6,
            vec![
                (0, 0, 1.0),
                (0, 5, 2.0),
                (1, 2, 3.0),
                (3, 0, 4.0),
                (3, 1, 5.0),
                (3, 5, 6.0),
                (6, 3, -7.0),
                (6, 4, 8.0),
            ],
        )
        .unwrap()
    }

    fn sample_tensor() -> CooTensor3 {
        CooTensor3::from_quads(
            4,
            3,
            5,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 4, 2.0),
                (0, 2, 1, 3.0),
                (2, 1, 0, 4.0),
                (2, 1, 3, -5.0),
                (3, 2, 2, 6.0),
            ],
        )
        .unwrap()
    }

    /// Streaming any format must enumerate exactly `to_coo()`'s triples in
    /// the same order — the core traversal contract.
    #[test]
    fn matrix_streams_match_coo_hub_for_every_format() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let mut streamed: Vec<(usize, usize, Value)> = Vec::new();
            data.for_each_nnz(&mut |r, c, v| streamed.push((r, c, v)));
            let expect: Vec<_> = coo.iter().collect();
            assert_eq!(streamed, expect, "nnz stream mismatch for {fmt}");

            // Fiber view: rows strictly ascending, cols strictly ascending.
            let mut last_row = None;
            data.for_each_fiber(&mut |r, cs, vs| {
                assert!(!cs.is_empty(), "{fmt} emitted an empty fiber");
                assert_eq!(cs.len(), vs.len());
                assert!(last_row.is_none_or(|lr| lr < r), "{fmt} rows not ascending");
                assert!(
                    cs.windows(2).all(|w| w[0] < w[1]),
                    "{fmt} cols not ascending in row {r}"
                );
                assert!(vs.iter().all(|&v| v != 0.0), "{fmt} emitted explicit zero");
                last_row = Some(r);
            });
        }
    }

    /// A shared warm arena must produce exactly the same stream as the
    /// one-shot wrapper, across repeated traversals of different operands.
    #[test]
    fn shared_arena_streams_match_one_shot_streams() {
        let coo = sample_matrix();
        let mut arena = StreamArena::new();
        for _pass in 0..3 {
            for fmt in all_matrix_formats() {
                let data = MatrixData::encode(&coo, &fmt).unwrap();
                let mut one_shot: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
                data.for_each_fiber(&mut |r, cs, vs| one_shot.push((r, cs.to_vec(), vs.to_vec())));
                let mut warmed: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
                data.for_each_fiber_in(&mut arena, &mut |r, cs, vs| {
                    warmed.push((r, cs.to_vec(), vs.to_vec()))
                });
                assert_eq!(one_shot, warmed, "arena changed the stream for {fmt}");
            }
        }
        let tco = sample_tensor();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&tco, &fmt).unwrap();
            let mut one_shot: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber(&mut |x, y, zs, vs| {
                one_shot.push((x, y, zs.to_vec(), vs.to_vec()))
            });
            let mut warmed: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber_in(&mut arena, &mut |x, y, zs, vs| {
                warmed.push((x, y, zs.to_vec(), vs.to_vec()))
            });
            assert_eq!(one_shot, warmed, "arena changed the stream for {fmt}");
        }
    }

    #[test]
    fn tensor_streams_match_coo_hub_for_every_format() {
        let coo = sample_tensor();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let mut streamed: Vec<(usize, usize, usize, Value)> = Vec::new();
            data.for_each_nnz(&mut |x, y, z, v| streamed.push((x, y, z, v)));
            let expect: Vec<_> = coo.iter().collect();
            assert_eq!(streamed, expect, "nnz stream mismatch for {fmt}");

            let mut last_fiber = None;
            data.for_each_fiber(&mut |x, y, zs, vs| {
                assert!(!zs.is_empty(), "{fmt} emitted an empty fiber");
                assert_eq!(zs.len(), vs.len());
                assert!(
                    last_fiber.is_none_or(|lf| lf < (x, y)),
                    "{fmt} fibers not ascending"
                );
                assert!(zs.windows(2).all(|w| w[0] < w[1]));
                last_fiber = Some((x, y));
            });
        }
    }

    #[test]
    fn empty_operands_stream_nothing() {
        let coo = CooMatrix::empty(5, 4);
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            data.for_each_fiber(&mut |_, _, _| panic!("empty matrix emitted a fiber"));
        }
        let tco = CooTensor3::empty(3, 3, 3);
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&tco, &fmt).unwrap();
            data.for_each_fiber(&mut |_, _, _, _| panic!("empty tensor emitted a fiber"));
        }
    }

    /// RLC saturating runs insert zero-valued extension entries; the stream
    /// must skip them (they are metadata, not elements).
    #[test]
    fn rlc_extension_entries_are_skipped() {
        let coo = CooMatrix::from_triplets(2, 40, vec![(0, 39, 9.0), (1, 20, 3.0)]).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Rlc { run_bits: 3 }).unwrap();
        let mut streamed = Vec::new();
        data.for_each_nnz(&mut |r, c, v| streamed.push((r, c, v)));
        assert_eq!(streamed, vec![(0, 39, 9.0), (1, 20, 3.0)]);
    }

    /// ELL rows with builder-supplied out-of-order slots must still stream
    /// column-ascending (the on-the-fly sortedness detection's slow path).
    #[test]
    fn ell_unsorted_slots_are_resorted() {
        use crate::ell::EllMatrix;
        let m = EllMatrix::from_parts(
            2,
            6,
            3,
            vec![5, 0, 2, 1, ELL_PAD, ELL_PAD],
            vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0],
        )
        .unwrap();
        let mut fibers: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
        let mut arena = StreamArena::new();
        m.for_each_fiber_in(&mut arena, &mut |r, cs, vs| {
            fibers.push((r, cs.to_vec(), vs.to_vec()))
        });
        assert_eq!(
            fibers,
            vec![
                (0, vec![0, 2, 5], vec![2.0, 3.0, 1.0]),
                (1, vec![1], vec![4.0]),
            ]
        );
    }

    #[test]
    fn csr_from_stream_round_trips_every_format() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let csr = csr_from_stream(data.rows(), data.cols(), data.row_stream());
            assert_eq!(csr, CsrMatrix::from_coo(&coo), "csr_from_stream for {fmt}");
        }
        // Trailing empty rows must still be pointed at.
        let tall = CooMatrix::from_triplets(6, 3, vec![(1, 1, 2.0)]).unwrap();
        let csr = csr_from_stream(6, 3, &tall);
        assert_eq!(csr.row_ptr(), &[0, 0, 1, 1, 1, 1, 1]);
    }

    /// The arena-backed conversion with CSR recycling must keep producing
    /// correct matrices while reusing the recycled capacity.
    #[test]
    fn csr_from_stream_in_recycles_capacity() {
        let coo = sample_matrix();
        let expect = CsrMatrix::from_coo(&coo);
        let mut arena = StreamArena::new();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let csr = csr_from_stream_in(&mut arena, data.rows(), data.cols(), data.row_stream());
            assert_eq!(csr, expect, "recycled csr_from_stream_in for {fmt}");
            arena.recycle_csr(csr);
        }
    }

    /// A non-cubic HiCOO block assignment splits (x, y) fibers across
    /// blocks; the stream must still emit them merged and ordered.
    #[test]
    fn hicoo_reorders_block_clustered_elements() {
        let coo = CooTensor3::from_quads(
            8,
            8,
            8,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 7, 2.0), // same fiber, different z-block
                (7, 7, 1, 3.0),
                (0, 7, 0, 4.0),
            ],
        )
        .unwrap();
        let data = TensorData::encode(&coo, &TensorFormat::HiCoo { block: 2 }).unwrap();
        let mut fibers: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        data.for_each_fiber(&mut |x, y, zs, _| fibers.push((x, y, zs.to_vec())));
        assert_eq!(
            fibers,
            vec![(0, 0, vec![0, 7]), (0, 7, vec![0]), (7, 7, vec![1]),]
        );
    }

    #[test]
    fn split_by_prefix_covers_and_balances() {
        // nnz prefix for 6 units with weights [3, 0, 5, 1, 1, 2] (total 12).
        let prefix = [0usize, 3, 3, 8, 9, 10, 12];
        for parts in 1..=8 {
            let ranges = split_by_prefix(&prefix, parts);
            assert!(ranges.len() <= parts);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(6));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
            }
            // Balance: each range within one max unit weight of the ideal.
            let max_unit = 5;
            for r in &ranges {
                let weight = prefix[r.end] - prefix[r.start];
                assert!(
                    weight <= 12 / parts + max_unit,
                    "range {r:?} weight {weight} too heavy for {parts} parts"
                );
            }
        }
        assert!(split_by_prefix(&[0], 4).is_empty(), "zero units");
        assert_eq!(split_by_prefix(&[0, 0, 0], 4), vec![0..2], "zero weight");
    }

    #[test]
    fn split_by_sorted_keys_covers_and_respects_fibers() {
        let keys = [0usize, 0, 0, 2, 2, 5, 5, 5, 5, 7];
        for parts in 1..=6 {
            let ranges = split_by_sorted_keys(keys.len(), 9, parts, &|i| keys[i]);
            assert!(ranges.len() <= parts);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(9));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // No fiber may straddle a boundary: every boundary is a key
            // value, and all equal keys fall on one side of it.
            for w in ranges.windows(2) {
                let b = w[0].end;
                assert!(
                    keys.iter().all(|&k| k != b || k >= b),
                    "boundary {b} splits a fiber"
                );
            }
        }
        assert!(split_by_sorted_keys(0, 0, 3, &|_| 0).is_empty());
        assert_eq!(split_by_sorted_keys(0, 4, 3, &|_| 0), vec![0..4]);
    }

    /// Concatenating the ranged walks of any partition must reproduce the
    /// full fiber stream exactly, for every matrix format and any part
    /// count — the contract the parallel kernels rest on.
    #[test]
    fn ranged_matrix_walks_concatenate_to_full_stream() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let mut full: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber(&mut |r, cs, vs| full.push((r, cs.to_vec(), vs.to_vec())));
            for parts in [1, 2, 3, 5, 16] {
                let ranges = data.row_partition(parts);
                assert!(ranges.len() <= parts, "{fmt} produced too many ranges");
                assert_eq!(ranges.first().map(|r| r.start), Some(0), "{fmt}");
                assert_eq!(ranges.last().map(|r| r.end), Some(data.rows()), "{fmt}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "{fmt} ranges must tile");
                }
                let mut arena = StreamArena::new();
                let mut cat: Vec<(usize, Vec<usize>, Vec<Value>)> = Vec::new();
                for range in ranges {
                    data.for_each_fiber_range_in(range, &mut arena, &mut |r, cs, vs| {
                        cat.push((r, cs.to_vec(), vs.to_vec()))
                    });
                }
                assert_eq!(cat, full, "{fmt} ranged walk diverged at {parts} parts");
            }
        }
    }

    /// Same contract for the tensor formats over linearized fiber keys.
    #[test]
    fn ranged_tensor_walks_concatenate_to_full_stream() {
        use crate::traits::SparseTensor3;
        let coo = sample_tensor();
        for fmt in all_tensor_formats() {
            let data = TensorData::encode(&coo, &fmt).unwrap();
            let mut full: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
            data.for_each_fiber(&mut |x, y, zs, vs| full.push((x, y, zs.to_vec(), vs.to_vec())));
            let keys = coo.dim_x() * coo.dim_y();
            for parts in [1, 2, 3, 7, 32] {
                let ranges = data.fiber_partition(parts);
                assert!(ranges.len() <= parts, "{fmt} produced too many ranges");
                assert_eq!(ranges.first().map(|r| r.start), Some(0), "{fmt}");
                assert_eq!(ranges.last().map(|r| r.end), Some(keys), "{fmt}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "{fmt} ranges must tile");
                }
                let mut arena = StreamArena::new();
                let mut cat: Vec<(usize, usize, Vec<usize>, Vec<Value>)> = Vec::new();
                for range in ranges {
                    data.for_each_fiber_range_in(range, &mut arena, &mut |x, y, zs, vs| {
                        cat.push((x, y, zs.to_vec(), vs.to_vec()))
                    });
                }
                assert_eq!(cat, full, "{fmt} ranged walk diverged at {parts} parts");
            }
        }
    }

    /// An arbitrary (non-partition) sub-range must emit exactly the fibers
    /// whose row / key falls inside it.
    #[test]
    fn arbitrary_ranges_filter_exactly() {
        let coo = sample_matrix();
        for fmt in all_matrix_formats() {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let mut full: Vec<(usize, Vec<usize>)> = Vec::new();
            data.for_each_fiber(&mut |r, cs, _| full.push((r, cs.to_vec())));
            let mut arena = StreamArena::new();
            for (lo, hi) in [(0, 1), (2, 5), (3, 4), (6, 7), (0, 7), (5, 5)] {
                let expect: Vec<_> = full
                    .iter()
                    .filter(|(r, _)| *r >= lo && *r < hi)
                    .cloned()
                    .collect();
                let mut got: Vec<(usize, Vec<usize>)> = Vec::new();
                data.for_each_fiber_range_in(lo..hi, &mut arena, &mut |r, cs, _| {
                    got.push((r, cs.to_vec()))
                });
                assert_eq!(got, expect, "{fmt} range {lo}..{hi}");
            }
        }
    }
}

//! ELLPACK (ELL) format — structured-format extension.
//!
//! ELLPACK is named by the paper alongside DIA/HiCOO/BSR as a structured
//! format its performance model defers to future work (§VI). We implement
//! it fully so the size model and the structured-format ablation benches
//! can include it.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::traits::SparseMatrix;
use crate::Value;

/// ELLPACK sparse matrix: every row padded to the maximum row population.
///
/// Stores two `rows x width` row-major arrays — column indices and values —
/// where `width` is the maximum nonzeros in any row. Padding slots carry a
/// sentinel column (`usize::MAX`) and zero value. Regular row populations
/// (e.g. pruned DL weights with balanced sparsity) make ELL competitive;
/// one heavy row blows up every row's storage.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    width: usize,
    col_ids: Vec<usize>,
    values: Vec<Value>,
    nnz: usize,
}

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: usize = usize::MAX;

impl EllMatrix {
    /// Convert from the COO hub; `width` becomes the max row population.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut counts = vec![0usize; rows];
        for &r in coo.row_ids() {
            counts[r] += 1;
        }
        let width = counts.iter().copied().max().unwrap_or(0);
        let mut col_ids = vec![ELL_PAD; rows * width];
        let mut values = vec![0.0; rows * width];
        let mut fill = vec![0usize; rows];
        for (r, c, v) in coo.iter() {
            let slot = r * width + fill[r];
            fill[r] += 1;
            col_ids[slot] = c;
            values[slot] = v;
        }
        EllMatrix {
            rows,
            cols: coo.cols(),
            width,
            col_ids,
            values,
            nnz: coo.nnz(),
        }
    }

    /// Build from explicit padded arrays (tests / generators).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        width: usize,
        col_ids: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if col_ids.len() != rows * width || values.len() != rows * width {
            return Err(FormatError::LengthMismatch {
                what: "ell arrays vs rows*width",
                expected: rows * width,
                actual: col_ids.len().min(values.len()),
            });
        }
        let mut nnz = 0;
        for r in 0..rows {
            for w in 0..width {
                let c = col_ids[r * width + w];
                if c == ELL_PAD {
                    continue;
                }
                if c >= cols {
                    return Err(FormatError::IndexOutOfBounds {
                        index: c,
                        bound: cols,
                        axis: 1,
                    });
                }
                // The `nnz()` contract (traits.rs) counts stored *nonzeros*
                // only: an occupied slot carrying an explicit zero is
                // padding-equivalent and must not count.
                if values[r * width + w] != 0.0 {
                    nnz += 1;
                }
            }
        }
        Ok(EllMatrix {
            rows,
            cols,
            width,
            col_ids,
            values,
            nnz,
        })
    }

    /// Padded row width (max nonzeros per row).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Padded column-index array (`rows * width`).
    #[inline]
    pub fn col_ids(&self) -> &[usize] {
        &self.col_ids
    }

    /// Padded value array (`rows * width`).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Count of stored slots including padding.
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// One padded row: `(col_ids, values)` slices of length `width`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[Value]) {
        let (s, e) = (r * self.width, (r + 1) * self.width);
        (&self.col_ids[s..e], &self.values[s..e])
    }
}

impl SparseMatrix for EllMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn get(&self, row: usize, col: usize) -> Value {
        let (cs, vs) = self.row(row);
        for (i, &c) in cs.iter().enumerate() {
            if c == col {
                return vs[i];
            }
            if c == ELL_PAD {
                break;
            }
        }
        0.0
    }
    fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            let (cs, vs) = self.row(r);
            for (i, &c) in cs.iter().enumerate() {
                if c == ELL_PAD {
                    break;
                }
                if vs[i] != 0.0 {
                    triplets.push((r, c, vs[i]));
                }
            }
        }
        CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("ELL coordinates remain in-bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            5,
            vec![
                (0, 0, 1.0),
                (0, 4, 2.0),
                (1, 2, 3.0),
                (3, 0, 4.0),
                (3, 1, 5.0),
                (3, 4, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn width_is_max_row_population() {
        let ell = EllMatrix::from_coo(&sample());
        assert_eq!(ell.width(), 3); // row 3 has three nonzeros
        assert_eq!(ell.stored_values(), 4 * 3);
        assert_eq!(ell.nnz(), 6);
    }

    #[test]
    fn roundtrip() {
        let coo = sample();
        let ell = EllMatrix::from_coo(&coo);
        assert_eq!(ell.to_coo(), coo);
    }

    #[test]
    fn get_handles_padding() {
        let ell = EllMatrix::from_coo(&sample());
        assert_eq!(ell.get(0, 4), 2.0);
        assert_eq!(ell.get(2, 0), 0.0); // fully padded row
        assert_eq!(ell.get(1, 4), 0.0);
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let ell = EllMatrix::from_coo(&CooMatrix::empty(3, 3));
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.nnz(), 0);
        assert_eq!(ell.to_coo(), CooMatrix::empty(3, 3));
    }

    #[test]
    fn from_parts_validates() {
        assert!(EllMatrix::from_parts(2, 2, 1, vec![0], vec![1.0, 2.0]).is_err());
        assert!(EllMatrix::from_parts(2, 2, 1, vec![0, 9], vec![1.0, 2.0]).is_err());
        let ok = EllMatrix::from_parts(2, 2, 1, vec![0, ELL_PAD], vec![1.0, 0.0]).unwrap();
        assert_eq!(ok.nnz(), 1);
    }

    #[test]
    fn explicit_zero_slots_do_not_count_as_nonzeros() {
        // An occupied slot carrying value 0.0 is padding-equivalent: the
        // "stored nonzeros, no explicit zeros" contract in traits.rs says
        // nnz()/density() must ignore it, matching to_coo().
        let ell = EllMatrix::from_parts(2, 3, 2, vec![0, 2, 1, ELL_PAD], vec![1.0, 0.0, 2.0, 0.0])
            .unwrap();
        assert_eq!(ell.nnz(), 2);
        assert_eq!(ell.nnz(), ell.to_coo().nnz());
        assert!((ell.density() - 2.0 / 6.0).abs() < 1e-15);
    }
}

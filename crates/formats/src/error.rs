//! Error type shared by all format constructors and conversions.

use std::fmt;

/// Errors produced when constructing or converting compressed formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// A coordinate was outside the declared matrix/tensor dimensions.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The dimension bound it violated.
        bound: usize,
        /// Which axis (0 = row/x, 1 = col/y, 2 = z).
        axis: usize,
    },
    /// Structural arrays have inconsistent lengths (e.g. `col_ids` vs `values`).
    LengthMismatch {
        /// Description of the mismatching fields.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A pointer array (`row_ptr`, `col_ptr`, `fptr`, `bptr`) is not
    /// monotonically non-decreasing or has the wrong first/last entry.
    MalformedPointer {
        /// Which pointer array is malformed.
        what: &'static str,
    },
    /// A blocked format was given a block size that does not divide the
    /// dimension (blocked formats pad internally; a zero block size is the
    /// only hard error).
    InvalidBlockSize {
        /// The offending block dimension.
        block: usize,
    },
    /// The requested conversion is not representable (e.g. DIA with more
    /// diagonals than the hardware bound).
    Unsupported(&'static str),
    /// Dimensions of two operands are incompatible for the requested
    /// operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// Matrix dimensions may not be zero for this format.
    EmptyDimension,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "index {index} out of bounds {bound} on axis {axis}")
            }
            FormatError::LengthMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "length mismatch in {what}: expected {expected}, got {actual}"
                )
            }
            FormatError::MalformedPointer { what } => {
                write!(f, "malformed pointer array: {what}")
            }
            FormatError::InvalidBlockSize { block } => {
                write!(f, "invalid block size {block}")
            }
            FormatError::Unsupported(s) => write!(f, "unsupported: {s}"),
            FormatError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            FormatError::EmptyDimension => write!(f, "dimensions must be non-zero"),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::FormatError;

    #[test]
    fn display_is_informative() {
        let e = FormatError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: 1,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("axis 1"));
        let e = FormatError::LengthMismatch {
            what: "col_ids vs values",
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("col_ids"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(FormatError::EmptyDimension);
        assert!(!e.to_string().is_empty());
    }
}

//! Operand tiling: partition a [`MatrixData`] into scratchpad-sized
//! column tiles without densifying.
//!
//! The pipelined runtime in `sparseflex-core` overlaps MINT conversion
//! with accelerator compute at **tile** granularity: while the array
//! computes on stationary tile *t*, the converter prepares tile *t+1*.
//! That only works if every format can be sliced into column ranges
//! cheaply — which is exactly what the [`RowMajorStream`](crate::traverse::RowMajorStream) traversal
//! already provides. A tile is extracted with one pass over the operand's
//! fibers (columns filtered to the range and rebased), then re-encoded in
//! the operand's own format, so tiling never round-trips through a dense
//! intermediate.
//!
//! Two planners are provided:
//!
//! - [`uniform_column_ranges`] — fixed-width strips, the geometry of one
//!   weight-stationary array residency (`num_pes` columns at a time).
//! - [`bounded_column_ranges`] — greedy strips sized so that no stationary
//!   unit (a row segment of the tile, as held by one Gustavson PE buffer)
//!   exceeds a slot budget. This is what renders the accelerator's
//!   "stationary unit needs N slots" rejection unreachable: any operand
//!   whose individual rows overflow a PE buffer is split until every
//!   segment fits.

use crate::coo::CooMatrix;
use crate::error::FormatError;
use crate::formats::MatrixData;
use crate::traits::SparseMatrix;

/// One column tile of a matrix operand.
#[derive(Debug, Clone)]
pub struct MatrixTile {
    /// First column (inclusive) of the tile in the original operand.
    pub col_start: usize,
    /// One past the last column of the tile in the original operand.
    pub col_end: usize,
    /// The tile payload, columns rebased to `0..width()`, encoded in the
    /// same format as the operand it was cut from.
    pub data: MatrixData,
}

impl MatrixTile {
    /// Number of columns in the tile.
    pub fn width(&self) -> usize {
        self.col_end - self.col_start
    }

    /// Stored nonzeros in the tile (may be zero for degenerate tiles).
    pub fn nnz(&self) -> usize {
        self.data.nnz()
    }
}

/// Fixed-width column ranges covering `0..cols`.
///
/// The last range is narrower when `width` does not divide `cols`. An
/// empty matrix (`cols == 0`) yields no ranges.
pub fn uniform_column_ranges(cols: usize, width: usize) -> Vec<(usize, usize)> {
    let width = width.max(1);
    let mut out = Vec::with_capacity(cols.div_ceil(width));
    let mut c0 = 0;
    while c0 < cols {
        let c1 = (c0 + width).min(cols);
        out.push((c0, c1));
        c0 = c1;
    }
    out
}

/// Greedy column ranges such that within every range, **every row** of the
/// operand stores at most `max_row_entries` nonzeros (and no range is wider
/// than `max_width` columns).
///
/// This is the planner for stationary operands consumed row-at-a-time
/// (the Gustavson SpGEMM dataflow, where one PE buffers one compressed row
/// segment): capping per-row entries per tile caps the per-PE footprint.
/// Returns `None` only when `max_row_entries == 0` — a single stored
/// element already overflows the budget, which no tiling can fix.
pub fn bounded_column_ranges(
    data: &MatrixData,
    max_row_entries: usize,
    max_width: usize,
) -> Option<Vec<(usize, usize)>> {
    if max_row_entries == 0 {
        return None;
    }
    let cols = data.cols();
    let max_width = max_width.max(1);
    // Invert to per-column row lists (one stream pass), then widen each
    // range greedily with incremental per-row counts — O(nnz + cols)
    // overall: each column's entries are touched once when the column
    // joins a range, once when the range closes.
    let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); cols];
    data.row_stream().for_each_fiber(&mut |r, cs, _| {
        for &c in cs {
            col_rows[c].push(r);
        }
    });

    let mut count = vec![0usize; data.rows()];
    let mut touched: Vec<usize> = Vec::new();
    let mut ranges = Vec::new();
    let mut c0 = 0usize;
    while c0 < cols {
        let mut c1 = c0;
        while c1 < cols && c1 - c0 < max_width {
            // A single column holds at most one entry per row, so the
            // first column always fits (max_row_entries >= 1).
            let fits = c1 == c0 || col_rows[c1].iter().all(|&r| count[r] < max_row_entries);
            if !fits {
                break;
            }
            for &r in &col_rows[c1] {
                if count[r] == 0 {
                    touched.push(r);
                }
                count[r] += 1;
            }
            c1 += 1;
        }
        ranges.push((c0, c1));
        for r in touched.drain(..) {
            count[r] = 0;
        }
        c0 = c1;
    }
    Some(ranges)
}

/// How a planner cuts the stationary operand into column tiles.
///
/// This is the *exported* tile-schedule vocabulary: the planning layer in
/// `sparseflex-core` records the policy it chose inside an execution
/// plan, so a plan dump names the discipline (`whole` / `uniform` /
/// `bounded`) instead of an anonymous range list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TilePolicy {
    /// One tile spanning every column — the monolithic discipline (the
    /// whole stationary operand must fit one scratchpad residency).
    Whole,
    /// Fixed-width strips ([`uniform_column_ranges`]): the geometry of
    /// one weight-stationary array residency.
    Uniform {
        /// Columns per tile.
        width: usize,
    },
    /// Greedy strips capped so no row segment exceeds a slot budget
    /// ([`bounded_column_ranges`]): the Gustavson SpGEMM discipline.
    Bounded {
        /// Per-row stored-entry budget within one tile.
        max_row_entries: usize,
        /// Upper bound on tile width in columns.
        max_width: usize,
    },
}

impl std::fmt::Display for TilePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TilePolicy::Whole => write!(f, "whole (monolithic)"),
            TilePolicy::Uniform { width } => write!(f, "uniform width {width}"),
            TilePolicy::Bounded {
                max_row_entries,
                max_width,
            } => write!(
                f,
                "bounded ({max_row_entries} entries/row, <= {max_width} wide)"
            ),
        }
    }
}

/// The column-tile schedule a planner produced for one stationary
/// operand: the policy, the covered ranges, and each tile's stored
/// nonzero count (the weight a cost model splits whole-operand cycle
/// predictions by).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchedule {
    /// The policy that produced the ranges.
    pub policy: TilePolicy,
    /// Sorted, disjoint column ranges covering the operand.
    pub ranges: Vec<(usize, usize)>,
    /// Stored nonzeros per range (same length as `ranges`).
    pub tile_nnz: Vec<usize>,
}

impl ColumnSchedule {
    /// Number of tiles in the schedule.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the schedule holds no tiles (a zero-column operand).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total stored nonzeros across all tiles.
    pub fn total_nnz(&self) -> usize {
        self.tile_nnz.iter().sum()
    }

    /// Widest tile in columns (0 for an empty schedule).
    pub fn max_width(&self) -> usize {
        self.ranges.iter().map(|&(a, b)| b - a).max().unwrap_or(0)
    }
}

/// Plan a [`ColumnSchedule`] for `data` under `policy`.
///
/// Returns `None` only for [`TilePolicy::Bounded`] with
/// `max_row_entries == 0` (a single stored element already overflows the
/// budget; no tiling can fix that). Per-tile nonzero counts are gathered
/// in one extra stream pass.
pub fn plan_column_schedule(data: &MatrixData, policy: TilePolicy) -> Option<ColumnSchedule> {
    let ranges = match policy {
        // `Whole` keeps exactly one range even for a zero-column operand,
        // so the monolithic executor always has one tile to run.
        TilePolicy::Whole => vec![(0, data.cols())],
        TilePolicy::Uniform { width } => uniform_column_ranges(data.cols(), width),
        TilePolicy::Bounded {
            max_row_entries,
            max_width,
        } => bounded_column_ranges(data, max_row_entries, max_width)?,
    };
    let mut tile_nnz = vec![0usize; ranges.len()];
    data.row_stream().for_each_fiber(&mut |_, cs, _| {
        for &c in cs {
            let i = ranges.partition_point(|&(c0, _)| c0 <= c);
            if i > 0 && c < ranges[i - 1].1 {
                tile_nnz[i - 1] += 1;
            }
        }
    });
    Some(ColumnSchedule {
        policy,
        ranges,
        tile_nnz,
    })
}

/// Cut every range in `ranges` out of `data` in **one** stream pass
/// (requires the ranges sorted ascending and disjoint, as the planners
/// produce them): each stored entry is bucketed into its destination
/// tile, then every bucket is encoded — O(nnz + tiles), not
/// O(tiles × nnz).
pub fn tile_column_ranges(
    data: &MatrixData,
    ranges: &[(usize, usize)],
) -> Result<Vec<MatrixTile>, FormatError> {
    debug_assert!(
        ranges.windows(2).all(|w| w[0].1 <= w[1].0),
        "ranges must be sorted ascending and disjoint"
    );
    let mut buckets: Vec<Vec<(usize, usize, crate::Value)>> = vec![Vec::new(); ranges.len()];
    data.row_stream().for_each_fiber(&mut |r, cs, vs| {
        for (&c, &v) in cs.iter().zip(vs) {
            // Last range starting at or before c (ranges may have gaps).
            let i = ranges.partition_point(|&(c0, _)| c0 <= c);
            if i > 0 && c < ranges[i - 1].1 {
                buckets[i - 1].push((r, c - ranges[i - 1].0, v));
            }
        }
    });
    ranges
        .iter()
        .zip(buckets)
        .map(|(&(c0, c1), triplets)| {
            // Stream order is row-major with ascending columns, so each
            // bucket's triplets arrive already sorted.
            let coo = CooMatrix::from_sorted_triplets(data.rows(), c1 - c0, triplets)?;
            Ok(MatrixTile {
                col_start: c0,
                col_end: c1,
                data: MatrixData::encode(&coo, &data.format())?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::MatrixFormat;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            5,
            11,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (0, 10, 3.0),
                (1, 5, 4.0),
                (2, 2, 5.0),
                (2, 6, 6.0),
                (2, 7, 7.0),
                (4, 9, 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn uniform_ranges_cover_all_columns() {
        assert_eq!(uniform_column_ranges(11, 4), vec![(0, 4), (4, 8), (8, 11)]);
        assert_eq!(uniform_column_ranges(0, 4), vec![]);
        assert_eq!(uniform_column_ranges(3, 0), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn tiles_reassemble_to_the_original_in_every_format() {
        let coo = sample();
        for fmt in [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 2, bc: 2 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Zvc,
        ] {
            let data = MatrixData::encode(&coo, &fmt).unwrap();
            let ranges = uniform_column_ranges(data.cols(), 3);
            let tiles = tile_column_ranges(&data, &ranges).unwrap();
            // Each tile keeps the operand's format and rebases columns.
            let mut reassembled = Vec::new();
            for t in &tiles {
                assert_eq!(t.data.format(), fmt, "{fmt}");
                for (r, c, v) in t.data.to_coo().iter() {
                    reassembled.push((r, c + t.col_start, v));
                }
            }
            reassembled.sort_by_key(|&(r, c, _)| (r, c));
            let expect: Vec<_> = coo.iter().collect();
            assert_eq!(reassembled, expect, "{fmt} tiles lose data");
        }
    }

    #[test]
    fn degenerate_empty_tiles_are_valid() {
        let coo = CooMatrix::from_triplets(3, 9, vec![(1, 8, 1.0)]).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        let tiles = tile_column_ranges(&data, &uniform_column_ranges(9, 3)).unwrap();
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[0].nnz(), 0);
        assert_eq!(tiles[1].nnz(), 0);
        assert_eq!(tiles[2].nnz(), 1);
        assert_eq!(tiles[2].width(), 3);
    }

    #[test]
    fn bounded_ranges_cap_row_segments() {
        // Row 0 holds 8 entries in 8 consecutive columns; a budget of 2
        // entries per row forces 4-wide-or-narrower tiles there.
        let coo = CooMatrix::from_triplets(2, 8, (0..8).map(|c| (0, c, (c + 1) as f64)).collect())
            .unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        let ranges = bounded_column_ranges(&data, 2, usize::MAX).unwrap();
        for &(c0, c1) in &ranges {
            assert!(c1 - c0 <= 2, "range ({c0},{c1}) exceeds the row budget");
        }
        let covered: usize = ranges.iter().map(|&(a, b)| b - a).sum();
        assert_eq!(covered, 8);
        assert!(bounded_column_ranges(&data, 0, 4).is_none());
    }

    #[test]
    fn column_schedules_cover_and_count() {
        let coo = sample();
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        // Whole: one tile, all nonzeros.
        let whole = plan_column_schedule(&data, TilePolicy::Whole).unwrap();
        assert_eq!(whole.ranges, vec![(0, 11)]);
        assert_eq!(whole.tile_nnz, vec![8]);
        assert_eq!(whole.total_nnz(), 8);
        // Uniform: per-tile counts sum to the operand's nnz.
        let uni = plan_column_schedule(&data, TilePolicy::Uniform { width: 4 }).unwrap();
        assert_eq!(uni.ranges, uniform_column_ranges(11, 4));
        assert_eq!(uni.total_nnz(), 8);
        assert_eq!(uni.len(), 3);
        assert!(uni.max_width() <= 4);
        // Bounded: impossible budget is a typed rejection.
        assert!(plan_column_schedule(
            &data,
            TilePolicy::Bounded {
                max_row_entries: 0,
                max_width: 4
            }
        )
        .is_none());
        // Policy renders for plan dumps.
        assert!(format!("{}", uni.policy).contains("uniform"));
    }

    #[test]
    fn whole_schedule_on_zero_columns_keeps_one_tile() {
        let coo = CooMatrix::from_triplets(3, 0, vec![]).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Coo).unwrap();
        let s = plan_column_schedule(&data, TilePolicy::Whole).unwrap();
        assert_eq!(s.ranges, vec![(0, 0)]);
        assert_eq!(s.tile_nnz, vec![0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn bounded_ranges_respect_max_width() {
        let coo = CooMatrix::from_triplets(2, 10, vec![(0, 0, 1.0), (1, 9, 2.0)]).unwrap();
        let data = MatrixData::encode(&coo, &MatrixFormat::Coo).unwrap();
        let ranges = bounded_column_ranges(&data, 64, 4).unwrap();
        assert!(ranges.iter().all(|&(a, b)| b - a <= 4));
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 10);
    }
}

//! Software reference conversions between formats.
//!
//! These are the `Flex_Flex_SW` baseline of Table I — what a host CPU
//! (MKL / cuSPARSE in the paper's Fig. 10) would run — and also the
//! functional oracle that MINT's hardware pipelines are tested against.
//!
//! All conversions are available generically through the COO hub
//! ([`crate::MatrixData::convert_to`]); this module adds the *direct* algorithms
//! that skip the hub where a faster dedicated path exists, mirroring the
//! four conversions the paper walks through in Fig. 8:
//!
//! - [`csr_to_csc`] (Fig. 8c) — counting-sort transpose-of-representation.
//! - [`rlc_to_coo`] (Fig. 8d) — prefix-sum over runs, then divide/mod.
//! - [`csr_to_bsr`] (Fig. 8e) — block discovery per row-block.
//! - [`dense_to_csf`] (Fig. 8f) — scan to COO, then tree construction.

use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csf::CsfTensor;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::FormatError;
use crate::rlc::RlcMatrix;
use crate::tensor::DenseTensor3;
use crate::traits::{SparseMatrix, SparseTensor3};
use crate::zvc::ZvcMatrix;

/// CSR → CSC by counting sort on column ids (the software equivalent of
/// MINT's Fig. 8c pipeline: histogram → prefix sum → scatter).
pub fn csr_to_csc(csr: &CsrMatrix) -> CscMatrix {
    let rows = csr.rows();
    let cols = csr.cols();
    let nnz = csr.nnz();
    // Step 1-4 of Fig. 8c: histogram of col_ids into col_ptr.
    let mut col_ptr = vec![0usize; cols + 1];
    for &c in csr.col_ids() {
        col_ptr[c + 1] += 1;
    }
    // Step 5: prefix sum.
    for c in 0..cols {
        col_ptr[c + 1] += col_ptr[c];
    }
    // Steps 6-9: iterate CSR fields, scatter values/row ids into CSC slots.
    let mut cursor = col_ptr.clone();
    let mut row_ids = vec![0usize; nnz];
    let mut values = vec![0.0; nnz];
    for (r, c, v) in csr.iter() {
        let slot = cursor[c];
        cursor[c] += 1;
        row_ids[slot] = r;
        values[slot] = v;
    }
    CscMatrix::from_parts(rows, cols, col_ptr, row_ids, values)
        .expect("counting sort yields valid CSC structure")
}

/// CSC → CSR — the symmetric counting sort.
pub fn csc_to_csr(csc: &CscMatrix) -> CsrMatrix {
    let rows = csc.rows();
    let cols = csc.cols();
    let nnz = csc.nnz();
    let mut row_ptr = vec![0usize; rows + 1];
    for &r in csc.row_ids() {
        row_ptr[r + 1] += 1;
    }
    for r in 0..rows {
        row_ptr[r + 1] += row_ptr[r];
    }
    let mut cursor = row_ptr.clone();
    let mut col_ids = vec![0usize; nnz];
    let mut values = vec![0.0; nnz];
    for (r, c, v) in csc.iter_col_major() {
        let slot = cursor[r];
        cursor[r] += 1;
        col_ids[slot] = c;
        values[slot] = v;
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_ids, values)
        .expect("counting sort yields valid CSR structure")
}

/// RLC → COO (Fig. 8d): prefix-sum the run lengths to recover flat
/// positions, then divide/mod by the row length to get coordinates.
pub fn rlc_to_coo(rlc: &RlcMatrix) -> CooMatrix {
    let cols = rlc.cols();
    let mut triplets = Vec::with_capacity(rlc.stored_entries());
    // Running prefix over (zeros + 1) per entry = flat position + 1.
    let mut prefix = 0u64;
    for e in rlc.entries() {
        prefix += e.zeros + 1;
        if e.value != 0.0 {
            let flat = (prefix - 1) as usize;
            triplets.push((flat / cols, flat % cols, e.value));
        }
    }
    CooMatrix::from_sorted_triplets(rlc.rows(), cols, triplets)
        .expect("RLC stream is ordered and in-bounds")
}

/// COO → RLC (the reverse direction; not in Fig. 8 but needed for the
/// full m x a conversion matrix).
pub fn coo_to_rlc(coo: &CooMatrix, run_bits: u32) -> RlcMatrix {
    RlcMatrix::from_coo(coo, run_bits)
}

/// CSR → BSR (Fig. 8e): walk row blocks, discover occupied block columns,
/// scatter entries into padded block payloads.
pub fn csr_to_bsr(csr: &CsrMatrix, br: usize, bc: usize) -> Result<BsrMatrix, FormatError> {
    // The COO hub path already implements exactly the Fig. 8e algorithm
    // (block discovery + scatter with zero padding); reuse it.
    BsrMatrix::from_coo(&csr.to_coo(), br, bc)
}

/// Dense → CSR without materializing COO (row scan).
pub fn dense_to_csr(dense: &DenseMatrix) -> CsrMatrix {
    let rows = dense.rows();
    let cols = dense.cols();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0);
    let mut col_ids = Vec::new();
    let mut values = Vec::new();
    for r in 0..rows {
        for (c, &v) in dense.row(r).iter().enumerate() {
            if v != 0.0 {
                col_ids.push(c);
                values.push(v);
            }
        }
        row_ptr.push(values.len());
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_ids, values)
        .expect("dense scan yields valid CSR")
}

/// CSR → Dense scatter.
pub fn csr_to_dense(csr: &CsrMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(csr.rows(), csr.cols());
    for (r, c, v) in csr.iter() {
        out.set(r, c, v);
    }
    out
}

/// Dense → ZVC (the NVDLA-style compressor mentioned in §V-B: "ZVC-to-
/// Dense and Dense-to-ZVC" generalize from the same building blocks).
pub fn dense_to_zvc(dense: &DenseMatrix) -> ZvcMatrix {
    ZvcMatrix::from_coo(&dense.to_coo())
}

/// ZVC → Dense decompressor.
pub fn zvc_to_dense(zvc: &ZvcMatrix) -> DenseMatrix {
    zvc.to_dense()
}

/// Dense tensor → CSF (Fig. 8f): scan nonzeros (flat prefix-sum positions
/// → div/mod to COO coordinates), then build the fiber tree.
pub fn dense_to_csf(dense: &DenseTensor3) -> CsfTensor {
    CsfTensor::from_coo(&dense.to_coo())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlc::RlcMatrix;

    /// The Fig. 8b example matrix:
    /// ```text
    /// . a . b
    /// . c . .
    /// d . . e
    /// . . f .
    /// ```
    fn fig8b() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 1, 1.0), // a
                (0, 3, 2.0), // b
                (1, 1, 3.0), // c
                (2, 0, 4.0), // d
                (2, 3, 5.0), // e
                (3, 2, 6.0), // f
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_to_csc_matches_hub_path() {
        let coo = fig8b();
        let csr = CsrMatrix::from_coo(&coo);
        let direct = csr_to_csc(&csr);
        let via_hub = CscMatrix::from_coo(&coo);
        assert_eq!(direct, via_hub);
        // col_ptr after prefix sum over histogram [1,2,1,2] -> [0,1,3,4,6].
        assert_eq!(direct.col_ptr(), &[0, 1, 3, 4, 6]);
    }

    #[test]
    fn csc_to_csr_inverse() {
        let coo = fig8b();
        let csc = CscMatrix::from_coo(&coo);
        let csr = csc_to_csr(&csc);
        assert_eq!(csr, CsrMatrix::from_coo(&coo));
        // Round trip through both directions.
        assert_eq!(csr_to_csc(&csr), csc);
    }

    #[test]
    fn rlc_to_coo_recovers_positions() {
        let coo = fig8b();
        let rlc = RlcMatrix::from_coo(&coo, 4);
        assert_eq!(rlc_to_coo(&rlc), coo);
    }

    #[test]
    fn rlc_to_coo_with_extension_entries() {
        // Long runs force extension entries; the prefix-sum walk must skip
        // them without emitting triplets.
        let coo = CooMatrix::from_triplets(2, 64, vec![(0, 0, 1.0), (1, 63, 2.0)]).unwrap();
        let rlc = RlcMatrix::from_coo(&coo, 3);
        assert!(rlc.stored_entries() > 2, "extension entries expected");
        assert_eq!(rlc_to_coo(&rlc), coo);
    }

    #[test]
    fn csr_to_bsr_blocks() {
        let coo = fig8b();
        let csr = CsrMatrix::from_coo(&coo);
        let bsr = csr_to_bsr(&csr, 2, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
        // Occupied 2x2 blocks: (0,0) {a,c}, (0,1) {b}, (1,0) {d}, (1,1) {e,f}.
        assert_eq!(bsr.num_blocks(), 4);
    }

    #[test]
    fn dense_round_trips() {
        let coo = fig8b();
        let dense = coo.clone().into_dense();
        let csr = dense_to_csr(&dense);
        assert_eq!(csr.to_coo(), coo);
        assert_eq!(csr_to_dense(&csr), dense);
        let zvc = dense_to_zvc(&dense);
        assert_eq!(zvc_to_dense(&zvc), dense);
    }

    #[test]
    fn dense_to_csf_matches_fig8f_tree() {
        use crate::tensor::CooTensor3;
        // The Fig. 3b tensor, materialized densely then converted.
        let coo = CooTensor3::from_quads(
            4,
            4,
            4,
            vec![
                (0, 0, 0, 1.0),
                (0, 0, 1, 2.0),
                (1, 2, 2, 3.0),
                (2, 1, 0, 4.0),
                (2, 1, 3, 5.0),
                (3, 0, 3, 6.0),
            ],
        )
        .unwrap();
        let dense = coo.clone().into_dense();
        let csf = dense_to_csf(&dense);
        assert_eq!(csf.to_coo(), coo);
        assert_eq!(csf.x_fids(), &[0, 1, 2, 3]);
        assert_eq!(csf.num_fibers(), 4);
    }

    #[test]
    fn conversion_composition_is_identity() {
        // X -> Y -> X returns the original for a chain of direct paths.
        let coo = fig8b();
        let csr = CsrMatrix::from_coo(&coo);
        let back = csc_to_csr(&csr_to_csc(&csr));
        assert_eq!(back, csr);
        let rlc = RlcMatrix::from_coo(&coo, 4);
        let back2 = RlcMatrix::from_coo(&rlc_to_coo(&rlc), 4);
        assert_eq!(back2, rlc);
    }
}

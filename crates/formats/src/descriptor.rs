//! Per-rank **level descriptors** — the open, composable format identity.
//!
//! The paper treats a compression format as a per-rank choice
//! (uncompressed, bitmask/ZVC, run-length, coordinate) applied dimension
//! by dimension (§III, Fig. 3), but [`MatrixFormat`] / [`TensorFormat`]
//! hard-code that zoo as closed enums. Following the level abstraction of
//! *Format Abstraction for Sparse Tensor Algebra Compilers* (Chou et
//! al.), a [`FormatDescriptor`] instead **composes** a format from an
//! ordered list of per-rank [`Level`]s plus a [`ValuesLayout`]:
//!
//! | preset | rank order | levels | values |
//! |---|---|---|---|
//! | Dense  | row-major | `Uncompressed · Uncompressed` | contiguous |
//! | COO    | row-major | `Singleton · Singleton` | contiguous |
//! | CSR    | row-major | `Uncompressed · CompressedOffsets` | contiguous |
//! | CSC    | col-major | `Uncompressed · CompressedOffsets` | contiguous |
//! | BSR    | row-major | `Blocked(br,bc) · CompressedOffsets` | dense blocks |
//! | DIA    | diagonal  | `Singleton · Uncompressed` | padded fibers |
//! | ELL    | row-major | `Uncompressed · Singleton` | padded fibers |
//! | RLC    | row-major (linearized) | `RunLength(r)` | contiguous |
//! | ZVC    | row-major (linearized) | `Bitmask` | contiguous |
//!
//! (and analogously for the six tensor formats; a single level over a
//! multi-rank operand means the ranks are linearized into one flat
//! stream first, which is exactly how the paper's RLC/ZVC work.)
//!
//! Every legacy enum variant round-trips losslessly through its
//! descriptor ([`FormatDescriptor::to_matrix_format`] /
//! [`FormatDescriptor::to_tensor_format`]), so the enums survive as thin
//! named wrappers, while the descriptor opens the space *between* the
//! presets: new combinations (bitmask rows × run-length columns, …) get
//! storage sizing from the same generic level model
//! ([`crate::size_model::descriptor_matrix_bits`]), an executable
//! encoding ([`crate::custom::CustomMatrix`]), and a stable
//! [`fingerprint`](FormatDescriptor::fingerprint) that plan caches key
//! on — no per-format special cases anywhere downstream.

use crate::formats::{MatrixFormat, TensorFormat};
use crate::rlc::DEFAULT_RUN_BITS;

/// How one rank of the operand is represented — the per-dimension
/// vocabulary of the paper's §III taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Every position along this rank is materialized; coordinates are
    /// implicit in the layout (the paper's "uncompressed dimension").
    Uncompressed,
    /// Only occupied positions are stored, with explicit coordinates and
    /// an offsets (pointer) array delimiting each parent fiber — the
    /// CSR/CSC/CSF building block.
    CompressedOffsets,
    /// A presence bitmask over the rank's positions; values are packed in
    /// mask order (the paper's ZVC building block).
    Bitmask,
    /// Zero runs between stored entries, encoded in a fixed-width run
    /// field (the paper's RLC building block).
    RunLength {
        /// Bits in the zero-run field.
        run_bits: u32,
    },
    /// One explicit coordinate stored per element (or per stored fiber),
    /// with no grouping structure of its own — the COO building block.
    Singleton,
    /// The rank is split into `br x bc` dense blocks; only occupied
    /// blocks are stored (BSR; for 3-D tensors the block is the cubic
    /// `br`-edge HiCOO block and `br == bc` is required).
    Blocked {
        /// Block rows (block edge for cubic tensor blocks).
        br: usize,
        /// Block columns.
        bc: usize,
    },
}

impl Level {
    /// Does this level store explicit coordinate metadata (as opposed to
    /// positions implicit in the stream order)?
    pub const fn stores_coordinates(&self) -> bool {
        matches!(
            self,
            Level::CompressedOffsets | Level::Singleton | Level::Blocked { .. }
        )
    }

    /// Short notation for [`std::fmt::Display`].
    fn token(&self) -> String {
        match self {
            Level::Uncompressed => "U".to_string(),
            Level::CompressedOffsets => "C".to_string(),
            Level::Bitmask => "B".to_string(),
            Level::RunLength { run_bits } => format!("R{run_bits}"),
            Level::Singleton => "S".to_string(),
            Level::Blocked { br, bc } => format!("K{br}x{bc}"),
        }
    }
}

/// The order ranks are traversed in (which dimension is the outer rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RankOrder {
    /// Rows (x for tensors) outermost — the canonical streaming order.
    #[default]
    RowMajor,
    /// Columns outermost (CSC territory; decoding into the row-major
    /// compute stream engages MINT's sorter).
    ColMajor,
    /// Diagonals outermost (DIA territory): the outer rank enumerates
    /// the `rows + cols` signed diagonal offsets.
    Diagonal,
}

/// How the stored values relate to the stored structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ValuesLayout {
    /// One value slot per stored nonzero (no padding).
    #[default]
    Contiguous,
    /// Every stored fiber is padded to the full (or uniform) inner
    /// extent, so explicit zero slots are stored (DIA strips, ELL rows).
    PaddedFibers,
    /// Values are stored as dense `br x bc` blocks, padding included
    /// (BSR).
    DenseBlocks,
}

/// A compression format composed from per-rank levels — the canonical
/// format identity of the workspace (see the module docs for the preset
/// table and the legacy-enum round-trip contract).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormatDescriptor {
    /// Rank traversal order.
    pub order: RankOrder,
    /// One level per (possibly linearized) rank, outermost first. A
    /// single level over a 2-D/3-D operand means the ranks are
    /// linearized into one flat stream.
    pub levels: Vec<Level>,
    /// Value storage layout.
    pub values: ValuesLayout,
}

impl FormatDescriptor {
    /// Compose a descriptor from parts (no validation; see
    /// [`validate_matrix`](Self::validate_matrix)).
    pub fn new(order: RankOrder, levels: Vec<Level>, values: ValuesLayout) -> Self {
        FormatDescriptor {
            order,
            levels,
            values,
        }
    }

    // ---- matrix presets -------------------------------------------------

    /// Uncompressed row-major (`Dense`).
    pub fn dense() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Uncompressed, Level::Uncompressed],
            ValuesLayout::Contiguous,
        )
    }

    /// Coordinate list (`COO`).
    pub fn coo() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Singleton, Level::Singleton],
            ValuesLayout::Contiguous,
        )
    }

    /// Compressed sparse row (`CSR`).
    pub fn csr() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Uncompressed, Level::CompressedOffsets],
            ValuesLayout::Contiguous,
        )
    }

    /// Compressed sparse column (`CSC`).
    pub fn csc() -> Self {
        Self::new(
            RankOrder::ColMajor,
            vec![Level::Uncompressed, Level::CompressedOffsets],
            ValuesLayout::Contiguous,
        )
    }

    /// Block compressed row with `br x bc` dense blocks (`BSR`).
    pub fn bsr(br: usize, bc: usize) -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Blocked { br, bc }, Level::CompressedOffsets],
            ValuesLayout::DenseBlocks,
        )
    }

    /// Diagonal storage (`DIA`).
    pub fn dia() -> Self {
        Self::new(
            RankOrder::Diagonal,
            vec![Level::Singleton, Level::Uncompressed],
            ValuesLayout::PaddedFibers,
        )
    }

    /// ELLPACK padded rows (`ELL`).
    pub fn ell() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Uncompressed, Level::Singleton],
            ValuesLayout::PaddedFibers,
        )
    }

    /// Run-length coding over the linearized stream (`RLC`).
    pub fn rlc(run_bits: u32) -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::RunLength { run_bits }],
            ValuesLayout::Contiguous,
        )
    }

    /// Zero-value compression over the linearized stream (`ZVC`).
    pub fn zvc() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask],
            ValuesLayout::Contiguous,
        )
    }

    // ---- 3-D tensor presets ---------------------------------------------

    /// Uncompressed 3-D tensor (z fastest).
    pub fn dense3() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![
                Level::Uncompressed,
                Level::Uncompressed,
                Level::Uncompressed,
            ],
            ValuesLayout::Contiguous,
        )
    }

    /// 3-D coordinate list.
    pub fn coo3() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![Level::Singleton, Level::Singleton, Level::Singleton],
            ValuesLayout::Contiguous,
        )
    }

    /// Compressed sparse fiber (`CSF`).
    pub fn csf() -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![
                Level::CompressedOffsets,
                Level::CompressedOffsets,
                Level::CompressedOffsets,
            ],
            ValuesLayout::Contiguous,
        )
    }

    /// Hierarchical COO with cubic blocks of the given edge (`HiCOO`).
    pub fn hicoo(block: usize) -> Self {
        Self::new(
            RankOrder::RowMajor,
            vec![
                Level::Blocked {
                    br: block,
                    bc: block,
                },
                Level::Singleton,
            ],
            ValuesLayout::Contiguous,
        )
    }

    /// Run-length coding over the linearized tensor stream.
    pub fn rlc3(run_bits: u32) -> Self {
        Self::rlc(run_bits)
    }

    /// Zero-value compression over the linearized tensor stream.
    pub fn zvc3() -> Self {
        Self::zvc()
    }

    // ---- round trip to the legacy enums ---------------------------------

    /// The legacy [`MatrixFormat`] this descriptor names, when it is one
    /// of the nine matrix presets (`None` for open compositions).
    pub fn to_matrix_format(&self) -> Option<MatrixFormat> {
        use Level as L;
        use RankOrder as O;
        use ValuesLayout as V;
        match (self.order, self.levels.as_slice(), self.values) {
            (O::RowMajor, [L::Uncompressed, L::Uncompressed], V::Contiguous) => {
                Some(MatrixFormat::Dense)
            }
            (O::RowMajor, [L::Singleton, L::Singleton], V::Contiguous) => Some(MatrixFormat::Coo),
            (O::RowMajor, [L::Uncompressed, L::CompressedOffsets], V::Contiguous) => {
                Some(MatrixFormat::Csr)
            }
            (O::ColMajor, [L::Uncompressed, L::CompressedOffsets], V::Contiguous) => {
                Some(MatrixFormat::Csc)
            }
            (O::RowMajor, [L::Blocked { br, bc }, L::CompressedOffsets], V::DenseBlocks) => {
                Some(MatrixFormat::Bsr { br: *br, bc: *bc })
            }
            (O::Diagonal, [L::Singleton, L::Uncompressed], V::PaddedFibers) => {
                Some(MatrixFormat::Dia)
            }
            (O::RowMajor, [L::Uncompressed, L::Singleton], V::PaddedFibers) => {
                Some(MatrixFormat::Ell)
            }
            (O::RowMajor, [L::RunLength { run_bits }], V::Contiguous) => Some(MatrixFormat::Rlc {
                run_bits: *run_bits,
            }),
            (O::RowMajor, [L::Bitmask], V::Contiguous) => Some(MatrixFormat::Zvc),
            _ => None,
        }
    }

    /// The legacy [`TensorFormat`] this descriptor names, when it is one
    /// of the six tensor presets.
    pub fn to_tensor_format(&self) -> Option<TensorFormat> {
        use Level as L;
        use RankOrder as O;
        use ValuesLayout as V;
        match (self.order, self.levels.as_slice(), self.values) {
            (O::RowMajor, [L::Uncompressed, L::Uncompressed, L::Uncompressed], V::Contiguous) => {
                Some(TensorFormat::Dense)
            }
            (O::RowMajor, [L::Singleton, L::Singleton, L::Singleton], V::Contiguous) => {
                Some(TensorFormat::Coo)
            }
            (
                O::RowMajor,
                [L::CompressedOffsets, L::CompressedOffsets, L::CompressedOffsets],
                V::Contiguous,
            ) => Some(TensorFormat::Csf),
            (O::RowMajor, [L::Blocked { br, bc }, L::Singleton], V::Contiguous) if br == bc => {
                Some(TensorFormat::HiCoo { block: *br })
            }
            (O::RowMajor, [L::RunLength { run_bits }], V::Contiguous) => Some(TensorFormat::Rlc {
                run_bits: *run_bits,
            }),
            (O::RowMajor, [L::Bitmask], V::Contiguous) => Some(TensorFormat::Zvc),
            _ => None,
        }
    }

    // ---- structural predicates ------------------------------------------

    /// True when no level stores explicit coordinates — positions are
    /// implicit in the stream order (Dense, RLC, ZVC and their per-rank
    /// combinations). These decode without MINT's divide/mod array.
    pub fn is_flat(&self) -> bool {
        !self.levels.iter().any(Level::stores_coordinates)
    }

    /// True when some rank keeps an offsets (pointer) array — rebuilding
    /// it engages MINT's prefix-sum block.
    pub fn has_offsets_rank(&self) -> bool {
        self.levels
            .iter()
            .any(|l| matches!(l, Level::CompressedOffsets))
    }

    /// True when some rank is bitmask-encoded — building it engages
    /// MINT's population counter.
    pub fn has_bitmask_rank(&self) -> bool {
        self.levels.iter().any(|l| matches!(l, Level::Bitmask))
    }

    /// True when some rank is block-partitioned — computing block
    /// positions engages MINT's divide/mod array.
    pub fn has_blocked_rank(&self) -> bool {
        self.levels
            .iter()
            .any(|l| matches!(l, Level::Blocked { .. }))
    }

    /// True when the encoding stores explicit zero value slots (padding
    /// strips or dense blocks), i.e. `stored_elements > logical_nnz` in
    /// general. Flat run-length streams also carry zero-valued extension
    /// slots.
    pub fn stores_explicit_zeros(&self) -> bool {
        !matches!(self.values, ValuesLayout::Contiguous)
            || self
                .levels
                .iter()
                .any(|l| matches!(l, Level::RunLength { .. }))
            || self.levels.iter().all(|l| matches!(l, Level::Uncompressed))
    }

    /// Check the descriptor is a matrix format this workspace can size
    /// and (for the supported open subset) encode: one linearized level
    /// or two ranks, with the structural constraints each level demands.
    pub fn validate_matrix(&self) -> Result<(), String> {
        match self.levels.len() {
            1 => {
                if self.order != RankOrder::RowMajor {
                    return Err("linearized (single-level) descriptors are row-major".into());
                }
                if !matches!(
                    self.levels[0],
                    Level::RunLength { .. } | Level::Bitmask | Level::Uncompressed
                ) {
                    return Err(format!(
                        "level {} cannot encode a linearized stream",
                        self.levels[0].token()
                    ));
                }
                if self.values != ValuesLayout::Contiguous {
                    return Err("linearized descriptors store values contiguously".into());
                }
            }
            2 => {
                for l in &self.levels {
                    if let Level::RunLength { run_bits } = l {
                        if *run_bits == 0 || *run_bits > 24 {
                            return Err(format!("run field of {run_bits} bits is out of range"));
                        }
                    }
                    if let Level::Blocked { br, bc } = l {
                        if *br == 0 || *bc == 0 {
                            return Err("block dimensions must be non-zero".into());
                        }
                    }
                }
                if matches!(self.levels[1], Level::Blocked { .. }) {
                    return Err("a blocked level must be the outer rank".into());
                }
                if self.order == RankOrder::Diagonal
                    && self.to_matrix_format() != Some(MatrixFormat::Dia)
                {
                    return Err("diagonal rank order is only defined for the DIA preset".into());
                }
                if self.values == ValuesLayout::DenseBlocks
                    && !matches!(self.levels[0], Level::Blocked { .. })
                {
                    return Err("dense-block values require a blocked outer rank".into());
                }
                if self.values == ValuesLayout::PaddedFibers && self.to_matrix_format().is_none() {
                    return Err(
                        "padded-fiber values are only defined for the DIA/ELL presets".into(),
                    );
                }
                // Valid ⇔ sizable: the generic level model is the
                // definition of which two-rank compositions exist in
                // this workspace, so probe it (on a token shape) rather
                // than maintain a second list that can drift.
                if let Err(e) = crate::size_model::descriptor_matrix_bits(
                    self,
                    &crate::size_model::MatrixStructure::analytic(4, 4, 4),
                    crate::dtype::DataType::Fp32,
                ) {
                    return Err(format!("{e}"));
                }
            }
            n => return Err(format!("matrix descriptors have 1 or 2 levels, got {n}")),
        }
        Ok(())
    }

    // ---- identity --------------------------------------------------------

    /// Stable 64-bit fingerprint of the descriptor (FNV-1a over a
    /// canonical byte rendering). Equal descriptors always produce equal
    /// fingerprints **across processes and releases** — unlike
    /// `DefaultHasher`, the constants are fixed — so plan caches and
    /// persisted artifacts can key on it while the legacy enums are
    /// phased out.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(FNV_PRIME);
        };
        eat(match self.order {
            RankOrder::RowMajor => 1,
            RankOrder::ColMajor => 2,
            RankOrder::Diagonal => 3,
        });
        eat(match self.values {
            ValuesLayout::Contiguous => 1,
            ValuesLayout::PaddedFibers => 2,
            ValuesLayout::DenseBlocks => 3,
        });
        eat(self.levels.len() as u64);
        for l in &self.levels {
            match l {
                Level::Uncompressed => eat(10),
                Level::CompressedOffsets => eat(11),
                Level::Bitmask => eat(12),
                Level::RunLength { run_bits } => {
                    eat(13);
                    eat(u64::from(*run_bits));
                }
                Level::Singleton => eat(14),
                Level::Blocked { br, bc } => {
                    eat(15);
                    eat(*br as u64);
                    eat(*bc as u64);
                }
            }
        }
        h
    }
}

/// Fold several descriptor fingerprints into one order-sensitive key
/// (FNV-1a over the member fingerprints) — the shared rule plan caches
/// use to key a multi-operand format choice, defined once here so the
/// enum and descriptor spellings of a choice cannot drift apart.
pub fn combine_fingerprints<'a>(descs: impl IntoIterator<Item = &'a FormatDescriptor>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in descs {
        h ^= d.fingerprint();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl std::fmt::Display for FormatDescriptor {
    /// Preset name when the descriptor maps to a legacy enum, otherwise
    /// the level notation, e.g. `B·R4[row]` for bitmask rows ×
    /// run-length columns.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(m) = self.to_matrix_format() {
            return write!(f, "{m}");
        }
        if let Some(t) = self.to_tensor_format() {
            return write!(f, "{t}");
        }
        let levels: Vec<String> = self.levels.iter().map(Level::token).collect();
        let order = match self.order {
            RankOrder::RowMajor => "row",
            RankOrder::ColMajor => "col",
            RankOrder::Diagonal => "diag",
        };
        write!(f, "{}[{order}]", levels.join("·"))?;
        match self.values {
            ValuesLayout::Contiguous => Ok(()),
            ValuesLayout::PaddedFibers => write!(f, "+pad"),
            ValuesLayout::DenseBlocks => write!(f, "+blk"),
        }
    }
}

impl From<MatrixFormat> for FormatDescriptor {
    fn from(f: MatrixFormat) -> Self {
        match f {
            MatrixFormat::Dense => FormatDescriptor::dense(),
            MatrixFormat::Coo => FormatDescriptor::coo(),
            MatrixFormat::Csr => FormatDescriptor::csr(),
            MatrixFormat::Csc => FormatDescriptor::csc(),
            MatrixFormat::Bsr { br, bc } => FormatDescriptor::bsr(br, bc),
            MatrixFormat::Dia => FormatDescriptor::dia(),
            MatrixFormat::Ell => FormatDescriptor::ell(),
            MatrixFormat::Rlc { run_bits } => FormatDescriptor::rlc(run_bits),
            MatrixFormat::Zvc => FormatDescriptor::zvc(),
        }
    }
}

impl From<TensorFormat> for FormatDescriptor {
    fn from(f: TensorFormat) -> Self {
        match f {
            TensorFormat::Dense => FormatDescriptor::dense3(),
            TensorFormat::Coo => FormatDescriptor::coo3(),
            TensorFormat::Csf => FormatDescriptor::csf(),
            TensorFormat::HiCoo { block } => FormatDescriptor::hicoo(block),
            TensorFormat::Rlc { run_bits } => FormatDescriptor::rlc3(run_bits),
            TensorFormat::Zvc => FormatDescriptor::zvc3(),
        }
    }
}

// ---------------------------------------------------------------------------
// Preset registry + search-space enumeration
// ---------------------------------------------------------------------------

/// The nine matrix presets (default structural parameters), in the
/// canonical registry order: the paper's six unstructured MCFs first
/// (matching Table III's column order), then the structured extensions.
pub fn matrix_presets() -> Vec<FormatDescriptor> {
    vec![
        FormatDescriptor::dense(),
        FormatDescriptor::rlc(DEFAULT_RUN_BITS),
        FormatDescriptor::zvc(),
        FormatDescriptor::coo(),
        FormatDescriptor::csr(),
        FormatDescriptor::csc(),
        FormatDescriptor::bsr(4, 4),
        FormatDescriptor::dia(),
        FormatDescriptor::ell(),
    ]
}

/// The six tensor presets (default structural parameters).
pub fn tensor_presets() -> Vec<FormatDescriptor> {
    vec![
        FormatDescriptor::dense3(),
        FormatDescriptor::rlc3(DEFAULT_RUN_BITS),
        FormatDescriptor::zvc3(),
        FormatDescriptor::coo3(),
        FormatDescriptor::csf(),
        FormatDescriptor::hicoo(4),
    ]
}

/// Which slice of the descriptor space a search enumerates. The paper's
/// §VII-A MCF/ACF spaces are *filters* over the composed space; the
/// larger knobs open it beyond the paper's fixed lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchSpace {
    /// The paper's six memory formats: Dense, RLC, ZVC, COO, CSR, CSC.
    McfPaper,
    /// The paper's four compute formats: Dense, CSR, COO, CSC (the
    /// streaming-operand order the generation engine iterates in).
    AcfPaper,
    /// `McfPaper` plus the structured extensions the paper defers to
    /// future work (§VI): BSR at 2/4/8 blocks, DIA, ELL.
    Structured,
    /// `Structured` plus quantized run-length variants — every
    /// enumerable level composition that still names a legacy preset.
    Extended,
    /// The open space: every valid level composition this workspace can
    /// size, including non-preset combinations (bitmask rows ×
    /// run-length columns, per-row run length, …). Members that do not
    /// map to a legacy enum execute via
    /// [`crate::custom::CustomMatrix`].
    Open,
}

/// Enumerate matrix-format candidates by composing per-rank levels and
/// filtering to the requested [`SearchSpace`]. The closed spaces
/// (`McfPaper`, `AcfPaper`) reproduce the paper's §VII-A candidate lists
/// element-for-element and in the same order the hand-maintained search
/// loops used, which the SAGE regression tests pin.
///
/// Materializes the whole candidate list; search loops that only need to
/// *stream* candidates (the beam search over the open space) should use
/// [`enumerate_matrix_iter`] instead, which yields the same members in
/// the same order without building the open cross product up front.
pub fn enumerate_matrix(space: SearchSpace) -> Vec<FormatDescriptor> {
    enumerate_matrix_iter(space).collect()
}

/// Lazy spelling of [`enumerate_matrix`]: the same members in the same
/// order, produced on demand. The closed preset spaces are small fixed
/// lists either way; the payoff is the `Open` tail, whose level
/// cross product is composed, validated and deduplicated one candidate
/// at a time as the consumer pulls — a beam search that prunes early
/// never pays for the combinations it does not look at.
pub fn enumerate_matrix_iter(space: SearchSpace) -> Box<dyn Iterator<Item = FormatDescriptor>> {
    match space {
        SearchSpace::McfPaper => Box::new(
            vec![
                FormatDescriptor::dense(),
                FormatDescriptor::rlc(DEFAULT_RUN_BITS),
                FormatDescriptor::zvc(),
                FormatDescriptor::coo(),
                FormatDescriptor::csr(),
                FormatDescriptor::csc(),
            ]
            .into_iter(),
        ),
        SearchSpace::AcfPaper => Box::new(
            vec![
                FormatDescriptor::dense(),
                FormatDescriptor::csr(),
                FormatDescriptor::coo(),
                FormatDescriptor::csc(),
            ]
            .into_iter(),
        ),
        SearchSpace::Structured => Box::new(
            enumerate_matrix_iter(SearchSpace::McfPaper)
                .chain(
                    [2usize, 4, 8]
                        .into_iter()
                        .map(|e| FormatDescriptor::bsr(e, e)),
                )
                .chain([FormatDescriptor::dia(), FormatDescriptor::ell()]),
        ),
        SearchSpace::Extended => Box::new(
            enumerate_matrix_iter(SearchSpace::Structured)
                .chain([2u32, 8].into_iter().map(FormatDescriptor::rlc)),
        ),
        SearchSpace::Open => {
            // Compose the two-rank space the presets don't cover: outer
            // presence encodings × inner per-fiber encodings. Singleton
            // inners are deliberately absent: under a fiber-grouping
            // outer rank a delimited singleton is storage-identical to
            // CompressedOffsets, so enumerating it would only add CSR
            // (and friends) under a second fingerprint. Candidates that
            // name a preset (U·C ≡ CSR) are already in the Extended
            // prefix, so the tail keeps exactly the valid non-presets —
            // the same dedup the eager list performed with `contains`.
            let outers = [Level::Uncompressed, Level::Bitmask];
            let inners = [
                Level::CompressedOffsets,
                Level::Bitmask,
                Level::RunLength {
                    run_bits: DEFAULT_RUN_BITS,
                },
            ];
            let tail = outers.into_iter().flat_map(move |outer| {
                inners.into_iter().filter_map(move |inner| {
                    let d = FormatDescriptor::new(
                        RankOrder::RowMajor,
                        vec![outer, inner],
                        ValuesLayout::Contiguous,
                    );
                    (d.validate_matrix().is_ok() && d.to_matrix_format().is_none()).then_some(d)
                })
            });
            Box::new(enumerate_matrix_iter(SearchSpace::Extended).chain(tail))
        }
    }
}

/// Enumerate tensor-format candidates for the requested space (the
/// tensor rows of Table III use the MCF space `{Dense, RLC, ZVC, COO,
/// CSF}` and the ACF space `{Dense, COO, CSF}`).
pub fn enumerate_tensor(space: SearchSpace) -> Vec<FormatDescriptor> {
    match space {
        SearchSpace::McfPaper => vec![
            FormatDescriptor::dense3(),
            FormatDescriptor::rlc3(DEFAULT_RUN_BITS),
            FormatDescriptor::zvc3(),
            FormatDescriptor::coo3(),
            FormatDescriptor::csf(),
        ],
        SearchSpace::AcfPaper => vec![
            FormatDescriptor::dense3(),
            FormatDescriptor::coo3(),
            FormatDescriptor::csf(),
        ],
        SearchSpace::Structured | SearchSpace::Extended => {
            let mut v = enumerate_tensor(SearchSpace::McfPaper);
            for block in [2usize, 4, 8] {
                v.push(FormatDescriptor::hicoo(block));
            }
            v
        }
        SearchSpace::Open => enumerate_tensor(SearchSpace::Extended),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_matrix_formats() -> Vec<MatrixFormat> {
        vec![
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 3, bc: 5 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 7 },
            MatrixFormat::Zvc,
        ]
    }

    fn all_tensor_formats() -> Vec<TensorFormat> {
        vec![
            TensorFormat::Dense,
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::HiCoo { block: 8 },
            TensorFormat::Rlc { run_bits: 5 },
            TensorFormat::Zvc,
        ]
    }

    #[test]
    fn matrix_enum_round_trips_losslessly() {
        for f in all_matrix_formats() {
            let d = FormatDescriptor::from(f);
            assert_eq!(d.to_matrix_format(), Some(f), "round trip lost {f}");
            assert!(d.validate_matrix().is_ok(), "preset {f} fails validation");
        }
    }

    #[test]
    fn tensor_enum_round_trips_losslessly() {
        for f in all_tensor_formats() {
            let d = FormatDescriptor::from(f);
            assert_eq!(d.to_tensor_format(), Some(f), "round trip lost {f}");
        }
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        let mut seen = std::collections::HashMap::new();
        for f in all_matrix_formats() {
            let d = FormatDescriptor::from(f);
            let fp = d.fingerprint();
            assert_eq!(fp, FormatDescriptor::from(f).fingerprint(), "unstable {f}");
            if let Some(prev) = seen.insert(fp, f) {
                panic!("fingerprint collision between {prev} and {f}");
            }
        }
        // Parameters matter.
        assert_ne!(
            FormatDescriptor::rlc(4).fingerprint(),
            FormatDescriptor::rlc(8).fingerprint()
        );
        assert_ne!(
            FormatDescriptor::bsr(2, 4).fingerprint(),
            FormatDescriptor::bsr(4, 2).fingerprint()
        );
        // Pinned literal: the fingerprint is a persistence format
        // (plan-cache keys, artifacts), so changing the FNV constants or
        // the byte rendering is a breaking change and must fail here.
        assert_eq!(FormatDescriptor::csr().fingerprint(), 0x6693_1bb6_f425_4bdc);
    }

    #[test]
    fn display_names_presets_and_compositions() {
        assert_eq!(FormatDescriptor::csr().to_string(), "CSR");
        assert_eq!(FormatDescriptor::bsr(2, 4).to_string(), "BSR2x4");
        assert_eq!(FormatDescriptor::hicoo(8).to_string(), "HiCOO(b8)");
        let custom = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
            ValuesLayout::Contiguous,
        );
        assert_eq!(custom.to_string(), "B·R4[row]");
        assert_eq!(custom.to_matrix_format(), None);
    }

    #[test]
    fn structural_predicates_match_the_legacy_classification() {
        // is_flat must agree with the old MINT cost-model classification:
        // Dense, RLC, ZVC are flat; everything storing coordinates is not.
        for f in all_matrix_formats() {
            let d = FormatDescriptor::from(f);
            let legacy_flat = matches!(
                f,
                MatrixFormat::Dense | MatrixFormat::Rlc { .. } | MatrixFormat::Zvc
            );
            assert_eq!(d.is_flat(), legacy_flat, "flatness mismatch for {f}");
        }
        assert!(FormatDescriptor::csr().has_offsets_rank());
        assert!(!FormatDescriptor::coo().has_offsets_rank());
        assert!(FormatDescriptor::zvc().has_bitmask_rank());
        assert!(FormatDescriptor::bsr(2, 2).has_blocked_rank());
    }

    #[test]
    fn explicit_zero_accounting_flags_the_padded_presets() {
        for f in all_matrix_formats() {
            let expect = matches!(
                f,
                MatrixFormat::Dense
                    | MatrixFormat::Bsr { .. }
                    | MatrixFormat::Dia
                    | MatrixFormat::Ell
                    | MatrixFormat::Rlc { .. }
            );
            assert_eq!(
                FormatDescriptor::from(f).stores_explicit_zeros(),
                expect,
                "explicit-zero flag mismatch for {f}"
            );
        }
    }

    #[test]
    fn paper_spaces_recover_the_enum_sets() {
        let mcf: Vec<MatrixFormat> = enumerate_matrix(SearchSpace::McfPaper)
            .iter()
            .filter_map(FormatDescriptor::to_matrix_format)
            .collect();
        assert_eq!(mcf, MatrixFormat::mcf_set().to_vec());
        let acf: Vec<MatrixFormat> = enumerate_matrix(SearchSpace::AcfPaper)
            .iter()
            .filter_map(FormatDescriptor::to_matrix_format)
            .collect();
        assert_eq!(acf.len(), 4);
        for f in MatrixFormat::acf_set() {
            assert!(acf.contains(&f), "ACF space lost {f}");
        }
        let tensor_mcf: Vec<TensorFormat> = enumerate_tensor(SearchSpace::McfPaper)
            .iter()
            .filter_map(FormatDescriptor::to_tensor_format)
            .collect();
        assert_eq!(tensor_mcf, TensorFormat::mcf_set().to_vec());
        assert_eq!(enumerate_tensor(SearchSpace::AcfPaper).len(), 3);
    }

    #[test]
    fn wider_spaces_nest() {
        let mcf = enumerate_matrix(SearchSpace::McfPaper);
        let structured = enumerate_matrix(SearchSpace::Structured);
        let extended = enumerate_matrix(SearchSpace::Extended);
        let open = enumerate_matrix(SearchSpace::Open);
        for d in &mcf {
            assert!(structured.contains(d));
        }
        for d in &structured {
            assert!(extended.contains(d));
        }
        for d in &extended {
            assert!(open.contains(d));
        }
        assert!(open.len() > extended.len(), "open space adds compositions");
        // The open space genuinely leaves the enum: at least one member
        // has no legacy name.
        assert!(open
            .iter()
            .any(|d| d.to_matrix_format().is_none() && d.to_tensor_format().is_none()));
        // And every member is valid.
        for d in &open {
            assert!(d.validate_matrix().is_ok(), "invalid member {d}");
        }
    }

    #[test]
    fn lazy_enumeration_matches_the_eager_lists_everywhere() {
        // `enumerate_matrix` is defined as the collected lazy iterator,
        // but pin the membership *and order* per space anyway so a
        // future divergence (e.g. an eager fast path) cannot slip in.
        for space in [
            SearchSpace::McfPaper,
            SearchSpace::AcfPaper,
            SearchSpace::Structured,
            SearchSpace::Extended,
            SearchSpace::Open,
        ] {
            let lazy: Vec<FormatDescriptor> = enumerate_matrix_iter(space).collect();
            assert_eq!(lazy, enumerate_matrix(space), "{space:?} diverged");
        }
    }

    #[test]
    fn open_space_streams_without_full_materialization() {
        // Pulling only the first candidate past the Extended prefix must
        // not require walking the rest of the cross product: the lazy
        // tail yields incrementally and in the pinned order (U·B first —
        // U·C is the CSR preset and is deduplicated into the prefix).
        let extended = enumerate_matrix(SearchSpace::Extended).len();
        let first_open = enumerate_matrix_iter(SearchSpace::Open)
            .nth(extended)
            .unwrap();
        assert_eq!(first_open.to_matrix_format(), None, "tail is non-preset");
        assert_eq!(first_open.to_string(), "U·B[row]");
        // The closed spaces keep their exact §VII-A sizes.
        assert_eq!(enumerate_matrix_iter(SearchSpace::McfPaper).count(), 6);
        assert_eq!(enumerate_matrix_iter(SearchSpace::AcfPaper).count(), 4);
    }

    #[test]
    fn validation_rejects_malformed_compositions() {
        // Inner blocked rank.
        let bad = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Uncompressed, Level::Blocked { br: 2, bc: 2 }],
            ValuesLayout::Contiguous,
        );
        assert!(bad.validate_matrix().is_err());
        // Diagonal order outside DIA.
        let bad = FormatDescriptor::new(
            RankOrder::Diagonal,
            vec![Level::Uncompressed, Level::CompressedOffsets],
            ValuesLayout::Contiguous,
        );
        assert!(bad.validate_matrix().is_err());
        // Zero-width run field.
        let bad = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Uncompressed, Level::RunLength { run_bits: 0 }],
            ValuesLayout::Contiguous,
        );
        assert!(bad.validate_matrix().is_err());
        // Three levels on a matrix.
        assert!(FormatDescriptor::csf().validate_matrix().is_err());
    }
}

//! Fig. 13 — normalized EDP (SpGEMM and SpMM averaged per class) of
//! every accelerator class against this work, over the Table III matrix
//! workloads.

use crate::fig12::spgemm_workload;
use sparseflex_core::FlexSystem;
use sparseflex_formats::DataType;
use sparseflex_host::offload::geomean;
use sparseflex_sage::SageWorkload;
use sparseflex_workloads::{WorkloadShape, TABLE_III};
use std::collections::BTreeMap;

/// Build the SpMM workload for a Table III matrix entry (dense factor).
pub fn spmm_workload(spec: &sparseflex_workloads::WorkloadSpec) -> SageWorkload {
    let WorkloadShape::Matrix { rows: m, cols: k } = spec.shape else {
        panic!("{} is not a matrix workload", spec.name)
    };
    let (_, fc) = spec.factor_dims();
    SageWorkload::spmm(m, k, fc, spec.nnz as u64, DataType::Fp32)
}

/// Per-workload normalized EDP plus per-class geomeans.
pub fn rows() -> Vec<String> {
    let sys = FlexSystem::default();
    let mut out = vec![
        "# fig13 normalized EDP vs this work (SpGEMM + SpMM, Table III matrices)".to_string(),
        "kernel,workload,class,normalized_edp".to_string(),
    ];
    let mut per_class: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for spec in TABLE_III.iter().filter(|s| !s.is_tensor()) {
        for (kname, w) in [
            ("SpGEMM", spgemm_workload(spec)),
            ("SpMM", spmm_workload(spec)),
        ] {
            for (class, norm) in sys.normalized_edp(&w) {
                match norm {
                    Some(x) => {
                        per_class.entry(class).or_default().push(x);
                        out.push(format!("{kname},{},{class},{x:.3}", spec.name));
                    }
                    None => out.push(format!("{kname},{},{class},unsupported", spec.name)),
                }
            }
        }
    }
    out.push(String::new());
    out.push("class,geomean_normalized_edp,edp_reduction_pct".to_string());
    for (class, vals) in per_class {
        let g = geomean(&vals);
        out.push(format!("{class},{g:.3},{:.1}", (g - 1.0) * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_classes_at_or_above_one() {
        // Fig. 13's defining property: this work is the 1.0 baseline and
        // every class's geomean normalized EDP >= 1.
        let rows = super::rows();
        let summary_start = rows.iter().position(|r| r.starts_with("class,")).unwrap();
        let mut seen_worse = 0;
        for line in &rows[summary_start + 1..] {
            let f: Vec<&str> = line.split(',').collect();
            let g: f64 = f[1].parse().unwrap();
            assert!(g >= 0.999, "{} geomean {g} below 1", f[0]);
            if f[0] != "Flex_Flex_HW" && g > 1.05 {
                seen_worse += 1;
            }
        }
        // Several baselines must be meaningfully worse (the paper reports
        // an average ~122% EDP reduction).
        assert!(seen_worse >= 3, "only {seen_worse} classes were >5% worse");
    }
}

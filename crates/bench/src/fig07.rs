//! Fig. 7b — area overhead of the extended (flexible-ACF) PE over the
//! base PE.

use sparseflex_accel::area::AreaModel;

/// Overhead rows across buffer sizes and vector widths.
pub fn rows() -> Vec<String> {
    let a = AreaModel::default_28nm();
    let mut out = vec![
        "# fig7b extended-PE overhead (paper: ~10% for 8 lanes, 128B buffer)".to_string(),
        "vector_width,buffer_bytes,base_mm2,extended_mm2,overhead_pct".to_string(),
    ];
    for vw in [4usize, 8, 16] {
        for buf in [128u64, 256, 512] {
            let base = a.base_pe_mm2(vw, buf);
            let ext = a.extended_pe_mm2(vw, buf);
            out.push(format!(
                "{vw},{buf},{base:.6},{ext:.6},{:.2}",
                100.0 * (ext - base) / base
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_point_is_near_ten_percent() {
        let rows = super::rows();
        let line = rows.iter().find(|l| l.starts_with("8,128,")).unwrap();
        let pct: f64 = line.split(',').next_back().unwrap().parse().unwrap();
        assert!((5.0..15.0).contains(&pct), "overhead {pct}%");
    }
}

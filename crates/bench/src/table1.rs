//! Table I — the MCF/ACF flexibility taxonomy.

use sparseflex_accel::taxonomy::{AcceleratorClass, ConversionSupport, FormatFreedom};

fn freedom(f: FormatFreedom) -> &'static str {
    match f {
        FormatFreedom::Fixed => "Fix",
        FormatFreedom::Flexible => "Flex",
    }
}

fn conv(c: ConversionSupport) -> &'static str {
    match c {
        ConversionSupport::None => "None",
        ConversionSupport::Software => "SW",
        ConversionSupport::Hardware => "HW",
    }
}

/// Taxonomy rows.
pub fn rows() -> Vec<String> {
    let mut out = vec![
        "# table1 MCF/ACF characterization of accelerator classes".to_string(),
        "design,mcf,acf,same,conv,example".to_string(),
    ];
    for c in AcceleratorClass::table2_suite() {
        let same = if c.requires_identity_conversion() {
            "Yes"
        } else {
            "No"
        };
        out.push(format!(
            "{},{},{},{same},{},{}",
            c.name,
            freedom(c.mcf_freedom),
            freedom(c.acf_freedom),
            conv(c.conversion),
            c.example
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn this_work_is_flex_flex_hw() {
        let rows = super::rows();
        let last = rows.last().unwrap();
        assert!(last.starts_with("Flex_Flex_HW,Flex,Flex,No,HW"), "{last}");
    }
}

//! Ablation studies for the design choices DESIGN.md calls out:
//! structured-format SAGE (future-work extension), MINT merge levels,
//! prefix-sum overlays, and conversion overlap.

use sparseflex_formats::{DataType, SparseMatrix};
use sparseflex_mint::blocks::prefix_sum::{PrefixSumDesign, PrefixSumUnit};
use sparseflex_mint::{MintVariant, PrefixSumOverlay};
use sparseflex_sage::structured::rank_mcfs_exact;
use sparseflex_sage::workload::SageKernel;
use sparseflex_sage::Sage;
use sparseflex_workloads::synth::{
    banded_matrix, blocked_matrix, random_dense_matrix, random_matrix,
};

/// Structured-SAGE ablation: uniform-random SAGE vs structure-aware SAGE
/// on blocked / banded / scattered patterns.
pub fn structured_rows() -> Vec<String> {
    let sage = Sage::default();
    let mut out = vec![
        "# ablation: structure-aware SAGE (paper future work) vs uniform model".to_string(),
        "pattern,best_exact_mcf,exact_bits,best_unstructured_mcf,unstructured_bits,saving_pct"
            .to_string(),
    ];
    let cases: Vec<(&str, sparseflex_formats::CooMatrix)> = vec![
        ("blocked_8x8_10pct", blocked_matrix(256, 256, 8, 0.10, 1)),
        ("banded_5diag", banded_matrix(512, 5, 2)),
        ("scattered_3pct", random_matrix(256, 256, 2_000, 3)),
    ];
    for (name, m) in cases {
        let ranks = rank_mcfs_exact(&m, DataType::Fp32);
        let best = &ranks[0];
        let best_unstructured = ranks
            .iter()
            .find(|c| c.format.is_unstructured())
            .expect("unstructured candidates always present");
        let saving = 100.0 * (1.0 - best.bits as f64 / best_unstructured.bits as f64);
        out.push(format!(
            "{name},{},{},{},{},{saving:.1}",
            best.format, best.bits, best_unstructured.format, best_unstructured.bits
        ));
        // Exercise the full structured recommendation too.
        let b = random_dense_matrix(m.cols(), 64, 9);
        let b_coo = b.to_coo();
        let (rec, _, _) = sage.recommend_structured(&m, &b_coo, SageKernel::SpMm, DataType::Fp32);
        out.push(format!(
            "#   -> structured plan: {} ({:.3e} J, {:.3e} cycles)",
            rec.best.choice,
            rec.best.total_energy(),
            rec.best.total_cycles()
        ));
    }
    out
}

/// MINT merge-level and overlay ablation (the §VII-B area/power story).
pub fn mint_rows() -> Vec<String> {
    let mut out = vec![
        "# ablation: MINT merge levels and prefix-sum overlays".to_string(),
        "variant,area_mm2,power_w,divmod_area_share".to_string(),
    ];
    for v in MintVariant::all() {
        out.push(format!(
            "{},{:.2},{:.3},{:.2}",
            v.name(),
            v.area_mm2(),
            v.power_w(),
            v.divmod_area_share()
        ));
    }
    out.push(String::new());
    out.push("overlay,area_overhead_pct,power_overhead_pct,latency_32".to_string());
    for (name, overlay, design) in [
        (
            "highly_parallel",
            PrefixSumOverlay::HighlyParallel,
            PrefixSumDesign::HighlyParallel,
        ),
        (
            "serial_chain",
            PrefixSumOverlay::SerialChain,
            PrefixSumDesign::SerialChain,
        ),
    ] {
        let unit = PrefixSumUnit { width: 32, design };
        out.push(format!(
            "{name},{:.0},{:.0},{}",
            100.0 * overlay.area_overhead(),
            100.0 * overlay.power_overhead(),
            unit.latency()
        ));
    }
    out
}

/// All ablation series.
pub fn rows() -> Vec<String> {
    let mut out = structured_rows();
    out.push(String::new());
    out.extend(mint_rows());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn structured_patterns_save_storage() {
        let rows = super::structured_rows();
        // Blocked and banded rows must show positive savings over the
        // best unstructured format.
        for name in ["blocked_8x8_10pct", "banded_5diag"] {
            let line = rows.iter().find(|l| l.starts_with(name)).unwrap();
            let saving: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(saving > 5.0, "{name} saving only {saving}%");
        }
        // Scattered pattern: no structured win (saving ~ 0).
        let line = rows.iter().find(|l| l.starts_with("scattered")).unwrap();
        let saving: f64 = line.split(',').next_back().unwrap().parse().unwrap();
        assert!(
            saving.abs() < 1.0,
            "scattered saving {saving}% should be ~0"
        );
    }

    #[test]
    fn mint_table_has_three_variants_two_overlays() {
        let rows = super::mint_rows();
        assert!(rows.iter().any(|l| l.starts_with("MINT_b,0.95")));
        assert!(rows.iter().any(|l| l.starts_with("MINT_mr,0.23")));
        assert!(rows.iter().any(|l| l.starts_with("serial_chain,2,3")));
    }
}

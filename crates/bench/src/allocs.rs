//! Heap-allocation counting for the zero-alloc streaming exhibit.
//!
//! [`CountingAllocator`] wraps the system allocator and bumps a global
//! counter on every `alloc`/`realloc`. The library only *reads* the
//! counter; the allocator is installed as `#[global_allocator]` by the
//! binaries that enforce the budget (`kernels_gate`, `run_all`) and by
//! the `stream_arena` integration test — never by this library itself,
//! so linking `sparseflex-bench` does not change a host program's
//! allocator.
//!
//! Counts are process-global, so concurrent measurement from several
//! threads would cross-contaminate; the measurement entry points in
//! [`crate::kernels`] are all single-threaded.
//!
//! This module is the workspace's **single** `unsafe` exception: the
//! `GlobalAlloc` trait is itself unsafe to implement, and the impl only
//! forwards to [`System`] after bumping an atomic. Every other crate is
//! `#![forbid(unsafe_code)]`; this crate is `#![deny(unsafe_code)]`
//! with the override scoped to exactly this module.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts `alloc`/`realloc` calls, then defers to
/// the system allocator. Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sparseflex_bench::allocs::CountingAllocator =
///     sparseflex_bench::allocs::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter bump has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// Total `alloc`/`realloc` calls observed so far (0 unless a
/// [`CountingAllocator`] is installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `f` and return how many heap allocations it performed alongside
/// its result. Reads 0 allocations when no counting allocator is
/// installed — check [`probe_installed`] first when the count gates.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocations();
    let r = f();
    (allocations() - before, r)
}

/// Whether a [`CountingAllocator`] is actually installed: performs one
/// deliberate heap allocation and checks the counter moved.
pub fn probe_installed() -> bool {
    let before = allocations();
    let v: Vec<u8> = Vec::with_capacity(64);
    std::hint::black_box(&v);
    drop(v);
    allocations() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_allocs_is_monotone() {
        // The test harness does not install the counting allocator, so
        // the count must simply never go backwards.
        let (n, _) = count_allocs(|| Vec::<u8>::with_capacity(32));
        let (m, _) = count_allocs(|| ());
        assert!(n >= m);
    }
}

//! Search & calibration exhibit — open-space beam search vs the paper's
//! preset MCF choices, and the online calibration loop's error
//! trajectory.
//!
//! Two claims are measured and pinned here:
//!
//! 1. **Search** — for every Table III workload, exhaustively score the
//!    paper-preset MCF space for its cycle-minimal plan, then run the
//!    open-space beam search ([`Sage::recommend_open_with`]) under the
//!    same cycles objective. The exhibit records the beam's plan
//!    quality, how many candidates it visited, and the size of the
//!    exhaustive open sweep it avoided — on the hyper-sparse workloads
//!    the beam's non-preset composition beats every preset while
//!    visiting < 25 % of the open space.
//! 2. **Calibration** — repeated traffic through plan → execute →
//!    [`recalibrate`](sparseflex_core::Calibrator::recalibrate) rounds,
//!    recording the mean predicted-vs-measured cycle error per round:
//!    round 0 is the uncalibrated analytic model, and the fitted
//!    coefficients strictly tighten it.
//!
//! Rendered as `results/search.csv` and the machine-readable
//! `results/BENCH_search.json` snapshot CI uploads.
//!
//! [`Sage::recommend_open_with`]: sparseflex_sage::Sage::recommend_open_with

use crate::pipeline::bench_system;
use crate::planner::suite_workloads;
use sparseflex_core::{PlanDiscipline, Planner, StoredTrace};
use sparseflex_formats::{DataType, SearchSpace, SparseMatrix};
use sparseflex_sage::eval::ConversionMode;
use sparseflex_sage::{
    acf_stationary_candidates, acf_streaming_candidates, mcf_candidates, BeamConfig, FormatChoice,
    Sage, SageWorkload, SearchObjective,
};
use sparseflex_workloads::synth::random_matrix;

/// One Table III workload's preset-vs-open search comparison.
#[derive(Debug, Clone)]
pub struct SearchRow {
    /// Workload label (`<spec>/<kernel>`).
    pub name: String,
    /// Cycle-minimal total over the exhaustively scored paper-preset
    /// MCF space (6 MCFs per operand).
    pub preset_best_cycles: f64,
    /// The open-space beam search's best total cycles.
    pub open_beam_cycles: f64,
    /// Candidates the beam scored with the full evaluator.
    pub visited: usize,
    /// Candidates an exhaustive open-space sweep would score.
    pub exhaustive: usize,
    /// True when the beam's plan strictly beats every preset choice
    /// (possible only by picking a non-preset composition).
    pub open_wins: bool,
}

impl SearchRow {
    /// Fraction of the exhaustive open space the beam visited.
    pub fn visited_fraction(&self) -> f64 {
        self.visited as f64 / (self.exhaustive as f64).max(1.0)
    }
}

/// One calibration round's error snapshot.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationRound {
    /// Round index (0 = uncalibrated).
    pub round: usize,
    /// Calibration generation the round's plans were made under.
    pub generation: u64,
    /// Mean per-tile relative cycle error across the round's executed
    /// plans ([`PlanTrace::mean_cycle_error`]).
    ///
    /// [`PlanTrace::mean_cycle_error`]: sparseflex_core::PlanTrace::mean_cycle_error
    pub mean_cycle_error: f64,
}

/// The full search-and-calibration measurement.
#[derive(Debug, Clone)]
pub struct SearchMeasurement {
    /// Per-workload preset-vs-open comparison.
    pub rows: Vec<SearchRow>,
    /// Per-round calibration error (round 0 = uncalibrated).
    pub rounds: Vec<CalibrationRound>,
    /// Every executed plan's trace from the calibration rounds — what
    /// `run_all` persists to `results/traces.json` so a later process
    /// can warm-start its calibrator from this traffic.
    pub traces: Vec<StoredTrace>,
}

impl SearchMeasurement {
    /// Workloads where the open beam strictly beat every preset.
    pub fn open_wins(&self) -> usize {
        self.rows.iter().filter(|r| r.open_wins).count()
    }
}

/// Cycle-minimal total over the exhaustive paper-preset MCF space (the
/// baseline the open beam must beat): every McfPaper MCF pair × every
/// legal ACF pair, scored by the same evaluator.
pub fn preset_best_cycles(sage: &Sage, w: &SageWorkload) -> f64 {
    let mcfs = mcf_candidates(SearchSpace::McfPaper);
    let mut best = f64::INFINITY;
    for &mcf_a in &mcfs {
        for &mcf_b in &mcfs {
            for acf_a in acf_streaming_candidates() {
                for acf_b in acf_stationary_candidates() {
                    if !sage.acf_supported(w, acf_a, acf_b) {
                        continue;
                    }
                    let choice = FormatChoice {
                        mcf_a,
                        mcf_b,
                        acf_a,
                        acf_b,
                    };
                    if let Ok(e) = sage.evaluate(w, &choice, ConversionMode::Hardware) {
                        best = best.min(e.total_cycles());
                    }
                }
            }
        }
    }
    best
}

/// Number of calibration rounds the exhibit executes after the
/// uncalibrated baseline round (the acceptance bar is ≥ 3).
pub const CALIBRATION_ROUNDS: usize = 3;

/// Measure the whole exhibit once.
pub fn measure() -> SearchMeasurement {
    let sys = bench_system();

    // ---- Search: preset exhaustive vs open beam, cycles objective.
    let beam_cfg = BeamConfig {
        objective: SearchObjective::Cycles,
        ..BeamConfig::default()
    };
    let rows = suite_workloads()
        .into_iter()
        .map(|(name, w)| {
            let preset = preset_best_cycles(&sys.sage, &w);
            let open = sys.sage.recommend_open_with(&w, &beam_cfg);
            let open_cycles = open.best.total_cycles();
            SearchRow {
                name,
                preset_best_cycles: preset,
                open_beam_cycles: open_cycles,
                visited: open.visited,
                exhaustive: open.exhaustive,
                open_wins: open_cycles < preset,
            }
        })
        .collect();

    // ---- Calibration: repeated traffic over three small shapes, one
    // recalibration per round. Round 0 is the uncalibrated model.
    let planner = Planner::default();
    let shapes = [
        (48usize, 48usize, 40usize, 600usize, 700usize),
        (64, 64, 48, 400, 500),
        (56, 72, 40, 300, 350),
    ];
    let operands: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, k, n, nnz_a, nnz_b))| {
            let a = random_matrix(m, k, nnz_a, 1_000 + i as u64);
            let b = random_matrix(k, n, nnz_b, 2_000 + i as u64);
            let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
            (a, b, w)
        })
        .collect();
    let mut rounds = Vec::with_capacity(CALIBRATION_ROUNDS + 1);
    let mut traces = Vec::new();
    for round in 0..=CALIBRATION_ROUNDS {
        let generation = planner.calibrator.generation();
        let mut err_sum = 0.0;
        for (a, b, w) in &operands {
            let plan = planner
                .plan_job(&sys.sage, a, b, w, PlanDiscipline::Pipelined)
                .expect("calibration shape plans");
            let run = planner
                .execute_plan(&sys.sage, &plan, a, b)
                .expect("calibration shape executes");
            err_sum += run.trace.mean_cycle_error();
            traces.push(StoredTrace {
                dataflow: plan.dataflow,
                trace: run.trace.clone(),
            });
        }
        rounds.push(CalibrationRound {
            round,
            generation,
            mean_cycle_error: err_sum / operands.len() as f64,
        });
        if round < CALIBRATION_ROUNDS {
            planner.calibrator.recalibrate();
        }
    }

    SearchMeasurement {
        rows,
        rounds,
        traces,
    }
}

/// CSV rows (the `results/search.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &SearchMeasurement) -> Vec<String> {
    let mut out = vec![
        "# open-space beam search vs exhaustive presets (cycles objective), \
         then calibration error per round"
            .to_string(),
        "workload,preset_best_cycles,open_beam_cycles,visited,exhaustive,visited_fraction,\
         open_wins"
            .to_string(),
    ];
    for r in &m.rows {
        out.push(format!(
            "{},{:.0},{:.0},{},{},{:.4},{}",
            r.name,
            r.preset_best_cycles,
            r.open_beam_cycles,
            r.visited,
            r.exhaustive,
            r.visited_fraction(),
            r.open_wins
        ));
    }
    out.push("calibration_round,generation,mean_cycle_error".to_string());
    for r in &m.rounds {
        out.push(format!(
            "{},{},{:.6}",
            r.round, r.generation, r.mean_cycle_error
        ));
    }
    out
}

/// The machine-readable perf snapshot (`results/BENCH_search.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &SearchMeasurement) -> String {
    let mut out = String::from("{\n  \"workloads\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"preset_best_cycles\": {:.0}, \
             \"open_beam_cycles\": {:.0}, \"visited\": {}, \"exhaustive\": {}, \
             \"visited_fraction\": {:.4}, \"open_wins\": {}}}{}\n",
            r.name,
            r.preset_best_cycles,
            r.open_beam_cycles,
            r.visited,
            r.exhaustive,
            r.visited_fraction(),
            r.open_wins,
            if i + 1 < m.rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"open_wins\": {},\n  \"calibration\": [\n",
        m.open_wins()
    ));
    for (i, r) in m.rounds.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"round\": {}, \"generation\": {}, \"mean_cycle_error\": {:.6}}}{}\n",
            r.round,
            r.generation,
            r.mean_cycle_error,
            if i + 1 < m.rounds.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_beam_beats_presets_on_a_table_iii_workload_visiting_under_a_quarter() {
        let m = measure();
        assert_eq!(m.rows.len(), 20, "10 matrix specs x 2 kernels");
        // The ISSUE acceptance bar: on at least one Table III workload
        // the open beam strictly beats every paper-preset MCF choice in
        // end-to-end cycles while visiting < 25% of the exhaustive
        // open-space candidates.
        let winning: Vec<_> = m
            .rows
            .iter()
            .filter(|r| r.open_wins && r.visited_fraction() < 0.25)
            .collect();
        assert!(
            !winning.is_empty(),
            "no workload where the open beam wins under the visit budget: {:?}",
            m.rows
        );
        for r in &m.rows {
            assert!(r.visited > 0 && r.visited <= r.exhaustive);
            assert!(
                r.visited_fraction() < 0.25,
                "{} visited {}/{}",
                r.name,
                r.visited,
                r.exhaustive
            );
            assert!(r.preset_best_cycles.is_finite() && r.preset_best_cycles > 0.0);
        }
    }

    #[test]
    fn calibration_strictly_tightens_prediction_error() {
        let m = measure();
        assert_eq!(m.rounds.len(), CALIBRATION_ROUNDS + 1);
        let uncalibrated = m.rounds[0].mean_cycle_error;
        let last = m.rounds.last().unwrap();
        assert_eq!(m.rounds[0].generation, 0);
        assert_eq!(last.generation, CALIBRATION_ROUNDS as u64);
        assert!(
            last.mean_cycle_error < uncalibrated,
            "after {} rounds the error must strictly shrink: {} vs {}",
            CALIBRATION_ROUNDS,
            last.mean_cycle_error,
            uncalibrated
        );
        // The persisted trace set covers every executed plan and
        // survives the JSON round-trip `run_all` performs.
        assert_eq!(m.traces.len(), 3 * (CALIBRATION_ROUNDS + 1));
        let json = sparseflex_core::traces_to_json(&m.traces);
        let back = sparseflex_core::traces_from_json(&json).expect("traces round-trip");
        assert_eq!(back, m.traces);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let json = snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workloads\""));
        assert!(json.contains("\"calibration\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

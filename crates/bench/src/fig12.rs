//! Fig. 12 — cycles / energy / EDP breakdown of SpGEMM on journals,
//! speech2 and m3plates across the Table II accelerator classes.

use sparseflex_core::FlexSystem;
use sparseflex_formats::DataType;
use sparseflex_sage::SageWorkload;
use sparseflex_workloads::{WorkloadShape, WorkloadSpec};

/// Build the SpGEMM workload for a Table III matrix entry (factor
/// operand is K x M/2 at the same density, per §VII-A).
pub fn spgemm_workload(spec: &WorkloadSpec) -> SageWorkload {
    let WorkloadShape::Matrix { rows: m, cols: k } = spec.shape else {
        panic!("{} is not a matrix workload", spec.name)
    };
    let (fr, fc) = spec.factor_dims();
    let nnz_b = ((fr as f64 * fc as f64) * spec.density()).round().max(1.0) as u64;
    SageWorkload::spgemm(m, k, fc, spec.nnz as u64, nnz_b, DataType::Fp32)
}

/// The three Fig. 12 workloads.
pub const FIG12_WORKLOADS: [&str; 3] = ["journals", "speech2", "m3plates"];

/// Breakdown rows.
pub fn rows() -> Vec<String> {
    let sys = FlexSystem::default();
    let mut out = vec![
        "# fig12 SpGEMM breakdown across accelerator classes".to_string(),
        "workload,class,choice,dram_cycles,conv_cycles,compute_cycles,total_cycles,dram_J,conv_J,compute_J,total_J,edp_Js"
            .to_string(),
    ];
    for name in FIG12_WORKLOADS {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let w = spgemm_workload(spec);
        for cmp in sys.compare_classes(&w) {
            match cmp.best {
                Some(e) => out.push(format!(
                    "{name},{},{},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e},{:.3e}",
                    cmp.class_name,
                    e.choice,
                    e.dram_cycles,
                    e.conv_cycles,
                    e.compute_cycles,
                    e.total_cycles(),
                    e.dram_energy,
                    e.conv_energy,
                    e.compute_energy,
                    e.total_energy(),
                    e.edp(sys.sage.accel.clock_hz)
                )),
                None => out.push(format!("{name},{},unsupported,,,,,,,,,", cmp.class_name)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::MatrixFormat;

    #[test]
    fn journals_dense_acf_beats_fix_fix_none2() {
        // Fig. 12a: "journals is relatively dense, so an ACF of
        // Dense(A)-Dense(B) is better than Dense(A)-CSR(B)" — the EIE
        // class must lose to this work on journals.
        let sys = FlexSystem::default();
        let w = spgemm_workload(WorkloadSpec::by_name("journals").unwrap());
        let rows = sys.compare_classes(&w);
        let ours = rows
            .iter()
            .find(|c| c.class_name == "Flex_Flex_HW")
            .and_then(|c| c.best.clone())
            .unwrap();
        let eie = rows
            .iter()
            .find(|c| c.class_name == "Fix_Fix_None2")
            .and_then(|c| c.best.clone())
            .unwrap();
        let clock = sys.sage.accel.clock_hz;
        assert!(ours.edp(clock) < eie.edp(clock));
        // And our choice computes B densely.
        assert_eq!(ours.choice.acf_b, MatrixFormat::Dense, "{}", ours.choice);
    }

    #[test]
    fn m3plates_sparse_acf_wins() {
        // Fig. 12c: "since m3plates is extremely sparse, any ACF with
        // dense format will lead to poor compute efficiency."
        let sys = FlexSystem::default();
        let w = spgemm_workload(WorkloadSpec::by_name("m3plates").unwrap());
        let ours = sys.plan(&w).evaluation;
        assert_ne!(ours.choice.acf_a, MatrixFormat::Dense, "{}", ours.choice);
        assert_ne!(ours.choice.acf_b, MatrixFormat::Dense, "{}", ours.choice);
    }
}

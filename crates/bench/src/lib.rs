//! # sparseflex-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§VII). Each `fig*` / `table*` module exposes a
//! `rows()` function returning the CSV series the paper plots; the
//! binaries in `src/bin` print them, and `run_all` writes the complete
//! set to `results/`.
//!
//! | module | paper exhibit |
//! |---|---|
//! | [`fig04`] | Fig. 4 — MCF compactness vs density / dims / datatype |
//! | [`fig05`] | Fig. 5 — GPU MM algorithms across density regions |
//! | [`fig06`] | Fig. 6 — ACF walkthrough cycle counts |
//! | [`fig07`] | Fig. 7b — extended-PE area overhead |
//! | [`fig09`] | Fig. 9 — prefix-sum design space |
//! | [`fig10`] | Fig. 10 — conversion time/energy: MKL vs cuSPARSE vs MINT |
//! | [`fig11`] | Fig. 11 — GPU transfer-to-compute ratios |
//! | [`fig12`] | Fig. 12 — per-workload cycles/energy/EDP breakdowns |
//! | [`fig13`] | Fig. 13 — normalized EDP vs accelerator classes |
//! | [`fig14`] | Fig. 14 — ResNet pruning case study |
//! | [`table1`] | Table I — MCF/ACF taxonomy |
//! | [`table2`] | Table II — evaluated accelerator configs |
//! | [`table3`] | Table III — workloads + SAGE format selections |
//! | [`pipeline`] | tile-grained runtime — overlapped vs serial vs batched |
//! | [`serving`] | serving layer — multi-tenant throughput + plan-cache sharding |
//! | [`kernels`] | streaming kernels — zero-alloc steady state + stream overhead budget |
//! | [`parallel`] | data-parallel kernels — sequential/parallel bit-identity + ranged-arena allocs |

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod allocs;
pub mod fig04;
pub mod fig05;
pub mod fig05_measured;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod kernels;
pub mod parallel;
pub mod pipeline;
pub mod planner;
pub mod search;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;

/// Print rows to stdout (the shared binary body).
pub fn emit(rows: &[String]) {
    for r in rows {
        println!("{r}");
    }
}

//! Fig. 11 — transfer-to-compute ratio of host-offloaded conversions per
//! Table III workload.

use sparseflex_formats::size_model::matrix_storage_bytes;
use sparseflex_formats::{DataType, MatrixFormat};
use sparseflex_host::device::{conversion_time, DeviceModel};
use sparseflex_host::offload::{geomean, OffloadModel};
use sparseflex_workloads::{WorkloadShape, TABLE_III};

/// Per-workload transfer ratio rows plus the geomean summary.
pub fn rows() -> Vec<String> {
    let pcie = OffloadModel::pcie3_x16();
    let gpu = DeviceModel::titan_rtx();
    let mut out = vec![
        "# fig11 GPU offload: transfer vs compute for CSR->CSC conversion".to_string(),
        "workload,h2d_s,compute_s,d2h_s,transfer_ratio".to_string(),
    ];
    let mut ratios = Vec::new();
    for w in TABLE_III.iter() {
        let WorkloadShape::Matrix { rows: m, cols: k } = w.shape else {
            continue;
        };
        let bytes = matrix_storage_bytes(&MatrixFormat::Csr, m, k, w.nnz, DataType::Fp32) as f64;
        let compute = conversion_time(&gpu, w.nnz as u64, 3.0, 12.0);
        let b = pcie.offload(bytes, bytes, compute);
        ratios.push(b.transfer_ratio());
        out.push(format!(
            "{},{:.4e},{:.4e},{:.4e},{:.3}",
            w.name,
            b.h2d_s,
            b.compute_s,
            b.d2h_s,
            b.transfer_ratio()
        ));
    }
    out.push(format!("geomean,,,,{:.3}", geomean(&ratios)));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn geomean_in_paper_band() {
        // Paper: transfers are "up to 75% of the total time" with "a
        // geomean of roughly 50%".
        let rows = super::rows();
        let geo: f64 = rows
            .last()
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (0.3..0.95).contains(&geo),
            "geomean {geo} outside plausible band"
        );
        let max: f64 = rows[2..rows.len() - 1]
            .iter()
            .map(|l| l.split(',').next_back().unwrap().parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            max > 0.5,
            "max ratio {max} should show transfer dominance somewhere"
        );
    }
}

//! Table II — the evaluated accelerator configurations.

use sparseflex_accel::taxonomy::AcceleratorClass;
use sparseflex_accel::AccelConfig;

/// Configuration rows (shared hardware + per-class format support).
pub fn rows() -> Vec<String> {
    let cfg = AccelConfig::paper();
    let mut out = vec![
        format!(
            "# table2 shared hardware: {} MACs, {}B/PE buffer, {}-bit bus, fp32",
            cfg.total_macs(),
            cfg.pe_buffer_bytes(),
            cfg.bus_bits()
        ),
        "type,example,num_mcf_pairs,num_acf_pairs".to_string(),
    ];
    for c in AcceleratorClass::table2_suite() {
        out.push(format!(
            "{},{},{},{}",
            c.name,
            c.example,
            c.mcfs.len(),
            c.acfs.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn hardware_matches_section_7a() {
        let rows = super::rows();
        assert!(rows[0].contains("16384 MACs"));
        assert!(rows[0].contains("512B/PE"));
        assert!(rows[0].contains("512-bit bus"));
    }
}

//! Streaming-kernel exhibit — the measured stream-vs-fast-path overhead
//! and the zero-alloc steady-state evidence for the arena-backed
//! traversals.
//!
//! Three measurement families, all on pinned-seed synthetic operands so
//! the exhibit is reproducible run to run:
//!
//! - **Allocation points** — per compression format, heap allocations
//!   during the *warm-up* traversal (the arena growing to the format's
//!   high-water mark) vs the *steady-state* traversal (same arena,
//!   second pass). The tentpole claim is steady = 0 for every format
//!   that needs scratch (CSC/BSR/ELL/DIA/RLC/ZVC/Custom), which
//!   [`enforce`] gates. Counts read 0 unless the measuring binary
//!   installs [`crate::allocs::CountingAllocator`]; `counting_installed`
//!   records which case the snapshot was taken under.
//! - **Overhead points** — median wall-clock of the format-generic
//!   stream path over the tuned fast path for the same CSR operand
//!   (SpMV and SpMM), gated against [`STREAM_OVERHEAD_BUDGET`]. ZVC
//!   rows ride along uninspected: they price running a hub-only format
//!   directly, not wrapper overhead.
//! - **SpGEMM dataflow points** — Gustavson vs row-wise wall-clock on a
//!   moderate and a hyper-sparse/wide operand pair, plus which dataflow
//!   [`sparseflex_sage::choose_spgemm_algo`] picks for each. Untimed
//!   correctness (bit-identical outputs) is asserted during measurement.

use crate::allocs;
use sparseflex_formats::{CsrMatrix, DenseMatrix, MatrixData, MatrixFormat, StreamArena};
use sparseflex_kernels::{
    spgemm, spgemm_rowwise, spmm, spmm_via_stream_in, spmv, spmv_via_stream_in, SpgemmAlgo,
};
use sparseflex_sage::choose_spgemm_algo;
use sparseflex_sage::SageWorkload;
use std::time::Instant;

/// Operand side for the exhibit matrices.
const N: usize = 256;
/// Dense-operand width (SpMM B columns).
const DENSE_COLS: usize = 32;
/// Nonzeros in the sparse operands (~1.5% dense).
const NNZ: usize = 1_000;
/// Timing repetitions (median taken).
const REPS: usize = 9;

/// Steady-state traversal allocations allowed per format: none. The
/// arena's warm-up pass grows every buffer to its high-water mark; after
/// that the stream must not touch the heap.
pub const STEADY_ALLOC_BUDGET: u64 = 0;

/// Maximum allowed `stream_ns / fast_ns` ratio for the gated kernels.
/// Locally the CSR stream path measures within ~1.3x of the tuned row
/// loop (same inner routines, one dispatch layer); 3x leaves generous
/// headroom for noisy shared CI runners while still catching a
/// regression that re-introduces per-fiber allocation or copying.
pub const STREAM_OVERHEAD_BUDGET: f64 = 3.0;

/// Heap-allocation counts for one format's arena-backed traversal.
#[derive(Debug, Clone)]
pub struct AllocPoint {
    /// Format label.
    pub format: String,
    /// Allocations during the first (arena-warming) traversal.
    pub warmup_allocs: u64,
    /// Allocations during the second traversal over the same arena.
    pub steady_allocs: u64,
    /// Whether [`enforce`] holds this point to [`STEADY_ALLOC_BUDGET`].
    pub gated: bool,
}

/// Fast-path vs stream-path wall-clock for one kernel.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Kernel + operand label.
    pub kernel: &'static str,
    /// Median ns of the tuned fast path.
    pub fast_ns: u64,
    /// Median ns of the format-generic stream path (warm arena).
    pub stream_ns: u64,
    /// Whether [`enforce`] holds this ratio to [`STREAM_OVERHEAD_BUDGET`].
    pub gated: bool,
}

impl OverheadPoint {
    /// Stream-over-fast wall-clock ratio.
    pub fn ratio(&self) -> f64 {
        self.stream_ns as f64 / self.fast_ns.max(1) as f64
    }
}

/// Gustavson vs row-wise wall-clock for one operand pair.
#[derive(Debug, Clone)]
pub struct SpgemmPoint {
    /// Operand-pair label.
    pub name: &'static str,
    /// Median ns of Gustavson.
    pub gustavson_ns: u64,
    /// Median ns of the row-wise merge product.
    pub rowwise_ns: u64,
    /// Which dataflow SAGE's pricing picks for this shape.
    pub sage_choice: SpgemmAlgo,
}

/// One full measurement of the exhibit.
#[derive(Debug, Clone)]
pub struct KernelsMeasurement {
    /// Per-format traversal allocation counts.
    pub alloc_points: Vec<AllocPoint>,
    /// Fast-vs-stream wall-clock points.
    pub overhead_points: Vec<OverheadPoint>,
    /// SpGEMM dataflow wall-clock points.
    pub spgemm_points: Vec<SpgemmPoint>,
    /// Whether a counting allocator was installed when measuring (alloc
    /// counts are all 0 otherwise and the alloc gate is vacuous).
    pub counting_installed: bool,
}

/// A gate violation found by [`enforce`].
#[derive(Debug, Clone)]
pub struct Violation(pub String);

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time `f` [`REPS`] times (after one untimed warm-up call) and return
/// the median duration in nanoseconds.
fn time_median<R>(mut f: impl FnMut() -> R) -> u64 {
    std::hint::black_box(f());
    let samples = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    median_ns(samples)
}

/// The formats whose arena-backed traversal the exhibit counts. All are
/// gated except the zero-copy ones (kept as evidence they stay at 0 on
/// both passes for free).
fn alloc_formats() -> Vec<(String, MatrixFormat, bool)> {
    vec![
        ("csr".into(), MatrixFormat::Csr, false),
        ("coo".into(), MatrixFormat::Coo, false),
        ("csc".into(), MatrixFormat::Csc, true),
        ("bsr2x2".into(), MatrixFormat::Bsr { br: 2, bc: 2 }, true),
        ("ell".into(), MatrixFormat::Ell, true),
        ("dia".into(), MatrixFormat::Dia, true),
        ("rlc4".into(), MatrixFormat::Rlc { run_bits: 4 }, true),
        ("zvc".into(), MatrixFormat::Zvc, true),
    ]
}

fn exhibit_coo(seed: u64) -> sparseflex_formats::CooMatrix {
    sparseflex_workloads::synth::random_matrix(N, N, NNZ, seed)
}

/// Fold a traversal into a checksum so the stream cannot be optimized
/// away; allocation-free by construction.
fn traverse_checksum(data: &MatrixData, arena: &mut StreamArena) -> f64 {
    let mut checksum = 0.0f64;
    data.row_stream()
        .for_each_fiber_in(arena, &mut |r, cols, vals| {
            checksum += (r + cols.len()) as f64;
            for &v in vals {
                checksum += v;
            }
        });
    checksum
}

/// Measure the per-format allocation points.
pub fn measure_allocs() -> Vec<AllocPoint> {
    let coo = exhibit_coo(11);
    let mut out = Vec::new();
    for (label, fmt, gated) in alloc_formats() {
        let data = MatrixData::encode(&coo, &fmt).expect("exhibit operand encodes");
        let mut arena = StreamArena::new();
        let (warmup_allocs, w) = allocs::count_allocs(|| traverse_checksum(&data, &mut arena));
        let (steady_allocs, s) = allocs::count_allocs(|| traverse_checksum(&data, &mut arena));
        assert_eq!(w, s, "{label}: warm and steady traversals must agree");
        std::hint::black_box(s);
        out.push(AllocPoint {
            format: label,
            warmup_allocs,
            steady_allocs,
            gated,
        });
    }
    // The CSR-materialization consumer: after one warm-up
    // build-and-recycle cycle, rebuilding a CSR from the stream reuses
    // the recycled triple and the arena scratch — zero allocations.
    let csc = MatrixData::encode(&coo, &MatrixFormat::Csc).expect("CSC encodes");
    let mut arena = StreamArena::new();
    let warm = sparseflex_formats::csr_from_stream_in(&mut arena, N, N, csc.row_stream());
    arena.recycle_csr(warm);
    let (warmup_allocs, c) = allocs::count_allocs(|| {
        let c = sparseflex_formats::csr_from_stream_in(&mut arena, N, N, csc.row_stream());
        arena.recycle_csr(c);
    });
    let (steady_allocs, _) = allocs::count_allocs(|| {
        let c = sparseflex_formats::csr_from_stream_in(&mut arena, N, N, csc.row_stream());
        arena.recycle_csr(c);
    });
    std::hint::black_box(c);
    out.push(AllocPoint {
        format: "csr_from_stream+recycle".into(),
        warmup_allocs,
        steady_allocs,
        gated: true,
    });
    out
}

/// Measure the fast-vs-stream overhead points.
pub fn measure_overhead() -> Vec<OverheadPoint> {
    let coo = exhibit_coo(13);
    let a_csr = MatrixData::Csr(CsrMatrix::from_coo(&coo));
    let a_zvc = MatrixData::encode(&coo, &MatrixFormat::Zvc).expect("ZVC encodes");
    let x: Vec<f64> = (0..N).map(|i| (i % 13) as f64 - 6.0).collect();
    let b: DenseMatrix = sparseflex_workloads::synth::random_dense_matrix(N, DENSE_COLS, 17);
    let mut arena = StreamArena::new();
    let mut out = Vec::new();

    let fast = time_median(|| spmv(&a_csr, &x).expect("shapes agree"));
    let stream = time_median(|| spmv_via_stream_in(&mut arena, &a_csr, &x).expect("shapes agree"));
    out.push(OverheadPoint {
        kernel: "spmv_csr",
        fast_ns: fast,
        stream_ns: stream,
        gated: true,
    });
    let zvc = time_median(|| spmv_via_stream_in(&mut arena, &a_zvc, &x).expect("shapes agree"));
    out.push(OverheadPoint {
        kernel: "spmv_zvc_vs_csr_fast",
        fast_ns: fast,
        stream_ns: zvc,
        gated: false,
    });

    let fast = time_median(|| spmm(&a_csr, &b).expect("shapes agree"));
    let stream = time_median(|| spmm_via_stream_in(&mut arena, &a_csr, &b).expect("shapes agree"));
    out.push(OverheadPoint {
        kernel: "spmm_csr",
        fast_ns: fast,
        stream_ns: stream,
        gated: true,
    });
    let zvc = time_median(|| spmm_via_stream_in(&mut arena, &a_zvc, &b).expect("shapes agree"));
    out.push(OverheadPoint {
        kernel: "spmm_zvc_vs_csr_fast",
        fast_ns: fast,
        stream_ns: zvc,
        gated: false,
    });
    out
}

/// Measure the SpGEMM dataflow points (and assert bit-identity while
/// the operands are at hand).
pub fn measure_spgemm() -> Vec<SpgemmPoint> {
    // (name, m, k, n, nnz_a, nnz_b, seed)
    let shapes = [
        ("moderate_256", N, N, N, 10_000, 10_000, 19u64),
        ("hypersparse_wide", 512, 512, 8_192, 1_500, 24_000, 23u64),
    ];
    shapes
        .iter()
        .map(|&(name, m, k, n, nnz_a, nnz_b, seed)| {
            let a = MatrixData::Csr(CsrMatrix::from_coo(
                &sparseflex_workloads::synth::random_matrix(m, k, nnz_a, seed),
            ));
            let b = MatrixData::Csr(CsrMatrix::from_coo(
                &sparseflex_workloads::synth::random_matrix(k, n, nnz_b, seed + 1),
            ));
            let g = spgemm(&a, &b).expect("shapes agree");
            let r = spgemm_rowwise(&a, &b).expect("shapes agree");
            assert_eq!(g, r, "{name}: dataflows must be bit-identical");
            let w = SageWorkload::spgemm(
                m,
                k,
                n,
                nnz_a as u64,
                nnz_b as u64,
                sparseflex_formats::DataType::Fp32,
            );
            SpgemmPoint {
                name,
                gustavson_ns: time_median(|| spgemm(&a, &b).expect("shapes agree")),
                rowwise_ns: time_median(|| spgemm_rowwise(&a, &b).expect("shapes agree")),
                sage_choice: choose_spgemm_algo(&w),
            }
        })
        .collect()
}

/// Measure the whole exhibit once.
pub fn measure() -> KernelsMeasurement {
    KernelsMeasurement {
        alloc_points: measure_allocs(),
        overhead_points: measure_overhead(),
        spgemm_points: measure_spgemm(),
        counting_installed: allocs::probe_installed(),
    }
}

/// Apply the committed budgets to a measurement; empty = gate passes.
///
/// The allocation gate only binds when the measuring process installed
/// the counting allocator (otherwise every count reads 0 and the check
/// is vacuous — `kernels_gate` refuses to run in that state).
pub fn enforce(m: &KernelsMeasurement) -> Vec<Violation> {
    let mut v = Vec::new();
    if m.counting_installed {
        for p in &m.alloc_points {
            if p.gated && p.steady_allocs > STEADY_ALLOC_BUDGET {
                v.push(Violation(format!(
                    "{}: {} steady-state allocations (budget {})",
                    p.format, p.steady_allocs, STEADY_ALLOC_BUDGET
                )));
            }
        }
    }
    for p in &m.overhead_points {
        if p.gated && p.ratio() > STREAM_OVERHEAD_BUDGET {
            v.push(Violation(format!(
                "{}: stream/fast ratio {:.2} (budget {:.2}; fast {} ns, stream {} ns)",
                p.kernel,
                p.ratio(),
                STREAM_OVERHEAD_BUDGET,
                p.fast_ns,
                p.stream_ns
            )));
        }
    }
    v
}

/// CSV rows (the `results/kernels.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &KernelsMeasurement) -> Vec<String> {
    let mut out = vec![
        format!(
            "# arena-backed traversal allocations (counting allocator installed: {})",
            m.counting_installed
        ),
        "format,warmup_allocs,steady_allocs,gated".to_string(),
    ];
    for p in &m.alloc_points {
        out.push(format!(
            "{},{},{},{}",
            p.format, p.warmup_allocs, p.steady_allocs, p.gated
        ));
    }
    out.push(String::new());
    out.push("# stream path vs fast path (median ns)".to_string());
    out.push("kernel,fast_ns,stream_ns,ratio,gated".to_string());
    for p in &m.overhead_points {
        out.push(format!(
            "{},{},{},{:.3},{}",
            p.kernel,
            p.fast_ns,
            p.stream_ns,
            p.ratio(),
            p.gated
        ));
    }
    out.push(String::new());
    out.push("# spgemm dataflows (median ns) + SAGE pricing choice".to_string());
    out.push("workload,gustavson_ns,rowwise_ns,sage_choice".to_string());
    for p in &m.spgemm_points {
        out.push(format!(
            "{},{},{},{:?}",
            p.name, p.gustavson_ns, p.rowwise_ns, p.sage_choice
        ));
    }
    out
}

/// The machine-readable perf snapshot (`results/BENCH_kernels.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &KernelsMeasurement) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"counting_installed\": {},\n  \"steady_alloc_budget\": {},\n  \
         \"stream_overhead_budget\": {:.2},\n",
        m.counting_installed, STEADY_ALLOC_BUDGET, STREAM_OVERHEAD_BUDGET
    ));
    json.push_str("  \"alloc_points\": [\n");
    for (i, p) in m.alloc_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"warmup_allocs\": {}, \"steady_allocs\": {}, \
             \"gated\": {}}}{}\n",
            p.format,
            p.warmup_allocs,
            p.steady_allocs,
            p.gated,
            if i + 1 < m.alloc_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n  \"overhead_points\": [\n");
    for (i, p) in m.overhead_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"fast_ns\": {}, \"stream_ns\": {}, \
             \"ratio\": {:.4}, \"gated\": {}}}{}\n",
            p.kernel,
            p.fast_ns,
            p.stream_ns,
            p.ratio(),
            p.gated,
            if i + 1 < m.overhead_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n  \"spgemm_points\": [\n");
    for (i, p) in m.spgemm_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"gustavson_ns\": {}, \"rowwise_ns\": {}, \
             \"sage_choice\": \"{:?}\"}}{}\n",
            p.name,
            p.gustavson_ns,
            p.rowwise_ns,
            p.sage_choice,
            if i + 1 < m.spgemm_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_measures_and_renders() {
        let m = measure();
        assert_eq!(m.alloc_points.len(), alloc_formats().len() + 1);
        assert!(m.overhead_points.iter().any(|p| p.kernel == "spmv_csr"));
        assert_eq!(m.spgemm_points.len(), 2);
        // The test harness installs no counting allocator, so every
        // count must read 0 and the snapshot must say so.
        assert!(!m.counting_installed);
        for p in &m.alloc_points {
            assert_eq!(p.warmup_allocs, 0, "{}", p.format);
            assert_eq!(p.steady_allocs, 0, "{}", p.format);
        }
        let json = json_from(&m);
        assert!(json.contains("\"counting_installed\": false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rows = rows_from(&m);
        assert!(rows.iter().any(|r| r.starts_with("csc,")));
    }

    #[test]
    fn sage_prices_the_exhibit_shapes_apart() {
        let m = measure_spgemm();
        let by_name = |n: &str| {
            m.iter()
                .find(|p| p.name == n)
                .unwrap_or_else(|| panic!("{n} measured"))
        };
        assert_eq!(by_name("moderate_256").sage_choice, SpgemmAlgo::Gustavson);
        assert_eq!(by_name("hypersparse_wide").sage_choice, SpgemmAlgo::RowWise);
    }

    #[test]
    fn enforce_flags_synthetic_violations() {
        let m = KernelsMeasurement {
            alloc_points: vec![AllocPoint {
                format: "fake".into(),
                warmup_allocs: 9,
                steady_allocs: 3,
                gated: true,
            }],
            overhead_points: vec![OverheadPoint {
                kernel: "fake_kernel",
                fast_ns: 100,
                stream_ns: 100_000,
                gated: true,
            }],
            spgemm_points: vec![],
            counting_installed: true,
        };
        let v = enforce(&m);
        assert_eq!(v.len(), 2);
        assert!(v[0].0.contains("fake"));
        assert!(v[1].0.contains("ratio"));
    }
}

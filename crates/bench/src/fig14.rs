//! Fig. 14 — the ResNet-50/CIFAR-10 pruning case study: per-layer EDP
//! under three pruning strategies, and the average EDP of this work
//! against every baseline class.

use sparseflex_core::{layer_edp, FlexSystem};
use sparseflex_host::offload::geomean;
use sparseflex_workloads::{PruningStrategy, RESNET_LAYERS};
use std::collections::BTreeMap;

/// Batch size of the §VII-D evaluation.
pub const BATCH: usize = 64;

/// Per-layer, per-strategy EDP rows plus baseline averages.
pub fn rows() -> Vec<String> {
    let sys = FlexSystem::default();
    let mut out = vec![
        format!("# fig14 ResNet-50/CIFAR-10 case study, batch {BATCH}"),
        "strategy,layer,M,K,N,this_work_edp_Js".to_string(),
    ];
    let mut class_ratios: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for strategy in PruningStrategy::all() {
        for layer in &RESNET_LAYERS {
            let r = layer_edp(
                &sys,
                layer.id,
                layer.gemm_dims(BATCH),
                layer.act_density(strategy),
                layer.weight_density(strategy),
            );
            let (m, k, n) = r.gemm_dims;
            out.push(format!(
                "{},{},{m},{k},{n},{:.4e}",
                strategy.name(),
                layer.id,
                r.this_work
            ));
            for (class, edp) in &r.baselines {
                if let Some(e) = edp {
                    class_ratios.entry(class).or_default().push(e / r.this_work);
                }
            }
        }
    }
    out.push(String::new());
    out.push(
        "# fig14c: baseline EDP relative to this work (geomean over layers & strategies)"
            .to_string(),
    );
    out.push("class,edp_vs_this_work".to_string());
    for (class, vals) in class_ratios {
        out.push(format!("{class},{:.3}", geomean(&vals)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_average_materially_worse() {
        // Fig. 14c: "we observe on average ~70% EDP reduction across all
        // baselines" — i.e. baselines sit well above 1x our EDP.
        let rows = rows();
        let start = rows.iter().position(|r| r.starts_with("class,")).unwrap();
        let mut worse = 0;
        let mut total = 0;
        for line in &rows[start + 1..] {
            let ratio: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!(ratio >= 0.999, "baseline beat us: {line}");
            total += 1;
            if ratio > 1.2 {
                worse += 1;
            }
        }
        assert!(
            worse * 2 >= total,
            "only {worse}/{total} baselines >20% worse"
        );
    }
}

//! Fig. 4 — relative DRAM-transfer energy of each MCF vs density,
//! dimensions, and datatype (normalized to CSR).

use sparseflex_accel::DramModel;
use sparseflex_formats::size_model::matrix_storage_bits;
use sparseflex_formats::{DataType, MatrixFormat};

/// The format set of Fig. 4a's legend.
fn formats() -> [MatrixFormat; 6] {
    [
        MatrixFormat::Dense,
        MatrixFormat::Rlc { run_bits: 4 },
        MatrixFormat::Zvc,
        MatrixFormat::Coo,
        MatrixFormat::Csr,
        MatrixFormat::Csc,
    ]
}

/// Fig. 4a: 11k x 11k matrix, density sweep 1e-8..1, per datatype.
/// Values are energy normalized to CSR at the same density.
pub fn part_a(dtype: DataType) -> Vec<String> {
    let dram = DramModel::paper();
    let (m, k) = (11_000usize, 11_000usize);
    let mut rows = vec![format!(
        "# fig4a dtype={dtype} matrix=11kx11k; energy normalized to CSR"
    )];
    let header: Vec<String> = formats().iter().map(|f| f.to_string()).collect();
    rows.push(format!("density,{}", header.join(",")));
    for i in 0..=32 {
        let dens = 10f64.powf(-8.0 + 8.0 * i as f64 / 32.0);
        let nnz = ((m as f64 * k as f64) * dens).round().max(1.0) as usize;
        let csr_e = dram.transfer_energy(matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, dtype));
        let cells: Vec<String> = formats()
            .iter()
            .map(|f| {
                let e = dram.transfer_energy(matrix_storage_bits(f, m, k, nnz, dtype));
                format!("{:.4}", e / csr_e)
            })
            .collect();
        rows.push(format!("{dens:.3e},{}", cells.join(",")));
    }
    rows
}

/// Fig. 4b: extremely sparse matrices, 16-bit elements, M = 1k, K sweep.
pub fn part_b(density: f64) -> Vec<String> {
    let dram = DramModel::paper();
    let dtype = DataType::Int16;
    let m = 1_000usize;
    let mut rows = vec![format!(
        "# fig4b dtype=int16 M=1k density={density}; energy normalized to CSR"
    )];
    let header: Vec<String> = formats().iter().map(|f| f.to_string()).collect();
    rows.push(format!("K,{}", header.join(",")));
    for k in [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000] {
        let nnz = ((m as f64 * k as f64) * density).round().max(1.0) as usize;
        let csr_e = dram.transfer_energy(matrix_storage_bits(&MatrixFormat::Csr, m, k, nnz, dtype));
        let cells: Vec<String> = formats()
            .iter()
            .map(|f| {
                let e = dram.transfer_energy(matrix_storage_bits(f, m, k, nnz, dtype));
                format!("{:.4}", e / csr_e)
            })
            .collect();
        rows.push(format!("{k},{}", cells.join(",")));
    }
    rows
}

/// All Fig. 4 series.
pub fn rows() -> Vec<String> {
    let mut out = Vec::new();
    for dtype in [DataType::Fp32, DataType::Int8] {
        out.extend(part_a(dtype));
        out.push(String::new());
    }
    for dens in [1e-5, 1e-2] {
        out.extend(part_b(dens));
        out.push(String::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(rows: &[String], header_contains: &str, line: usize) -> f64 {
        let hdr: Vec<&str> = rows[1].split(',').collect();
        let idx = hdr
            .iter()
            .position(|h| h.contains(header_contains))
            .unwrap();
        rows[line + 2].split(',').nth(idx).unwrap().parse().unwrap()
    }

    #[test]
    fn coo_below_csr_at_extreme_sparsity() {
        let rows = part_a(DataType::Fp32);
        // First density point (1e-8): COO must be < 1 (cheaper than CSR).
        assert!(col(&rows, "COO", 0) < 1.0);
        // Dense must be astronomically worse.
        assert!(col(&rows, "Dense", 0) > 100.0);
    }

    #[test]
    fn dense_at_or_below_csr_at_full_density() {
        let rows = part_a(DataType::Fp32);
        let last = rows.len() - 3; // last data line index into col()
        assert!(col(&rows, "Dense", last) <= 1.0);
    }

    #[test]
    fn rows_are_rectangular_csv() {
        let rows = rows();
        for r in rows.iter().filter(|r| !r.is_empty() && !r.starts_with('#')) {
            assert_eq!(r.split(',').count(), 7, "bad row: {r}");
        }
    }
}

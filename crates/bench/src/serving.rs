//! Serving exhibit — sustained multi-tenant throughput through
//! [`FlexService`] and the plan-cache sharding story.
//!
//! Two halves, rendered into `results/serving.csv` and the
//! `results/BENCH_serving.json` snapshot CI uploads:
//!
//! 1. **Measured throughput**: a fixed mixed-tenant job stream is pushed
//!    through the wire format into a service at 1/2/4/8 workers;
//!    jobs/sec and p50/p95/p99 completion latency are wall-clock
//!    measurements (informational — CI machines differ, so tests only
//!    assert they are positive and ordered).
//! 2. **Contention**: lock contention on the plan cache under 8
//!    workers, twice. The *measured* numbers hammer a single-lock and a
//!    sharded cache with real threads and report contended lock
//!    acquisitions. Because wall-clock contention on an arbitrary CI
//!    box is noise, the *modeled* numbers replay the same key stream —
//!    mapped to shards by the planner's true key→shard function
//!    ([`Planner::cache_shard`]) — through a deterministic lock-service
//!    model (each lookup holds its shard for a fixed critical section;
//!    a worker stalls while its shard is busy). The model is exact
//!    arithmetic, so "sharding removes the single-lock stall" is a
//!    reproducible claim: the snapshot records single-lock vs sharded
//!    stall cycles at 8 workers, and the test asserts sharded < single.

use crate::pipeline::bench_system;
use crate::planner::suite_workloads;
use sparseflex_core::{PlanCache, Planner, StoredTrace};
use sparseflex_formats::{DataType, MatrixData, MatrixFormat};
use sparseflex_serve::{wire, FlexService, JobTicket, Priority, ServeConfig, WireJob};
use sparseflex_workloads::synth::random_matrix;
use std::time::Instant;

/// Worker-pool sizes the throughput sweep covers.
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Cache shards the sharded configurations use.
pub const CACHE_SHARDS: usize = 8;

/// Cycles one cache lookup holds its shard lock in the deterministic
/// contention model.
pub const LOOKUP_SERVICE_CYCLES: u64 = 10;

/// Throughput and latency at one worker-pool size.
#[derive(Debug, Clone)]
pub struct WorkerPoint {
    /// Worker threads (virtual accelerator instances).
    pub workers: usize,
    /// Jobs completed per wall-clock second (measured).
    pub jobs_per_sec: f64,
    /// Median submit→completion latency, milliseconds (measured).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds (measured).
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds (measured).
    pub p99_ms: f64,
    /// Plan-cache hits during the stream.
    pub cache_hits: u64,
    /// Plan-cache misses during the stream.
    pub cache_misses: u64,
    /// Jobs executed by a worker that stole them from a sibling.
    pub stolen: u64,
}

/// The 8-worker cache-contention comparison, measured and modeled.
#[derive(Debug, Clone)]
pub struct ContentionComparison {
    /// Concurrent lookup threads / modeled workers.
    pub workers: usize,
    /// Lookups issued per thread in the measured hammer and per worker
    /// in the model.
    pub lookups_per_worker: usize,
    /// Shards of the sharded configuration.
    pub shards: usize,
    /// Contended lock acquisitions measured on the single-lock cache
    /// (real threads; informational — scheduler-dependent).
    pub measured_single_contended: u64,
    /// Contended lock acquisitions measured on the sharded cache.
    pub measured_sharded_contended: u64,
    /// Deterministic modeled stall cycles with one lock at 8 workers.
    pub modeled_single_stall_cycles: u64,
    /// Deterministic modeled stall cycles with the sharded cache.
    pub modeled_sharded_stall_cycles: u64,
}

/// One full measurement of the serving exhibit.
#[derive(Debug, Clone)]
pub struct ServingMeasurement {
    /// Jobs in the stream each worker-pool size serves.
    pub job_count: usize,
    /// Distinct tenants submitting.
    pub tenants: usize,
    /// Distinct workload shapes (the plan cache's working set).
    pub shapes: usize,
    /// Traces replayed into the calibrator before traffic (0 without
    /// `--warm-start`).
    pub warm_traces: usize,
    /// The throughput sweep over [`WORKER_SWEEP`].
    pub throughput: Vec<WorkerPoint>,
    /// The 8-worker single-lock vs sharded comparison.
    pub contention: ContentionComparison,
}

/// The mixed-tenant job stream: `count` jobs cycling over a small set
/// of shapes (so the plan cache sees repeats), three tenants with
/// different weights, and a mix of priorities — submitted as wire
/// frames.
fn job_stream(count: usize) -> Vec<Vec<u8>> {
    let shapes = [
        (16usize, 20usize, 12usize, 80usize, 70usize),
        (24, 16, 20, 90, 95),
        (12, 28, 16, 70, 110),
        (20, 20, 20, 120, 120),
        (28, 12, 24, 100, 60),
        (16, 16, 28, 60, 85),
    ];
    (0..count)
        .map(|i| {
            let (m, k, n, nnz_a, nnz_b) = shapes[i % shapes.len()];
            let a = random_matrix(m, k, nnz_a, 1_000 + (i % shapes.len()) as u64);
            let b = random_matrix(k, n, nnz_b, 2_000 + (i % shapes.len()) as u64);
            let job = WireJob {
                tenant: (i % 3) as u32 + 1,
                priority: match i % 5 {
                    0 => Priority::High,
                    4 => Priority::Low,
                    _ => Priority::Normal,
                },
                dtype: DataType::Fp32,
                a: MatrixData::encode(&a, &MatrixFormat::Csr).expect("encode A"),
                b: MatrixData::encode(&b, &MatrixFormat::Coo).expect("encode B"),
            };
            wire::encode_job(&job).expect("encode job frame")
        })
        .collect()
}

/// Serve the stream once at the given pool size and measure it.
fn serve_once(frames: &[Vec<u8>], workers: usize, warm: Option<&[StoredTrace]>) -> WorkerPoint {
    let service = FlexService::start(
        bench_system(),
        ServeConfig {
            workers,
            queue_capacity: frames.len() + 16,
            tenant_inflight_cap: frames.len() + 16,
            cache_shards: CACHE_SHARDS,
            dispatch_batch: 4,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    if let Some(traces) = warm {
        service.warm_start(traces);
    }
    service.register_tenant(1, 1);
    service.register_tenant(2, 2);
    service.register_tenant(3, 4);
    let tickets: Vec<JobTicket> = frames
        .iter()
        .map(|f| service.submit_frame(f).expect("stream fits the queue"))
        .collect();
    let t0 = Instant::now();
    service.resume();
    // Completion instants observed in submission order: a later wait
    // returning immediately means the job finished while we blocked on
    // an earlier one, so each observation upper-bounds that job's true
    // completion time (exact for the last).
    let mut latencies_ms: Vec<f64> = tickets
        .into_iter()
        .map(|t| {
            t.wait().expect("job completes");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p) as usize];
    let stats = service.stats();
    WorkerPoint {
        workers,
        jobs_per_sec: frames.len() as f64 / elapsed,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        stolen: stats.jobs_stolen,
    }
}

/// Hammer `cache` from `threads` real threads (hit-only lookups) and
/// report contended acquisitions. Informational: on a loaded or
/// single-core host the scheduler decides how much the threads overlap.
fn measured_contention(shards: usize, threads: usize, lookups: usize) -> u64 {
    let sys = bench_system();
    let planner = Planner::with_cache(PlanCache::with_shards(256, shards));
    let suite = suite_workloads();
    for (_, w) in &suite {
        planner.evaluate_cached(&sys.sage, w);
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let planner = &planner;
            let sys = &sys;
            let suite = &suite;
            scope.spawn(move || {
                for i in 0..lookups {
                    let (_, w) = &suite[(t * 7 + i) % suite.len()];
                    planner.evaluate_cached(&sys.sage, w);
                }
            });
        }
    });
    planner.cache.contended_acquisitions()
}

/// Deterministic lock-service model: `workers` concurrent lookup
/// streams over the suite's real key→shard mapping. Time advances in
/// lockstep rounds; a lookup occupies its shard for
/// [`LOOKUP_SERVICE_CYCLES`], and a worker whose shard is busy stalls
/// until it frees. Returns total stall cycles across all workers —
/// exact arithmetic, identical on every host.
pub fn modeled_stall_cycles(
    shard_of: &[usize],
    shards: usize,
    workers: usize,
    rounds: usize,
) -> u64 {
    let mut shard_free = vec![0u64; shards];
    let mut worker_now = vec![0u64; workers];
    let mut stalls = 0u64;
    for round in 0..rounds {
        for w in 0..workers {
            // Each worker walks the suite at its own offset, so the
            // streams interleave rather than marching in phase.
            let shard = shard_of[(w * 7 + round) % shard_of.len()];
            let start = worker_now[w].max(shard_free[shard]);
            stalls += start - worker_now[w];
            worker_now[w] = start + LOOKUP_SERVICE_CYCLES;
            shard_free[shard] = worker_now[w];
        }
    }
    stalls
}

/// The suite's key→shard mapping under `shards` shards, via the
/// planner's real hash (not a re-implementation).
fn suite_shard_map(shards: usize) -> Vec<usize> {
    let sys = bench_system();
    let planner = Planner::with_cache(PlanCache::with_shards(256, shards));
    suite_workloads()
        .iter()
        .map(|(_, w)| planner.cache_shard(&sys.sage, w))
        .collect()
}

/// Measure the whole exhibit once (no warm start).
pub fn measure() -> ServingMeasurement {
    measure_with(None)
}

/// Measure with the calibrator optionally warm-started from stored
/// traces before traffic (the `--warm-start` path of `run_all`).
pub fn measure_with(warm: Option<&[StoredTrace]>) -> ServingMeasurement {
    let frames = job_stream(48);
    let throughput = WORKER_SWEEP
        .iter()
        .map(|&workers| serve_once(&frames, workers, warm))
        .collect();

    let threads = 8;
    let lookups = 4_000;
    let contention = ContentionComparison {
        workers: threads,
        lookups_per_worker: lookups,
        shards: CACHE_SHARDS,
        measured_single_contended: measured_contention(1, threads, lookups),
        measured_sharded_contended: measured_contention(CACHE_SHARDS, threads, lookups),
        modeled_single_stall_cycles: modeled_stall_cycles(&suite_shard_map(1), 1, threads, lookups),
        modeled_sharded_stall_cycles: modeled_stall_cycles(
            &suite_shard_map(CACHE_SHARDS),
            CACHE_SHARDS,
            threads,
            lookups,
        ),
    };
    ServingMeasurement {
        job_count: frames.len(),
        tenants: 3,
        shapes: 6,
        warm_traces: warm.map_or(0, <[StoredTrace]>::len),
        throughput,
        contention,
    }
}

/// CSV rows (the `results/serving.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &ServingMeasurement) -> Vec<String> {
    let mut out = vec![
        format!(
            "# serving layer: {} mixed-tenant wire jobs, {} tenants, {} shapes, \
             warm_traces={}",
            m.job_count, m.tenants, m.shapes, m.warm_traces
        ),
        "workers,jobs_per_sec,p50_ms,p95_ms,p99_ms,cache_hits,cache_misses,stolen".to_string(),
    ];
    for p in &m.throughput {
        out.push(format!(
            "{},{:.2},{:.3},{:.3},{:.3},{},{},{}",
            p.workers,
            p.jobs_per_sec,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.cache_hits,
            p.cache_misses,
            p.stolen
        ));
    }
    let c = &m.contention;
    out.push(format!(
        "# cache contention at {} workers, {} lookups each: modeled stall cycles \
         single_lock={} sharded({})={}; measured contended acquisitions \
         single_lock={} sharded={}",
        c.workers,
        c.lookups_per_worker,
        c.modeled_single_stall_cycles,
        c.shards,
        c.modeled_sharded_stall_cycles,
        c.measured_single_contended,
        c.measured_sharded_contended
    ));
    out
}

/// The machine-readable perf snapshot (`results/BENCH_serving.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &ServingMeasurement) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"stream\": {{\"jobs\": {}, \"tenants\": {}, \"shapes\": {}, \"warm_traces\": {}}},\n",
        m.job_count, m.tenants, m.shapes, m.warm_traces
    ));
    s.push_str("  \"throughput\": [\n");
    for (i, p) in m.throughput.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"jobs_per_sec\": {:.2}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"stolen\": {}}}{}\n",
            p.workers,
            p.jobs_per_sec,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.cache_hits,
            p.cache_misses,
            p.stolen,
            if i + 1 < m.throughput.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let c = &m.contention;
    s.push_str(&format!(
        "  \"contention\": {{\"workers\": {}, \"lookups_per_worker\": {}, \"shards\": {},\n    \
         \"modeled_stall_cycles\": {{\"single_lock\": {}, \"sharded\": {}}},\n    \
         \"measured_contended\": {{\"single_lock\": {}, \"sharded\": {}}}}}\n",
        c.workers,
        c.lookups_per_worker,
        c.shards,
        c.modeled_single_stall_cycles,
        c.modeled_sharded_stall_cycles,
        c.measured_single_contended,
        c.measured_sharded_contended
    ));
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_cache_beats_single_lock_in_the_model() {
        // The acceptance claim, pinned on the deterministic model (the
        // measured numbers are host-dependent and only recorded).
        let single = modeled_stall_cycles(&suite_shard_map(1), 1, 8, 4_000);
        let sharded = modeled_stall_cycles(&suite_shard_map(CACHE_SHARDS), CACHE_SHARDS, 8, 4_000);
        assert!(
            sharded < single,
            "sharded stalls ({sharded}) must beat the single lock ({single})"
        );
        // One lock at 8 workers serializes nearly everything: each
        // round's 8 lookups queue on the same lock.
        assert!(single > 0);
        // Sharding the suite across 8 locks must remove most of it.
        assert!(
            (sharded as f64) < (single as f64) * 0.5,
            "sharding should at least halve modeled stalls ({sharded} vs {single})"
        );
    }

    #[test]
    fn model_is_deterministic() {
        let map = suite_shard_map(CACHE_SHARDS);
        let a = modeled_stall_cycles(&map, CACHE_SHARDS, 8, 500);
        let b = modeled_stall_cycles(&map, CACHE_SHARDS, 8, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_sweep_serves_every_job() {
        let frames = job_stream(12);
        let p = serve_once(&frames, 2, None);
        assert_eq!(p.workers, 2);
        assert_eq!(p.cache_hits + p.cache_misses, 12, "every job plans once");
        assert!(p.jobs_per_sec > 0.0);
        assert!(p.p50_ms > 0.0 && p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        // A tiny hand-built measurement keeps the test fast.
        let m = ServingMeasurement {
            job_count: 4,
            tenants: 3,
            shapes: 2,
            warm_traces: 0,
            throughput: vec![WorkerPoint {
                workers: 1,
                jobs_per_sec: 10.0,
                p50_ms: 1.0,
                p95_ms: 2.0,
                p99_ms: 3.0,
                cache_hits: 2,
                cache_misses: 2,
                stolen: 0,
            }],
            contention: ContentionComparison {
                workers: 8,
                lookups_per_worker: 100,
                shards: 8,
                measured_single_contended: 5,
                measured_sharded_contended: 1,
                modeled_single_stall_cycles: 1000,
                modeled_sharded_stall_cycles: 10,
            },
        };
        let json = json_from(&m);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"throughput\""));
        assert!(json.contains("\"modeled_stall_cycles\""));
        let csv = rows_from(&m);
        assert!(csv.iter().any(|r| r.starts_with("workers,")));
    }
}

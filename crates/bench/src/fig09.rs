//! Fig. 9 — the prefix-sum design space: latency, throughput, and adder
//! cost of the three scan implementations.

use sparseflex_mint::blocks::prefix_sum::{PrefixSumDesign, PrefixSumUnit};

/// Design-space rows for 32-wide units over several input sizes.
pub fn rows() -> Vec<String> {
    let mut out = vec![
        "# fig9 prefix-sum designs (width 32)".to_string(),
        "design,width,fill_latency,adders,cycles_1k,cycles_100k".to_string(),
    ];
    for (name, design) in [
        ("serial_chain", PrefixSumDesign::SerialChain),
        ("work_efficient", PrefixSumDesign::WorkEfficient),
        ("highly_parallel", PrefixSumDesign::HighlyParallel),
    ] {
        let u = PrefixSumUnit { width: 32, design };
        out.push(format!(
            "{name},32,{},{},{},{}",
            u.latency(),
            u.adder_count(),
            u.cycles(1_000),
            u.cycles(100_000)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn parallel_has_lowest_latency_chain_fewest_adders() {
        let rows = super::rows();
        let get = |name: &str, col: usize| -> u64 {
            rows.iter()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(col)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(get("highly_parallel", 2) < get("serial_chain", 2));
        assert!(get("serial_chain", 3) < get("highly_parallel", 3));
        // Work-efficient is slowest at bulk throughput (unpipelined tree).
        assert!(get("work_efficient", 5) > get("highly_parallel", 5));
    }
}

//! Parallel-streaming exhibit — wall-clock and correctness evidence for
//! the two-phase (partition → ranged traversal) data-parallel kernels.
//!
//! Three measurement families, all on pinned-seed synthetic operands:
//!
//! - **Kernel points** — per compression format, median wall-clock of
//!   the sequential stream kernel vs its parallel twin at forced worker
//!   counts ([`WORKER_COUNTS`], via
//!   [`sparseflex_kernels::parallel::with_workers`]), for SpMM and
//!   Gustavson SpGEMM over every matrix format and MTTKRP over every
//!   tensor format. Alongside each timing the outputs are compared
//!   **bit-for-bit**; `bitwise_equal` must hold for every point and is
//!   the property `kernels_gate` prices — never the speedup, which on a
//!   single-core CI runner is physically capped at 1.0 (the snapshot
//!   records `cores` so readers can interpret the ratios honestly).
//! - **Ranged-allocation points** — per format, heap allocations during
//!   a repeat ranged traversal over warm per-range arenas (the worker
//!   loop simulated serially so thread-spawn bookkeeping cannot pollute
//!   the count). The budget is zero, exactly like the full-stream gate
//!   in [`crate::kernels`].
//! - **Partition stats** — per format, how evenly `row_partition`
//!   spreads nonzeros at the largest forced worker count (max/ideal
//!   band ratio), documenting phase 1's load balance.

use crate::allocs;
use sparseflex_formats::{
    CooMatrix, CooTensor3, MatrixData, MatrixFormat, StreamArena, TensorData, TensorFormat,
};
use sparseflex_kernels::parallel::with_workers;
use sparseflex_kernels::{
    mttkrp_parallel, mttkrp_via_stream, spgemm_parallel_with, spgemm_with, spmm_parallel,
    spmm_via_stream, SpgemmAlgo,
};
use std::time::Instant;

/// Operand side for the exhibit matrices.
const N: usize = 192;
/// Dense-operand width (SpMM B columns / MTTKRP rank).
const DENSE_COLS: usize = 24;
/// Nonzeros in the sparse matrix operands (~2% dense).
const NNZ: usize = 760;
/// Tensor dims and nonzeros.
const TDIMS: (usize, usize, usize) = (48, 24, 32);
const TNNZ: usize = 900;
/// Timing repetitions (median taken).
const REPS: usize = 7;

/// Forced worker counts the exhibit sweeps.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Steady-state ranged-traversal allocations allowed per format: none.
pub const RANGED_ALLOC_BUDGET: u64 = 0;

/// Sequential-vs-parallel wall-clock for one kernel × format.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Kernel label (`spmm`, `spgemm`, `mttkrp`).
    pub kernel: &'static str,
    /// Format label.
    pub format: String,
    /// Median ns of the sequential stream kernel.
    pub seq_ns: u64,
    /// Median ns of the parallel twin at each of [`WORKER_COUNTS`].
    pub par_ns: [u64; 4],
    /// Whether every parallel output equalled the sequential output
    /// bit-for-bit at every worker count.
    pub bitwise_equal: bool,
}

impl ParallelPoint {
    /// Sequential-over-parallel speedup at each forced worker count
    /// (>1.0 means the parallel path was faster).
    pub fn speedups(&self) -> [f64; 4] {
        self.par_ns.map(|p| self.seq_ns as f64 / p.max(1) as f64)
    }
}

/// Heap-allocation count for one format's warm ranged traversal.
#[derive(Debug, Clone)]
pub struct RangedAllocPoint {
    /// Format label.
    pub format: String,
    /// Allocations on a repeat ranged pass over warm per-range arenas.
    pub steady_allocs: u64,
}

/// Load-balance figure for one format's phase-1 partition.
#[derive(Debug, Clone)]
pub struct BalancePoint {
    /// Format label.
    pub format: String,
    /// Ranges produced at the widest forced worker count.
    pub ranges: usize,
    /// Largest band nnz over the ideal equal share (1.0 = perfect).
    pub max_over_ideal: f64,
}

/// One full measurement of the exhibit.
#[derive(Debug, Clone)]
pub struct ParallelMeasurement {
    /// Sequential-vs-parallel kernel points.
    pub kernel_points: Vec<ParallelPoint>,
    /// Warm ranged-traversal allocation counts.
    pub ranged_allocs: Vec<RangedAllocPoint>,
    /// Phase-1 load-balance stats.
    pub balance_points: Vec<BalancePoint>,
    /// Hardware threads visible to the measuring process — the honest
    /// ceiling on any speedup in this snapshot.
    pub cores: usize,
    /// Whether a counting allocator was installed when measuring.
    pub counting_installed: bool,
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_median<R>(mut f: impl FnMut() -> R) -> u64 {
    std::hint::black_box(f());
    let samples = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    median_ns(samples)
}

/// Every matrix format the exhibit sweeps.
fn matrix_formats() -> Vec<(String, MatrixFormat)> {
    vec![
        ("dense".into(), MatrixFormat::Dense),
        ("coo".into(), MatrixFormat::Coo),
        ("csr".into(), MatrixFormat::Csr),
        ("csc".into(), MatrixFormat::Csc),
        ("bsr2x2".into(), MatrixFormat::Bsr { br: 2, bc: 2 }),
        ("dia".into(), MatrixFormat::Dia),
        ("ell".into(), MatrixFormat::Ell),
        ("rlc4".into(), MatrixFormat::Rlc { run_bits: 4 }),
        ("zvc".into(), MatrixFormat::Zvc),
    ]
}

/// Every tensor format the exhibit sweeps.
fn tensor_formats() -> Vec<(String, TensorFormat)> {
    vec![
        ("dense".into(), TensorFormat::Dense),
        ("coo".into(), TensorFormat::Coo),
        ("csf".into(), TensorFormat::Csf),
        ("hicoo2".into(), TensorFormat::HiCoo { block: 2 }),
        ("rlc4".into(), TensorFormat::Rlc { run_bits: 4 }),
        ("zvc".into(), TensorFormat::Zvc),
    ]
}

fn exhibit_matrix(seed: u64) -> CooMatrix {
    sparseflex_workloads::synth::random_matrix(N, N, NNZ, seed)
}

fn exhibit_tensor(seed: u64) -> CooTensor3 {
    let (dx, dy, dz) = TDIMS;
    sparseflex_workloads::synth::random_tensor3(dx, dy, dz, TNNZ, seed)
}

/// Measure the sequential-vs-parallel kernel points.
pub fn measure_kernels() -> Vec<ParallelPoint> {
    let a = exhibit_matrix(29);
    let bs = exhibit_matrix(31);
    let bd = sparseflex_workloads::synth::random_dense_matrix(N, DENSE_COLS, 37);
    let t = exhibit_tensor(41);
    let (_, dy, dz) = TDIMS;
    let fb = sparseflex_workloads::synth::random_dense_matrix(dy, DENSE_COLS, 43);
    let fc = sparseflex_workloads::synth::random_dense_matrix(dz, DENSE_COLS, 47);
    let mut out = Vec::new();

    for (label, fmt) in matrix_formats() {
        let da = MatrixData::encode(&a, &fmt).expect("exhibit operand encodes");
        let db = MatrixData::encode(&bs, &fmt).expect("exhibit operand encodes");

        let seq = spmm_via_stream(&da, &bd).expect("shapes agree");
        let mut equal = true;
        let mut par_ns = [0u64; 4];
        let seq_ns = time_median(|| spmm_via_stream(&da, &bd).expect("shapes agree"));
        for (slot, &w) in WORKER_COUNTS.iter().enumerate() {
            with_workers(w, || {
                equal &= spmm_parallel(&da, &bd).expect("shapes agree") == seq;
                par_ns[slot] = time_median(|| spmm_parallel(&da, &bd).expect("shapes agree"));
            });
        }
        out.push(ParallelPoint {
            kernel: "spmm",
            format: label.clone(),
            seq_ns,
            par_ns,
            bitwise_equal: equal,
        });

        let seq = spgemm_with(&da, &db, SpgemmAlgo::Gustavson).expect("shapes agree");
        let mut equal = true;
        let mut par_ns = [0u64; 4];
        let seq_ns =
            time_median(|| spgemm_with(&da, &db, SpgemmAlgo::Gustavson).expect("shapes agree"));
        for (slot, &w) in WORKER_COUNTS.iter().enumerate() {
            with_workers(w, || {
                equal &= spgemm_parallel_with(&da, &db, SpgemmAlgo::Gustavson)
                    .expect("shapes agree")
                    == seq;
                par_ns[slot] = time_median(|| {
                    spgemm_parallel_with(&da, &db, SpgemmAlgo::Gustavson).expect("shapes agree")
                });
            });
        }
        out.push(ParallelPoint {
            kernel: "spgemm",
            format: label,
            seq_ns,
            par_ns,
            bitwise_equal: equal,
        });
    }

    for (label, fmt) in tensor_formats() {
        let dt = TensorData::encode(&t, &fmt).expect("exhibit tensor encodes");
        let seq = mttkrp_via_stream(&dt, &fb, &fc).expect("shapes agree");
        let mut equal = true;
        let mut par_ns = [0u64; 4];
        let seq_ns = time_median(|| mttkrp_via_stream(&dt, &fb, &fc).expect("shapes agree"));
        for (slot, &w) in WORKER_COUNTS.iter().enumerate() {
            with_workers(w, || {
                equal &= mttkrp_parallel(&dt, &fb, &fc).expect("shapes agree") == seq;
                par_ns[slot] =
                    time_median(|| mttkrp_parallel(&dt, &fb, &fc).expect("shapes agree"));
            });
        }
        out.push(ParallelPoint {
            kernel: "mttkrp",
            format: label,
            seq_ns,
            par_ns,
            bitwise_equal: equal,
        });
    }
    out
}

/// Allocation-free ranged fold.
fn ranged_checksum(
    data: &MatrixData,
    range: std::ops::Range<usize>,
    arena: &mut StreamArena,
) -> f64 {
    let mut checksum = 0.0f64;
    data.row_stream()
        .for_each_fiber_range_in(range, arena, &mut |r, cols, vals| {
            checksum += (r + cols.len()) as f64;
            for &v in vals {
                checksum += v;
            }
        });
    checksum
}

/// Measure the warm ranged-traversal allocation points (worker loop
/// simulated serially; each range keeps its own warm arena, exactly the
/// per-worker lifecycle the parallel kernels run).
pub fn measure_ranged_allocs() -> Vec<RangedAllocPoint> {
    let coo = exhibit_matrix(53);
    let parts = *WORKER_COUNTS.last().expect("non-empty sweep");
    let mut out = Vec::new();
    for (label, fmt) in matrix_formats() {
        let data = MatrixData::encode(&coo, &fmt).expect("exhibit operand encodes");
        let ranges = data.row_stream().row_partition(parts);
        let mut arenas: Vec<StreamArena> = ranges.iter().map(|_| StreamArena::new()).collect();
        let mut steady = 0u64;
        for (range, arena) in ranges.iter().zip(arenas.iter_mut()) {
            let warm = ranged_checksum(&data, range.clone(), arena);
            let (n, s) = allocs::count_allocs(|| ranged_checksum(&data, range.clone(), arena));
            assert_eq!(warm, s, "{label}: warm and steady ranged passes must agree");
            steady += n;
        }
        out.push(RangedAllocPoint {
            format: label,
            steady_allocs: steady,
        });
    }
    out
}

/// Measure phase-1 load balance at the widest forced worker count.
pub fn measure_balance() -> Vec<BalancePoint> {
    let coo = exhibit_matrix(59);
    let parts = *WORKER_COUNTS.last().expect("non-empty sweep");
    let mut out = Vec::new();
    for (label, fmt) in matrix_formats() {
        let data = MatrixData::encode(&coo, &fmt).expect("exhibit operand encodes");
        let ranges = data.row_stream().row_partition(parts);
        let mut arena = StreamArena::new();
        let mut band_nnz = vec![0usize; ranges.len()];
        let mut total = 0usize;
        for (i, range) in ranges.iter().enumerate() {
            data.row_stream().for_each_fiber_range_in(
                range.clone(),
                &mut arena,
                &mut |_, cols, _| {
                    band_nnz[i] += cols.len();
                },
            );
            total += band_nnz[i];
        }
        let ideal = (total as f64 / ranges.len().max(1) as f64).max(1.0);
        out.push(BalancePoint {
            format: label,
            ranges: ranges.len(),
            max_over_ideal: band_nnz.iter().copied().max().unwrap_or(0) as f64 / ideal,
        });
    }
    out
}

/// Measure the whole exhibit once.
pub fn measure() -> ParallelMeasurement {
    ParallelMeasurement {
        kernel_points: measure_kernels(),
        ranged_allocs: measure_ranged_allocs(),
        balance_points: measure_balance(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        counting_installed: allocs::probe_installed(),
    }
}

/// Apply the committed gates to a measurement; empty = gate passes.
///
/// Only deterministic properties are gated: bitwise sequential/parallel
/// equality always, and the zero ranged-allocation budget when the
/// measuring process installed the counting allocator. Speedup is
/// **never** gated — it is hardware-dependent and equals ~1.0 on the
/// single-core CI runner.
pub fn enforce(m: &ParallelMeasurement) -> Vec<crate::kernels::Violation> {
    let mut v = Vec::new();
    for p in &m.kernel_points {
        if !p.bitwise_equal {
            v.push(crate::kernels::Violation(format!(
                "{}/{}: parallel output diverged bitwise from sequential",
                p.kernel, p.format
            )));
        }
    }
    if m.counting_installed {
        for p in &m.ranged_allocs {
            if p.steady_allocs > RANGED_ALLOC_BUDGET {
                v.push(crate::kernels::Violation(format!(
                    "{}: {} steady-state ranged-traversal allocations (budget {})",
                    p.format, p.steady_allocs, RANGED_ALLOC_BUDGET
                )));
            }
        }
    }
    v
}

/// CSV rows (the `results/parallel.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &ParallelMeasurement) -> Vec<String> {
    let mut out = vec![
        format!(
            "# sequential vs parallel stream kernels (median ns; {} hardware threads, \
             counting allocator installed: {})",
            m.cores, m.counting_installed
        ),
        format!(
            "kernel,format,seq_ns,{},{},bitwise_equal",
            WORKER_COUNTS.map(|w| format!("par{w}_ns")).join(","),
            WORKER_COUNTS.map(|w| format!("speedup{w}")).join(","),
        ),
    ];
    for p in &m.kernel_points {
        let s = p.speedups();
        out.push(format!(
            "{},{},{},{},{},{}",
            p.kernel,
            p.format,
            p.seq_ns,
            p.par_ns.map(|n| n.to_string()).join(","),
            s.map(|x| format!("{x:.3}")).join(","),
            p.bitwise_equal
        ));
    }
    out.push(String::new());
    out.push("# warm ranged-traversal allocations (per-range arenas, serial replay)".to_string());
    out.push("format,steady_allocs".to_string());
    for p in &m.ranged_allocs {
        out.push(format!("{},{}", p.format, p.steady_allocs));
    }
    out.push(String::new());
    out.push(format!(
        "# phase-1 nnz balance at {} ranges (max band / ideal share)",
        WORKER_COUNTS.last().expect("non-empty sweep")
    ));
    out.push("format,ranges,max_over_ideal".to_string());
    for p in &m.balance_points {
        out.push(format!("{},{},{:.3}", p.format, p.ranges, p.max_over_ideal));
    }
    out
}

/// The machine-readable perf snapshot (`results/BENCH_parallel.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &ParallelMeasurement) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"cores\": {},\n  \"counting_installed\": {},\n  \"worker_counts\": [{}],\n  \
         \"ranged_alloc_budget\": {},\n",
        m.cores,
        m.counting_installed,
        WORKER_COUNTS.map(|w| w.to_string()).join(", "),
        RANGED_ALLOC_BUDGET
    ));
    json.push_str("  \"kernel_points\": [\n");
    for (i, p) in m.kernel_points.iter().enumerate() {
        let s = p.speedups();
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"format\": \"{}\", \"seq_ns\": {}, \
             \"par_ns\": [{}], \"speedups\": [{}], \"bitwise_equal\": {}}}{}\n",
            p.kernel,
            p.format,
            p.seq_ns,
            p.par_ns.map(|n| n.to_string()).join(", "),
            s.map(|x| format!("{x:.4}")).join(", "),
            p.bitwise_equal,
            if i + 1 < m.kernel_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n  \"ranged_alloc_points\": [\n");
    for (i, p) in m.ranged_allocs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"steady_allocs\": {}}}{}\n",
            p.format,
            p.steady_allocs,
            if i + 1 < m.ranged_allocs.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n  \"balance_points\": [\n");
    for (i, p) in m.balance_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"ranges\": {}, \"max_over_ideal\": {:.4}}}{}\n",
            p.format,
            p.ranges,
            p.max_over_ideal,
            if i + 1 < m.balance_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_measures_and_renders() {
        let m = measure();
        assert_eq!(
            m.kernel_points.len(),
            matrix_formats().len() * 2 + tensor_formats().len()
        );
        assert!(m.kernel_points.iter().all(|p| p.bitwise_equal));
        assert_eq!(m.ranged_allocs.len(), matrix_formats().len());
        assert_eq!(m.balance_points.len(), matrix_formats().len());
        assert!(m.cores >= 1);
        // The test harness installs no counting allocator, so counts
        // read 0 and the alloc half of the gate is vacuous here (the
        // kernels_gate binary installs it).
        assert!(!m.counting_installed);
        assert!(enforce(&m).is_empty(), "exhibit must pass its own gate");
        let json = json_from(&m);
        assert!(json.contains("\"cores\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rows = rows_from(&m);
        assert!(rows.iter().any(|r| r.starts_with("spgemm,zvc,")));
        assert!(rows.iter().any(|r| r.starts_with("mttkrp,csf,")));
    }

    #[test]
    fn enforce_flags_synthetic_violations() {
        let m = ParallelMeasurement {
            kernel_points: vec![ParallelPoint {
                kernel: "spmm",
                format: "fake".into(),
                seq_ns: 100,
                par_ns: [100; 4],
                bitwise_equal: false,
            }],
            ranged_allocs: vec![RangedAllocPoint {
                format: "fake".into(),
                steady_allocs: 5,
            }],
            balance_points: vec![],
            cores: 1,
            counting_installed: true,
        };
        let v = enforce(&m);
        assert_eq!(v.len(), 2);
        assert!(v[0].0.contains("diverged"));
        assert!(v[1].0.contains("ranged-traversal"));
    }
}

//! Regenerates the paper's fig10 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig10::rows());
}

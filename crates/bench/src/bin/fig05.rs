//! Regenerates the paper's fig05 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig05::rows());
}

//! Regenerates the paper's fig09 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig09::rows());
}

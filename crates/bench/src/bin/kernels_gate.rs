//! CI gate for the streaming-kernel budgets: steady-state traversal
//! allocations must be zero (full-stream *and* warm ranged per-worker
//! passes), the stream-vs-fast-path overhead must stay inside the
//! committed bound, and every parallel kernel must be bit-for-bit equal
//! to its sequential twin. Exits nonzero (failing the CI step) on any
//! violation, and prints the full measurement either way.

#[global_allocator]
static ALLOC: sparseflex_bench::allocs::CountingAllocator =
    sparseflex_bench::allocs::CountingAllocator;

fn main() {
    assert!(
        sparseflex_bench::allocs::probe_installed(),
        "counting allocator must be installed for the gate to bind"
    );
    let m = sparseflex_bench::kernels::measure();
    sparseflex_bench::emit(&sparseflex_bench::kernels::rows_from(&m));
    let mut violations = sparseflex_bench::kernels::enforce(&m);
    let p = sparseflex_bench::parallel::measure();
    sparseflex_bench::emit(&sparseflex_bench::parallel::rows_from(&p));
    violations.extend(sparseflex_bench::parallel::enforce(&p));
    if violations.is_empty() {
        eprintln!("kernels_gate: all budgets hold");
        return;
    }
    for v in &violations {
        eprintln!("kernels_gate VIOLATION: {}", v.0);
    }
    std::process::exit(1);
}

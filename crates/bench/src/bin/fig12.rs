//! Regenerates the paper's fig12 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig12::rows());
}

//! Regenerates the paper's fig13 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig13::rows());
}

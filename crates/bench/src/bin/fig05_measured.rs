//! Measured companion to Fig. 5 (real kernel wall times on this machine).
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig05_measured::rows());
}

//! Regenerates the paper's table3 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::table3::rows());
}

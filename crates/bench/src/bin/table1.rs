//! Regenerates the paper's table1 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::table1::rows());
}

//! Regenerates the paper's fig07 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig07::rows());
}

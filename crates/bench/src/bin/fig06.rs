//! Regenerates the paper's fig06 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig06::rows());
}

//! Regenerates the paper's fig11 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig11::rows());
}

//! Regenerates the ablation-study series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::ablation::rows());
}

//! Regenerates the paper's fig14 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig14::rows());
}

//! Runs every figure/table generator and writes `results/<name>.csv`.
//!
//! `--warm-start[=PATH]` (or env `SPARSEFLEX_WARM_START=PATH`, `=1` for
//! the default path) replays the executed-plan traces stored at
//! `results/traces.json` into the serving exhibit's calibrator before
//! traffic, so the worker pool resumes from the previous run's
//! calibration instead of cold-starting.
use std::fs;

// Counting allocator so the kernels exhibit's BENCH_kernels.json carries
// real steady-state allocation counts (one relaxed atomic increment per
// allocation; no effect on any other exhibit's measurements).
#[global_allocator]
static ALLOC: sparseflex_bench::allocs::CountingAllocator =
    sparseflex_bench::allocs::CountingAllocator;

/// A named figure/table generator.
type Job = (&'static str, fn() -> Vec<String>);

/// Resolve the warm-start trace file from `--warm-start[=PATH]` /
/// `SPARSEFLEX_WARM_START`, if requested.
fn warm_start_path() -> Option<std::path::PathBuf> {
    for arg in std::env::args().skip(1) {
        if arg == "--warm-start" {
            return Some("results/traces.json".into());
        }
        if let Some(p) = arg.strip_prefix("--warm-start=") {
            return Some(p.into());
        }
    }
    match std::env::var("SPARSEFLEX_WARM_START") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some("results/traces.json".into()),
        Ok(v) if !v.is_empty() && v != "0" => Some(v.into()),
        _ => None,
    }
}

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new("results");
    fs::create_dir_all(dir)?;
    let warm_traces: Option<Vec<sparseflex_core::StoredTrace>> = match warm_start_path() {
        Some(path) => match sparseflex_core::read_traces(&path) {
            Ok(traces) => {
                eprintln!(
                    "warm-start: {} traces from {}",
                    traces.len(),
                    path.display()
                );
                Some(traces)
            }
            Err(e) => {
                eprintln!(
                    "warm-start: cannot read {}: {e} (cold start)",
                    path.display()
                );
                None
            }
        },
        None => None,
    };
    let jobs: Vec<Job> = vec![
        ("fig04", sparseflex_bench::fig04::rows),
        ("fig05", sparseflex_bench::fig05::rows),
        ("fig06", sparseflex_bench::fig06::rows),
        ("fig07", sparseflex_bench::fig07::rows),
        ("fig09", sparseflex_bench::fig09::rows),
        ("fig10", sparseflex_bench::fig10::rows),
        ("fig11", sparseflex_bench::fig11::rows),
        ("fig12", sparseflex_bench::fig12::rows),
        ("fig13", sparseflex_bench::fig13::rows),
        ("fig14", sparseflex_bench::fig14::rows),
        ("table1", sparseflex_bench::table1::rows),
        ("table2", sparseflex_bench::table2::rows),
        ("table3", sparseflex_bench::table3::rows),
        ("fig05_measured", sparseflex_bench::fig05_measured::rows),
        ("ablation", sparseflex_bench::ablation::rows),
    ];
    for (name, job) in jobs {
        eprintln!("generating {name} ...");
        let rows = job();
        fs::write(dir.join(format!("{name}.csv")), rows.join("\n") + "\n")?;
    }
    // The pipeline exhibit is measured once and rendered twice: the CSV
    // series alongside the other exhibits, and the machine-readable perf
    // snapshot CI uploads so the trajectory is tracked across PRs.
    eprintln!("generating pipeline + BENCH_pipeline.json ...");
    let measured = sparseflex_bench::pipeline::measure();
    fs::write(
        dir.join("pipeline.csv"),
        sparseflex_bench::pipeline::rows_from(&measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_pipeline.json"),
        sparseflex_bench::pipeline::json_from(&measured) + "\n",
    )?;
    // The planner exhibit follows the same pattern: one measurement,
    // rendered as the CSV series and the JSON perf snapshot.
    eprintln!("generating planner + BENCH_planner.json ...");
    let planner_measured = sparseflex_bench::planner::measure();
    fs::write(
        dir.join("planner.csv"),
        sparseflex_bench::planner::rows_from(&planner_measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_planner.json"),
        sparseflex_bench::planner::json_from(&planner_measured) + "\n",
    )?;
    // Search & calibration exhibit: beam search vs presets and the
    // calibration error trajectory, as CSV + JSON snapshot.
    eprintln!("generating search + BENCH_search.json ...");
    let search_measured = sparseflex_bench::search::measure();
    fs::write(
        dir.join("search.csv"),
        sparseflex_bench::search::rows_from(&search_measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_search.json"),
        sparseflex_bench::search::json_from(&search_measured) + "\n",
    )?;
    // Persist the calibration rounds' executed-plan traces so a later
    // process can warm-start its calibrator from this traffic.
    sparseflex_core::write_traces(&dir.join("traces.json"), &search_measured.traces)?;
    // Serving exhibit: multi-tenant throughput through the wire format
    // plus the plan-cache sharding comparison.
    eprintln!("generating serving + BENCH_serving.json ...");
    let serving_measured = sparseflex_bench::serving::measure_with(warm_traces.as_deref());
    fs::write(
        dir.join("serving.csv"),
        sparseflex_bench::serving::rows_from(&serving_measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_serving.json"),
        sparseflex_bench::serving::json_from(&serving_measured) + "\n",
    )?;
    // Streaming-kernel exhibit: zero-alloc steady-state evidence plus
    // the stream-vs-fast-path overhead, measured once, rendered as CSV
    // and the JSON snapshot the kernels_gate CI step prices.
    eprintln!("generating kernels + BENCH_kernels.json ...");
    let kernels_measured = sparseflex_bench::kernels::measure();
    fs::write(
        dir.join("kernels.csv"),
        sparseflex_bench::kernels::rows_from(&kernels_measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_kernels.json"),
        sparseflex_bench::kernels::json_from(&kernels_measured) + "\n",
    )?;
    // Parallel-streaming exhibit: sequential/parallel bit-identity and
    // per-worker arena behaviour across every format, with honest wall
    // times at forced worker counts (speedups are informational — the
    // snapshot records the core count they were taken under).
    eprintln!("generating parallel + BENCH_parallel.json ...");
    let parallel_measured = sparseflex_bench::parallel::measure();
    fs::write(
        dir.join("parallel.csv"),
        sparseflex_bench::parallel::rows_from(&parallel_measured).join("\n") + "\n",
    )?;
    fs::write(
        dir.join("BENCH_parallel.json"),
        sparseflex_bench::parallel::json_from(&parallel_measured) + "\n",
    )?;
    eprintln!(
        "wrote results/*.csv + results/BENCH_pipeline.json + results/BENCH_planner.json \
         + results/BENCH_search.json + results/BENCH_serving.json + results/BENCH_kernels.json \
         + results/BENCH_parallel.json"
    );
    Ok(())
}

//! Regenerates the paper's table2 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::table2::rows());
}

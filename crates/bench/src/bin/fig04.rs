//! Regenerates the paper's fig04 series. Prints CSV to stdout.
fn main() {
    sparseflex_bench::emit(&sparseflex_bench::fig04::rows());
}

//! Fig. 10 — conversion execution time and energy: MKL-class CPU vs
//! cuSPARSE-class GPU vs MINT, over the Table III matrix workloads.
//!
//! Three baselines per conversion:
//! - `cpu_model_s` / `gpu_model_s`: analytic roofline stand-ins for MKL
//!   and cuSPARSE (the paper's hardware is not available here).
//! - `rust_measured_s`: real wall time of this workspace's software
//!   conversion on the build machine (sanity anchor).
//! - `mint_s`: MINT's pipelined cycle count at 1 GHz.

use sparseflex_formats::{CsrMatrix, MatrixFormat};
use sparseflex_host::device::{conversion_time, DeviceModel};
use sparseflex_host::swconvert::{time_conversion, TimedConversion};
use sparseflex_mint::{conversion_cost, ConversionEngine};
use sparseflex_workloads::{WorkloadShape, TABLE_III};

/// Should this workload's matrices be materialized for measured timing?
/// (Capped so the bench binary stays fast; the models cover full scale.)
fn measurable(nnz: usize) -> bool {
    nnz <= 1_500_000
}

/// Fig. 10a/b/c rows.
pub fn rows() -> Vec<String> {
    let engine = ConversionEngine::default();
    let cpu = DeviceModel::core_i9();
    let gpu = DeviceModel::titan_rtx();
    let mut out = vec![
        "# fig10 conversion time & energy; MINT at 1 GHz".to_string(),
        "workload,conversion,cpu_model_s,gpu_model_s,rust_measured_s,mint_s,cpu_energy_j,gpu_energy_j,mint_energy_j"
            .to_string(),
    ];
    for w in TABLE_III.iter() {
        let WorkloadShape::Matrix { rows: m, cols: k } = w.shape else {
            continue;
        };
        let nnz = w.nnz as u64;
        for (conv_name, src, dst, passes, bpn) in [
            (
                "csr_to_csc",
                MatrixFormat::Csr,
                MatrixFormat::Csc,
                3.0,
                12.0,
            ),
            (
                "dense_to_csr",
                MatrixFormat::Dense,
                MatrixFormat::Csr,
                1.0,
                12.0,
            ),
        ] {
            // Analytic CPU/GPU models. Dense scans move the full matrix.
            let eff_nnz = if src == MatrixFormat::Dense {
                (m * k) as u64
            } else {
                nnz
            };
            let cpu_s = conversion_time(&cpu, eff_nnz, passes, bpn);
            let gpu_s = conversion_time(&gpu, eff_nnz, passes, bpn);
            // MINT.
            let mint = conversion_cost(&src, &dst, m, k, nnz, &engine);
            let mint_s = mint.cycles as f64 / 1.0e9;
            // Measured Rust conversion (scaled workloads only).
            let measured = if measurable(w.nnz) {
                let coo = w.generate_matrix(42).expect("matrix workload");
                let csr = CsrMatrix::from_coo(&coo);
                match conv_name {
                    "csr_to_csc" => {
                        time_conversion(TimedConversion::CsrToCsc, &csr, None, 2).seconds
                    }
                    _ => {
                        // Dense materialization is capped harder: skip
                        // matrices over 40M elements.
                        if m * k <= 40_000_000 {
                            let dense = coo.clone().into_dense();
                            time_conversion(TimedConversion::DenseToCsr, &csr, Some(&dense), 2)
                                .seconds
                        } else {
                            f64::NAN
                        }
                    }
                }
            } else {
                f64::NAN
            };
            out.push(format!(
                "{},{conv_name},{cpu_s:.4e},{gpu_s:.4e},{measured:.4e},{mint_s:.4e},{:.4e},{:.4e},{:.4e}",
                w.name,
                cpu.energy(cpu_s),
                gpu.energy(gpu_s),
                mint.energy,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_beats_both_device_models_on_average() {
        // Fig. 10: "MINT shows faster average conversion time than both
        // CPUs and GPUs" and ~3 orders of magnitude energy improvement.
        let engine = ConversionEngine::default();
        let cpu = DeviceModel::core_i9();
        let mut mint_wins = 0;
        let mut total = 0;
        let mut energy_ratios = Vec::new();
        for w in TABLE_III.iter() {
            let WorkloadShape::Matrix { rows: m, cols: k } = w.shape else {
                continue;
            };
            let mint = conversion_cost(
                &MatrixFormat::Csr,
                &MatrixFormat::Csc,
                m,
                k,
                w.nnz as u64,
                &engine,
            );
            let cpu_s = conversion_time(&cpu, w.nnz as u64, 3.0, 12.0);
            total += 1;
            if (mint.cycles as f64 / 1e9) < cpu_s {
                mint_wins += 1;
            }
            energy_ratios.push(cpu.energy(cpu_s) / mint.energy.max(1e-18));
        }
        assert!(mint_wins * 2 > total, "MINT won only {mint_wins}/{total}");
        let geo: f64 =
            energy_ratios.iter().map(|r| r.ln()).sum::<f64>() / energy_ratios.len() as f64;
        assert!(
            geo.exp() > 100.0,
            "energy improvement {} should be >> 100x",
            geo.exp()
        );
    }
}

//! Measured companion to Fig. 5: wall-clock times of this workspace's own
//! kernels across density regions (scaled to n=1024 so the sweep finishes
//! in seconds). The model (`fig05`) covers the paper-scale n=11k.

use sparseflex_formats::{CsrMatrix, MatrixData};
use sparseflex_kernels::{gemm_parallel, spgemm_parallel, spmm_parallel};
use sparseflex_workloads::synth::{random_dense_matrix, random_matrix};
use std::time::Instant;

/// Problem edge for the measured sweep.
pub const N: usize = 1024;

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measured rows across density.
pub fn rows() -> Vec<String> {
    let mut out = vec![
        format!("# fig5-measured: this workspace's kernels, M=N=K={N}"),
        "density,gemm_s,spmm_s,spgemm_s".to_string(),
    ];
    let b_dense = random_dense_matrix(N, N, 1);
    let a_dense = random_dense_matrix(N, N, 2);
    let gemm_t = best_of(2, || {
        let _ = gemm_parallel(&a_dense, &b_dense);
    });
    for dens in [1e-4, 1e-3, 1e-2, 1e-1] {
        let nnz = ((N * N) as f64 * dens) as usize;
        let a = MatrixData::Csr(CsrMatrix::from_coo(&random_matrix(N, N, nnz.max(1), 3)));
        let b = MatrixData::Csr(CsrMatrix::from_coo(&random_matrix(N, N, nnz.max(1), 4)));
        let spmm_t = best_of(2, || {
            let _ = spmm_parallel(&a, &b_dense).expect("shapes agree");
        });
        let spgemm_t = best_of(2, || {
            let _ = spgemm_parallel(&a, &b).expect("shapes agree");
        });
        out.push(format!(
            "{dens:.0e},{gemm_t:.4e},{spmm_t:.4e},{spgemm_t:.4e}"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sparse_kernels_beat_dense_gemm_at_low_density() {
        // The measured Fig. 5 claim at laptop scale: at 0.01% density,
        // both sparse kernels are much faster than dense GEMM.
        let rows = super::rows();
        let first = rows[2].split(',').collect::<Vec<_>>();
        let gemm: f64 = first[1].parse().unwrap();
        let spmm: f64 = first[2].parse().unwrap();
        let spgemm: f64 = first[3].parse().unwrap();
        assert!(spmm < gemm, "spmm {spmm} vs gemm {gemm}");
        assert!(spgemm < gemm, "spgemm {spgemm} vs gemm {gemm}");
    }
}

//! Fig. 6 — the ACF walkthrough: cycles to stream matrix A under three
//! ACF combinations on the 4-PE / 5-slot configuration.

use sparseflex_accel::exec::simulate_ws;
use sparseflex_accel::AccelConfig;
use sparseflex_formats::{CooMatrix, MatrixData, MatrixFormat};

/// The walkthrough operands (matrix A 4x8, matrix B 8x4).
pub fn operands() -> (CooMatrix, CooMatrix) {
    let a = CooMatrix::from_triplets(
        4,
        8,
        vec![(0, 0, 1.0), (0, 2, 2.0), (0, 4, 3.0), (3, 5, 8.0)],
    )
    .unwrap();
    let b = CooMatrix::from_triplets(
        8,
        4,
        vec![
            (0, 0, 1.0),
            (0, 1, 4.0),
            (2, 0, 2.0),
            (3, 2, 6.0),
            (4, 0, 3.0),
            (5, 2, 7.0),
            (5, 3, 8.0),
            (7, 1, 5.0),
        ],
    )
    .unwrap();
    (a, b)
}

/// The three walkthrough rows (paper expectation: 8, 3, 4 cycles).
pub fn rows() -> Vec<String> {
    let cfg = AccelConfig::walkthrough();
    let (a, b) = operands();
    let cases = [
        (MatrixFormat::Dense, MatrixFormat::Dense, 8u64),
        (MatrixFormat::Csr, MatrixFormat::Csc, 3),
        (MatrixFormat::Coo, MatrixFormat::Dense, 4),
    ];
    let mut out = vec![
        "# fig6 walkthrough: 4 PEs, 5-slot bus, 8-element buffers".to_string(),
        "acf_a,acf_b,stream_cycles,paper_cycles,total_cycles,utilization".to_string(),
    ];
    for (fa, fb, paper) in cases {
        let r = simulate_ws(
            &MatrixData::encode(&a, &fa).unwrap(),
            &MatrixData::encode(&b, &fb).unwrap(),
            &cfg,
        )
        .expect("walkthrough ACFs are supported");
        out.push(format!(
            "{fa},{fb},{},{paper},{},{:.3}",
            r.cycles.stream_a,
            r.cycles.total(),
            r.counts.utilization()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn stream_cycles_match_paper_exactly() {
        let rows = super::rows();
        for line in &rows[2..] {
            let f: Vec<&str> = line.split(',').collect();
            assert_eq!(f[2], f[3], "simulated vs paper cycles differ in: {line}");
        }
    }
}

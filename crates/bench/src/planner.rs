//! Planner exhibit — plan latency cold vs cached, and plan-cache hit
//! rate / LRU-bound behavior under the Table III workload suite.
//!
//! [`rows`] emits the CSV series like every other exhibit;
//! [`snapshot_json`] renders the same measurements as the
//! machine-readable `results/BENCH_planner.json` perf snapshot that CI
//! uploads, so the planning layer's perf trajectory is tracked across
//! PRs alongside the pipeline's.

use crate::fig12::spgemm_workload;
use crate::fig13::spmm_workload;
use crate::pipeline::{bench_system, exhibit_operands};
use sparseflex_core::{PlanDiscipline, Planner};
use sparseflex_formats::{DataType, SparseMatrix};
use sparseflex_sage::SageWorkload;
use sparseflex_workloads::synth::random_matrix;
use sparseflex_workloads::TABLE_III;
use std::time::Instant;

/// Every matrix workload of the Table III suite, under both kernels —
/// the serving mix the plan cache is measured against.
pub fn suite_workloads() -> Vec<(String, SageWorkload)> {
    TABLE_III
        .iter()
        .filter(|s| !s.is_tensor())
        .flat_map(|spec| {
            [
                (format!("{}/SpGEMM", spec.name), spgemm_workload(spec)),
                (format!("{}/SpMM", spec.name), spmm_workload(spec)),
            ]
        })
        .collect()
}

/// One full measurement of the planner exhibit.
#[derive(Debug, Clone)]
pub struct PlannerMeasurement {
    /// Distinct workloads in the suite (10 matrix specs x 2 kernels).
    pub suite_plans: usize,
    /// Misses on the first (cold) pass over the suite.
    pub cold_misses: u64,
    /// Hits on the second (warm) pass over the suite.
    pub warm_hits: u64,
    /// Warm-pass hit rate (hits / plans).
    pub hit_rate: f64,
    /// Capacity of the deliberately undersized cache pass.
    pub bounded_capacity: usize,
    /// LRU evictions that undersized cache suffered over two passes.
    pub bounded_evictions: u64,
    /// Mean end-to-end `plan_job` latency with a cold cache (µs).
    pub plan_cold_us: f64,
    /// Mean end-to-end `plan_job` latency with a warm cache (µs).
    pub plan_cached_us: f64,
}

/// Measure the whole exhibit once.
pub fn measure() -> PlannerMeasurement {
    let sys = bench_system();
    let suite = suite_workloads();

    // Cache hit rate under the Table III suite: one cold pass, one warm.
    let planner = Planner::default();
    for (_, w) in &suite {
        planner.evaluate_cached(&sys.sage, w);
    }
    let cold = planner.cache.counters();
    for (_, w) in &suite {
        planner.evaluate_cached(&sys.sage, w);
    }
    let warm = planner.cache.counters().since(cold);

    // The bound at work: a cache smaller than the suite must evict (LRU)
    // yet never exceed its capacity.
    let bounded = Planner::with_capacity(8);
    for _ in 0..2 {
        for (_, w) in &suite {
            bounded.evaluate_cached(&sys.sage, w);
        }
    }
    assert!(bounded.cache.len() <= bounded.cache.capacity());

    // Plan latency, cold vs cached, on the first Fig. 12-class exhibit
    // shape (full plan_job: search-or-hit + tile schedule + prediction).
    let (_, m, k, n, nnz_a, nnz_b) = exhibit_operands()[0];
    let a = random_matrix(m, k, nnz_a, 42);
    let b = random_matrix(k, n, nnz_b, 43);
    let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
    let iters = 24u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        let cold_planner = Planner::default();
        cold_planner
            .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
            .expect("exhibit shape plans");
    }
    let plan_cold_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let warm_planner = Planner::default();
    warm_planner
        .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("exhibit shape plans");
    let t1 = Instant::now();
    for _ in 0..iters {
        warm_planner
            .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
            .expect("exhibit shape plans");
    }
    let plan_cached_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;

    PlannerMeasurement {
        suite_plans: suite.len(),
        cold_misses: cold.misses,
        warm_hits: warm.hits,
        hit_rate: warm.hits as f64 / suite.len() as f64,
        bounded_capacity: bounded.cache.capacity(),
        bounded_evictions: bounded.cache.evictions(),
        plan_cold_us,
        plan_cached_us,
    }
}

/// CSV rows (the `results/planner.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &PlannerMeasurement) -> Vec<String> {
    vec![
        "# planner layer: plan cache under the Table III suite + plan latency".to_string(),
        "suite_plans,cold_misses,warm_hits,hit_rate,bounded_capacity,bounded_evictions,\
         plan_cold_us,plan_cached_us"
            .to_string(),
        format!(
            "{},{},{},{:.4},{},{},{:.2},{:.2}",
            m.suite_plans,
            m.cold_misses,
            m.warm_hits,
            m.hit_rate,
            m.bounded_capacity,
            m.bounded_evictions,
            m.plan_cold_us,
            m.plan_cached_us
        ),
    ]
}

/// The machine-readable perf snapshot (`results/BENCH_planner.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &PlannerMeasurement) -> String {
    format!(
        "{{\n  \"suite\": {{\"plans\": {}, \"cold_misses\": {}, \"warm_hits\": {}, \
         \"hit_rate\": {:.4}}},\n  \"bounded\": {{\"capacity\": {}, \"evictions\": {}}},\n  \
         \"latency\": {{\"plan_cold_us\": {:.2}, \"plan_cached_us\": {:.2}}}\n}}",
        m.suite_plans,
        m.cold_misses,
        m.warm_hits,
        m.hit_rate,
        m.bounded_capacity,
        m.bounded_evictions,
        m.plan_cold_us,
        m.plan_cached_us
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pass_hits_every_suite_shape() {
        let m = measure();
        assert_eq!(m.suite_plans, 20, "10 matrix specs x 2 kernels");
        assert_eq!(m.cold_misses, 20, "cold pass must search everything");
        assert_eq!(m.warm_hits, 20, "warm pass must hit everything");
        assert!((m.hit_rate - 1.0).abs() < 1e-12);
        // The undersized cache is forced to evict but stays bounded.
        assert!(m.bounded_evictions > 0);
        assert_eq!(m.bounded_capacity, 8);
        // Latency numbers are real measurements.
        assert!(m.plan_cold_us > 0.0 && m.plan_cached_us > 0.0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let json = snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"suite\""));
        assert!(json.contains("\"bounded\""));
        assert!(json.contains("\"latency\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

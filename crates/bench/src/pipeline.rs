//! Pipeline exhibit — overlapped vs serial vs batched execution of the
//! tile-grained runtime (the end-to-end measurement of the paper's
//! "conversion overlaps with streaming" claim, plus the batch serving
//! throughput the ROADMAP asks for).
//!
//! [`rows`] emits the CSV series like every other exhibit;
//! [`snapshot_json`] renders the same measurements as the
//! machine-readable `results/BENCH_pipeline.json` perf snapshot that CI
//! uploads, so the perf trajectory is tracked across PRs.

use sparseflex_core::{BatchJob, FlexSystem, PipelineRun};
use sparseflex_formats::{DataType, MatrixFormat, SparseMatrix};
use sparseflex_sage::eval::ConversionMode;
use sparseflex_sage::{FormatChoice, SageWorkload};
use sparseflex_workloads::synth::random_matrix;

/// One measured pipeline workload.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Workload label (Fig. 12-class scaled shapes).
    pub name: &'static str,
    /// Stationary column tiles executed.
    pub tiles: usize,
    /// Total MINT conversion cycles (A prologue + every B tile).
    pub conv_cycles: u64,
    /// Total accelerator compute cycles.
    pub compute_cycles: u64,
    /// Double-buffered wall-clock total.
    pub overlapped_cycles: u64,
    /// Serial convert-then-compute total.
    pub serial_cycles: u64,
}

impl PipelinePoint {
    /// Serial-over-overlapped speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.overlapped_cycles.max(1) as f64
    }
}

/// Batch front-end measurement.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Jobs served.
    pub jobs: usize,
    /// Distinct workload shapes among them.
    pub distinct_shapes: usize,
    /// Virtual accelerator instances used.
    pub workers: usize,
    /// SAGE searches skipped via the plan cache.
    pub plan_cache_hits: u64,
    /// Modeled single-instance service cycles (sum of overlapped totals).
    pub total_overlapped_cycles: u64,
}

/// The measurement system: Fig. 6-class array scaled so the exhibit
/// workloads span several stationary residencies.
pub fn bench_system() -> FlexSystem {
    let mut sys = FlexSystem::default();
    sys.sage.accel.num_pes = 8;
    sys.sage.accel.pe_buffer_elems = 64;
    sys
}

/// The Fig. 12-class scaled workloads: same density classes as journals /
/// speech2 / m3plates, shrunk so the cycle-accurate simulator stays
/// bench-fast.
pub fn exhibit_operands() -> Vec<(&'static str, usize, usize, usize, usize, usize)> {
    // (name, m, k, n, nnz_a, nnz_b)
    vec![
        ("journals_scaled", 40, 40, 48, 1_200, 1_500),
        ("speech2_scaled", 77, 26, 76, 500, 480),
        ("m3plates_scaled", 110, 110, 128, 130, 140),
    ]
}

/// Run prebuilt operands through the pipelined runtime with a
/// conversion-bearing format choice (MCF COO → ACF CSC for the stationary
/// operand, so every tile exercises MINT).
pub fn exhibit_run(
    sys: &FlexSystem,
    a: &sparseflex_formats::CooMatrix,
    b: &sparseflex_formats::CooMatrix,
) -> PipelineRun {
    let w = SageWorkload::spgemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.nnz() as u64,
        b.nnz() as u64,
        DataType::Fp32,
    );
    let choice = FormatChoice {
        mcf_a: MatrixFormat::Csr,
        mcf_b: MatrixFormat::Coo,
        acf_a: MatrixFormat::Csr,
        acf_b: MatrixFormat::Csc,
    };
    let eval = sys
        .sage
        .evaluate(&w, &choice, ConversionMode::Hardware)
        .expect("exhibit choice evaluates");
    sys.run_pipelined_with_evaluation(a, b, eval, false)
        .expect("exhibit workload runs")
}

/// Generate one exhibit workload's operands and run it (see
/// [`exhibit_run`]).
pub fn run_exhibit(
    sys: &FlexSystem,
    m: usize,
    k: usize,
    n: usize,
    nnz_a: usize,
    nnz_b: usize,
    seed: u64,
) -> PipelineRun {
    let a = random_matrix(m, k, nnz_a, seed);
    let b = random_matrix(k, n, nnz_b, seed + 1);
    exhibit_run(sys, &a, &b)
}

/// Measure every exhibit workload.
pub fn measure_pipeline() -> Vec<PipelinePoint> {
    let sys = bench_system();
    exhibit_operands()
        .into_iter()
        .enumerate()
        .map(|(i, (name, m, k, n, nnz_a, nnz_b))| {
            let run = run_exhibit(&sys, m, k, n, nnz_a, nnz_b, 100 + i as u64);
            PipelinePoint {
                name,
                tiles: run.tiles.len(),
                conv_cycles: run.conversion_cycles(),
                compute_cycles: run.compute_cycles(),
                overlapped_cycles: run.overlapped_cycles(),
                serial_cycles: run.serial_cycles(),
            }
        })
        .collect()
}

/// The batch exhibit: 12 jobs over the 3 exhibit shapes served through
/// `run_batch`.
pub fn batch_jobs() -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    for round in 0..4u64 {
        for (i, (_, m, k, n, nnz_a, nnz_b)) in exhibit_operands().into_iter().enumerate() {
            jobs.push(BatchJob::spgemm(
                random_matrix(m, k, nnz_a, 200 + round * 10 + i as u64),
                random_matrix(k, n, nnz_b, 300 + round * 10 + i as u64),
                DataType::Fp32,
            ));
        }
    }
    jobs
}

/// Measure the batch front-end.
pub fn measure_batch() -> BatchPoint {
    let sys = bench_system();
    let jobs = batch_jobs();
    let batch = sys.run_batch(&jobs);
    assert_eq!(batch.succeeded(), jobs.len(), "every batch job must run");
    BatchPoint {
        jobs: jobs.len(),
        distinct_shapes: exhibit_operands().len(),
        workers: batch.workers,
        plan_cache_hits: batch.plan_cache_hits,
        total_overlapped_cycles: batch.total_overlapped_cycles(),
    }
}

/// One full measurement of the exhibit (pipeline points + batch): taken
/// once and rendered to both the CSV rows and the JSON snapshot, so
/// `run_all` does not simulate everything twice.
#[derive(Debug, Clone)]
pub struct PipelineMeasurement {
    /// Per-workload pipeline measurements.
    pub points: Vec<PipelinePoint>,
    /// The batch front-end measurement.
    pub batch: BatchPoint,
}

/// Measure the whole exhibit once.
pub fn measure() -> PipelineMeasurement {
    PipelineMeasurement {
        points: measure_pipeline(),
        batch: measure_batch(),
    }
}

/// CSV rows (the `results/pipeline.csv` exhibit).
pub fn rows() -> Vec<String> {
    rows_from(&measure())
}

/// Render a measurement as the CSV exhibit.
pub fn rows_from(m: &PipelineMeasurement) -> Vec<String> {
    let mut out = vec![
        "# pipeline overlapped vs serial execution + batch serving".to_string(),
        "workload,tiles,conv_cycles,compute_cycles,overlapped_cycles,serial_cycles,speedup"
            .to_string(),
    ];
    for p in &m.points {
        out.push(format!(
            "{},{},{},{},{},{},{:.4}",
            p.name,
            p.tiles,
            p.conv_cycles,
            p.compute_cycles,
            p.overlapped_cycles,
            p.serial_cycles,
            p.speedup()
        ));
    }
    let b = &m.batch;
    out.push(String::new());
    out.push("# batch front-end (run_batch over the exhibit shapes)".to_string());
    out.push("jobs,distinct_shapes,workers,plan_cache_hits,total_overlapped_cycles".to_string());
    out.push(format!(
        "{},{},{},{},{}",
        b.jobs, b.distinct_shapes, b.workers, b.plan_cache_hits, b.total_overlapped_cycles
    ));
    out
}

/// The machine-readable perf snapshot (`results/BENCH_pipeline.json`).
pub fn snapshot_json() -> String {
    json_from(&measure())
}

/// Render a measurement as the JSON perf snapshot.
pub fn json_from(m: &PipelineMeasurement) -> String {
    let points = &m.points;
    let batch = &m.batch;
    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"tiles\": {}, \"conv_cycles\": {}, \
             \"compute_cycles\": {}, \"overlapped_cycles\": {}, \"serial_cycles\": {}, \
             \"speedup\": {:.4}}}{}\n",
            p.name,
            p.tiles,
            p.conv_cycles,
            p.compute_cycles,
            p.overlapped_cycles,
            p.serial_cycles,
            p.speedup(),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"batch\": {{\"jobs\": {}, \"distinct_shapes\": {}, \"workers\": {}, \
         \"plan_cache_hits\": {}, \"total_overlapped_cycles\": {}}}\n",
        batch.jobs,
        batch.distinct_shapes,
        batch.workers,
        batch.plan_cache_hits,
        batch.total_overlapped_cycles
    ));
    json.push('}');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_strictly_beats_serial_on_every_exhibit_workload() {
        // The acceptance criterion, priced where CI can see it: on the
        // Fig. 12-class exhibit shapes the overlapped total is strictly
        // below the serial convert-then-compute total.
        for p in measure_pipeline() {
            assert!(p.tiles >= 2, "{}: too few tiles ({})", p.name, p.tiles);
            assert!(
                p.overlapped_cycles < p.serial_cycles,
                "{}: overlapped {} !< serial {}",
                p.name,
                p.overlapped_cycles,
                p.serial_cycles
            );
            assert!(p.speedup() > 1.0);
        }
    }

    #[test]
    fn batch_point_hits_the_plan_cache() {
        let b = measure_batch();
        assert_eq!(b.jobs, 12);
        // 12 jobs over 3 shapes: at least the 2nd..4th rounds of each
        // shape must reuse a cached plan (racing first rounds may miss).
        assert!(b.plan_cache_hits >= 6, "only {} hits", b.plan_cache_hits);
        assert!(b.total_overlapped_cycles > 0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let json = snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workloads\""));
        assert!(json.contains("\"batch\""));
        assert!(json.contains("journals_scaled"));
        // Balanced braces/brackets (hand-rolled JSON stays parseable).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

//! Table III — the workload suite with SAGE's MCF/ACF selections, in
//! both scenarios the paper tabulates: free MCF choice (left block) and
//! programmer-pinned MCF with dense factor (right block, where the
//! factor matrix arrives dense).

use crate::fig12::spgemm_workload;
use crate::fig13::spmm_workload;
use sparseflex_core::FlexSystem;
use sparseflex_formats::DataType;
use sparseflex_sage::TensorWorkload;
use sparseflex_workloads::{WorkloadShape, TABLE_III};

/// Table rows: characteristics + SAGE selections per kernel.
pub fn rows() -> Vec<String> {
    let sys = FlexSystem::default();
    let mut out = vec![
        "# table3 workloads and SAGE-selected formats".to_string(),
        "workload,shape,nnz,density_pct,kernel,mcf_a,mcf_b,acf_a,acf_b".to_string(),
    ];
    for spec in TABLE_III.iter() {
        let shape = match spec.shape {
            WorkloadShape::Matrix { rows, cols } => format!("{rows}x{cols}"),
            WorkloadShape::Tensor { x, y, z } => format!("{x}x{y}x{z}"),
        };
        let dens = spec.density() * 100.0;
        if spec.is_tensor() {
            let WorkloadShape::Tensor { x, y, z } = spec.shape else {
                unreachable!()
            };
            for (kname, mttkrp) in [("SpTTM", false), ("MTTKRP", true)] {
                let w = TensorWorkload {
                    mttkrp,
                    dims: (x, y, z),
                    nnz: spec.nnz as u64,
                    rank: (x / 2).max(1),
                    dtype: DataType::Fp32,
                };
                let rec = sys.sage.recommend_tensor(&w);
                out.push(format!(
                    "{},{shape},{},{dens:.4},{kname},{},Dense,{},Dense",
                    spec.name, spec.nnz, rec.choice.mcf_t, rec.choice.acf_t
                ));
            }
        } else {
            for (kname, w) in [
                ("SpGEMM", spgemm_workload(spec)),
                ("SpMM", spmm_workload(spec)),
            ] {
                let rec = sys.plan(&w);
                let c = &rec.evaluation.choice;
                out.push(format!(
                    "{},{shape},{},{dens:.4},{kname},{},{},{},{}",
                    spec.name, spec.nnz, c.mcf_a, c.mcf_b, c.acf_a, c.acf_b
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selections() -> Vec<(String, String, Vec<String>)> {
        rows()[2..]
            .iter()
            .map(|l| {
                let f: Vec<&str> = l.split(',').collect();
                (
                    f[0].to_string(),
                    f[4].to_string(),
                    f[5..].iter().map(|s| s.to_string()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn every_workload_gets_both_kernels() {
        let s = selections();
        assert_eq!(s.len(), 13 * 2);
    }

    #[test]
    fn extreme_sparse_workloads_avoid_dense_mcf_for_a() {
        // m3plates (0.0054%) and Uber (0.039%): the sparse operand's MCF
        // must be compressed, matching Table III (COO in the paper).
        for (name, _, sel) in selections() {
            if name == "m3plates" || name == "Uber" {
                assert_ne!(
                    sel[0], "Dense",
                    "{name} picked Dense MCF for the sparse operand"
                );
            }
        }
    }

    #[test]
    fn spmm_dense_factor_computes_dense() {
        // SpMM factor matrices are fully dense: storing or computing
        // them compressed can only add metadata, matching the paper's
        // MCFf = Dense / ACFf = Dense column for SpMM.
        for (name, kernel, sel) in selections() {
            if kernel == "SpMM" {
                assert_eq!(sel[1], "Dense", "{name} SpMM MCF_B");
                assert_eq!(sel[3], "Dense", "{name} SpMM ACF_B");
            }
        }
    }
}

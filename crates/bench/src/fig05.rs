//! Fig. 5 — execution time / SM util / memory util of four MM
//! algorithms (distinct ACFs) across density regions on the Titan-class
//! device model.

use sparseflex_host::device::{estimate_mm, DeviceModel, MmAlgorithm};

/// Fig. 5 series: density sweep at M = N = K = 11k.
pub fn rows() -> Vec<String> {
    let dev = DeviceModel::titan_rtx();
    let n = 11_000;
    let mut out = vec![
        "# fig5 device-model Titan RTX, M=N=K=11k".to_string(),
        format!(
            "density,{}",
            MmAlgorithm::all()
                .iter()
                .flat_map(|a| {
                    ["time_s", "sm_util", "mem_util"]
                        .iter()
                        .map(move |m| format!("{}:{m}", a.name()))
                })
                .collect::<Vec<_>>()
                .join(",")
        ),
    ];
    for i in 0..=32 {
        let dens = 10f64.powf(-8.0 + 8.0 * i as f64 / 32.0);
        let cells: Vec<String> = MmAlgorithm::all()
            .iter()
            .flat_map(|&a| {
                let e = estimate_mm(&dev, a, n, dens);
                vec![
                    format!("{:.4e}", e.time_s),
                    format!("{:.3}", e.sm_util),
                    format!("{:.3}", e.mem_util),
                ]
            })
            .collect();
        out.push(format!("{dens:.3e},{}", cells.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_expected_shape() {
        let rows = rows();
        assert_eq!(rows.len(), 2 + 33);
        assert_eq!(rows[2].split(',').count(), 1 + 4 * 3);
    }

    #[test]
    fn spgemm_fastest_at_extreme_sparsity_dense_fastest_when_dense() {
        let dev = DeviceModel::titan_rtx();
        let lo: Vec<f64> = MmAlgorithm::all()
            .iter()
            .map(|&a| estimate_mm(&dev, a, 11_000, 1e-8).time_s)
            .collect();
        assert!(
            lo[3] < lo[0],
            "SpGEMM {} should beat dense {} at 1e-6%",
            lo[3],
            lo[0]
        );
        let hi: Vec<f64> = MmAlgorithm::all()
            .iter()
            .map(|&a| estimate_mm(&dev, a, 11_000, 0.5).time_s)
            .collect();
        assert!(
            hi[0] < hi[1] && hi[0] < hi[3],
            "dense must win at 50%: {hi:?}"
        );
    }
}

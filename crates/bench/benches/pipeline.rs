//! Criterion group pricing the tile-grained runtime: monolithic
//! (serial convert-then-compute) vs pipelined (double-buffered tiles) vs
//! batched execution, on the Fig. 12-class exhibit shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use sparseflex_bench::pipeline::{batch_jobs, bench_system, exhibit_operands, exhibit_run};
use sparseflex_core::Planner;
use sparseflex_formats::{DataType, SparseMatrix};
use sparseflex_sage::SageWorkload;
use sparseflex_workloads::synth::random_matrix;

fn bench_overlapped_vs_serial(c: &mut Criterion) {
    let sys = bench_system();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for (i, (name, m, k, n, nnz_a, nnz_b)) in exhibit_operands().into_iter().enumerate() {
        let a = random_matrix(m, k, nnz_a, 100 + i as u64);
        let b = random_matrix(k, n, nnz_b, 101 + i as u64);
        let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
        // Wall-clock of the monolithic path (whole-operand conversion,
        // then compute) vs the tiled stage machine; the modeled cycle
        // ratio is in results/BENCH_pipeline.json.
        g.bench_function(&format!("monolithic/{name}"), |bench| {
            bench.iter(|| sys.run_functional(&a, &b, &w).expect("exhibit shape runs"))
        });
        g.bench_function(&format!("pipelined/{name}"), |bench| {
            bench.iter(|| exhibit_run(&sys, &a, &b))
        });
    }
    g.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let sys = bench_system();
    let jobs = batch_jobs();
    let mut g = c.benchmark_group("pipeline_batch");
    g.sample_size(10);
    // Cold cache: every shape pays one SAGE search (a fresh planner per
    // call isolates the cold case from the system's persistent cache).
    g.bench_function("batch_12_jobs_cold_cache", |bench| {
        bench.iter(|| sys.run_batch_with_planner(&jobs, &Planner::default()))
    });
    // Warm cache: the serving steady state — repeated shapes skip the
    // MCF x ACF search entirely.
    let planner = Planner::default();
    sys.run_batch_with_planner(&jobs, &planner);
    g.bench_function("batch_12_jobs_warm_cache", |bench| {
        bench.iter(|| sys.run_batch_with_planner(&jobs, &planner))
    });
    g.finish();
}

criterion_group!(benches, bench_overlapped_vs_serial, bench_batch_throughput);
criterion_main!(benches);

//! Ablation bench: the three Fig. 9 prefix-sum designs (functional scan
//! throughput plus modelled hardware cycle counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseflex_mint::blocks::prefix_sum::{PrefixSumDesign, PrefixSumUnit};
use sparseflex_mint::report::ConversionReport;

fn bench_prefix_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_sum");
    g.sample_size(20);
    let input: Vec<u64> = (0..100_000).map(|i| (i * 7 + 3) % 17).collect();
    for (name, design) in [
        ("serial_chain", PrefixSumDesign::SerialChain),
        ("work_efficient", PrefixSumDesign::WorkEfficient),
        ("highly_parallel", PrefixSumDesign::HighlyParallel),
    ] {
        let unit = PrefixSumUnit { width: 32, design };
        g.bench_with_input(BenchmarkId::new("scan", name), &unit, |b, u| {
            b.iter(|| {
                let mut rep = ConversionReport::default();
                u.scan(&input, &mut rep)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_prefix_designs);
criterion_main!(benches);

//! Ablation bench: cycle-accurate simulation throughput per ACF pair —
//! exercises the flexible buffer-partition datapath against the dense
//! baseline on the same operands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseflex_accel::exec::simulate_ws;
use sparseflex_accel::AccelConfig;
use sparseflex_formats::{MatrixData, MatrixFormat};
use sparseflex_workloads::synth::random_matrix;

fn bench_acf_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("acf_exec");
    g.sample_size(10);
    let cfg = AccelConfig {
        num_pes: 64,
        pe_buffer_elems: 128,
        ..AccelConfig::walkthrough()
    };
    let a = random_matrix(128, 256, 3_000, 11);
    let b = random_matrix(256, 64, 1_500, 12);
    for (name, fa, fb) in [
        ("dense_dense", MatrixFormat::Dense, MatrixFormat::Dense),
        ("csr_dense", MatrixFormat::Csr, MatrixFormat::Dense),
        ("csr_csc", MatrixFormat::Csr, MatrixFormat::Csc),
        ("coo_dense", MatrixFormat::Coo, MatrixFormat::Dense),
    ] {
        let da = MatrixData::encode(&a, &fa).unwrap();
        let db = MatrixData::encode(&b, &fb).unwrap();
        g.bench_with_input(BenchmarkId::new("simulate", name), &name, |bench, _| {
            bench.iter(|| simulate_ws(&da, &db, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_acf_pairs);
criterion_main!(benches);

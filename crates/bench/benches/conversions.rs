//! Criterion benches for format conversions: software reference vs the
//! metered MINT block engine (the measured companion to Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseflex_formats::{convert, CsrMatrix, RlcMatrix};
use sparseflex_mint::ConversionEngine;
use sparseflex_workloads::synth::random_matrix;

fn bench_conversions(c: &mut Criterion) {
    let mut g = c.benchmark_group("conversions");
    g.sample_size(10);
    let engine = ConversionEngine::default();
    for nnz in [10_000usize, 100_000] {
        let coo = random_matrix(2_000, 2_000, nnz, 9);
        let csr = CsrMatrix::from_coo(&coo);
        let rlc = RlcMatrix::from_coo(&coo, 4);
        g.bench_with_input(BenchmarkId::new("sw_csr_to_csc", nnz), &nnz, |b, _| {
            b.iter(|| convert::csr_to_csc(&csr))
        });
        g.bench_with_input(BenchmarkId::new("mint_csr_to_csc", nnz), &nnz, |b, _| {
            b.iter(|| engine.csr_to_csc(&csr))
        });
        g.bench_with_input(BenchmarkId::new("sw_rlc_to_coo", nnz), &nnz, |b, _| {
            b.iter(|| convert::rlc_to_coo(&rlc))
        });
        g.bench_with_input(BenchmarkId::new("mint_rlc_to_coo", nnz), &nnz, |b, _| {
            b.iter(|| engine.rlc_to_coo(&rlc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);

//! Criterion benches for the software kernels across density regions —
//! the measured companion to the Fig. 5 device-model sweep — plus the
//! `kernels_stream` group pricing the format-generic stream path against
//! the concrete fast paths it dispatches to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseflex_formats::{CsrMatrix, DenseMatrix, MatrixData, MatrixFormat, StreamArena};
use sparseflex_kernels::{
    gemm, spgemm, spgemm_rowwise, spmm, spmm_via_stream, spmm_via_stream_in, spmv, spmv_via_stream,
    spmv_via_stream_in,
};
use sparseflex_workloads::synth::{random_dense_matrix, random_matrix};

const N: usize = 384;

fn bench_mm_across_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("mm_density");
    g.sample_size(10);
    let b_dense = random_dense_matrix(N, N, 7);
    for dens in [0.001, 0.01, 0.1] {
        let nnz = ((N * N) as f64 * dens) as usize;
        let a = random_matrix(N, N, nnz, 1);
        let a_csr = MatrixData::Csr(CsrMatrix::from_coo(&a));
        let b_csr = MatrixData::Csr(CsrMatrix::from_coo(&random_matrix(N, N, nnz, 2)));
        g.bench_with_input(
            BenchmarkId::new("spmm_csr_dense", dens),
            &dens,
            |bench, _| bench.iter(|| spmm(&a_csr, &b_dense).expect("shapes agree")),
        );
        g.bench_with_input(
            BenchmarkId::new("spgemm_csr_csr", dens),
            &dens,
            |bench, _| bench.iter(|| spgemm(&a_csr, &b_csr).expect("shapes agree")),
        );
        g.bench_with_input(
            BenchmarkId::new("spgemm_rowwise_csr_csr", dens),
            &dens,
            |bench, _| bench.iter(|| spgemm_rowwise(&a_csr, &b_csr).expect("shapes agree")),
        );
    }
    let a_dense: DenseMatrix = random_dense_matrix(N, N, 3);
    g.bench_function("gemm_dense", |bench| {
        bench.iter(|| gemm(&a_dense, &b_dense))
    });
    g.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    let a = random_matrix(1024, 1024, 100_000, 4);
    let a_csr = MatrixData::Csr(CsrMatrix::from_coo(&a));
    let b = random_dense_matrix(1024, 256, 5);
    g.bench_function("spmm_sequential", |bench| {
        bench.iter(|| spmm(&a_csr, &b).expect("shapes agree"))
    });
    g.bench_function("spmm_parallel", |bench| {
        bench.iter(|| sparseflex_kernels::spmm_parallel(&a_csr, &b).expect("shapes agree"))
    });
    g.finish();
}

/// Generic-stream vs concrete fast-path: the dispatch overhead of the
/// format-agnostic API, and the cost of streaming formats with no
/// dedicated kernel. `spmv`/`spmm` on a CSR operand dispatch to the tuned
/// row loop; the `via_stream` rows force the same operand through the
/// fiber-stream consumer; the ZVC rows show a hub-only format running a
/// kernel that previously required pre-conversion to CSR.
fn bench_stream_vs_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_stream");
    g.sample_size(10);
    let nnz = ((N * N) as f64 * 0.01) as usize;
    let coo = random_matrix(N, N, nnz, 6);
    let a_csr = MatrixData::Csr(CsrMatrix::from_coo(&coo));
    let a_zvc = MatrixData::encode(&coo, &MatrixFormat::Zvc).expect("ZVC encodes any matrix");
    let b = random_dense_matrix(N, 64, 8);
    let x: Vec<f64> = (0..N).map(|i| (i % 13) as f64 - 6.0).collect();

    g.bench_function("spmv_csr_fast_path", |bench| {
        bench.iter(|| spmv(&a_csr, &x).expect("shapes agree"))
    });
    g.bench_function("spmv_csr_via_stream", |bench| {
        bench.iter(|| spmv_via_stream(&a_csr, &x).expect("shapes agree"))
    });
    g.bench_function("spmv_zvc_stream", |bench| {
        bench.iter(|| spmv(&a_zvc, &x).expect("shapes agree"))
    });
    g.bench_function("spmv_zvc_stream_warm_arena", |bench| {
        let mut arena = StreamArena::new();
        bench.iter(|| spmv_via_stream_in(&mut arena, &a_zvc, &x).expect("shapes agree"))
    });
    g.bench_function("spmm_csr_fast_path", |bench| {
        bench.iter(|| spmm(&a_csr, &b).expect("shapes agree"))
    });
    g.bench_function("spmm_csr_via_stream", |bench| {
        bench.iter(|| spmm_via_stream(&a_csr, &b).expect("shapes agree"))
    });
    g.bench_function("spmm_zvc_stream", |bench| {
        bench.iter(|| spmm(&a_zvc, &b).expect("shapes agree"))
    });
    g.bench_function("spmm_zvc_stream_warm_arena", |bench| {
        let mut arena = StreamArena::new();
        bench.iter(|| spmm_via_stream_in(&mut arena, &a_zvc, &b).expect("shapes agree"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mm_across_density,
    bench_parallel_speedup,
    bench_stream_vs_fast_path
);
criterion_main!(benches);

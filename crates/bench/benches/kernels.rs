//! Criterion benches for the software kernels across density regions —
//! the measured companion to the Fig. 5 device-model sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseflex_formats::{CsrMatrix, DenseMatrix};
use sparseflex_kernels::{gemm, spgemm, spmm_csr_dense, spmm_csr_dense_parallel};
use sparseflex_workloads::synth::{random_dense_matrix, random_matrix};

const N: usize = 384;

fn bench_mm_across_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("mm_density");
    g.sample_size(10);
    let b_dense = random_dense_matrix(N, N, 7);
    for dens in [0.001, 0.01, 0.1] {
        let nnz = ((N * N) as f64 * dens) as usize;
        let a = random_matrix(N, N, nnz, 1);
        let a_csr = CsrMatrix::from_coo(&a);
        let b_csr = CsrMatrix::from_coo(&random_matrix(N, N, nnz, 2));
        g.bench_with_input(
            BenchmarkId::new("spmm_csr_dense", dens),
            &dens,
            |bench, _| bench.iter(|| spmm_csr_dense(&a_csr, &b_dense)),
        );
        g.bench_with_input(
            BenchmarkId::new("spgemm_csr_csr", dens),
            &dens,
            |bench, _| bench.iter(|| spgemm(&a_csr, &b_csr)),
        );
    }
    let a_dense: DenseMatrix = random_dense_matrix(N, N, 3);
    g.bench_function("gemm_dense", |bench| {
        bench.iter(|| gemm(&a_dense, &b_dense))
    });
    g.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    let a = random_matrix(1024, 1024, 100_000, 4);
    let a_csr = CsrMatrix::from_coo(&a);
    let b = random_dense_matrix(1024, 256, 5);
    g.bench_function("spmm_sequential", |bench| {
        bench.iter(|| spmm_csr_dense(&a_csr, &b))
    });
    g.bench_function("spmm_parallel", |bench| {
        bench.iter(|| spmm_csr_dense_parallel(&a_csr, &b))
    });
    g.finish();
}

criterion_group!(benches, bench_mm_across_density, bench_parallel_speedup);
criterion_main!(benches);

//! Criterion group pricing the planner layer: end-to-end `plan_job`
//! latency cold (full SAGE MCF×ACF search) vs cached (bounded LRU plan
//! cache hit), plus the warm serving pass over the Table III suite.

use criterion::{criterion_group, criterion_main, Criterion};
use sparseflex_bench::pipeline::{bench_system, exhibit_operands};
use sparseflex_bench::planner::suite_workloads;
use sparseflex_core::{PlanDiscipline, Planner};
use sparseflex_formats::{DataType, SparseMatrix};
use sparseflex_sage::SageWorkload;
use sparseflex_workloads::synth::random_matrix;

fn bench_plan_latency(c: &mut Criterion) {
    let sys = bench_system();
    let (_, m, k, n, nnz_a, nnz_b) = exhibit_operands()[0];
    let a = random_matrix(m, k, nnz_a, 42);
    let b = random_matrix(k, n, nnz_b, 43);
    let w = SageWorkload::spgemm(m, k, n, a.nnz() as u64, b.nnz() as u64, DataType::Fp32);
    let mut g = c.benchmark_group("planner");
    g.sample_size(10);
    // Cold: a fresh planner per call pays the full MCF x ACF search.
    g.bench_function("plan_job_cold", |bench| {
        bench.iter(|| {
            Planner::default()
                .plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
                .expect("exhibit shape plans")
        })
    });
    // Cached: the serving steady state — the search is a cache hit and
    // only the tile schedule + prediction are rebuilt per job.
    let warm = Planner::default();
    warm.plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
        .expect("exhibit shape plans");
    g.bench_function("plan_job_cached", |bench| {
        bench.iter(|| {
            warm.plan_job(&sys.sage, &a, &b, &w, PlanDiscipline::Pipelined)
                .expect("exhibit shape plans")
        })
    });
    g.finish();
}

fn bench_suite_hit_rate(c: &mut Criterion) {
    let sys = bench_system();
    let suite = suite_workloads();
    let mut g = c.benchmark_group("planner_suite");
    g.sample_size(10);
    // One warm pass over the whole Table III serving mix (26 workloads),
    // every evaluation a cache hit.
    let planner = Planner::default();
    for (_, w) in &suite {
        planner.evaluate_cached(&sys.sage, w);
    }
    g.bench_function("table3_suite_warm_pass", |bench| {
        bench.iter(|| {
            for (_, w) in &suite {
                planner.evaluate_cached(&sys.sage, w);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_plan_latency, bench_suite_hit_rate);
criterion_main!(benches);

//! The Table I / Table II accelerator taxonomy.
//!
//! Table I classifies accelerators by the *freedom* of their MCF and ACF
//! and by where conversion happens; Table II instantiates one
//! representative per class for the evaluation. This module encodes both
//! so every bench can iterate the same baseline suite the paper does.

use sparseflex_formats::rlc::DEFAULT_RUN_BITS;
use sparseflex_formats::MatrixFormat;

const RLC: MatrixFormat = MatrixFormat::Rlc {
    run_bits: DEFAULT_RUN_BITS,
};

/// Freedom of a format choice (the Fix/Flex columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatFreedom {
    /// One hard-wired format (pair).
    Fixed,
    /// Multiple supported formats.
    Flexible,
}

/// Where (and whether) format conversion happens (Table I "Conv").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConversionSupport {
    /// MCF must equal ACF — no converter exists.
    None,
    /// Conversion runs in software on the host (MKL / cuSPARSE).
    Software,
    /// Conversion runs in dedicated hardware next to the accelerator
    /// (MINT in this work; fixed decompressors in prior work).
    Hardware,
}

/// One MCF/ACF pair for the two operands `(A, B)`.
pub type FormatPair = (MatrixFormat, MatrixFormat);

/// A Table II accelerator class.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorClass {
    /// Taxonomy name (e.g. `Fix_Fix_None`).
    pub name: &'static str,
    /// Representative design from the paper (e.g. "TPUv1").
    pub example: &'static str,
    /// MCF freedom.
    pub mcf_freedom: FormatFreedom,
    /// ACF freedom.
    pub acf_freedom: FormatFreedom,
    /// Conversion support.
    pub conversion: ConversionSupport,
    /// MCF pairs the design can store operands in.
    pub mcfs: Vec<FormatPair>,
    /// ACF pairs the design can compute in.
    pub acfs: Vec<FormatPair>,
}

impl AcceleratorClass {
    /// `Fix_Fix_None` — TPUv1: Dense-Dense storage and compute, no
    /// conversion.
    pub fn fix_fix_none() -> Self {
        AcceleratorClass {
            name: "Fix_Fix_None",
            example: "TPUv1",
            mcf_freedom: FormatFreedom::Fixed,
            acf_freedom: FormatFreedom::Fixed,
            conversion: ConversionSupport::None,
            mcfs: vec![(MatrixFormat::Dense, MatrixFormat::Dense)],
            acfs: vec![(MatrixFormat::Dense, MatrixFormat::Dense)],
        }
    }

    /// `Fix_Fix_None2` — EIE: CSR-Dense and Dense-CSC, identical MCF and
    /// ACF, no conversion.
    pub fn fix_fix_none2() -> Self {
        let pairs = vec![
            (MatrixFormat::Csr, MatrixFormat::Dense),
            (MatrixFormat::Dense, MatrixFormat::Csc),
        ];
        AcceleratorClass {
            name: "Fix_Fix_None2",
            example: "EIE",
            mcf_freedom: FormatFreedom::Fixed,
            acf_freedom: FormatFreedom::Fixed,
            conversion: ConversionSupport::None,
            mcfs: pairs.clone(),
            acfs: pairs,
        }
    }

    /// `Fix_Flex_HW` — SIGMA: fixed ZVC-ZVC storage, flexible compute
    /// formats, hardware decoder.
    pub fn fix_flex_hw() -> Self {
        AcceleratorClass {
            name: "Fix_Flex_HW",
            example: "SIGMA",
            mcf_freedom: FormatFreedom::Fixed,
            acf_freedom: FormatFreedom::Flexible,
            conversion: ConversionSupport::Hardware,
            mcfs: vec![(MatrixFormat::Zvc, MatrixFormat::Zvc)],
            acfs: vec![
                (MatrixFormat::Csr, MatrixFormat::Dense),
                (MatrixFormat::Dense, MatrixFormat::Csc),
                (MatrixFormat::Dense, MatrixFormat::Dense),
            ],
        }
    }

    /// `Flex_Fix_HW` — NVDLA: ZVC or Dense storage, dense-only compute,
    /// hardware ZVC decompressor.
    pub fn flex_fix_hw() -> Self {
        AcceleratorClass {
            name: "Flex_Fix_HW",
            example: "NVDLA",
            mcf_freedom: FormatFreedom::Flexible,
            acf_freedom: FormatFreedom::Fixed,
            conversion: ConversionSupport::Hardware,
            mcfs: vec![
                (MatrixFormat::Dense, MatrixFormat::Zvc),
                (MatrixFormat::Dense, MatrixFormat::Dense),
                (MatrixFormat::Zvc, MatrixFormat::Zvc),
                (MatrixFormat::Zvc, MatrixFormat::Dense),
            ],
            acfs: vec![(MatrixFormat::Dense, MatrixFormat::Dense)],
        }
    }

    /// `Flex_Flex_None` — ExTensor: several formats, but MCF must equal
    /// ACF (no converter).
    pub fn flex_flex_none() -> Self {
        let pairs = vec![
            (MatrixFormat::Csr, MatrixFormat::Dense),
            (MatrixFormat::Csr, MatrixFormat::Csc),
            (MatrixFormat::Dense, MatrixFormat::Dense),
            (MatrixFormat::Dense, MatrixFormat::Csc),
        ];
        AcceleratorClass {
            name: "Flex_Flex_None",
            example: "ExTensor",
            mcf_freedom: FormatFreedom::Flexible,
            acf_freedom: FormatFreedom::Flexible,
            conversion: ConversionSupport::None,
            mcfs: pairs.clone(),
            acfs: pairs,
        }
    }

    /// `Flex_Flex_SW` — CPU/GPU libraries: any MCF, any ACF, conversion
    /// offloaded to the host.
    pub fn flex_flex_sw() -> Self {
        AcceleratorClass {
            name: "Flex_Flex_SW",
            example: "MKL/cuSPARSE",
            mcf_freedom: FormatFreedom::Flexible,
            acf_freedom: FormatFreedom::Flexible,
            conversion: ConversionSupport::Software,
            mcfs: Self::full_mcf_pairs(),
            acfs: Self::full_acf_pairs(),
        }
    }

    /// `Flex_Flex_HW` — this work: any MCF, any ACF, MINT conversion
    /// beside the accelerator, SAGE choosing the combination.
    pub fn flex_flex_hw() -> Self {
        AcceleratorClass {
            name: "Flex_Flex_HW",
            example: "This work",
            mcf_freedom: FormatFreedom::Flexible,
            acf_freedom: FormatFreedom::Flexible,
            conversion: ConversionSupport::Hardware,
            mcfs: Self::full_mcf_pairs(),
            acfs: Self::full_acf_pairs(),
        }
    }

    /// All MCF pairs over the paper's six-format MCF set.
    pub fn full_mcf_pairs() -> Vec<FormatPair> {
        let set = [
            MatrixFormat::Dense,
            RLC,
            MatrixFormat::Zvc,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
        ];
        let mut out = Vec::with_capacity(36);
        for a in set {
            for b in set {
                out.push((a, b));
            }
        }
        out
    }

    /// All ACF pairs the WS array supports: A in {Dense, CSR, COO, CSC}
    /// x B in {Dense, CSC}, plus the CSR-CSR SpGEMM dataflow.
    pub fn full_acf_pairs() -> Vec<FormatPair> {
        let mut out = Vec::new();
        for a in [
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Coo,
            MatrixFormat::Csc,
        ] {
            for b in [MatrixFormat::Dense, MatrixFormat::Csc] {
                out.push((a, b));
            }
        }
        out.push((MatrixFormat::Csr, MatrixFormat::Csr));
        out
    }

    /// The Table II evaluation suite in paper order (software-conversion
    /// class included; the GPU/CPU baselines live in `sparseflex-host`).
    pub fn table2_suite() -> Vec<AcceleratorClass> {
        vec![
            Self::fix_fix_none(),
            Self::fix_fix_none2(),
            Self::fix_flex_hw(),
            Self::flex_flex_none(),
            Self::flex_fix_hw(),
            Self::flex_flex_sw(),
            Self::flex_flex_hw(),
        ]
    }

    /// Does this class require MCF == ACF (no converter)?
    pub fn requires_identity_conversion(&self) -> bool {
        self.conversion == ConversionSupport::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_classes_in_paper_order() {
        let suite = AcceleratorClass::table2_suite();
        let names: Vec<_> = suite.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "Fix_Fix_None",
                "Fix_Fix_None2",
                "Fix_Flex_HW",
                "Flex_Flex_None",
                "Flex_Fix_HW",
                "Flex_Flex_SW",
                "Flex_Flex_HW"
            ]
        );
    }

    #[test]
    fn tpu_is_dense_only() {
        let tpu = AcceleratorClass::fix_fix_none();
        assert_eq!(tpu.mcfs, vec![(MatrixFormat::Dense, MatrixFormat::Dense)]);
        assert!(tpu.requires_identity_conversion());
    }

    #[test]
    fn none_classes_have_equal_mcf_acf_sets() {
        for class in [
            AcceleratorClass::fix_fix_none2(),
            AcceleratorClass::flex_flex_none(),
        ] {
            assert_eq!(
                class.mcfs, class.acfs,
                "{} must pair MCF == ACF",
                class.name
            );
            assert!(class.requires_identity_conversion());
        }
    }

    #[test]
    fn this_work_has_full_cross_product() {
        let work = AcceleratorClass::flex_flex_hw();
        assert_eq!(work.mcfs.len(), 36);
        assert_eq!(work.acfs.len(), 9);
        assert_eq!(work.conversion, ConversionSupport::Hardware);
    }

    #[test]
    fn nvdla_computes_dense_only() {
        let n = AcceleratorClass::flex_fix_hw();
        assert_eq!(n.acfs, vec![(MatrixFormat::Dense, MatrixFormat::Dense)]);
        assert!(n
            .mcfs
            .iter()
            .any(|(a, b)| *a == MatrixFormat::Zvc || *b == MatrixFormat::Zvc));
    }
}

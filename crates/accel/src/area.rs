//! Area and power model for the PE array (Fig. 7b).
//!
//! The paper reports that extending a base PE (vector MAC, weight buffer,
//! output registers) with the flexible-ACF machinery (metadata
//! comparators, a one-hot-to-binary encoder, data/metadata flags and the
//! valid-data address generator) "increases the size of a PE with 128B
//! buffer by ~10%" (Fig. 7b). We model component areas in normalized
//! units calibrated so that ratio holds, then scale to the evaluation
//! configuration.

use crate::config::AccelConfig;

/// Area accounting in mm² (28nm-class, calibrated to the paper's reported
/// ratios rather than to a real PDK).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One MAC lane (fp32 multiply + add).
    pub mac_lane_mm2: f64,
    /// SRAM per byte of PE buffer.
    pub sram_per_byte_mm2: f64,
    /// Control/registers fixed per PE.
    pub pe_control_mm2: f64,
    /// One metadata comparator.
    pub comparator_mm2: f64,
    /// One-hot-to-binary encoder + valid-data address generator.
    pub encoder_mm2: f64,
}

impl AreaModel {
    /// Default constants. Calibrated so an 8-lane PE with a 128 B buffer
    /// gains ~10% area from the sparse extensions (Fig. 7b).
    pub const fn default_28nm() -> Self {
        AreaModel {
            mac_lane_mm2: 600e-6,
            sram_per_byte_mm2: 25e-6,
            pe_control_mm2: 400e-6,
            comparator_mm2: 45e-6,
            encoder_mm2: 150e-6,
        }
    }

    /// Area of a base (dense-only) PE with the given lanes and buffer.
    pub fn base_pe_mm2(&self, vector_width: usize, buffer_bytes: u64) -> f64 {
        self.mac_lane_mm2 * vector_width as f64
            + self.sram_per_byte_mm2 * buffer_bytes as f64
            + self.pe_control_mm2
    }

    /// Area of the extended PE: base + one comparator per vector lane
    /// (index matching is lane-parallel) + encoder/address generator.
    pub fn extended_pe_mm2(&self, vector_width: usize, buffer_bytes: u64) -> f64 {
        self.base_pe_mm2(vector_width, buffer_bytes)
            + self.comparator_mm2 * vector_width as f64
            + self.encoder_mm2
    }

    /// Fractional overhead of the extension for a PE configuration.
    pub fn extension_overhead(&self, vector_width: usize, buffer_bytes: u64) -> f64 {
        let base = self.base_pe_mm2(vector_width, buffer_bytes);
        (self.extended_pe_mm2(vector_width, buffer_bytes) - base) / base
    }

    /// Total PE-array area for a configuration (extended PEs).
    pub fn array_mm2(&self, cfg: &AccelConfig) -> f64 {
        self.extended_pe_mm2(cfg.vector_width, cfg.pe_buffer_bytes()) * cfg.num_pes as f64
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::default_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7b_extension_overhead_near_ten_percent() {
        // "the extension increases the size of a PE with 128B buffer by
        // ~10%. We use a PE with vector size of eight 32-bit compute
        // units."
        let a = AreaModel::default_28nm();
        let ovh = a.extension_overhead(8, 128);
        assert!((0.05..0.15).contains(&ovh), "overhead {ovh} not ~10%");
    }

    #[test]
    fn bigger_buffer_dilutes_overhead() {
        let a = AreaModel::default_28nm();
        let small = a.extension_overhead(8, 128);
        let large = a.extension_overhead(8, 512);
        assert!(large < small);
    }

    #[test]
    fn array_area_scales_with_pe_count() {
        let a = AreaModel::default_28nm();
        let mut cfg = AccelConfig::paper();
        let full = a.array_mm2(&cfg);
        cfg.num_pes /= 2;
        let half = a.array_mm2(&cfg);
        assert!((full - 2.0 * half).abs() < 1e-9);
    }

    #[test]
    fn paper_array_area_is_plausible() {
        // 2048 extended PEs with 512B buffers should land in the tens of
        // mm² — the scale of a real 16K-MAC accelerator die.
        let a = AreaModel::default_28nm();
        let area = a.array_mm2(&AccelConfig::paper());
        assert!((10.0..100.0).contains(&area), "array area {area} mm2");
    }
}

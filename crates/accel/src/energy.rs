//! Per-operation energy model.
//!
//! Constants follow the Horowitz ISSCC'14 survey the paper cites (§I:
//! "a data transfer from DRAM can cost 6400x more energy than an add
//! operation"): with an int32 add at 0.1 pJ, a 32-bit DRAM access costs
//! 640 pJ — exactly the 6400x ratio. On-chip storage sits between the two
//! (global SRAM ~50 pJ, small PE buffers ~5 pJ per 32-bit access).
//! Absolute joules will differ from the authors' 28nm testbed; every
//! downstream comparison is relative (normalized EDP), which these ratios
//! preserve.

/// Energy constants in joules per event (32-bit granularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One int32 add (the paper's 1x reference).
    pub add_int32: f64,
    /// One fp32 multiply-accumulate (vector MAC lane-op).
    pub mac_fp32: f64,
    /// One 32-bit access to a PE-local buffer.
    pub pe_buffer_access: f64,
    /// One 32-bit access to the global shared scratchpad.
    pub global_buffer_access: f64,
    /// Moving one 32-bit element one hop on the bus/NoC.
    pub noc_transfer: f64,
    /// One 32-bit DRAM access (6400x `add_int32`).
    pub dram_access: f64,
}

impl EnergyModel {
    /// Default 28nm-class constants (joules).
    pub const fn default_28nm() -> Self {
        EnergyModel {
            add_int32: 0.1e-12,
            mac_fp32: 4.6e-12,
            pe_buffer_access: 5.0e-12,
            global_buffer_access: 50.0e-12,
            noc_transfer: 2.0e-12,
            dram_access: 640.0e-12,
        }
    }

    /// DRAM energy per bit (the 32-bit access cost spread over 32 bits).
    pub fn dram_per_bit(&self) -> f64 {
        self.dram_access / 32.0
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_28nm()
    }
}

/// Energy totals accumulated by a simulation or analytic model run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Compute energy (MAC operations).
    pub compute: f64,
    /// PE buffer read/write energy.
    pub pe_buffer: f64,
    /// Global scratchpad energy.
    pub global_buffer: f64,
    /// Bus/NoC transfer energy.
    pub noc: f64,
    /// DRAM transfer energy.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.compute + self.pe_buffer + self.global_buffer + self.noc + self.dram
    }

    /// Element-wise sum of two breakdowns.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute: self.compute + other.compute,
            pe_buffer: self.pe_buffer + other.pe_buffer,
            global_buffer: self.global_buffer + other.global_buffer,
            noc: self.noc + other.noc,
            dram: self.dram + other.dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_is_6400x_add() {
        let e = EnergyModel::default_28nm();
        let ratio = e.dram_access / e.add_int32;
        assert!((ratio - 6400.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn hierarchy_is_monotonic() {
        // Energy must grow strictly with distance from the PE.
        let e = EnergyModel::default_28nm();
        assert!(e.pe_buffer_access < e.global_buffer_access);
        assert!(e.global_buffer_access < e.dram_access);
        assert!(e.noc_transfer < e.global_buffer_access);
    }

    #[test]
    fn breakdown_totals() {
        let a = EnergyBreakdown {
            compute: 1.0,
            pe_buffer: 2.0,
            global_buffer: 3.0,
            noc: 4.0,
            dram: 5.0,
        };
        assert_eq!(a.total(), 15.0);
        let b = a.add(&a);
        assert_eq!(b.total(), 30.0);
        assert_eq!(b.dram, 10.0);
    }
}

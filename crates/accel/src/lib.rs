//! # sparseflex-accel
//!
//! Cycle-level functional simulator of the paper's accelerator template
//! (§IV): an array of PEs with vector MAC units connected to a global
//! scratchpad by a broadcast bus, running a **weight-stationary** (WS)
//! dataflow — columns of matrix `B` stay resident in PE buffers while
//! matrix `A` streams in.
//!
//! The paper's two microarchitecture extensions are modelled faithfully:
//!
//! 1. **Flexible buffer partitioning** — each PE buffer entry can hold
//!    operand data *or* format metadata, so the same PE executes Dense,
//!    COO, CSR and CSC ACFs ([`exec`]).
//! 2. **Metadata comparators + one-hot-to-binary encoding** for index
//!    matching of sparse stationary operands.
//!
//! Three model layers are provided and cross-validated by tests:
//!
//! - [`exec`] — cycle-accurate functional simulation (walks every bus
//!   beat, produces the actual output matrix and exact cycle counts).
//!   Reproduces the Fig. 6 walkthrough exactly (8 / 3 / 4 cycles).
//! - [`model`] — analytic cycle/energy estimates from matrix *structure*
//!   (per-row populations; exact w.r.t. `exec`) or from *statistics*
//!   (dims + nnz only; the layer SAGE uses).
//! - [`taxonomy`] — the Table I / Table II accelerator classes
//!   (`Fix_Fix_None` … `Flex_Flex_HW`) with their MCF/ACF freedom.
//!
//! Supporting models: [`energy`] (Horowitz-style per-op energies, DRAM ≈
//! 6400x an int32 add as the paper cites), [`dram`] (bandwidth + energy of
//! MCF transfers), [`area`] (PE area, +10% extended-PE overhead of
//! Fig. 7b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bus;
pub mod config;
pub mod dram;
pub mod energy;
pub mod exec;
pub mod model;
pub mod taxonomy;

pub use bus::{BusPacking, StreamBeats};
pub use config::AccelConfig;
pub use dram::DramModel;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use exec::{simulate_spgemm, simulate_ws, ActivityCounts, CycleBreakdown, SimResult};
pub use model::{AnalyticCycles, StructureModel};
pub use taxonomy::{AcceleratorClass, ConversionSupport, FormatFreedom};

//! DRAM transfer model: cycles and energy of moving an MCF-encoded
//! operand between DRAM and the accelerator's global scratchpad.
//!
//! This is the "cost model" half of SAGE (§VI): "the cost model first
//! predicts the DRAM energy consumption and transfer cycles cost. This is
//! directly proportional to the compression size of the MCF."

use crate::energy::EnergyModel;
use sparseflex_formats::size_model::{matrix_storage_bits, tensor_storage_bits};
use sparseflex_formats::{DataType, MatrixFormat, TensorFormat};

/// DRAM interface parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bits per accelerator cycle. The paper's
    /// 512-bit input bus is fed at line rate, so 512 bits/cycle at 1 GHz
    /// = 64 GB/s — HBM-class.
    pub bits_per_cycle: u64,
    /// Energy accounting constants.
    pub energy: EnergyModel,
}

impl DramModel {
    /// Default model matched to the paper configuration.
    pub fn paper() -> Self {
        DramModel {
            bits_per_cycle: 512,
            energy: EnergyModel::default_28nm(),
        }
    }

    /// Cycles to transfer `bits` of payload.
    pub fn transfer_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bits_per_cycle)
    }

    /// Energy (J) to transfer `bits` of payload.
    pub fn transfer_energy(&self, bits: u64) -> f64 {
        bits as f64 * self.energy.dram_per_bit()
    }

    /// Cycles to fetch a matrix operand stored in `mcf`.
    pub fn matrix_fetch_cycles(
        &self,
        mcf: &MatrixFormat,
        rows: usize,
        cols: usize,
        nnz: usize,
        dtype: DataType,
    ) -> u64 {
        self.transfer_cycles(matrix_storage_bits(mcf, rows, cols, nnz, dtype))
    }

    /// Energy to fetch a matrix operand stored in `mcf`.
    pub fn matrix_fetch_energy(
        &self,
        mcf: &MatrixFormat,
        rows: usize,
        cols: usize,
        nnz: usize,
        dtype: DataType,
    ) -> f64 {
        self.transfer_energy(matrix_storage_bits(mcf, rows, cols, nnz, dtype))
    }

    /// Cycles to fetch a tensor operand stored in `mcf`.
    pub fn tensor_fetch_cycles(
        &self,
        mcf: &TensorFormat,
        dims: (usize, usize, usize),
        nnz: usize,
        dtype: DataType,
    ) -> u64 {
        self.transfer_cycles(tensor_storage_bits(mcf, dims, nnz, dtype))
    }

    /// Energy to fetch a tensor operand stored in `mcf`.
    pub fn tensor_fetch_energy(
        &self,
        mcf: &TensorFormat,
        dims: (usize, usize, usize),
        nnz: usize,
        dtype: DataType,
    ) -> f64 {
        self.transfer_energy(tensor_storage_bits(mcf, dims, nnz, dtype))
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_round_up() {
        let d = DramModel::paper();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(1), 1);
        assert_eq!(d.transfer_cycles(512), 1);
        assert_eq!(d.transfer_cycles(513), 2);
    }

    #[test]
    fn energy_proportional_to_size() {
        let d = DramModel::paper();
        let e1 = d.transfer_energy(1000);
        let e2 = d.transfer_energy(2000);
        assert!((e2 - 2.0 * e1).abs() < 1e-18);
    }

    #[test]
    fn compact_mcf_costs_less() {
        // Fig. 4's whole point: at 1% density, CSR transfers fewer bits
        // than Dense, so fewer cycles and less energy.
        let d = DramModel::paper();
        let (m, k) = (1000, 1000);
        let nnz = 10_000;
        let csr = d.matrix_fetch_cycles(&MatrixFormat::Csr, m, k, nnz, DataType::Fp32);
        let dense = d.matrix_fetch_cycles(&MatrixFormat::Dense, m, k, nnz, DataType::Fp32);
        assert!(csr < dense / 10, "csr {csr} vs dense {dense}");
        let e_csr = d.matrix_fetch_energy(&MatrixFormat::Csr, m, k, nnz, DataType::Fp32);
        let e_dense = d.matrix_fetch_energy(&MatrixFormat::Dense, m, k, nnz, DataType::Fp32);
        assert!(e_csr < e_dense);
    }

    #[test]
    fn tensor_fetch_consistent_with_size_model() {
        let d = DramModel::paper();
        let dims = (100, 100, 100);
        let bits = tensor_storage_bits(&TensorFormat::Coo, dims, 5000, DataType::Fp32);
        assert_eq!(
            d.tensor_fetch_cycles(&TensorFormat::Coo, dims, 5000, DataType::Fp32),
            bits.div_ceil(512)
        );
    }
}

//! Accelerator configuration.

use sparseflex_formats::DataType;

/// Hardware parameters of the weight-stationary accelerator template.
///
/// The paper's evaluation configuration (§VII-A): "all accelerators are
/// given 16384 total MAC units (similar to Google TPU), 512B of buffer
/// storage per PE, 512-bit input bus per cycle, and 32-bit datatype"; PEs
/// have "a vector size of eight 32-bit compute units" (§IV-A), giving
/// 2048 PEs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// MAC lanes per PE vector unit.
    pub vector_width: usize,
    /// Per-PE scratchpad size in **element slots** (the paper's Fig. 6
    /// accounting treats each data or metadata element as one slot).
    pub pe_buffer_elems: usize,
    /// Broadcast-bus capacity per cycle in element slots.
    pub bus_slots: usize,
    /// Logical element datatype (sets slot width for DRAM accounting).
    pub dtype: DataType,
    /// Clock frequency in Hz (1 GHz per the MINT synthesis in §VII-B).
    pub clock_hz: f64,
}

impl AccelConfig {
    /// The §VII-A evaluation configuration: 2048 PEs x 8 lanes = 16384
    /// MACs, 512 B / 4 B = 128 element slots per PE, 512-bit / 32-bit = 16
    /// bus slots per cycle.
    pub fn paper() -> Self {
        AccelConfig {
            num_pes: 2048,
            vector_width: 8,
            pe_buffer_elems: 128,
            bus_slots: 16,
            dtype: DataType::Fp32,
            clock_hz: 1.0e9,
        }
    }

    /// The Fig. 6 walkthrough configuration: "we assume 4 PEs, a
    /// distribution bandwidth of five elements per cycle, and a weight
    /// buffer size of eight elements per PE".
    pub fn walkthrough() -> Self {
        AccelConfig {
            num_pes: 4,
            vector_width: 8,
            pe_buffer_elems: 8,
            bus_slots: 5,
            dtype: DataType::Fp32,
            clock_hz: 1.0e9,
        }
    }

    /// Total MAC lanes in the array.
    pub fn total_macs(&self) -> usize {
        self.num_pes * self.vector_width
    }

    /// Bus width in bits (slots x element width).
    pub fn bus_bits(&self) -> u64 {
        self.bus_slots as u64 * self.dtype.bits()
    }

    /// Per-PE buffer size in bytes.
    pub fn pe_buffer_bytes(&self) -> u64 {
        self.pe_buffer_elems as u64 * self.dtype.bytes()
    }

    /// Seconds per cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_7a() {
        let c = AccelConfig::paper();
        assert_eq!(c.total_macs(), 16_384);
        assert_eq!(c.pe_buffer_bytes(), 512);
        assert_eq!(c.bus_bits(), 512);
        assert_eq!(c.dtype, DataType::Fp32);
    }

    #[test]
    fn walkthrough_config_matches_fig6() {
        let c = AccelConfig::walkthrough();
        assert_eq!(c.num_pes, 4);
        assert_eq!(c.bus_slots, 5);
        assert_eq!(c.pe_buffer_elems, 8);
    }

    #[test]
    fn cycle_time_inverse_of_clock() {
        let c = AccelConfig::paper();
        assert_eq!(c.cycle_time(), 1e-9);
    }
}

//! Broadcast-bus beat packing rules (the Fig. 6 arithmetic).
//!
//! The distribution bus delivers `bus_slots` element-sized slots per
//! cycle, where a slot carries either an operand element or a metadata
//! element ("we assume that each metadata and data element consume the
//! same amount of resources", §IV-B). How many matrix-A elements fit in
//! one beat depends on the streaming ACF:
//!
//! | ACF of A | slot layout per beat | elements/beat |
//! |---|---|---|
//! | Dense | 1 shared row id + data | `slots - 1` |
//! | CSR | 1 shared row id + (data, col id) pairs | `(slots - 1) / 2` |
//! | CSC | 1 shared col id + (data, row id) pairs | `(slots - 1) / 2` |
//! | COO | (data, col id, row id) triples | `slots / 3` |
//!
//! A beat never mixes rows (CSR/Dense) or columns (CSC): "if the row id
//! is not common among both data, it must be broken up" (§IV-B).

/// Packing calculator for a bus of `slots` element slots per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusPacking {
    /// Bus capacity in element slots per cycle.
    pub slots: usize,
}

/// Result of packing one operand stream: beat count and slot traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamBeats {
    /// Bus cycles consumed (one beat per cycle before PE stalls).
    pub beats: u64,
    /// Total element slots carried (data + metadata), for NoC energy.
    pub slots_used: u64,
}

impl StreamBeats {
    /// Accumulate another stream's traffic.
    pub fn add(&mut self, other: StreamBeats) {
        self.beats += other.beats;
        self.slots_used += other.slots_used;
    }
}

impl BusPacking {
    /// Data elements per beat for a Dense stream (row id shares the beat).
    pub fn dense_capacity(&self) -> usize {
        self.slots.saturating_sub(1).max(1)
    }

    /// (data, index) pairs per beat for CSR/CSC streams.
    pub fn pair_capacity(&self) -> usize {
        (self.slots.saturating_sub(1) / 2).max(1)
    }

    /// (data, col id, row id) triples per beat for COO streams.
    pub fn triple_capacity(&self) -> usize {
        (self.slots / 3).max(1)
    }

    /// Beats to stream one dense row segment of `len` elements.
    pub fn dense_row(&self, len: usize) -> StreamBeats {
        if len == 0 {
            return StreamBeats::default();
        }
        let cap = self.dense_capacity();
        let beats = (len as u64).div_ceil(cap as u64);
        // Each beat carries its data slots plus one row-id slot.
        StreamBeats {
            beats,
            slots_used: len as u64 + beats,
        }
    }

    /// Beats to stream one compressed row (CSR) or column (CSC) of
    /// `nnz` nonzeros.
    pub fn pair_run(&self, nnz: usize) -> StreamBeats {
        if nnz == 0 {
            return StreamBeats::default();
        }
        let cap = self.pair_capacity();
        let beats = (nnz as u64).div_ceil(cap as u64);
        StreamBeats {
            beats,
            slots_used: 2 * nnz as u64 + beats,
        }
    }

    /// Beats to stream `nnz` COO elements (rows may mix freely).
    pub fn coo_run(&self, nnz: usize) -> StreamBeats {
        if nnz == 0 {
            return StreamBeats::default();
        }
        let cap = self.triple_capacity();
        let beats = (nnz as u64).div_ceil(cap as u64);
        StreamBeats {
            beats,
            slots_used: 3 * nnz as u64,
        }
    }

    /// Beats to broadcast-load `elems` stationary element slots into PE
    /// buffers (values and metadata alike ride the same bus).
    pub fn load_run(&self, elems: usize) -> StreamBeats {
        let beats = (elems as u64).div_ceil(self.slots as u64);
        StreamBeats {
            beats,
            slots_used: elems as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 6's five-slot bus.
    const FIG6: BusPacking = BusPacking { slots: 5 };

    #[test]
    fn fig6_capacities() {
        assert_eq!(FIG6.dense_capacity(), 4); // "four data elements and one row id"
        assert_eq!(FIG6.pair_capacity(), 2); // "two data elements, two col ids, one common row id"
        assert_eq!(FIG6.triple_capacity(), 1); // "only one data entry can be sent per cycle"
    }

    #[test]
    fn fig6_dense_stream_is_8_beats() {
        // Matrix A is 4x8: each row needs ceil(8/4) = 2 beats; 4 rows = 8.
        let mut total = StreamBeats::default();
        for _ in 0..4 {
            total.add(FIG6.dense_row(8));
        }
        assert_eq!(total.beats, 8);
    }

    #[test]
    fn fig6_csr_stream_is_3_beats() {
        // Row 0 has 3 nonzeros (A, B, C) -> 2 beats; row 3 has 1 (H) -> 1.
        let mut total = StreamBeats::default();
        total.add(FIG6.pair_run(3));
        total.add(FIG6.pair_run(1));
        assert_eq!(total.beats, 3);
    }

    #[test]
    fn fig6_coo_stream_is_4_beats() {
        assert_eq!(FIG6.coo_run(4).beats, 4);
    }

    #[test]
    fn paper_bus_capacities() {
        let bus = BusPacking { slots: 16 };
        assert_eq!(bus.dense_capacity(), 15);
        assert_eq!(bus.pair_capacity(), 7);
        assert_eq!(bus.triple_capacity(), 5);
    }

    #[test]
    fn empty_runs_cost_nothing() {
        assert_eq!(FIG6.dense_row(0).beats, 0);
        assert_eq!(FIG6.pair_run(0).beats, 0);
        assert_eq!(FIG6.coo_run(0).beats, 0);
    }

    #[test]
    fn degenerate_narrow_bus_still_progresses() {
        let bus = BusPacking { slots: 1 };
        assert!(bus.dense_capacity() >= 1);
        assert!(bus.pair_capacity() >= 1);
        assert!(bus.triple_capacity() >= 1);
        assert_eq!(bus.dense_row(4).beats, 4);
    }

    #[test]
    fn load_run_uses_full_bus() {
        assert_eq!(FIG6.load_run(10).beats, 2);
        assert_eq!(FIG6.load_run(11).beats, 3);
        assert_eq!(FIG6.load_run(0).beats, 0);
    }
}

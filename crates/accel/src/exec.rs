//! Cycle-accurate functional execution of the weight-stationary array.
//!
//! [`simulate_ws`] runs `O = A x B` with `B` stationary (one column per
//! PE, tiled) and `A` streaming over the broadcast bus, for every ACF
//! combination of §IV: A in Dense / CSR / COO / CSC against B in Dense /
//! CSC. [`simulate_spgemm`] runs the CSR(A)-CSR(B) Gustavson dataflow
//! (rows of `B` stationary) used by the extreme-sparsity workloads.
//!
//! The simulator is *functional* — it walks every bus beat, performs the
//! index matching the extended PEs do in hardware, and produces the
//! actual output matrix alongside exact cycle counts. Tests validate the
//! output against the software kernels and the cycle counts against the
//! paper's Fig. 6 walkthrough.

use crate::bus::BusPacking;
use crate::config::AccelConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use sparseflex_formats::{
    CscMatrix, CsrMatrix, DenseMatrix, MatrixData, MatrixFormat, SparseMatrix, Value,
};
use std::fmt;

/// Errors a simulation can raise before running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Inner dimensions of A and B disagree.
    DimMismatch {
        /// Columns of A.
        a_cols: usize,
        /// Rows of B.
        b_rows: usize,
    },
    /// The requested ACF pair is not supported by the WS array.
    UnsupportedAcf {
        /// Streaming operand format.
        a: MatrixFormat,
        /// Stationary operand format.
        b: MatrixFormat,
    },
    /// A stationary unit (column or row) cannot fit in a PE buffer even
    /// alone.
    BufferTooSmall {
        /// Slots required by the indivisible unit.
        needed: usize,
        /// Slots available.
        available: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DimMismatch { a_cols, b_rows } => {
                write!(
                    f,
                    "dimension mismatch: A has {a_cols} cols, B has {b_rows} rows"
                )
            }
            SimError::UnsupportedAcf { a, b } => {
                write!(f, "unsupported ACF pair {a}(A)-{b}(B) on the WS array")
            }
            SimError::BufferTooSmall { needed, available } => {
                write!(
                    f,
                    "stationary unit needs {needed} slots, PE buffer has {available}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cycle totals, split the way Fig. 12 stacks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Cycles broadcasting stationary tiles into PE buffers.
    pub load_b: u64,
    /// Cycles streaming matrix A (bus beats x PE stall factor).
    pub stream_a: u64,
    /// Cycles draining output registers to the global buffer.
    pub drain: u64,
}

impl CycleBreakdown {
    /// Total compute-side cycles.
    pub fn total(&self) -> u64 {
        self.load_b + self.stream_a + self.drain
    }
}

/// Activity counters for energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityCounts {
    /// MAC lane-operations issued (including zero-operand "wasted" ones).
    pub macs: u64,
    /// MACs where both operands were nonzero (true utilization).
    pub effective_macs: u64,
    /// Element slots moved over the broadcast bus.
    pub bus_slots_used: u64,
    /// PE buffer reads (stationary operand + metadata).
    pub pe_buffer_reads: u64,
    /// PE buffer writes (stationary tile loads).
    pub pe_buffer_writes: u64,
    /// Output-register flushes to the global buffer.
    pub output_flushes: u64,
}

impl ActivityCounts {
    /// PE utilization: effective MACs over issued MACs.
    pub fn utilization(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.effective_macs as f64 / self.macs as f64
        }
    }

    /// On-chip energy (DRAM is accounted separately by the memory model).
    pub fn energy(&self, e: &EnergyModel) -> EnergyBreakdown {
        EnergyBreakdown {
            compute: self.macs as f64 * e.mac_fp32,
            pe_buffer: (self.pe_buffer_reads + self.pe_buffer_writes) as f64 * e.pe_buffer_access,
            global_buffer: self.output_flushes as f64 * e.global_buffer_access,
            noc: self.bus_slots_used as f64 * e.noc_transfer,
            dram: 0.0,
        }
    }
}

/// Result of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The computed output matrix (dense accumulation).
    pub output: DenseMatrix,
    /// Cycle breakdown.
    pub cycles: CycleBreakdown,
    /// Activity counters.
    pub counts: ActivityCounts,
    /// Number of stationary column tiles executed.
    pub n_tiles: usize,
    /// Total number of k-range passes across all column tiles.
    pub k_passes: usize,
}

/// One streamed element: `(k, value, row)` — `row` is the output row the
/// element contributes to (for CSC-A streams, `k` is the shared column and
/// the element index is the row).
#[derive(Debug, Clone, Copy)]
struct StreamElem {
    k: usize,
    value: Value,
    row: usize,
}

/// One bus beat: a group of elements sharing the beat.
#[derive(Debug, Clone)]
struct Beat {
    elems: Vec<StreamElem>,
    slots: u64,
}

/// Stationary content of one PE for one (n_tile, k_range) pass.
enum Station {
    /// Dense column segment: values for `k in k0..k0+len`.
    Dense { k0: usize, values: Vec<Value> },
    /// Compressed column: sorted `(k, value)` pairs.
    Csc { entries: Vec<(usize, Value)> },
}

impl Station {
    fn footprint_slots(&self) -> usize {
        match self {
            Station::Dense { values, .. } => values.len(),
            Station::Csc { entries } => 2 * entries.len(),
        }
    }

    /// Look up the stationary value matched by stream index `k`.
    /// Returns `None` when the index misses (no MAC issued), `Some(v)`
    /// when a MAC is issued with stationary operand `v` (which may be a
    /// stored zero for Dense stations — a wasted MAC).
    fn match_k(&self, k: usize) -> Option<Value> {
        match self {
            Station::Dense { k0, values } => {
                if k >= *k0 && k - *k0 < values.len() {
                    Some(values[k - *k0])
                } else {
                    None
                }
            }
            Station::Csc { entries } => entries
                .binary_search_by_key(&k, |&(kk, _)| kk)
                .ok()
                .map(|i| entries[i].1),
        }
    }
}

/// Simulate `O = A x B` on the weight-stationary array.
///
/// Supported ACF pairs: `A in {Dense, CSR, COO, CSC}` x `B in {Dense,
/// CSC}`. For CSR(A)-CSR(B) SpGEMM use [`simulate_spgemm`].
pub fn simulate_ws(
    a: &MatrixData,
    b: &MatrixData,
    cfg: &AccelConfig,
) -> Result<SimResult, SimError> {
    if a.cols() != b.rows() {
        return Err(SimError::DimMismatch {
            a_cols: a.cols(),
            b_rows: b.rows(),
        });
    }
    let a_fmt = a.format();
    let b_fmt = b.format();
    let a_ok = matches!(
        a_fmt,
        MatrixFormat::Dense | MatrixFormat::Csr | MatrixFormat::Coo | MatrixFormat::Csc
    );
    let b_ok = matches!(b_fmt, MatrixFormat::Dense | MatrixFormat::Csc);
    if !a_ok || !b_ok {
        return Err(SimError::UnsupportedAcf { a: a_fmt, b: b_fmt });
    }

    let bus = BusPacking {
        slots: cfg.bus_slots,
    };
    let m = a.rows();
    let k_dim = a.cols();
    let n = b.cols();
    // Canonical accessors for B columns.
    let b_csc = match b {
        MatrixData::Csc(c) => Some(c.clone()),
        _ => None,
    };
    let b_dense = match b {
        MatrixData::Dense(d) => Some(d.clone()),
        _ => None,
    };

    let mut output = DenseMatrix::zeros(m, n);
    let mut cycles = CycleBreakdown::default();
    let mut counts = ActivityCounts::default();
    let mut n_tiles = 0usize;
    let mut k_passes = 0usize;

    // Pre-extract A in CSR form for sparse streaming (row-major order).
    let a_csr = match a {
        MatrixData::Csr(c) => c.clone(),
        other => CsrMatrix::from_coo(&other.to_coo()),
    };
    let a_dense_rows: Option<&DenseMatrix> = match a {
        MatrixData::Dense(d) => Some(d),
        _ => None,
    };
    // For CSC-A streaming we need A by columns.
    let a_csc = match a {
        MatrixData::Csc(c) => Some(c.clone()),
        _ => None,
    };

    for tile_start in (0..n).step_by(cfg.num_pes.max(1)) {
        n_tiles += 1;
        let tile_cols: Vec<usize> = (tile_start..(tile_start + cfg.num_pes).min(n)).collect();

        // Partition the K dimension into ranges that fit the PE buffers.
        let k_ranges = compute_k_ranges(&tile_cols, k_dim, cfg.pe_buffer_elems, b_csc.as_ref())?;

        for (k0, k1) in k_ranges {
            k_passes += 1;
            // ---- Load stationary tiles.
            let stations: Vec<Station> = tile_cols
                .iter()
                .map(|&j| match (&b_dense, &b_csc) {
                    (Some(d), _) => {
                        let values: Vec<Value> = (k0..k1).map(|k| d.get(k, j)).collect();
                        Station::Dense { k0, values }
                    }
                    (_, Some(c)) => {
                        let (rows, vals) = c.col(j);
                        let entries: Vec<(usize, Value)> = rows
                            .iter()
                            .zip(vals)
                            .filter(|(&k, _)| k >= k0 && k < k1)
                            .map(|(&k, &v)| (k, v))
                            .collect();
                        Station::Csc { entries }
                    }
                    _ => unreachable!("b format checked above"),
                })
                .collect();
            let load_slots: usize = stations.iter().map(Station::footprint_slots).sum();
            let load = bus.load_run(load_slots);
            cycles.load_b += load.beats;
            counts.bus_slots_used += load.slots_used;
            counts.pe_buffer_writes += load_slots as u64;

            // ---- Build the A beat stream for this k range.
            let beats = build_beats(
                &a_fmt,
                a_dense_rows,
                &a_csr,
                a_csc.as_ref(),
                m,
                k0,
                k1,
                &bus,
            );

            // ---- Process beats.
            // Per-PE open output row (for flush counting).
            let mut open_row: Vec<Option<usize>> = vec![None; stations.len()];
            let col_major_stream = a_fmt == MatrixFormat::Csc;
            for beat in &beats {
                counts.bus_slots_used += beat.slots;
                let mut max_work = 0u64;
                for (pi, station) in stations.iter().enumerate() {
                    let mut work = 0u64;
                    for e in &beat.elems {
                        if let Some(bv) = station.match_k(e.k) {
                            work += 1;
                            counts.pe_buffer_reads += 1;
                            counts.macs += 1;
                            if e.value != 0.0 && bv != 0.0 {
                                counts.effective_macs += 1;
                                output.add_assign(e.row, tile_cols[pi], e.value * bv);
                            }
                            if col_major_stream {
                                // Column-major streaming changes the output
                                // row on every element: each MAC flushes.
                                counts.output_flushes += 1;
                            } else if open_row[pi] != Some(e.row) {
                                if open_row[pi].is_some() {
                                    counts.output_flushes += 1;
                                }
                                open_row[pi] = Some(e.row);
                            }
                        }
                    }
                    max_work = max_work.max(work);
                }
                cycles.stream_a += max_work.div_ceil(cfg.vector_width as u64).max(1);
            }
            // Close any open accumulators at the end of the pass.
            if !col_major_stream {
                counts.output_flushes += open_row.iter().filter(|r| r.is_some()).count() as u64;
            }
        }
    }

    // Output registers drain through per-PE ports into the banked
    // global buffer (one flush per PE per cycle), not over the shared
    // input bus.
    cycles.drain = counts.output_flushes.div_ceil(cfg.num_pes.max(1) as u64);
    Ok(SimResult {
        output,
        cycles,
        counts,
        n_tiles,
        k_passes,
    })
}

/// Compute K-dimension ranges such that every PE's stationary footprint
/// fits its buffer.
fn compute_k_ranges(
    tile_cols: &[usize],
    k_dim: usize,
    buffer_elems: usize,
    b_csc: Option<&CscMatrix>,
) -> Result<Vec<(usize, usize)>, SimError> {
    match b_csc {
        None => {
            // Dense stationary columns: footprint = range length.
            if buffer_elems == 0 {
                return Err(SimError::BufferTooSmall {
                    needed: 1,
                    available: 0,
                });
            }
            let mut ranges = Vec::new();
            let mut k0 = 0;
            while k0 < k_dim {
                let k1 = (k0 + buffer_elems).min(k_dim);
                ranges.push((k0, k1));
                k0 = k1;
            }
            if ranges.is_empty() {
                ranges.push((0, 0));
            }
            Ok(ranges)
        }
        Some(csc) => {
            // Compressed stationary columns: footprint = 2 x entries in
            // range; grow each range greedily until the fullest column
            // would overflow.
            if buffer_elems < 2 {
                return Err(SimError::BufferTooSmall {
                    needed: 2,
                    available: buffer_elems,
                });
            }
            let cap_pairs = buffer_elems / 2;
            // Per-column sorted k lists for the tile.
            let cols_k: Vec<&[usize]> = tile_cols.iter().map(|&j| csc.col(j).0).collect();
            let mut ranges = Vec::new();
            let mut k0 = 0usize;
            // Cursor per column into its k list (all start at zero).
            let mut cursors: Vec<usize> = vec![0; cols_k.len()];
            while k0 < k_dim {
                // Find the largest k1 such that every column's entry count
                // in [k0, k1) fits cap_pairs. Binary search over k1 via
                // per-column index arithmetic: the limiting column is the
                // one whose (cursor + cap_pairs)-th entry is smallest.
                let mut k1 = k_dim;
                for (ci, ks) in cols_k.iter().enumerate() {
                    let cur = cursors[ci];
                    if cur + cap_pairs < ks.len() {
                        // This column's (cap_pairs+1)-th entry must fall
                        // outside the range.
                        k1 = k1.min(ks[cur + cap_pairs]);
                    }
                }
                if k1 <= k0 {
                    // A single k index overflows a buffer — impossible
                    // since each column holds at most one entry per k.
                    return Err(SimError::BufferTooSmall {
                        needed: 2 * (cap_pairs + 1),
                        available: buffer_elems,
                    });
                }
                ranges.push((k0, k1));
                for (ci, ks) in cols_k.iter().enumerate() {
                    cursors[ci] = ks.partition_point(|&k| k < k1);
                }
                k0 = k1;
            }
            if ranges.is_empty() {
                ranges.push((0, 0));
            }
            Ok(ranges)
        }
    }
}

/// Build the beat stream for matrix A restricted to `k in [k0, k1)`.
#[allow(clippy::too_many_arguments)]
fn build_beats(
    a_fmt: &MatrixFormat,
    a_dense: Option<&DenseMatrix>,
    a_csr: &CsrMatrix,
    a_csc: Option<&CscMatrix>,
    m: usize,
    k0: usize,
    k1: usize,
    bus: &BusPacking,
) -> Vec<Beat> {
    let mut beats = Vec::new();
    match a_fmt {
        MatrixFormat::Dense => {
            let d = a_dense.expect("dense payload for dense ACF");
            let cap = bus.dense_capacity();
            for r in 0..m {
                let row = d.row(r);
                let mut k = k0;
                while k < k1 {
                    let end = (k + cap).min(k1);
                    let elems: Vec<StreamElem> = (k..end)
                        .map(|kk| StreamElem {
                            k: kk,
                            value: row[kk],
                            row: r,
                        })
                        .collect();
                    let slots = elems.len() as u64 + 1; // +1 shared row id
                    beats.push(Beat { elems, slots });
                    k = end;
                }
            }
        }
        MatrixFormat::Csr => {
            let cap = bus.pair_capacity();
            for r in 0..m {
                let (cols, vals) = a_csr.row(r);
                let lo = cols.partition_point(|&c| c < k0);
                let hi = cols.partition_point(|&c| c < k1);
                let mut i = lo;
                while i < hi {
                    let end = (i + cap).min(hi);
                    let elems: Vec<StreamElem> = (i..end)
                        .map(|ii| StreamElem {
                            k: cols[ii],
                            value: vals[ii],
                            row: r,
                        })
                        .collect();
                    let slots = 2 * elems.len() as u64 + 1; // pairs + shared row id
                    beats.push(Beat { elems, slots });
                    i = end;
                }
            }
        }
        MatrixFormat::Coo => {
            let cap = bus.triple_capacity();
            let mut pending: Vec<StreamElem> = Vec::with_capacity(cap);
            for r in 0..m {
                let (cols, vals) = a_csr.row(r);
                let lo = cols.partition_point(|&c| c < k0);
                let hi = cols.partition_point(|&c| c < k1);
                for i in lo..hi {
                    pending.push(StreamElem {
                        k: cols[i],
                        value: vals[i],
                        row: r,
                    });
                    if pending.len() == cap {
                        let slots = 3 * pending.len() as u64;
                        beats.push(Beat {
                            elems: std::mem::take(&mut pending),
                            slots,
                        });
                        pending = Vec::with_capacity(cap);
                    }
                }
            }
            if !pending.is_empty() {
                let slots = 3 * pending.len() as u64;
                beats.push(Beat {
                    elems: pending,
                    slots,
                });
            }
        }
        MatrixFormat::Csc => {
            let c = a_csc.expect("csc payload for csc ACF");
            let cap = bus.pair_capacity();
            for k in k0..k1 {
                let (rows, vals) = c.col(k);
                let mut i = 0;
                while i < rows.len() {
                    let end = (i + cap).min(rows.len());
                    let elems: Vec<StreamElem> = (i..end)
                        .map(|ii| StreamElem {
                            k,
                            value: vals[ii],
                            row: rows[ii],
                        })
                        .collect();
                    let slots = 2 * elems.len() as u64 + 1; // pairs + shared col id
                    beats.push(Beat { elems, slots });
                    i = end;
                }
            }
        }
        _ => unreachable!("ACF validated by caller"),
    }
    beats
}

/// Simulate CSR(A)-CSR(B) SpGEMM with the Gustavson dataflow: rows of `B`
/// are distributed round-robin across PE buffers; each streamed nonzero
/// `A(r, k)` activates the PE holding row `k` of `B`, which multiplies it
/// against that whole compressed row.
pub fn simulate_spgemm(
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &AccelConfig,
) -> Result<SimResult, SimError> {
    if a.cols() != b.rows() {
        return Err(SimError::DimMismatch {
            a_cols: a.cols(),
            b_rows: b.rows(),
        });
    }
    let bus = BusPacking {
        slots: cfg.bus_slots,
    };
    let m = a.rows();
    let k_dim = a.cols();
    let n = b.cols();
    let p = cfg.num_pes.max(1);

    let mut output = DenseMatrix::zeros(m, n);
    let mut cycles = CycleBreakdown::default();
    let mut counts = ActivityCounts::default();

    // Greedy K ranges: add B rows k0..k1 while every PE's footprint
    // (2 slots per stored nonzero of its assigned rows) fits.
    let cap = cfg.pe_buffer_elems;
    let mut k_ranges: Vec<(usize, usize)> = Vec::new();
    {
        let mut k0 = 0usize;
        let mut per_pe = vec![0usize; p];
        let mut k = 0usize;
        while k < k_dim {
            let foot = 2 * b.row_nnz(k);
            if foot > cap {
                return Err(SimError::BufferTooSmall {
                    needed: foot,
                    available: cap,
                });
            }
            let pe = k % p;
            if per_pe[pe] + foot > cap {
                k_ranges.push((k0, k));
                k0 = k;
                per_pe.iter_mut().for_each(|x| *x = 0);
            }
            per_pe[pe] += foot;
            k += 1;
        }
        k_ranges.push((k0, k_dim));
    }

    let k_passes = k_ranges.len();
    for &(k0, k1) in &k_ranges {
        // Load stationary B rows for this range.
        let load_slots: usize = (k0..k1).map(|k| 2 * b.row_nnz(k)).sum();
        let load = bus.load_run(load_slots);
        cycles.load_b += load.beats;
        counts.bus_slots_used += load.slots_used;
        counts.pe_buffer_writes += load_slots as u64;

        // Stream A (CSR beats restricted to the range).
        let cap_pairs = bus.pair_capacity();
        for r in 0..m {
            let (cols, vals) = a.row(r);
            let lo = cols.partition_point(|&c| c < k0);
            let hi = cols.partition_point(|&c| c < k1);
            let mut i = lo;
            while i < hi {
                let end = (i + cap_pairs).min(hi);
                counts.bus_slots_used += 2 * (end - i) as u64 + 1;
                // Per-PE work in this beat.
                let mut pe_work = vec![0u64; p];
                for ii in i..end {
                    let k = cols[ii];
                    let v = vals[ii];
                    let work = b.row_nnz(k) as u64;
                    pe_work[k % p] += work;
                    counts.macs += work;
                    counts.effective_macs += work;
                    counts.pe_buffer_reads += 2 * work; // metadata + value
                    counts.output_flushes += work; // scatter accumulations
                    let (bcols, bvals) = b.row(k);
                    for (j, bv) in bcols.iter().zip(bvals) {
                        output.add_assign(r, *j, v * bv);
                    }
                }
                let max_work = pe_work.iter().copied().max().unwrap_or(0);
                cycles.stream_a += max_work.div_ceil(cfg.vector_width as u64).max(1);
                i = end;
            }
        }
    }
    cycles.drain = counts.output_flushes.div_ceil(cfg.num_pes.max(1) as u64);
    Ok(SimResult {
        output,
        cycles,
        counts,
        n_tiles: 1,
        k_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::CooMatrix;

    /// The Fig. 6 walkthrough operands.
    /// Matrix A (4x8): A@(0,0), B@(0,2), C@(0,4), H@(3,5).
    fn fig6_a() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            8,
            vec![(0, 0, 1.0), (0, 2, 2.0), (0, 4, 3.0), (3, 5, 8.0)],
        )
        .unwrap()
    }

    /// Matrix B (8x4): a@(0,0), d@(0,1), b@(2,0), f@(3,2), c@(4,0),
    /// g@(5,2), h@(5,3), e@(7,1).
    fn fig6_b() -> CooMatrix {
        CooMatrix::from_triplets(
            8,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 4.0),
                (2, 0, 2.0),
                (3, 2, 6.0),
                (4, 0, 3.0),
                (5, 2, 7.0),
                (5, 3, 8.0),
                (7, 1, 5.0),
            ],
        )
        .unwrap()
    }

    fn encode(coo: &CooMatrix, fmt: MatrixFormat) -> MatrixData {
        MatrixData::encode(coo, &fmt).unwrap()
    }

    fn reference(a: &CooMatrix, b: &CooMatrix) -> DenseMatrix {
        sparseflex_kernels::gemm::gemm_naive(&a.clone().into_dense(), &b.clone().into_dense())
    }

    #[test]
    fn fig6a_dense_dense_takes_8_stream_cycles() {
        let cfg = AccelConfig::walkthrough();
        let a = encode(&fig6_a(), MatrixFormat::Dense);
        let b = encode(&fig6_b(), MatrixFormat::Dense);
        let r = simulate_ws(&a, &b, &cfg).unwrap();
        assert_eq!(r.cycles.stream_a, 8, "Fig. 6a: 8 cycles to send matrix A");
        assert_eq!(r.output, reference(&fig6_a(), &fig6_b()));
    }

    #[test]
    fn fig6b_csr_csc_takes_3_stream_cycles() {
        let cfg = AccelConfig::walkthrough();
        let a = encode(&fig6_a(), MatrixFormat::Csr);
        let b = encode(&fig6_b(), MatrixFormat::Csc);
        let r = simulate_ws(&a, &b, &cfg).unwrap();
        assert_eq!(r.cycles.stream_a, 3, "Fig. 6b: 3 cycles to send matrix A");
        assert_eq!(r.output, reference(&fig6_a(), &fig6_b()));
    }

    #[test]
    fn fig6c_coo_dense_takes_4_stream_cycles() {
        let cfg = AccelConfig::walkthrough();
        let a = encode(&fig6_a(), MatrixFormat::Coo);
        let b = encode(&fig6_b(), MatrixFormat::Dense);
        let r = simulate_ws(&a, &b, &cfg).unwrap();
        assert_eq!(r.cycles.stream_a, 4, "Fig. 6c: 4 cycles to send matrix A");
        assert_eq!(r.output, reference(&fig6_a(), &fig6_b()));
    }

    #[test]
    fn all_acf_pairs_compute_correctly() {
        let cfg = AccelConfig::walkthrough();
        let a_coo = fig6_a();
        let b_coo = fig6_b();
        let expect = reference(&a_coo, &b_coo);
        for a_fmt in [
            MatrixFormat::Dense,
            MatrixFormat::Csr,
            MatrixFormat::Coo,
            MatrixFormat::Csc,
        ] {
            for b_fmt in [MatrixFormat::Dense, MatrixFormat::Csc] {
                let r = simulate_ws(&encode(&a_coo, a_fmt), &encode(&b_coo, b_fmt), &cfg)
                    .unwrap_or_else(|e| panic!("{a_fmt}-{b_fmt}: {e}"));
                assert_eq!(r.output, expect, "wrong output for {a_fmt}(A)-{b_fmt}(B)");
            }
        }
    }

    #[test]
    fn dense_acf_wastes_macs_sparse_acf_does_not() {
        let cfg = AccelConfig::walkthrough();
        let a_coo = fig6_a();
        let b_coo = fig6_b();
        let dense = simulate_ws(
            &encode(&a_coo, MatrixFormat::Dense),
            &encode(&b_coo, MatrixFormat::Dense),
            &cfg,
        )
        .unwrap();
        let sparse = simulate_ws(
            &encode(&a_coo, MatrixFormat::Csr),
            &encode(&b_coo, MatrixFormat::Csc),
            &cfg,
        )
        .unwrap();
        assert!(
            dense.counts.utilization() < 0.2,
            "dense util {}",
            dense.counts.utilization()
        );
        assert_eq!(sparse.counts.utilization(), 1.0);
        assert_eq!(dense.counts.effective_macs, sparse.counts.effective_macs);
    }

    #[test]
    fn tiling_splits_wide_outputs_and_deep_k() {
        // N wider than the PE count and K deeper than the buffer.
        let mut cfg = AccelConfig::walkthrough();
        cfg.num_pes = 2;
        cfg.pe_buffer_elems = 4;
        let a =
            CooMatrix::from_triplets(3, 10, (0..10).map(|k| (k % 3, k, (k + 1) as f64)).collect())
                .unwrap();
        let b = CooMatrix::from_triplets(
            10,
            5,
            (0..10)
                .flat_map(|k| (0..5).map(move |j| (k, j, ((k + j) % 4) as f64 + 1.0)))
                .collect(),
        )
        .unwrap();
        let r = simulate_ws(
            &encode(&a, MatrixFormat::Csr),
            &encode(&b, MatrixFormat::Dense),
            &cfg,
        )
        .unwrap();
        assert_eq!(r.n_tiles, 3); // ceil(5 cols / 2 PEs)
        assert!(r.k_passes >= 3 * 3); // each tile needs ceil(10/4) = 3 passes
        assert_eq!(r.output, reference(&a, &b));
    }

    #[test]
    fn csc_stationary_tiling_by_occupancy() {
        // Stationary CSC columns with very uneven population.
        let mut cfg = AccelConfig::walkthrough();
        cfg.num_pes = 2;
        cfg.pe_buffer_elems = 6; // 3 pairs per PE
        let mut trip = Vec::new();
        for k in 0..12 {
            trip.push((k, 0, 1.0)); // column 0 fully populated
        }
        trip.push((11, 1, 2.0)); // column 1 nearly empty
        let b = CooMatrix::from_triplets(12, 2, trip).unwrap();
        let a = CooMatrix::from_triplets(2, 12, vec![(0, 0, 1.0), (1, 11, 1.0)]).unwrap();
        let r = simulate_ws(
            &encode(&a, MatrixFormat::Csr),
            &encode(&b, MatrixFormat::Csc),
            &cfg,
        )
        .unwrap();
        // Column 0 has 12 entries at 3 pairs per pass -> at least 4 passes.
        assert!(r.k_passes >= 4, "k_passes = {}", r.k_passes);
        assert_eq!(r.output, reference(&a, &b));
    }

    #[test]
    fn spgemm_matches_software() {
        let cfg = AccelConfig::walkthrough();
        let a = CsrMatrix::from_coo(&fig6_a());
        let b = CsrMatrix::from_coo(&fig6_b());
        let r = simulate_spgemm(&a, &b, &cfg).unwrap();
        assert_eq!(r.output, reference(&fig6_a(), &fig6_b()));
        assert_eq!(r.counts.utilization(), 1.0);
    }

    #[test]
    fn spgemm_rejects_oversized_row() {
        let mut cfg = AccelConfig::walkthrough();
        cfg.pe_buffer_elems = 4; // 2 pairs
        let b = CooMatrix::from_triplets(2, 8, (0..8).map(|j| (0, j, 1.0)).collect()).unwrap();
        let a = CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0)]).unwrap();
        let r = simulate_spgemm(&CsrMatrix::from_coo(&a), &CsrMatrix::from_coo(&b), &cfg);
        assert!(matches!(r, Err(SimError::BufferTooSmall { .. })));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cfg = AccelConfig::walkthrough();
        let a = encode(&CooMatrix::empty(2, 3), MatrixFormat::Csr);
        let b = encode(&CooMatrix::empty(4, 2), MatrixFormat::Dense);
        assert!(matches!(
            simulate_ws(&a, &b, &cfg),
            Err(SimError::DimMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_acf_rejected() {
        let cfg = AccelConfig::walkthrough();
        let coo = fig6_a();
        let a = encode(&coo, MatrixFormat::Zvc);
        let b = encode(&fig6_b(), MatrixFormat::Dense);
        assert!(matches!(
            simulate_ws(&a, &b, &cfg),
            Err(SimError::UnsupportedAcf { .. })
        ));
    }

    #[test]
    fn vector_width_limits_beat_throughput() {
        // With one MAC lane, a dense beat of 4 elements takes 4 cycles.
        let mut cfg = AccelConfig::walkthrough();
        cfg.vector_width = 1;
        let a = encode(&fig6_a(), MatrixFormat::Dense);
        let b = encode(&fig6_b(), MatrixFormat::Dense);
        let r = simulate_ws(&a, &b, &cfg).unwrap();
        assert_eq!(r.cycles.stream_a, 8 * 4);
    }

    #[test]
    fn energy_counts_are_consistent() {
        let cfg = AccelConfig::walkthrough();
        let a = encode(&fig6_a(), MatrixFormat::Csr);
        let b = encode(&fig6_b(), MatrixFormat::Csc);
        let r = simulate_ws(&a, &b, &cfg).unwrap();
        let e = r.counts.energy(&EnergyModel::default_28nm());
        assert!(e.total() > 0.0);
        assert_eq!(e.dram, 0.0);
        // Sparse-sparse matching: every MAC read one stationary value.
        assert_eq!(r.counts.pe_buffer_reads, r.counts.macs);
    }
}

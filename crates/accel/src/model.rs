//! Analytic performance model — the "performance model" half of SAGE
//! (§VI).
//!
//! Where [`crate::exec`] walks every bus beat, this module predicts the
//! same quantities in closed form from `(M, K, N, nnz_A, nnz_B)` under
//! the paper's uniform-random assumption ("we assume a uniform random
//! distribution of the dense values ... this has minimal effect on the
//! performance of unstructured format conversions", §VI). Tests
//! cross-validate these estimates against the cycle-accurate simulator.

use crate::bus::BusPacking;
use crate::config::AccelConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::exec::SimError;
use sparseflex_formats::MatrixFormat;

/// Workload description for the analytic WS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsWorkload {
    /// Rows of A (and O).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B (and O).
    pub n: usize,
    /// Nonzeros of the streaming operand A.
    pub nnz_a: u64,
    /// Nonzeros of the stationary operand B.
    pub nnz_b: u64,
    /// ACF of A: Dense, CSR, COO or CSC.
    pub acf_a: MatrixFormat,
    /// ACF of B: Dense or CSC (or CSR for the SpGEMM dataflow).
    pub acf_b: MatrixFormat,
}

impl WsWorkload {
    /// Density of A.
    pub fn density_a(&self) -> f64 {
        self.nnz_a as f64 / (self.m as f64 * self.k as f64).max(1.0)
    }
    /// Density of B.
    pub fn density_b(&self) -> f64 {
        self.nnz_b as f64 / (self.k as f64 * self.n as f64).max(1.0)
    }
}

/// Predicted cycle components (fractional — expectations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyticCycles {
    /// Stationary tile loading.
    pub load_b: f64,
    /// Bus beats for streaming A (before PE stalls).
    pub beats_a: f64,
    /// Streaming cycles including PE stalls (>= beats_a).
    pub stream_a: f64,
    /// Output drain.
    pub drain: f64,
}

impl AnalyticCycles {
    /// Total predicted compute-side cycles.
    pub fn total(&self) -> f64 {
        self.load_b + self.stream_a + self.drain
    }
}

/// Full analytic estimate: cycles plus activity for energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyticEstimate {
    /// Cycle components.
    pub cycles: AnalyticCycles,
    /// Total MAC lane-operations (including wasted zero-operand ones).
    pub macs: f64,
    /// MACs with both operands nonzero.
    pub effective_macs: f64,
    /// Bus slot traffic.
    pub bus_slots: f64,
    /// PE buffer reads.
    pub pe_reads: f64,
    /// PE buffer writes (tile loads).
    pub pe_writes: f64,
    /// Output flush events.
    pub flushes: f64,
}

impl AnalyticEstimate {
    /// Predicted PE utilization.
    pub fn utilization(&self) -> f64 {
        if self.macs == 0.0 {
            0.0
        } else {
            self.effective_macs / self.macs
        }
    }

    /// On-chip energy (DRAM accounted separately).
    pub fn energy(&self, e: &EnergyModel) -> EnergyBreakdown {
        EnergyBreakdown {
            compute: self.macs * e.mac_fp32,
            pe_buffer: (self.pe_reads + self.pe_writes) * e.pe_buffer_access,
            global_buffer: self.flushes * e.global_buffer_access,
            noc: self.bus_slots * e.noc_transfer,
            dram: 0.0,
        }
    }
}

/// Structure-agnostic alias retained for API clarity: the analytic model
/// is what SAGE queries.
pub type StructureModel = AnalyticEstimate;

/// Predict a WS execution analytically.
pub fn ws_estimate(w: &WsWorkload, cfg: &AccelConfig) -> Result<AnalyticEstimate, SimError> {
    let a_ok = matches!(
        w.acf_a,
        MatrixFormat::Dense | MatrixFormat::Csr | MatrixFormat::Coo | MatrixFormat::Csc
    );
    let b_ok = matches!(w.acf_b, MatrixFormat::Dense | MatrixFormat::Csc);
    if !a_ok || !b_ok {
        if w.acf_a == MatrixFormat::Csr && w.acf_b == MatrixFormat::Csr {
            return spgemm_estimate(w, cfg);
        }
        return Err(SimError::UnsupportedAcf {
            a: w.acf_a,
            b: w.acf_b,
        });
    }

    let bus = BusPacking {
        slots: cfg.bus_slots,
    };
    let p = cfg.num_pes.max(1) as f64;
    let vw = cfg.vector_width.max(1) as f64;
    let (m, k, n) = (w.m as f64, w.k as f64, w.n as f64);
    let d_a = w.density_a();
    let d_b = w.density_b();
    let n_tiles = (n / p).ceil().max(1.0);
    let cols_per_tile = n.min(p);

    // ---- K ranges.
    let buf = cfg.pe_buffer_elems.max(1) as f64;
    let ranges = match w.acf_b {
        MatrixFormat::Dense => (k / buf).ceil().max(1.0),
        MatrixFormat::Csc => {
            // Pairs capacity per range; expected entries per column per
            // range ~ d_b * range_len. Uneven columns shrink ranges; the
            // busiest of `cols_per_tile` uniform columns exceeds the mean
            // by roughly 2 sigma, folded into a 1.5x safety factor that
            // matches the greedy packer's behaviour on random patterns.
            let cap_pairs = (buf / 2.0).floor().max(1.0);
            ((d_b * k * 1.5) / cap_pairs).ceil().max(1.0)
        }
        _ => unreachable!(),
    };

    // ---- Stationary load: every element of B (plus metadata for CSC)
    // is broadcast exactly once.
    let load_slots = match w.acf_b {
        MatrixFormat::Dense => k * n,
        MatrixFormat::Csc => 2.0 * w.nnz_b as f64,
        _ => unreachable!(),
    };
    let load_b = load_slots / cfg.bus_slots as f64;

    // ---- Beats for streaming A (full matrix, once per column tile).
    let rows_nonempty_per_range = m * (1.0 - (1.0 - d_a).powf(k / ranges));
    let (beats_once, stream_slots_once) = match w.acf_a {
        MatrixFormat::Dense => {
            let cap = bus.dense_capacity() as f64;
            // Each row in each range pays one ceil; model the expected
            // ceil overhead as half a beat per (row, range).
            let beats = m * k / cap + 0.5 * m * ranges;
            (beats, m * k + beats)
        }
        MatrixFormat::Csr => {
            let cap = bus.pair_capacity() as f64;
            let beats = w.nnz_a as f64 / cap + 0.5 * rows_nonempty_per_range * ranges;
            (beats, 2.0 * w.nnz_a as f64 + beats)
        }
        MatrixFormat::Coo => {
            let cap = bus.triple_capacity() as f64;
            // COO beats may mix rows; only ranges introduce partial beats.
            let beats = w.nnz_a as f64 / cap + 0.5 * ranges;
            (beats, 3.0 * w.nnz_a as f64)
        }
        MatrixFormat::Csc => {
            let cap = bus.pair_capacity() as f64;
            let cols_nonempty = k * (1.0 - (1.0 - d_a).powf(m));
            let beats = w.nnz_a as f64 / cap + 0.5 * cols_nonempty;
            (beats, 2.0 * w.nnz_a as f64 + beats)
        }
        _ => unreachable!(),
    };
    let beats_a = beats_once * n_tiles;

    // ---- MAC work. `work_pe` is the busiest PE's lane-op total per tile.
    let stream_elems_once = match w.acf_a {
        MatrixFormat::Dense => m * k,
        _ => w.nnz_a as f64,
    };
    let (macs_total, work_pe_per_tile) = match w.acf_b {
        MatrixFormat::Dense => {
            // Every streamed element issues a MAC at every PE.
            (stream_elems_once * n, stream_elems_once)
        }
        MatrixFormat::Csc => {
            // A streamed element MACs only where the station holds k.
            // P(station j has k) = s_j / K; uniform expectation s = d_b*K.
            let per_pe = stream_elems_once
                * d_b
                * match w.acf_a {
                    // Dense A streams every row over every k, so each station
                    // entry is hit once per row.
                    MatrixFormat::Dense => 1.0,
                    _ => 1.0,
                };
            (per_pe * cols_per_tile * n_tiles, per_pe)
        }
        _ => unreachable!(),
    };
    let effective = match (w.acf_a, w.acf_b) {
        (MatrixFormat::Dense, MatrixFormat::Dense) => m * k * n * d_a * d_b,
        (MatrixFormat::Dense, MatrixFormat::Csc) => w.nnz_b as f64 * m * d_a,
        (_, MatrixFormat::Dense) => w.nnz_a as f64 * n * d_b,
        (_, MatrixFormat::Csc) => w.nnz_a as f64 * w.nnz_b as f64 / k.max(1.0),
        _ => unreachable!(),
    };

    // ---- Stream cycles: bus-limited or MAC-limited, per tile.
    let stream_a = n_tiles * (beats_once).max(work_pe_per_tile / vw);

    // ---- Output flushes.
    let flushes = match w.acf_a {
        MatrixFormat::Csc => effective, // column-major: flush per MAC
        MatrixFormat::Dense => m * ranges * cols_per_tile * n_tiles,
        _ => rows_nonempty_per_range * ranges * cols_per_tile * n_tiles,
    };
    let drain = flushes / cfg.num_pes.max(1) as f64;

    Ok(AnalyticEstimate {
        cycles: AnalyticCycles {
            load_b,
            beats_a,
            stream_a,
            drain,
        },
        macs: macs_total,
        effective_macs: effective.min(macs_total),
        bus_slots: load_slots + stream_slots_once * n_tiles,
        pe_reads: macs_total,
        pe_writes: load_slots,
        flushes,
    })
}

/// Predict the CSR(A)-CSR(B) Gustavson SpGEMM dataflow analytically.
pub fn spgemm_estimate(w: &WsWorkload, cfg: &AccelConfig) -> Result<AnalyticEstimate, SimError> {
    if w.acf_a != MatrixFormat::Csr || w.acf_b != MatrixFormat::Csr {
        return Err(SimError::UnsupportedAcf {
            a: w.acf_a,
            b: w.acf_b,
        });
    }
    let bus = BusPacking {
        slots: cfg.bus_slots,
    };
    let p = cfg.num_pes.max(1) as f64;
    let vw = cfg.vector_width.max(1) as f64;
    let (m, k) = (w.m as f64, w.k as f64);
    let d_a = w.density_a();

    // Expected flops: every A nonzero multiplies a full B row.
    let avg_b_row = w.nnz_b as f64 / k.max(1.0);
    let flops = w.nnz_a as f64 * avg_b_row;

    // K ranges: all PEs together must hold 2*nnz_B slots.
    let total_cap = p * cfg.pe_buffer_elems as f64;
    let ranges = ((2.0 * w.nnz_b as f64) / total_cap).ceil().max(1.0);

    let load_slots = 2.0 * w.nnz_b as f64;
    let load_b = load_slots / cfg.bus_slots as f64;

    let cap = bus.pair_capacity() as f64;
    let rows_nonempty_per_range = m * (1.0 - (1.0 - d_a).powf(k / ranges));
    let beats_a = w.nnz_a as f64 / cap + 0.5 * rows_nonempty_per_range * ranges;

    // Work concentrates on single PEs per streamed element; with few
    // elements per beat the busiest-PE work per beat is ~ the whole
    // beat's work for small beats. Model stalls as total flops spread
    // over (vw x min(p, elements-in-flight)) with a serialization factor.
    let elems_per_beat = cap.min(w.nnz_a as f64);
    let parallel_pes = elems_per_beat.max(1.0).min(p);
    let stream_a = beats_a.max(flops / (vw * parallel_pes));

    let flushes = flops;
    let drain = flushes / cfg.num_pes.max(1) as f64;

    Ok(AnalyticEstimate {
        cycles: AnalyticCycles {
            load_b,
            beats_a,
            stream_a,
            drain,
        },
        macs: flops,
        effective_macs: flops,
        bus_slots: load_slots + 2.0 * w.nnz_a as f64 + beats_a,
        pe_reads: 2.0 * flops,
        pe_writes: load_slots,
        flushes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{simulate_spgemm, simulate_ws};
    use sparseflex_formats::{CooMatrix, CsrMatrix, MatrixData};
    use sparseflex_workloads::synth::random_matrix;

    fn workload(
        m: usize,
        k: usize,
        n: usize,
        nnz_a: usize,
        nnz_b: usize,
        acf_a: MatrixFormat,
        acf_b: MatrixFormat,
    ) -> (WsWorkload, CooMatrix, CooMatrix) {
        let a = random_matrix(m, k, nnz_a, 11);
        let b = random_matrix(k, n, nnz_b, 22);
        (
            WsWorkload {
                m,
                k,
                n,
                nnz_a: nnz_a as u64,
                nnz_b: nnz_b as u64,
                acf_a,
                acf_b,
            },
            a,
            b,
        )
    }

    /// Relative error helper.
    fn rel(err: f64, truth: f64) -> f64 {
        if truth == 0.0 {
            err.abs()
        } else {
            (err - truth).abs() / truth
        }
    }

    #[test]
    fn dense_dense_beats_are_exact() {
        let cfg = AccelConfig {
            num_pes: 8,
            pe_buffer_elems: 32,
            ..AccelConfig::walkthrough()
        };
        let (w, a, b) = workload(20, 32, 8, 100, 64, MatrixFormat::Dense, MatrixFormat::Dense);
        let est = ws_estimate(&w, &cfg).unwrap();
        let sim = simulate_ws(
            &MatrixData::encode(&a, &MatrixFormat::Dense).unwrap(),
            &MatrixData::encode(&b, &MatrixFormat::Dense).unwrap(),
            &cfg,
        )
        .unwrap();
        // K = 32 fits one range: beats = M * ceil(K/cap) exactly, and the
        // model's +0.5*M*ranges ceil-term over-counts by at most M/2.
        let tol = w.m as f64;
        assert!(
            (est.cycles.beats_a - sim.cycles.stream_a as f64).abs() <= tol,
            "beats {} vs sim {}",
            est.cycles.beats_a,
            sim.cycles.stream_a
        );
    }

    #[test]
    fn csr_dense_estimate_tracks_simulator() {
        let cfg = AccelConfig {
            num_pes: 16,
            pe_buffer_elems: 64,
            ..AccelConfig::walkthrough()
        };
        for (nnz, seed_gap) in [(50, 0), (400, 1), (1200, 2)] {
            let (w, a, b) = workload(
                40,
                60,
                16,
                nnz,
                60 * 16,
                MatrixFormat::Csr,
                MatrixFormat::Dense,
            );
            let _ = seed_gap;
            let est = ws_estimate(&w, &cfg).unwrap();
            let sim = simulate_ws(
                &MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
                &MatrixData::encode(&b, &MatrixFormat::Dense).unwrap(),
                &cfg,
            )
            .unwrap();
            let e = rel(est.cycles.stream_a, sim.cycles.stream_a as f64);
            assert!(
                e < 0.5,
                "nnz={nnz}: stream est {} vs sim {} (rel {e})",
                est.cycles.stream_a,
                sim.cycles.stream_a
            );
            assert_eq!(est.macs, sim.counts.macs as f64, "macs exact for dense B");
        }
    }

    #[test]
    fn csr_csc_estimate_tracks_simulator() {
        let cfg = AccelConfig {
            num_pes: 16,
            pe_buffer_elems: 64,
            ..AccelConfig::walkthrough()
        };
        let (w, a, b) = workload(50, 80, 16, 600, 400, MatrixFormat::Csr, MatrixFormat::Csc);
        let est = ws_estimate(&w, &cfg).unwrap();
        let sim = simulate_ws(
            &MatrixData::encode(&a, &MatrixFormat::Csr).unwrap(),
            &MatrixData::encode(&b, &MatrixFormat::Csc).unwrap(),
            &cfg,
        )
        .unwrap();
        let e_macs = rel(est.macs, sim.counts.macs as f64);
        assert!(
            e_macs < 0.35,
            "macs est {} vs sim {} (rel {e_macs})",
            est.macs,
            sim.counts.macs
        );
        let e_cycles = rel(est.cycles.total(), sim.cycles.total() as f64);
        assert!(
            e_cycles < 0.6,
            "cycles est {} vs sim {} (rel {e_cycles})",
            est.cycles.total(),
            sim.cycles.total()
        );
    }

    #[test]
    fn coo_dense_estimate_tracks_simulator() {
        let cfg = AccelConfig {
            num_pes: 16,
            pe_buffer_elems: 64,
            ..AccelConfig::walkthrough()
        };
        let (w, a, b) = workload(
            30,
            64,
            16,
            300,
            64 * 16,
            MatrixFormat::Coo,
            MatrixFormat::Dense,
        );
        let est = ws_estimate(&w, &cfg).unwrap();
        let sim = simulate_ws(
            &MatrixData::encode(&a, &MatrixFormat::Coo).unwrap(),
            &MatrixData::encode(&b, &MatrixFormat::Dense).unwrap(),
            &cfg,
        )
        .unwrap();
        let e = rel(est.cycles.stream_a, sim.cycles.stream_a as f64);
        assert!(
            e < 0.35,
            "stream est {} vs sim {} (rel {e})",
            est.cycles.stream_a,
            sim.cycles.stream_a
        );
    }

    #[test]
    fn spgemm_estimate_tracks_simulator() {
        let cfg = AccelConfig {
            num_pes: 8,
            pe_buffer_elems: 64,
            ..AccelConfig::walkthrough()
        };
        let a = random_matrix(30, 40, 200, 5);
        let b = random_matrix(40, 30, 180, 6);
        let w = WsWorkload {
            m: 30,
            k: 40,
            n: 30,
            nnz_a: 200,
            nnz_b: 180,
            acf_a: MatrixFormat::Csr,
            acf_b: MatrixFormat::Csr,
        };
        let est = spgemm_estimate(&w, &cfg).unwrap();
        let sim =
            simulate_spgemm(&CsrMatrix::from_coo(&a), &CsrMatrix::from_coo(&b), &cfg).unwrap();
        let e_macs = rel(est.macs, sim.counts.macs as f64);
        assert!(
            e_macs < 0.15,
            "flops est {} vs sim {} (rel {e_macs})",
            est.macs,
            sim.counts.macs
        );
        let e = rel(est.cycles.total(), sim.cycles.total() as f64);
        assert!(
            e < 0.8,
            "cycles est {} vs sim {} (rel {e})",
            est.cycles.total(),
            sim.cycles.total()
        );
    }

    #[test]
    fn sparser_streaming_operand_cuts_predicted_cycles() {
        // The ACF story of Fig. 6: CSR streaming beats Dense streaming
        // when A is sparse.
        let cfg = AccelConfig::paper();
        let base = WsWorkload {
            m: 1000,
            k: 1000,
            n: 1000,
            nnz_a: 10_000, // 1% dense
            nnz_b: 1_000_000,
            acf_a: MatrixFormat::Dense,
            acf_b: MatrixFormat::Dense,
        };
        let base = WsWorkload {
            nnz_b: 10_000,
            ..base
        }; // B also 1% dense
        let dense = ws_estimate(&base, &cfg).unwrap();
        let sparse = ws_estimate(
            &WsWorkload {
                acf_a: MatrixFormat::Csr,
                acf_b: MatrixFormat::Csc,
                ..base
            },
            &cfg,
        )
        .unwrap();
        assert!(
            sparse.cycles.total() < dense.cycles.total() / 5.0,
            "csr-csc {} vs dense-dense {}",
            sparse.cycles.total(),
            dense.cycles.total()
        );
    }

    #[test]
    fn dense_acf_wins_at_full_density() {
        // At 100% density the metadata of CSR only adds traffic.
        let cfg = AccelConfig::paper();
        let base = WsWorkload {
            m: 500,
            k: 500,
            n: 500,
            nnz_a: 250_000,
            nnz_b: 250_000,
            acf_a: MatrixFormat::Dense,
            acf_b: MatrixFormat::Dense,
        };
        let dense = ws_estimate(&base, &cfg).unwrap();
        let csr = ws_estimate(
            &WsWorkload {
                acf_a: MatrixFormat::Csr,
                ..base
            },
            &cfg,
        )
        .unwrap();
        assert!(dense.cycles.total() < csr.cycles.total());
    }

    #[test]
    fn unsupported_pair_rejected() {
        let cfg = AccelConfig::paper();
        let w = WsWorkload {
            m: 10,
            k: 10,
            n: 10,
            nnz_a: 10,
            nnz_b: 10,
            acf_a: MatrixFormat::Zvc,
            acf_b: MatrixFormat::Dense,
        };
        assert!(ws_estimate(&w, &cfg).is_err());
    }

    #[test]
    fn utilization_reflects_sparsity() {
        let cfg = AccelConfig::paper();
        let w = WsWorkload {
            m: 1000,
            k: 1000,
            n: 1000,
            nnz_a: 10_000,
            nnz_b: 10_000,
            acf_a: MatrixFormat::Dense,
            acf_b: MatrixFormat::Dense,
        };
        let est = ws_estimate(&w, &cfg).unwrap();
        assert!(
            est.utilization() < 1e-3,
            "dense ACF on 1% data must waste MACs"
        );
        let sparse = ws_estimate(
            &WsWorkload {
                acf_a: MatrixFormat::Csr,
                acf_b: MatrixFormat::Csc,
                ..w
            },
            &cfg,
        )
        .unwrap();
        assert!(sparse.utilization() > 0.9);
    }
}

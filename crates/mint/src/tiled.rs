//! Per-tile conversion and the overlap schedule model.
//!
//! "MINT is pipelined to start conversion while streaming in data from
//! memory" (§V-B) — and the system-level consequence the paper's Fig. 12
//! prices is that conversion of the *next* operand tile overlaps compute
//! on the *current* one. This module provides the two halves of that
//! story:
//!
//! - [`ConversionEngine::convert_tiles`] converts a sequence of operand
//!   tiles one by one, returning a [`TiledConversion`] whose per-tile
//!   [`ConversionReport`]s compose into the whole-operand report (the
//!   composition is exact: tile reports merged equal the metered cost of
//!   converting the tiles sequentially).
//! - [`overlap_schedule`] folds per-tile conversion and compute cycle
//!   vectors into the double-buffered pipeline total (convert tile `t+1`
//!   while computing tile `t`) alongside the serial convert-then-compute
//!   total, so callers (the `sparseflex-core` stage machine, SAGE's
//!   conversion model) price the overlap instead of assuming it.

use crate::engine::ConversionEngine;
use crate::report::ConversionReport;
use sparseflex_formats::{FormatError, MatrixData, MatrixFormat};

/// The result of converting one operand tile sequence MCF → ACF.
#[derive(Debug, Clone, Default)]
pub struct TiledConversion {
    /// Converted tiles, in input order, encoded in the target ACF.
    pub tiles: Vec<MatrixData>,
    /// One metered report per tile (degenerate tiles report near-zero
    /// cost; identity conversions report exactly zero).
    pub reports: Vec<ConversionReport>,
}

impl TiledConversion {
    /// Whole-operand report: the sequential composition of every per-tile
    /// report (same accounting `convert_matrix` on the unsplit operand
    /// would produce, up to per-tile pipeline fills).
    pub fn composed_report(&self) -> ConversionReport {
        let mut total = ConversionReport::default();
        for r in &self.reports {
            total.merge(r);
        }
        total
    }

    /// Per-tile pipelined wall-clock cycles (the conversion lane of the
    /// overlap schedule).
    pub fn tile_cycles(&self) -> Vec<u64> {
        self.reports
            .iter()
            .map(ConversionReport::pipelined_cycles)
            .collect()
    }
}

impl ConversionEngine {
    /// Convert each tile in `tiles` to `target`, metering every tile
    /// separately so the runtime can schedule tile `t+1`'s conversion
    /// against tile `t`'s compute.
    pub fn convert_tiles(
        &self,
        tiles: &[MatrixData],
        target: &MatrixFormat,
    ) -> Result<TiledConversion, FormatError> {
        let mut out = TiledConversion {
            tiles: Vec::with_capacity(tiles.len()),
            reports: Vec::with_capacity(tiles.len()),
        };
        for tile in tiles {
            let (converted, report) = self.convert_matrix(tile, target)?;
            out.tiles.push(converted);
            out.reports.push(report);
        }
        Ok(out)
    }
}

/// Cycle totals of a tiled plan→convert→execute run under the two
/// disciplines the acceptance comparison needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapSchedule {
    /// Double-buffered total: tile `t+1` converts while tile `t`
    /// computes, so each step costs `max(compute_t, conv_{t+1})` and only
    /// the first tile's conversion is exposed as pipeline fill.
    pub overlapped_cycles: u64,
    /// Serial total: every conversion strictly precedes its compute.
    pub serial_cycles: u64,
}

impl OverlapSchedule {
    /// Cycles the overlap hides (`serial - overlapped`).
    pub fn hidden_cycles(&self) -> u64 {
        self.serial_cycles - self.overlapped_cycles
    }

    /// Serial-over-overlapped speedup (1.0 when nothing overlaps).
    pub fn speedup(&self) -> f64 {
        if self.overlapped_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.overlapped_cycles as f64
        }
    }
}

/// Fold per-tile conversion and compute cycles into the double-buffered
/// schedule.
///
/// `conv[t]` is the pipelined conversion cost of tile `t`; `compute[t]`
/// its accelerator cycles. Both slices must be the same length (one entry
/// per tile). With double buffering the machine converts tile 0, then at
/// each step computes tile `t` while converting tile `t+1`:
///
/// ```text
/// overlapped = conv[0] + sum_t max(compute[t], conv[t+1])   (conv[T] = 0)
/// serial     = sum_t (conv[t] + compute[t])
/// ```
pub fn overlap_schedule(conv: &[u64], compute: &[u64]) -> OverlapSchedule {
    assert_eq!(
        conv.len(),
        compute.len(),
        "one conversion entry per compute tile"
    );
    if conv.is_empty() {
        return OverlapSchedule::default();
    }
    let mut overlapped = conv[0];
    for (t, &compute_t) in compute.iter().enumerate() {
        let next_conv = conv.get(t + 1).copied().unwrap_or(0);
        overlapped += compute_t.max(next_conv);
    }
    let serial = conv.iter().sum::<u64>() + compute.iter().sum::<u64>();
    OverlapSchedule {
        overlapped_cycles: overlapped,
        serial_cycles: serial,
    }
}

/// Split a predicted whole-operand cycle total across tiles in
/// proportion to `weights` (per-tile stored nonzeros, as exported by the
/// tiler's column schedule), falling back to an even split when every
/// weight is zero.
///
/// This is the planning-time counterpart of the per-tile cycle vectors
/// the runtime measures: a planner holding only whole-operand cost-model
/// totals uses it to materialize the per-tile conversion and compute
/// lanes that [`overlap_schedule`] folds into a *predicted*
/// [`OverlapSchedule`], which execution then compares against the
/// measured one.
pub fn split_cycles(total: f64, weights: &[usize]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: usize = weights.iter().sum();
    if sum == 0 {
        let even = (total / weights.len() as f64).round().max(0.0) as u64;
        return vec![even; weights.len()];
    }
    weights
        .iter()
        .map(|&w| (total * w as f64 / sum as f64).round().max(0.0) as u64)
        .collect()
}

/// SAGE's analytic view of the tile-grained pipeline: predict the
/// conversion cycles that stay exposed after the overlap the runtime
/// actually schedules, from whole-operand statistics split into `tiles`
/// equal stationary tiles.
///
/// The model mirrors `run_pipelined`'s stage machine tile for tile:
///
/// - **Prologue / fill**: the streaming operand converts once up front
///   and the first stationary tile converts before any compute exists to
///   hide it — together they overlap only the fetch streaming in under
///   them (`dram_a` plus tile 0's share of `dram_b`, §V-B).
/// - **Steady state**: each later stationary tile's conversion
///   double-buffers against the previous tile's compute on top of its
///   own fetch share.
///
/// Only the per-phase excess surfaces as latency, so — unlike the old
/// whole-operand closed form `max(0, conv - dram - compute)` — the
/// prediction genuinely depends on the tile count: more tiles shrink the
/// exposed fill, and a conversion-bound steady state exposes its excess
/// once per tile.
pub fn added_hardware_cycles(
    conv_a: f64,
    dram_a: f64,
    conv_b: f64,
    dram_b: f64,
    compute_total: f64,
    tiles: usize,
) -> f64 {
    let t = tiles.max(1) as f64;
    let fill_exposed = (conv_a + conv_b / t - (dram_a + dram_b / t)).max(0.0);
    let steady_exposed = ((conv_b - dram_b - compute_total) / t).max(0.0);
    fill_exposed + (t - 1.0) * steady_exposed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{tile_column_ranges, uniform_column_ranges, SparseMatrix};
    use sparseflex_workloads::synth::random_matrix;

    #[test]
    fn tile_reports_compose_to_the_whole_operand() {
        let eng = ConversionEngine::default();
        let coo = random_matrix(32, 40, 200, 11);
        let data = MatrixData::encode(&coo, &MatrixFormat::Csr).unwrap();
        let ranges = uniform_column_ranges(40, 8);
        let raw_tiles: Vec<MatrixData> = tile_column_ranges(&data, &ranges)
            .unwrap()
            .into_iter()
            .map(|t| t.data)
            .collect();
        let tiled = eng.convert_tiles(&raw_tiles, &MatrixFormat::Csc).unwrap();
        assert_eq!(tiled.tiles.len(), ranges.len());
        // Functional: every tile converted exactly.
        for (tile, raw) in tiled.tiles.iter().zip(&raw_tiles) {
            assert_eq!(tile.format(), MatrixFormat::Csc);
            assert_eq!(tile.to_coo(), raw.to_coo());
        }
        // Composition: merged tile reports account for every nonzero.
        let composed = tiled.composed_report();
        assert_eq!(composed.elements, coo.nnz() as u64);
        assert_eq!(
            composed.serialized_cycles(),
            tiled
                .reports
                .iter()
                .map(ConversionReport::serialized_cycles)
                .sum::<u64>()
        );
    }

    #[test]
    fn identity_tiles_are_free() {
        let eng = ConversionEngine::default();
        let coo = random_matrix(10, 10, 20, 3);
        let data = MatrixData::encode(&coo, &MatrixFormat::Coo).unwrap();
        let tiled = eng
            .convert_tiles(std::slice::from_ref(&data), &MatrixFormat::Coo)
            .unwrap();
        assert_eq!(tiled.composed_report().serialized_cycles(), 0);
        assert_eq!(tiled.tile_cycles(), vec![0]);
    }

    #[test]
    fn overlap_schedule_hides_conversion_behind_compute() {
        // 4 tiles, conversion 10 each, compute 25 each: all but tile 0's
        // conversion hides behind compute.
        let s = overlap_schedule(&[10, 10, 10, 10], &[25, 25, 25, 25]);
        assert_eq!(s.serial_cycles, 140);
        assert_eq!(s.overlapped_cycles, 10 + 25 * 4);
        assert_eq!(s.hidden_cycles(), 30);
        assert!(s.speedup() > 1.0);
    }

    #[test]
    fn conversion_bound_pipelines_degrade_gracefully() {
        // Conversion slower than compute: the converter is the bottleneck
        // but compute still hides behind it.
        let s = overlap_schedule(&[30, 30], &[10, 10]);
        assert_eq!(s.serial_cycles, 80);
        assert_eq!(s.overlapped_cycles, 30 + 30 + 10);
        assert!(s.overlapped_cycles < s.serial_cycles);
    }

    #[test]
    fn empty_and_single_tile_schedules() {
        assert_eq!(overlap_schedule(&[], &[]), OverlapSchedule::default());
        let one = overlap_schedule(&[7], &[9]);
        assert_eq!(one.overlapped_cycles, 16);
        assert_eq!(one.serial_cycles, 16);
        assert_eq!(one.hidden_cycles(), 0);
    }

    #[test]
    fn split_cycles_follows_weights() {
        // Proportional: weights 1:3 split 400 cycles 100/300.
        assert_eq!(split_cycles(400.0, &[10, 30]), vec![100, 300]);
        // All-zero weights (empty tiles) fall back to an even split.
        assert_eq!(split_cycles(90.0, &[0, 0, 0]), vec![30, 30, 30]);
        // No tiles, no cycles.
        assert_eq!(split_cycles(1_000.0, &[]), Vec::<u64>::new());
        // The split feeds straight into the overlap fold.
        let conv = split_cycles(40.0, &[1, 1, 1, 1]);
        let s = overlap_schedule(&conv, &[25, 25, 25, 25]);
        assert_eq!(s.overlapped_cycles, 10 + 25 * 4);
    }

    #[test]
    fn added_cycles_track_the_pipeline_phases() {
        // Everything hides: conversions fit their fetch windows.
        assert_eq!(
            added_hardware_cycles(50.0, 500.0, 100.0, 800.0, 500.0, 8),
            0.0
        );
        // Untiled, a conversion-heavy stationary operand is exposed above
        // the prologue fetch window (compute cannot hide the single
        // tile's fill): 2000 - (300 + 300).
        let untiled = added_hardware_cycles(0.0, 300.0, 2_000.0, 300.0, 10_000.0, 1);
        assert_eq!(untiled, 1_400.0);
        // Tiling shrinks the exposed fill: with 4 tiles only tile 0's
        // share converts before compute exists to hide the rest.
        let tiled = added_hardware_cycles(0.0, 300.0, 2_000.0, 300.0, 10_000.0, 4);
        assert!(tiled < untiled, "tiled {tiled} !< untiled {untiled}");
        // Streaming-operand conversion is prologue work: it can hide only
        // behind its own fetch, regardless of tiling.
        let prologue = added_hardware_cycles(900.0, 100.0, 0.0, 0.0, 10_000.0, 16);
        assert_eq!(prologue, 800.0);
    }
}

//! MINT design variants and overlay overheads (§V-A, §VII-B).
//!
//! The paper synthesizes three MINT implementations in 28nm at 1 GHz:
//!
//! | variant | idea | area |
//! |---|---|---|
//! | `MINT_b` | separate converter per conversion pair | 0.95 mm² |
//! | `MINT_m` | merged building blocks | 0.41 mm² (~57% smaller) |
//! | `MINT_mr` | merged + reuse of accelerator MACs/dividers | 0.23 mm² (~45% smaller again) |
//!
//! Divide and mod units dominate `MINT_m` (74% of area, 65% of power).
//! Reuse requires overlaying prefix-sum wiring on the PE array: the
//! highly-parallel 32-input design costs +20% area / +27% power on a
//! 16x16 int32 array; the serial chain only +2% / +3% (§VII-B).

/// The three MINT implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MintVariant {
    /// Separate per-pair converters.
    Baseline,
    /// Merged building blocks.
    Merged,
    /// Merged blocks + accelerator datapath reuse.
    MergedReuse,
}

impl MintVariant {
    /// Silicon area in mm² (28nm, paper-reported).
    pub const fn area_mm2(self) -> f64 {
        match self {
            MintVariant::Baseline => 0.95,
            MintVariant::Merged => 0.41,
            MintVariant::MergedReuse => 0.23,
        }
    }

    /// Power in watts at 1 GHz. The paper reports relative shares rather
    /// than absolutes; we anchor `MINT_m` at 150 mW (a typical density
    /// for 28nm datapath logic) and scale the others by area, with the
    /// divide/mod share checked against the 65% figure in tests.
    pub const fn power_w(self) -> f64 {
        match self {
            MintVariant::Baseline => 0.348,
            MintVariant::Merged => 0.150,
            MintVariant::MergedReuse => 0.084,
        }
    }

    /// Area fraction occupied by divide/mod units (74% for `MINT_m`).
    pub const fn divmod_area_share(self) -> f64 {
        match self {
            MintVariant::Merged => 0.74,
            // Baseline replicates div/mod per converter; reuse borrows
            // the accelerator's dividers for part of the work.
            MintVariant::Baseline => 0.74,
            MintVariant::MergedReuse => 0.55,
        }
    }

    /// Power fraction of divide/mod units (65% for `MINT_m`).
    pub const fn divmod_power_share(self) -> f64 {
        match self {
            MintVariant::Merged => 0.65,
            MintVariant::Baseline => 0.65,
            MintVariant::MergedReuse => 0.48,
        }
    }

    /// All variants in paper order.
    pub const fn all() -> [MintVariant; 3] {
        [
            MintVariant::Baseline,
            MintVariant::Merged,
            MintVariant::MergedReuse,
        ]
    }

    /// Short name.
    pub const fn name(self) -> &'static str {
        match self {
            MintVariant::Baseline => "MINT_b",
            MintVariant::Merged => "MINT_m",
            MintVariant::MergedReuse => "MINT_mr",
        }
    }
}

/// Overlay choice when reusing the PE array for prefix sums (`MINT_mr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefixSumOverlay {
    /// Highly-parallel 32-input overlay: fastest, +20% area / +27% power
    /// on the int32 PE array.
    HighlyParallel,
    /// Serial-chain overlay: +2% area / +3% power, longer tail latency.
    SerialChain,
}

impl PrefixSumOverlay {
    /// Fractional area overhead on the int32 PE array.
    pub const fn area_overhead(self) -> f64 {
        match self {
            PrefixSumOverlay::HighlyParallel => 0.20,
            PrefixSumOverlay::SerialChain => 0.02,
        }
    }

    /// Fractional power overhead on the int32 PE array.
    pub const fn power_overhead(self) -> f64 {
        match self {
            PrefixSumOverlay::HighlyParallel => 0.27,
            PrefixSumOverlay::SerialChain => 0.03,
        }
    }
}

/// MINT_m's share of a 16384-PE accelerator (the paper: "MINT_m consumes
/// 0.5% of its area and 0.4% of its power").
pub fn relative_to_accelerator(variant: MintVariant) -> (f64, f64) {
    // Anchored to the paper's reported accelerator-relative shares for
    // MINT_m; others scale by area/power ratios.
    let accel_area = MintVariant::Merged.area_mm2() / 0.005;
    let accel_power = MintVariant::Merged.power_w() / 0.004;
    (
        variant.area_mm2() / accel_area,
        variant.power_w() / accel_power,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reported_areas() {
        assert_eq!(MintVariant::Baseline.area_mm2(), 0.95);
        assert_eq!(MintVariant::Merged.area_mm2(), 0.41);
        assert_eq!(MintVariant::MergedReuse.area_mm2(), 0.23);
    }

    #[test]
    fn merging_saves_57_percent() {
        let saving = 1.0 - MintVariant::Merged.area_mm2() / MintVariant::Baseline.area_mm2();
        assert!((saving - 0.57).abs() < 0.02, "merge saving {saving}");
    }

    #[test]
    fn reuse_saves_45_percent_more() {
        let saving = 1.0 - MintVariant::MergedReuse.area_mm2() / MintVariant::Merged.area_mm2();
        assert!((saving - 0.44).abs() < 0.02, "reuse saving {saving}");
    }

    #[test]
    fn divmod_dominates_mint_m() {
        assert_eq!(MintVariant::Merged.divmod_area_share(), 0.74);
        assert_eq!(MintVariant::Merged.divmod_power_share(), 0.65);
    }

    #[test]
    fn overlay_overheads_match_section_7b() {
        assert_eq!(PrefixSumOverlay::HighlyParallel.area_overhead(), 0.20);
        assert_eq!(PrefixSumOverlay::HighlyParallel.power_overhead(), 0.27);
        assert_eq!(PrefixSumOverlay::SerialChain.area_overhead(), 0.02);
        assert_eq!(PrefixSumOverlay::SerialChain.power_overhead(), 0.03);
    }

    #[test]
    fn mint_m_is_half_percent_of_accelerator() {
        let (area_share, power_share) = relative_to_accelerator(MintVariant::Merged);
        assert!((area_share - 0.005).abs() < 1e-12);
        assert!((power_share - 0.004).abs() < 1e-12);
    }
}

//! Cluster counter: occurrence counting over sorted chunks.
//!
//! Fig. 8c step 3 "counts the number of specific values within the
//! chunk" after the sorting network groups equal ids together. A bank of
//! comparators detects run boundaries and per-lane counters accumulate
//! run lengths in a single cycle per chunk.

use super::E_SMALL_OP;
use crate::report::{BlockKind, ConversionReport};

/// A cluster counter matched to a sorting-network width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCounter {
    /// Chunk width.
    pub width: usize,
}

impl ClusterCounter {
    /// MINT default, matched to the sorter.
    pub fn mint_default() -> Self {
        ClusterCounter { width: 16 }
    }

    /// Busy cycles for `n` elements (one chunk per cycle).
    pub fn cycles(&self, n: u64) -> u64 {
        n.div_ceil(self.width.max(1) as u64)
    }

    /// Energy: one comparison + one counter update per element.
    pub fn energy(&self, n: u64) -> f64 {
        n as f64 * 2.0 * E_SMALL_OP
    }

    /// Count occurrences of each value in a (chunk-)sorted stream into a
    /// histogram of the given domain size, charging the report.
    pub fn count_into(
        &self,
        sorted: &[u64],
        domain: usize,
        report: &mut ConversionReport,
    ) -> Vec<u64> {
        report.charge(
            BlockKind::ClusterCounter,
            self.cycles(sorted.len() as u64),
            self.energy(sorted.len() as u64),
        );
        let mut hist = vec![0u64; domain];
        for &v in sorted {
            hist[v as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_correct() {
        let c = ClusterCounter::mint_default();
        let mut r = ConversionReport::default();
        let hist = c.count_into(&[0, 0, 1, 3, 3, 3], 5, &mut r);
        assert_eq!(hist, vec![2, 1, 0, 3, 0]);
    }

    #[test]
    fn chunked_throughput() {
        let c = ClusterCounter { width: 4 };
        assert_eq!(c.cycles(9), 3);
        assert_eq!(c.cycles(0), 0);
    }
}

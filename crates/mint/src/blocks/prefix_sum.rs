//! Prefix-sum (scan) units — the three designs of Fig. 9.
//!
//! "Prefix sums are often used during format conversions" (§V-A). The
//! paper shows three implementations, each reusable on top of existing
//! accelerator reduction hardware:
//!
//! - **Serial chain** (Fig. 9a): a systolic chain with diagonal
//!   forwarding links; throughput `width` outputs/cycle once filled, fill
//!   latency `width` cycles, plus a final offset-adder row that carries
//!   the running total between blocks. Cheapest overlay (+2% area / +3%
//!   power on a 16x16 int32 PE array, §VII-B).
//! - **Work efficient** (Fig. 9b): Brent-Kung on an adder-tree reduction
//!   network; `2*log2(width)` cycles per block, not pipelined across
//!   blocks (the tree is reused for both sweeps).
//! - **Highly parallel** (Fig. 9c): Kogge-Stone; `log2(width)` latency,
//!   fully pipelined, most adders and forwarding links (+20% area / +27%
//!   power overlay).

use super::E_SMALL_OP;
use crate::report::{BlockKind, ConversionReport};

/// Which Fig. 9 implementation a [`PrefixSumUnit`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefixSumDesign {
    /// Fig. 9a — systolic chain with diagonal links.
    SerialChain,
    /// Fig. 9b — work-efficient (Brent-Kung) on an adder tree.
    WorkEfficient,
    /// Fig. 9c — highly parallel (Kogge-Stone).
    HighlyParallel,
}

/// A scan unit of a given width and design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSumUnit {
    /// Inputs consumed per block (the paper uses 32 "to satisfy MINT
    /// throughput").
    pub width: usize,
    /// Hardware design point.
    pub design: PrefixSumDesign,
}

impl PrefixSumUnit {
    /// The paper's MINT configuration: 32-wide highly parallel scan.
    pub fn mint_default() -> Self {
        PrefixSumUnit {
            width: 32,
            design: PrefixSumDesign::HighlyParallel,
        }
    }

    /// Pipeline fill latency in cycles.
    pub fn latency(&self) -> u64 {
        let w = self.width.max(2) as u64;
        let log = (64 - (w - 1).leading_zeros()) as u64;
        match self.design {
            PrefixSumDesign::SerialChain => w, // one hop per element
            PrefixSumDesign::WorkEfficient => 2 * log,
            PrefixSumDesign::HighlyParallel => log,
        }
    }

    /// Busy cycles to scan `n` elements.
    pub fn cycles(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let w = self.width.max(1) as u64;
        let blocks = n.div_ceil(w);
        match self.design {
            // Pipelined: one block per cycle after fill.
            PrefixSumDesign::SerialChain | PrefixSumDesign::HighlyParallel => blocks,
            // Tree reused for up-sweep and down-sweep: not pipelined.
            PrefixSumDesign::WorkEfficient => blocks * self.latency(),
        }
    }

    /// Active adders in the design (drives area/power overlays).
    pub fn adder_count(&self) -> u64 {
        let w = self.width.max(2) as u64;
        let log = (64 - (w - 1).leading_zeros()) as u64;
        match self.design {
            // Chain + final offset row.
            PrefixSumDesign::SerialChain => 2 * w,
            // Brent-Kung uses ~2w adders worth of tree nodes.
            PrefixSumDesign::WorkEfficient => 2 * w - log - 2,
            // Kogge-Stone: w adders per stage.
            PrefixSumDesign::HighlyParallel => w * log,
        }
    }

    /// Energy to scan `n` elements (each element passes `latency`-ish
    /// adder stages; serial chain does 2 adds per element).
    pub fn energy(&self, n: u64) -> f64 {
        let per_elem = match self.design {
            PrefixSumDesign::SerialChain => 2.0,
            PrefixSumDesign::WorkEfficient => 2.0,
            PrefixSumDesign::HighlyParallel => {
                let w = self.width.max(2) as u64;
                (64 - (w - 1).leading_zeros()) as f64
            }
        };
        n as f64 * per_elem * E_SMALL_OP
    }

    /// Functional inclusive scan, charging the report.
    pub fn scan(&self, input: &[u64], report: &mut ConversionReport) -> Vec<u64> {
        report.charge(
            BlockKind::PrefixSum,
            self.cycles(input.len() as u64),
            self.energy(input.len() as u64),
        );
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &x in input {
            acc += x;
            out.push(acc);
        }
        out
    }

    /// Functional exclusive scan (shifted), charging the report.
    pub fn scan_exclusive(&self, input: &[u64], report: &mut ConversionReport) -> Vec<u64> {
        report.charge(
            BlockKind::PrefixSum,
            self.cycles(input.len() as u64),
            self.energy(input.len() as u64),
        );
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_scan_is_correct() {
        let unit = PrefixSumUnit::mint_default();
        let mut r = ConversionReport::default();
        assert_eq!(unit.scan(&[1, 2, 3, 4], &mut r), vec![1, 3, 6, 10]);
        assert_eq!(unit.scan_exclusive(&[1, 2, 3, 4], &mut r), vec![0, 1, 3, 6]);
        assert!(r.block_cycles[&BlockKind::PrefixSum] >= 2);
    }

    #[test]
    fn latencies_match_fig9() {
        let w = 32;
        let chain = PrefixSumUnit {
            width: w,
            design: PrefixSumDesign::SerialChain,
        };
        let work = PrefixSumUnit {
            width: w,
            design: PrefixSumDesign::WorkEfficient,
        };
        let par = PrefixSumUnit {
            width: w,
            design: PrefixSumDesign::HighlyParallel,
        };
        assert_eq!(chain.latency(), 32);
        assert_eq!(work.latency(), 10); // 2 * log2(32)
        assert_eq!(par.latency(), 5); // "latency of logN cycles"
    }

    #[test]
    fn parallel_needs_more_adders_than_chain() {
        // Fig. 9c "requires more active adders and forwarding links".
        let w = 32;
        let chain = PrefixSumUnit {
            width: w,
            design: PrefixSumDesign::SerialChain,
        };
        let par = PrefixSumUnit {
            width: w,
            design: PrefixSumDesign::HighlyParallel,
        };
        assert!(par.adder_count() > chain.adder_count());
    }

    #[test]
    fn pipelined_designs_sustain_block_per_cycle() {
        let par = PrefixSumUnit {
            width: 32,
            design: PrefixSumDesign::HighlyParallel,
        };
        assert_eq!(par.cycles(3200), 100);
        let work = PrefixSumUnit {
            width: 32,
            design: PrefixSumDesign::WorkEfficient,
        };
        assert_eq!(work.cycles(3200), 100 * work.latency());
        assert!(work.cycles(3200) > par.cycles(3200));
    }

    #[test]
    fn zero_elements_cost_nothing() {
        let unit = PrefixSumUnit::mint_default();
        assert_eq!(unit.cycles(0), 0);
        assert_eq!(unit.energy(0), 0.0);
    }
}

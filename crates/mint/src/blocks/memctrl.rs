//! Memory controller: address generators, FIFOs and a crossbar feeding
//! the conversion scratchpad (§VII-B lists it among MINT's components).

use super::E_MEMCTRL_OP;
use crate::report::{BlockKind, ConversionReport};

/// Scratchpad-facing memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemController {
    /// Elements moved per cycle (reads or writes, crossbar-limited).
    pub elems_per_cycle: usize,
    /// Fixed request setup latency.
    pub setup_latency: u64,
}

impl MemController {
    /// MINT default: 16 elements/cycle (512-bit port), 4-cycle setup.
    pub fn mint_default() -> Self {
        MemController {
            elems_per_cycle: 16,
            setup_latency: 4,
        }
    }

    /// Busy cycles to move `n` elements.
    pub fn cycles(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        n.div_ceil(self.elems_per_cycle.max(1) as u64)
    }

    /// Energy to move `n` elements.
    pub fn energy(&self, n: u64) -> f64 {
        n as f64 * E_MEMCTRL_OP
    }

    /// Charge a transfer of `n` elements against the report.
    pub fn transfer(&self, n: u64, report: &mut ConversionReport) {
        report.charge(BlockKind::MemController, self.cycles(n), self.energy(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_round_up() {
        let m = MemController::mint_default();
        assert_eq!(m.cycles(16), 1);
        assert_eq!(m.cycles(17), 2);
        assert_eq!(m.cycles(0), 0);
    }

    #[test]
    fn transfer_charges_report() {
        let m = MemController::mint_default();
        let mut r = ConversionReport::default();
        m.transfer(32, &mut r);
        assert_eq!(r.block_cycles[&BlockKind::MemController], 2);
        assert!(r.total_energy() > 0.0);
    }
}

//! MINT's building-block library (Fig. 8a).
//!
//! Each block is *functional* — it computes real results so conversion
//! pipelines built from blocks can be verified bit-for-bit against the
//! software conversions — and *metered*, reporting busy cycles and energy
//! for the cost model. Throughput parameters default to the paper's MINT
//! implementation (§VII-B): a 32-input prefix-sum overlay, eight parallel
//! divide/mod units, a sorting network sized to the per-cycle metadata
//! rate, and a memory controller with address generators, FIFOs and a
//! crossbar.

pub mod counter;
pub mod divmod;
pub mod memctrl;
pub mod prefix_sum;
pub mod sorter;

pub use counter::ClusterCounter;
pub use divmod::DivModArray;
pub use memctrl::MemController;
pub use prefix_sum::{PrefixSumDesign, PrefixSumUnit};
pub use sorter::SortingNetwork;

/// Energy charged per element-op flowing through a small arithmetic
/// block (comparator, adder, counter) — int32-scale, in joules.
pub const E_SMALL_OP: f64 = 0.1e-12;
/// Lane width of the adder / comparator banks (elements per cycle).
pub const SMALL_BANK_WIDTH: u64 = 16;

/// Busy cycles for `n` elements through a 16-wide adder/comparator bank.
#[inline]
pub fn small_op_cycles(n: u64) -> u64 {
    n.div_ceil(SMALL_BANK_WIDTH)
}
/// Energy per element through a divide/mod unit (pipelined int32 divide).
pub const E_DIVMOD_OP: f64 = 2.0e-12;
/// Energy per element through one sorting-network stage.
pub const E_SORT_STAGE: f64 = 0.15e-12;
/// Energy per 32-bit element moved by the memory controller (FIFO +
/// crossbar + scratchpad port).
pub const E_MEMCTRL_OP: f64 = 1.0e-12;

//! Pipelined bitonic sorting network.
//!
//! The paper's MINT includes "a pipelined sorting network (input size
//! equal to the number of unique metadata coming in per cycle)" (§VII-B),
//! used e.g. by CSR→CSC to sort each chunk of column ids before cluster
//! counting (Fig. 8c step 2).

use super::E_SORT_STAGE;
use crate::report::{BlockKind, ConversionReport};

/// A bitonic sorting network of a fixed power-of-two width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortingNetwork {
    /// Chunk width (power of two).
    pub width: usize,
}

impl SortingNetwork {
    /// MINT's default width: 16 metadata elements per cycle (the 512-bit
    /// bus delivers up to 16 32-bit words).
    pub fn mint_default() -> Self {
        SortingNetwork { width: 16 }
    }

    /// Compare-exchange stages: `log2(w) * (log2(w) + 1) / 2`.
    pub fn stages(&self) -> u64 {
        let w = self.width.max(2) as u64;
        let log = (64 - (w - 1).leading_zeros()) as u64;
        log * (log + 1) / 2
    }

    /// Compare-exchange units (area driver): `w/2` per stage.
    pub fn comparator_count(&self) -> u64 {
        self.stages() * (self.width as u64 / 2)
    }

    /// Busy cycles for `n` elements (pipelined: one chunk per cycle after
    /// the `stages()` fill).
    pub fn cycles(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        n.div_ceil(self.width.max(1) as u64)
    }

    /// Pipeline fill latency.
    pub fn latency(&self) -> u64 {
        self.stages()
    }

    /// Energy for `n` elements (each traverses every stage).
    pub fn energy(&self, n: u64) -> f64 {
        n as f64 * self.stages() as f64 * E_SORT_STAGE
    }

    /// Functionally sort chunks of `width` (chunk-local sort, exactly
    /// what the hardware produces), charging the report.
    pub fn sort_chunks(&self, input: &[u64], report: &mut ConversionReport) -> Vec<u64> {
        report.charge(
            BlockKind::Sorter,
            self.cycles(input.len() as u64),
            self.energy(input.len() as u64),
        );
        let mut out = input.to_vec();
        for chunk in out.chunks_mut(self.width.max(1)) {
            chunk.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_matches_bitonic() {
        assert_eq!(SortingNetwork { width: 16 }.stages(), 10); // 4*5/2
        assert_eq!(SortingNetwork { width: 8 }.stages(), 6); // 3*4/2
        assert_eq!(SortingNetwork { width: 2 }.stages(), 1);
    }

    #[test]
    fn sorts_within_chunks_only() {
        let net = SortingNetwork { width: 4 };
        let mut r = ConversionReport::default();
        let out = net.sort_chunks(&[4, 1, 3, 2, 9, 7, 8, 6], &mut r);
        assert_eq!(out, vec![1, 2, 3, 4, 6, 7, 8, 9]);
        let out2 = net.sort_chunks(&[9, 1, 2, 3, 0, 0, 0, 1], &mut r);
        assert_eq!(out2, vec![1, 2, 3, 9, 0, 0, 0, 1]);
    }

    #[test]
    fn throughput_one_chunk_per_cycle() {
        let net = SortingNetwork { width: 16 };
        assert_eq!(net.cycles(160), 10);
        assert_eq!(net.cycles(161), 11);
        assert_eq!(net.cycles(0), 0);
    }

    #[test]
    fn comparator_area_grows_with_width() {
        assert!(
            SortingNetwork { width: 32 }.comparator_count()
                > SortingNetwork { width: 8 }.comparator_count()
        );
    }
}

//! Parallel divide / modulo units.
//!
//! Position calculations (flat offset → coordinates) need integer divide
//! and mod by tensor dimensions (Fig. 8d step 4, Fig. 8f step 3). "We
//! limit the number of parallel mod and divider units to eight due to how
//! hardware expensive the modules are" (§VII-B); together they consume
//! 74% of MINT_m's area and 65% of its power. When dimensions are powers
//! of two the divide degenerates to a shift, but the hardware must cover
//! the general case.

use super::E_DIVMOD_OP;
use crate::report::{BlockKind, ConversionReport};

/// An array of pipelined divide+mod units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivModArray {
    /// Parallel units (the paper uses 8).
    pub units: usize,
    /// Pipeline depth of one unit (int32 divider).
    pub depth: u64,
}

impl DivModArray {
    /// The paper's MINT configuration: eight pipelined units.
    pub fn mint_default() -> Self {
        DivModArray { units: 8, depth: 4 }
    }

    /// Busy cycles to process `n` (dividend, divisor) pairs.
    pub fn cycles(&self, n: u64) -> u64 {
        n.div_ceil(self.units.max(1) as u64)
    }

    /// Pipeline fill latency.
    pub fn latency(&self) -> u64 {
        self.depth
    }

    /// Energy for `n` operations (divide + mod share the datapath).
    pub fn energy(&self, n: u64) -> f64 {
        n as f64 * E_DIVMOD_OP
    }

    /// Functional divide+mod over a slice, charging the report once for
    /// the whole batch.
    pub fn div_mod(
        &self,
        values: &[u64],
        divisor: u64,
        report: &mut ConversionReport,
    ) -> Vec<(u64, u64)> {
        assert!(divisor > 0, "divide by zero in DivModArray");
        let n = values.len() as u64;
        report.charge(BlockKind::Divider, self.cycles(n), self.energy(n) / 2.0);
        report.charge(BlockKind::Modulo, self.cycles(n), self.energy(n) / 2.0);
        values.iter().map(|&v| (v / divisor, v % divisor)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_divmod() {
        let arr = DivModArray::mint_default();
        let mut r = ConversionReport::default();
        let out = arr.div_mod(&[10, 17, 3], 4, &mut r);
        assert_eq!(out, vec![(2, 2), (4, 1), (0, 3)]);
    }

    #[test]
    fn eight_units_process_eight_per_cycle() {
        let arr = DivModArray::mint_default();
        assert_eq!(arr.cycles(8), 1);
        assert_eq!(arr.cycles(9), 2);
        assert_eq!(arr.cycles(0), 0);
    }

    #[test]
    #[should_panic(expected = "divide by zero")]
    fn zero_divisor_panics() {
        let arr = DivModArray::mint_default();
        let mut r = ConversionReport::default();
        let _ = arr.div_mod(&[1], 0, &mut r);
    }

    #[test]
    fn charges_both_divider_and_modulo() {
        let arr = DivModArray::mint_default();
        let mut r = ConversionReport::default();
        let _ = arr.div_mod(&[1, 2, 3], 2, &mut r);
        assert!(r
            .block_cycles
            .contains_key(&crate::report::BlockKind::Divider));
        assert!(r
            .block_cycles
            .contains_key(&crate::report::BlockKind::Modulo));
    }
}

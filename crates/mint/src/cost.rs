//! Closed-form conversion cost model — the "conversion cost" input SAGE
//! consumes (§VI: "to model the conversion cost, we evaluate the building
//! blocks necessary for each conversion scenario along with their
//! relative execution cycles and power consumption").
//!
//! Unlike [`crate::engine`], which meters an actual conversion, this
//! module predicts cycles and energy from `(dims, nnz, formats)` only, so
//! SAGE can search format spaces for workloads too large to materialize.
//! The model mirrors the engine's charging rules; tests cross-validate
//! the two on random operands.

use crate::blocks::{E_DIVMOD_OP, E_MEMCTRL_OP, E_SMALL_OP};
use crate::engine::ConversionEngine;
use sparseflex_formats::descriptor::Level;
use sparseflex_formats::size_model::{
    descriptor_matrix_bits, rlc_expected_entries, MatrixStructure,
};
use sparseflex_formats::{FormatDescriptor, MatrixFormat, RankOrder, TensorFormat, ValuesLayout};

/// Predicted cost of one conversion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConversionCost {
    /// Pipelined wall-clock cycles (bottleneck stage + fill).
    pub cycles: u64,
    /// Energy in joules.
    pub energy: f64,
}

impl ConversionCost {
    /// Zero cost (identity conversion).
    pub const fn free() -> Self {
        ConversionCost {
            cycles: 0,
            energy: 0.0,
        }
    }

    /// Sequential composition of two conversions.
    pub fn then(&self, other: &ConversionCost) -> ConversionCost {
        ConversionCost {
            cycles: self.cycles + other.cycles,
            energy: self.energy + other.energy,
        }
    }
}

/// Elements a descriptor must stream through the converter for an
/// `rows x cols` matrix with `nnz` nonzeros (values + metadata, in
/// element slots), derived from its level structure: coordinate ranks
/// stream one slot per stored coordinate, offsets ranks their pointer
/// array, bitmask ranks one slot per 32 mask bits, padded layouts the
/// full dense payload (conservative upper bound).
fn stream_slots(desc: &FormatDescriptor, rows: usize, cols: usize, nnz: u64) -> u64 {
    use Level as L;
    let total = rows as u64 * cols as u64;
    if desc.values == ValuesLayout::PaddedFibers {
        // Padded stores scale with their padded payloads (DIA strips,
        // ELL rows); approximate with the dense stream.
        return total;
    }
    match (desc.levels.as_slice(), desc.order) {
        ([L::Uncompressed, L::Uncompressed], _) | ([L::Uncompressed], _) => total,
        ([L::Singleton, L::Singleton], _) => 3 * nnz,
        ([L::Uncompressed, L::CompressedOffsets], RankOrder::RowMajor) => 2 * nnz + rows as u64 + 1,
        ([L::Uncompressed, L::CompressedOffsets], RankOrder::ColMajor) => 2 * nnz + cols as u64 + 1,
        ([L::RunLength { run_bits }], _) => 2 * rlc_expected_entries(total, nnz, *run_bits),
        ([L::Bitmask], _) => total.div_ceil(32) + nnz,
        ([L::Blocked { br, bc }, L::CompressedOffsets], _) => {
            let blocks = sparseflex_formats::size_model::bsr_expected_blocks(
                rows,
                cols,
                nnz as usize,
                *br,
                *bc,
            );
            blocks * (*br * *bc) as u64 + blocks + rows.div_ceil(*br) as u64 + 1
        }
        _ => {
            // Open compositions: derive slots from the generic size
            // model — one slot per stored value, one per 32 metadata
            // bits moved alongside.
            match descriptor_matrix_bits(
                desc,
                &MatrixStructure::analytic(rows, cols, nnz as usize),
                sparseflex_formats::DataType::Fp32,
            ) {
                Ok(bd) => bd.stored_elements + bd.metadata_bits().div_ceil(32),
                Err(_) => total,
            }
        }
    }
}

/// Divide/mod is needed only when recovering explicit coordinates from a
/// flat stream (no rank of the source stores coordinates, some rank of
/// the destination does), or when computing block positions for a
/// blocked destination rank. Flat -> flat re-encodes (e.g. ZVC -> Dense)
/// are pure expand/compact passes; coordinate -> flat needs only
/// multiply-adds.
fn needs_divmod(src: &FormatDescriptor, dst: &FormatDescriptor) -> bool {
    (src.is_flat() && !dst.is_flat()) || dst.has_blocked_rank()
}

/// Does decoding/encoding this descriptor require the sorter? A
/// column-major rank order must be regrouped into (or produced from) the
/// row-major stream — the coordinate-order change MINT's sorter network
/// handles (Fig. 8c).
fn needs_sorter(desc: &FormatDescriptor) -> bool {
    desc.order == RankOrder::ColMajor
}

/// Scan-stage traffic for decoding the source: uncompressed and bitmask
/// linearized ranks scan the whole payload/bitmap; everything else
/// rebuilds one pointer array.
fn scan_items(src: &FormatDescriptor, rows: usize, cols: usize) -> u64 {
    use Level as L;
    let total = rows as u64 * cols as u64;
    match src.levels.as_slice() {
        [L::Uncompressed, L::Uncompressed] | [L::Uncompressed] => total,
        [L::Bitmask] => total.div_ceil(32),
        _ => (rows.max(cols) as u64) + 1,
    }
}

/// The MINT hardware blocks a descriptor delta engages — the
/// block-level rendering of a conversion plan. Each variant maps to a
/// module of [`crate::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConverterBlock {
    /// Streams operand slots in and out ([`crate::blocks::memctrl`]).
    MemoryController,
    /// Rebuilds offset/pointer arrays and scans flat payloads
    /// ([`crate::blocks::prefix_sum`]).
    PrefixSum,
    /// Regroups coordinates across a rank-order change
    /// ([`crate::blocks::sorter`]).
    Sorter,
    /// Recovers explicit coordinates from flat streams and computes
    /// block positions ([`crate::blocks::divmod`]).
    DividerModulo,
    /// Populates and pops presence bitmasks
    /// ([`crate::blocks::counter`]).
    Counter,
}

/// Which hardware blocks converting `src` to `dst` engages, derived
/// from the descriptor delta: prefix-sum for offsets ranks, the sorter
/// for coordinate-order changes, divide/mod for coordinate recovery and
/// blocked ranks, the counter for bitmask ranks. Identity conversions
/// engage nothing.
pub fn required_blocks(src: &FormatDescriptor, dst: &FormatDescriptor) -> Vec<ConverterBlock> {
    if src == dst {
        return Vec::new();
    }
    let mut blocks = vec![ConverterBlock::MemoryController, ConverterBlock::PrefixSum];
    if needs_sorter(src) || needs_sorter(dst) {
        blocks.push(ConverterBlock::Sorter);
    }
    if needs_divmod(src, dst) {
        blocks.push(ConverterBlock::DividerModulo);
    }
    if src.has_bitmask_rank() || dst.has_bitmask_rank() {
        blocks.push(ConverterBlock::Counter);
    }
    blocks
}

/// Predict the MINT cost of converting a matrix between two format
/// **descriptors** — the canonical costing path; the legacy
/// [`conversion_cost`] enum entry point is a thin wrapper over this.
///
/// The conversion is pipelined against the DRAM stream, so the returned
/// cycle count is the bottleneck-stage occupancy: the memory controller
/// moving `in + out` slots, the divide/mod array (8 elements/cycle), or
/// the scan/sort stages (16-32 elements/cycle) — whichever is slowest.
pub fn descriptor_conversion_cost(
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    rows: usize,
    cols: usize,
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    if src == dst {
        return ConversionCost::free();
    }
    let in_slots = stream_slots(src, rows, cols, nnz);
    let out_slots = stream_slots(dst, rows, cols, nnz);

    // Stage occupancies.
    let mem_cycles = engine.memctrl.cycles(in_slots + out_slots);
    let divmod_items = if needs_divmod(src, dst) { nnz } else { 0 };
    let divmod_cycles = engine.divmod.cycles(divmod_items);
    let sort_items = if needs_sorter(src) || needs_sorter(dst) {
        nnz
    } else {
        0
    };
    let sort_cycles = engine.sorter.cycles(sort_items);
    // Scan traffic: dense/bitmask decodes scan the whole bitmap/matrix;
    // pointer rebuilds scan one pointer array.
    let scan_items = scan_items(src, rows, cols);
    let scan_cycles = engine.prefix.cycles(scan_items);

    let fill = engine.prefix.latency()
        + engine.sorter.latency()
        + engine.divmod.latency()
        + engine.memctrl.setup_latency;
    let cycles = mem_cycles
        .max(divmod_cycles)
        .max(sort_cycles)
        .max(scan_cycles)
        + fill;

    let energy = (in_slots + out_slots) as f64 * E_MEMCTRL_OP
        + divmod_items as f64 * E_DIVMOD_OP
        + sort_items as f64 * engine.sorter.stages() as f64 * crate::blocks::E_SORT_STAGE
        + scan_items as f64 * 2.0 * E_SMALL_OP
        + nnz as f64 * 2.0 * E_SMALL_OP; // comparators/adders along the way

    ConversionCost { cycles, energy }
}

/// Predict the MINT cost of converting a matrix from `src` to `dst` —
/// the legacy enum entry point, now a thin wrapper translating each
/// format to its per-rank descriptor.
pub fn conversion_cost(
    src: &MatrixFormat,
    dst: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    descriptor_conversion_cost(
        &src.descriptor(),
        &dst.descriptor(),
        rows,
        cols,
        nnz,
        engine,
    )
}

/// Tensor-format conversion cost between two descriptors (same stage
/// structure as the matrix path, tensor stream sizes).
pub fn descriptor_tensor_conversion_cost(
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    dims: (usize, usize, usize),
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    use Level as L;
    if src == dst {
        return ConversionCost::free();
    }
    let total = dims.0 as u64 * dims.1 as u64 * dims.2 as u64;
    let slots = |d: &FormatDescriptor| -> u64 {
        match d.levels.as_slice() {
            [L::Uncompressed, L::Uncompressed, L::Uncompressed] => total,
            // One slot per coordinate rank plus the value, per nonzero
            // (explicit 3-D coordinates; HiCOO's block + element pair
            // streams the same four slots).
            [L::Singleton, L::Singleton, L::Singleton] | [L::Blocked { .. }, L::Singleton] => {
                4 * nnz
            }
            [L::CompressedOffsets, L::CompressedOffsets, L::CompressedOffsets] => {
                2 * nnz + 2 * (nnz / 2).max(1) // fids + ptrs estimate
            }
            [L::RunLength { run_bits }] => 2 * rlc_expected_entries(total, nnz, *run_bits),
            [L::Bitmask] => total.div_ceil(32) + nnz,
            _ => total,
        }
    };
    let in_slots = slots(src);
    let out_slots = slots(dst);
    let mem_cycles = engine.memctrl.cycles(in_slots + out_slots);
    // Coordinate recovery (two div/mod rounds per nonzero) is needed only
    // when a flat stream must produce explicit coordinates.
    let divmod_items = if src.is_flat() && !dst.is_flat() {
        2 * nnz
    } else {
        0
    };
    let divmod_cycles = engine.divmod.cycles(divmod_items);
    let scan_items = match src.levels.as_slice() {
        [L::Uncompressed, L::Uncompressed, L::Uncompressed] => total,
        [L::Bitmask] => total.div_ceil(32),
        _ => nnz,
    };
    let scan_cycles = engine.prefix.cycles(scan_items);
    let fill = engine.prefix.latency() + engine.divmod.latency() + engine.memctrl.setup_latency;
    let cycles = mem_cycles.max(divmod_cycles).max(scan_cycles) + fill;
    let energy = (in_slots + out_slots) as f64 * E_MEMCTRL_OP
        + divmod_items as f64 * E_DIVMOD_OP
        + scan_items as f64 * 2.0 * E_SMALL_OP;
    ConversionCost { cycles, energy }
}

/// Tensor-format conversion cost — the legacy enum entry point, a thin
/// wrapper over [`descriptor_tensor_conversion_cost`].
pub fn tensor_conversion_cost(
    src: &TensorFormat,
    dst: &TensorFormat,
    dims: (usize, usize, usize),
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    descriptor_tensor_conversion_cost(&src.descriptor(), &dst.descriptor(), dims, nnz, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{MatrixData, SparseMatrix};
    use sparseflex_workloads::synth::random_matrix;

    #[test]
    fn identity_is_free() {
        let eng = ConversionEngine::default();
        let c = conversion_cost(&MatrixFormat::Csr, &MatrixFormat::Csr, 100, 100, 500, &eng);
        assert_eq!(c, ConversionCost::free());
    }

    #[test]
    fn cost_scales_with_nnz() {
        let eng = ConversionEngine::default();
        let small = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            1000,
            1000,
            1_000,
            &eng,
        );
        let large = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            1000,
            1000,
            100_000,
            &eng,
        );
        assert!(large.cycles > small.cycles);
        assert!(large.energy > small.energy);
    }

    #[test]
    fn dense_conversions_pay_for_the_full_scan() {
        let eng = ConversionEngine::default();
        let from_dense = conversion_cost(
            &MatrixFormat::Dense,
            &MatrixFormat::Csr,
            2000,
            2000,
            4_000,
            &eng,
        );
        let from_coo = conversion_cost(
            &MatrixFormat::Coo,
            &MatrixFormat::Csr,
            2000,
            2000,
            4_000,
            &eng,
        );
        assert!(
            from_dense.cycles > 10 * from_coo.cycles,
            "dense {} vs coo {}",
            from_dense.cycles,
            from_coo.cycles
        );
    }

    #[test]
    fn model_tracks_engine_measurements() {
        // The analytic model should land within 2x of the metered engine
        // for the Fig. 8 reference conversions (it models bottleneck-stage
        // occupancy; the engine meters every stage).
        let eng = ConversionEngine::default();
        let coo = random_matrix(100, 120, 2_000, 3);
        let csr = sparseflex_formats::CsrMatrix::from_coo(&coo);
        let (_, rep) = eng.csr_to_csc(&csr);
        let predicted = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            100,
            120,
            2_000,
            &eng,
        );
        let measured = rep.pipelined_cycles();
        let ratio = predicted.cycles as f64 / measured as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "predicted {} vs measured {measured} (ratio {ratio})",
            predicted.cycles
        );
    }

    #[test]
    fn rlc_decode_cost_tracks_engine() {
        let eng = ConversionEngine::default();
        let coo = random_matrix(64, 64, 512, 5);
        let rlc = sparseflex_formats::RlcMatrix::from_coo(&coo, 4);
        let data = MatrixData::Rlc(rlc.clone());
        let (out, rep) = eng.convert_matrix(&data, &MatrixFormat::Coo).unwrap();
        assert_eq!(out.to_coo(), coo);
        let predicted = conversion_cost(
            &MatrixFormat::Rlc { run_bits: 4 },
            &MatrixFormat::Coo,
            64,
            64,
            512,
            &eng,
        );
        let ratio = predicted.cycles as f64 / rep.pipelined_cycles() as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn conversion_energy_is_negligible_vs_dram() {
        // §VII-C: "conversion energy cost is negligible because accessing
        // data from DRAM consumes significantly more energy than
        // compute." Check the ratio for a speech2-sized workload.
        let eng = ConversionEngine::default();
        let (rows, cols, nnz) = (7_700, 2_600, 1_000_000u64);
        let conv = conversion_cost(
            &MatrixFormat::Rlc { run_bits: 4 },
            &MatrixFormat::Csr,
            rows,
            cols,
            nnz,
            &eng,
        );
        // DRAM energy to move the same operand once (20 pJ/bit x ~36 bits/nnz).
        let dram = nnz as f64 * 36.0 * 20.0e-12;
        assert!(
            conv.energy < dram * 0.05,
            "conversion energy {} should be well under 5% of DRAM {}",
            conv.energy,
            dram
        );
    }

    #[test]
    fn then_composes() {
        let a = ConversionCost {
            cycles: 10,
            energy: 1.0,
        };
        let b = ConversionCost {
            cycles: 5,
            energy: 0.5,
        };
        assert_eq!(
            a.then(&b),
            ConversionCost {
                cycles: 15,
                energy: 1.5
            }
        );
    }

    /// The pre-descriptor cost model, copied verbatim — the bit-for-bit
    /// pin proving the descriptor rebase moved the logic, not the
    /// numbers (the wrapper test alone would compare the new code with
    /// itself).
    fn legacy_conversion_cost(
        src: &MatrixFormat,
        dst: &MatrixFormat,
        rows: usize,
        cols: usize,
        nnz: u64,
        engine: &ConversionEngine,
    ) -> ConversionCost {
        fn stream_slots(fmt: &MatrixFormat, rows: usize, cols: usize, nnz: u64) -> u64 {
            let total = rows as u64 * cols as u64;
            match *fmt {
                MatrixFormat::Dense => total,
                MatrixFormat::Coo => 3 * nnz,
                MatrixFormat::Csr => 2 * nnz + rows as u64 + 1,
                MatrixFormat::Csc => 2 * nnz + cols as u64 + 1,
                MatrixFormat::Rlc { run_bits } => 2 * rlc_expected_entries(total, nnz, run_bits),
                MatrixFormat::Zvc => total.div_ceil(32) + nnz,
                MatrixFormat::Bsr { br, bc } => {
                    let blocks = sparseflex_formats::size_model::bsr_expected_blocks(
                        rows,
                        cols,
                        nnz as usize,
                        br,
                        bc,
                    );
                    blocks * (br * bc) as u64 + blocks + rows.div_ceil(br) as u64 + 1
                }
                MatrixFormat::Dia | MatrixFormat::Ell => total,
            }
        }
        fn is_flat(fmt: &MatrixFormat) -> bool {
            matches!(
                fmt,
                MatrixFormat::Dense | MatrixFormat::Zvc | MatrixFormat::Rlc { .. }
            )
        }
        if src == dst {
            return ConversionCost::free();
        }
        let in_slots = stream_slots(src, rows, cols, nnz);
        let out_slots = stream_slots(dst, rows, cols, nnz);
        let mem_cycles = engine.memctrl.cycles(in_slots + out_slots);
        let needs_divmod =
            (is_flat(src) && !is_flat(dst)) || matches!(dst, MatrixFormat::Bsr { .. });
        let divmod_items = if needs_divmod { nnz } else { 0 };
        let divmod_cycles = engine.divmod.cycles(divmod_items);
        let needs_sorter = |f: &MatrixFormat| matches!(f, MatrixFormat::Csc);
        let sort_items = if needs_sorter(src) || needs_sorter(dst) {
            nnz
        } else {
            0
        };
        let sort_cycles = engine.sorter.cycles(sort_items);
        let scan_items = match (src, dst) {
            (MatrixFormat::Dense, _) => rows as u64 * cols as u64,
            (MatrixFormat::Zvc, _) => (rows as u64 * cols as u64).div_ceil(32),
            _ => (rows.max(cols) as u64) + 1,
        };
        let scan_cycles = engine.prefix.cycles(scan_items);
        let fill = engine.prefix.latency()
            + engine.sorter.latency()
            + engine.divmod.latency()
            + engine.memctrl.setup_latency;
        let cycles = mem_cycles
            .max(divmod_cycles)
            .max(sort_cycles)
            .max(scan_cycles)
            + fill;
        let energy = (in_slots + out_slots) as f64 * E_MEMCTRL_OP
            + divmod_items as f64 * E_DIVMOD_OP
            + sort_items as f64 * engine.sorter.stages() as f64 * crate::blocks::E_SORT_STAGE
            + scan_items as f64 * 2.0 * E_SMALL_OP
            + nnz as f64 * 2.0 * E_SMALL_OP;
        ConversionCost { cycles, energy }
    }

    #[test]
    fn descriptor_costing_matches_the_legacy_model_for_every_pair() {
        // Pin the descriptor-delta engine bit-for-bit against the
        // pre-refactor closed-form model for all 9x9 preset pairs.
        let eng = ConversionEngine::default();
        let formats = [
            MatrixFormat::Dense,
            MatrixFormat::Coo,
            MatrixFormat::Csr,
            MatrixFormat::Csc,
            MatrixFormat::Bsr { br: 4, bc: 4 },
            MatrixFormat::Dia,
            MatrixFormat::Ell,
            MatrixFormat::Rlc { run_bits: 4 },
            MatrixFormat::Zvc,
        ];
        for src in formats {
            for dst in formats {
                for (rows, cols, nnz) in [(500, 400, 3_000), (64, 2_000, 10), (33, 33, 900)] {
                    let legacy = legacy_conversion_cost(&src, &dst, rows, cols, nnz, &eng);
                    let via_desc = descriptor_conversion_cost(
                        &src.descriptor(),
                        &dst.descriptor(),
                        rows,
                        cols,
                        nnz,
                        &eng,
                    );
                    assert_eq!(legacy, via_desc, "{src} -> {dst} at {rows}x{cols}/{nnz}");
                }
            }
        }
    }

    #[test]
    fn required_blocks_map_level_deltas_to_hardware() {
        use sparseflex_formats::FormatDescriptor;
        let csr = FormatDescriptor::csr();
        let csc = FormatDescriptor::csc();
        let dense = FormatDescriptor::dense();
        let zvc = FormatDescriptor::zvc();
        let bsr = FormatDescriptor::bsr(4, 4);
        // Identity engages nothing.
        assert!(required_blocks(&csr, &csr).is_empty());
        // Coordinate-order change engages the sorter.
        assert!(required_blocks(&csr, &csc).contains(&ConverterBlock::Sorter));
        assert!(!required_blocks(&csr, &dense).contains(&ConverterBlock::Sorter));
        // Offsets-rank destinations rebuild pointers with the prefix sum.
        assert!(required_blocks(&dense, &csr).contains(&ConverterBlock::PrefixSum));
        // Flat -> coordinate recovery and blocked ranks use divide/mod.
        assert!(required_blocks(&dense, &csr).contains(&ConverterBlock::DividerModulo));
        assert!(required_blocks(&csr, &bsr).contains(&ConverterBlock::DividerModulo));
        assert!(!required_blocks(&csr, &dense).contains(&ConverterBlock::DividerModulo));
        // Bitmask ranks engage the population counter.
        assert!(required_blocks(&csr, &zvc).contains(&ConverterBlock::Counter));
        assert!(required_blocks(&zvc, &csr).contains(&ConverterBlock::Counter));
        assert!(!required_blocks(&csr, &csc).contains(&ConverterBlock::Counter));
        // Everything non-identity moves data.
        assert!(required_blocks(&csr, &csc).contains(&ConverterBlock::MemoryController));
    }

    #[test]
    fn open_compositions_are_costable() {
        use sparseflex_formats::descriptor::{Level, RankOrder, ValuesLayout};
        use sparseflex_formats::FormatDescriptor;
        let eng = ConversionEngine::default();
        let custom = FormatDescriptor::new(
            RankOrder::RowMajor,
            vec![Level::Bitmask, Level::RunLength { run_bits: 4 }],
            ValuesLayout::Contiguous,
        );
        let c = descriptor_conversion_cost(
            &custom,
            &FormatDescriptor::csr(),
            1_000,
            1_000,
            5_000,
            &eng,
        );
        assert!(c.cycles > 0, "open composition must price a real decode");
        // The custom format stores coordinates implicitly per rank, so
        // recovering CSR's explicit columns needs the divide/mod array.
        assert!(required_blocks(&custom, &FormatDescriptor::csr())
            .contains(&ConverterBlock::DividerModulo));
    }

    #[test]
    fn tensor_costs_positive_and_identity_free() {
        let eng = ConversionEngine::default();
        let dims = (100, 100, 50);
        let c = tensor_conversion_cost(&TensorFormat::Coo, &TensorFormat::Csf, dims, 10_000, &eng);
        assert!(c.cycles > 0);
        let id = tensor_conversion_cost(&TensorFormat::Csf, &TensorFormat::Csf, dims, 10_000, &eng);
        assert_eq!(id, ConversionCost::free());
    }
}

//! Closed-form conversion cost model — the "conversion cost" input SAGE
//! consumes (§VI: "to model the conversion cost, we evaluate the building
//! blocks necessary for each conversion scenario along with their
//! relative execution cycles and power consumption").
//!
//! Unlike [`crate::engine`], which meters an actual conversion, this
//! module predicts cycles and energy from `(dims, nnz, formats)` only, so
//! SAGE can search format spaces for workloads too large to materialize.
//! The model mirrors the engine's charging rules; tests cross-validate
//! the two on random operands.

use crate::blocks::{E_DIVMOD_OP, E_MEMCTRL_OP, E_SMALL_OP};
use crate::engine::ConversionEngine;
use sparseflex_formats::size_model::rlc_expected_entries;
use sparseflex_formats::{MatrixFormat, TensorFormat};

/// Predicted cost of one conversion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConversionCost {
    /// Pipelined wall-clock cycles (bottleneck stage + fill).
    pub cycles: u64,
    /// Energy in joules.
    pub energy: f64,
}

impl ConversionCost {
    /// Zero cost (identity conversion).
    pub const fn free() -> Self {
        ConversionCost {
            cycles: 0,
            energy: 0.0,
        }
    }

    /// Sequential composition of two conversions.
    pub fn then(&self, other: &ConversionCost) -> ConversionCost {
        ConversionCost {
            cycles: self.cycles + other.cycles,
            energy: self.energy + other.energy,
        }
    }
}

/// Elements a format must stream through the converter for an `rows x
/// cols` matrix with `nnz` nonzeros (values + metadata, in element
/// slots).
fn stream_slots(fmt: &MatrixFormat, rows: usize, cols: usize, nnz: u64) -> u64 {
    let total = rows as u64 * cols as u64;
    match *fmt {
        MatrixFormat::Dense => total,
        MatrixFormat::Coo => 3 * nnz,
        MatrixFormat::Csr => 2 * nnz + rows as u64 + 1,
        MatrixFormat::Csc => 2 * nnz + cols as u64 + 1,
        MatrixFormat::Rlc { run_bits } => 2 * rlc_expected_entries(total, nnz, run_bits),
        MatrixFormat::Zvc => total.div_ceil(32) + nnz,
        MatrixFormat::Bsr { br, bc } => {
            let blocks = sparseflex_formats::size_model::bsr_expected_blocks(
                rows,
                cols,
                nnz as usize,
                br,
                bc,
            );
            blocks * (br * bc) as u64 + blocks + rows.div_ceil(br) as u64 + 1
        }
        MatrixFormat::Dia | MatrixFormat::Ell => {
            // Structured stores scale with padded payloads; approximate
            // with the dense stream (conservative upper bound).
            total
        }
    }
}

/// Is this a "flat" format (positions implicit in the stream order,
/// no explicit coordinates)?
fn is_flat(fmt: &MatrixFormat) -> bool {
    matches!(
        fmt,
        MatrixFormat::Dense | MatrixFormat::Zvc | MatrixFormat::Rlc { .. }
    )
}

/// Divide/mod is needed only when recovering explicit coordinates from a
/// flat stream (flat -> coordinate format), or when computing block
/// positions for BSR. Flat -> flat re-encodes (e.g. ZVC -> Dense) are
/// pure expand/compact passes; coordinate -> flat needs only
/// multiply-adds.
fn needs_divmod(src: &MatrixFormat, dst: &MatrixFormat) -> bool {
    let coord_dst = !is_flat(dst);
    (is_flat(src) && coord_dst) || matches!(dst, MatrixFormat::Bsr { .. })
}

/// Does decoding/encoding this format require the sorter (column-major
/// regrouping)?
fn needs_sorter(fmt: &MatrixFormat) -> bool {
    matches!(fmt, MatrixFormat::Csc)
}

/// Predict the MINT cost of converting a matrix from `src` to `dst`.
///
/// The conversion is pipelined against the DRAM stream, so the returned
/// cycle count is the bottleneck-stage occupancy: the memory controller
/// moving `in + out` slots, the divide/mod array (8 elements/cycle), or
/// the scan/sort stages (16-32 elements/cycle) — whichever is slowest.
pub fn conversion_cost(
    src: &MatrixFormat,
    dst: &MatrixFormat,
    rows: usize,
    cols: usize,
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    if src == dst {
        return ConversionCost::free();
    }
    let in_slots = stream_slots(src, rows, cols, nnz);
    let out_slots = stream_slots(dst, rows, cols, nnz);

    // Stage occupancies.
    let mem_cycles = engine.memctrl.cycles(in_slots + out_slots);
    let divmod_items = if needs_divmod(src, dst) { nnz } else { 0 };
    let divmod_cycles = engine.divmod.cycles(divmod_items);
    let sort_items = if needs_sorter(src) || needs_sorter(dst) {
        nnz
    } else {
        0
    };
    let sort_cycles = engine.sorter.cycles(sort_items);
    // Scan traffic: dense/ZVC decodes scan the whole bitmap/matrix;
    // pointer rebuilds scan one pointer array.
    let scan_items = match (src, dst) {
        (MatrixFormat::Dense, _) => rows as u64 * cols as u64,
        (MatrixFormat::Zvc, _) => (rows as u64 * cols as u64).div_ceil(32),
        _ => (rows.max(cols) as u64) + 1,
    };
    let scan_cycles = engine.prefix.cycles(scan_items);

    let fill = engine.prefix.latency()
        + engine.sorter.latency()
        + engine.divmod.latency()
        + engine.memctrl.setup_latency;
    let cycles = mem_cycles
        .max(divmod_cycles)
        .max(sort_cycles)
        .max(scan_cycles)
        + fill;

    let energy = (in_slots + out_slots) as f64 * E_MEMCTRL_OP
        + divmod_items as f64 * E_DIVMOD_OP
        + sort_items as f64 * engine.sorter.stages() as f64 * crate::blocks::E_SORT_STAGE
        + scan_items as f64 * 2.0 * E_SMALL_OP
        + nnz as f64 * 2.0 * E_SMALL_OP; // comparators/adders along the way

    ConversionCost { cycles, energy }
}

/// Tensor-format conversion cost (same structure, tensor stream sizes).
pub fn tensor_conversion_cost(
    src: &TensorFormat,
    dst: &TensorFormat,
    dims: (usize, usize, usize),
    nnz: u64,
    engine: &ConversionEngine,
) -> ConversionCost {
    if src == dst {
        return ConversionCost::free();
    }
    let total = dims.0 as u64 * dims.1 as u64 * dims.2 as u64;
    let slots = |fmt: &TensorFormat| -> u64 {
        match *fmt {
            TensorFormat::Dense => total,
            TensorFormat::Coo => 4 * nnz,
            TensorFormat::Csf => 2 * nnz + 2 * (nnz / 2).max(1), // fids + ptrs estimate
            TensorFormat::HiCoo { .. } => 4 * nnz,
            TensorFormat::Rlc { run_bits } => 2 * rlc_expected_entries(total, nnz, run_bits),
            TensorFormat::Zvc => total.div_ceil(32) + nnz,
        }
    };
    let in_slots = slots(src);
    let out_slots = slots(dst);
    let mem_cycles = engine.memctrl.cycles(in_slots + out_slots);
    // Coordinate recovery (two div/mod rounds per nonzero) is needed only
    // when a flat stream must produce explicit coordinates.
    let flat = |f: &TensorFormat| {
        matches!(
            f,
            TensorFormat::Dense | TensorFormat::Zvc | TensorFormat::Rlc { .. }
        )
    };
    let divmod_items = if flat(src) && !flat(dst) { 2 * nnz } else { 0 };
    let divmod_cycles = engine.divmod.cycles(divmod_items);
    let scan_items = match src {
        TensorFormat::Dense => total,
        TensorFormat::Zvc => total.div_ceil(32),
        _ => nnz,
    };
    let scan_cycles = engine.prefix.cycles(scan_items);
    let fill = engine.prefix.latency() + engine.divmod.latency() + engine.memctrl.setup_latency;
    let cycles = mem_cycles.max(divmod_cycles).max(scan_cycles) + fill;
    let energy = (in_slots + out_slots) as f64 * E_MEMCTRL_OP
        + divmod_items as f64 * E_DIVMOD_OP
        + scan_items as f64 * 2.0 * E_SMALL_OP;
    ConversionCost { cycles, energy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseflex_formats::{MatrixData, SparseMatrix};
    use sparseflex_workloads::synth::random_matrix;

    #[test]
    fn identity_is_free() {
        let eng = ConversionEngine::default();
        let c = conversion_cost(&MatrixFormat::Csr, &MatrixFormat::Csr, 100, 100, 500, &eng);
        assert_eq!(c, ConversionCost::free());
    }

    #[test]
    fn cost_scales_with_nnz() {
        let eng = ConversionEngine::default();
        let small = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            1000,
            1000,
            1_000,
            &eng,
        );
        let large = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            1000,
            1000,
            100_000,
            &eng,
        );
        assert!(large.cycles > small.cycles);
        assert!(large.energy > small.energy);
    }

    #[test]
    fn dense_conversions_pay_for_the_full_scan() {
        let eng = ConversionEngine::default();
        let from_dense = conversion_cost(
            &MatrixFormat::Dense,
            &MatrixFormat::Csr,
            2000,
            2000,
            4_000,
            &eng,
        );
        let from_coo = conversion_cost(
            &MatrixFormat::Coo,
            &MatrixFormat::Csr,
            2000,
            2000,
            4_000,
            &eng,
        );
        assert!(
            from_dense.cycles > 10 * from_coo.cycles,
            "dense {} vs coo {}",
            from_dense.cycles,
            from_coo.cycles
        );
    }

    #[test]
    fn model_tracks_engine_measurements() {
        // The analytic model should land within 2x of the metered engine
        // for the Fig. 8 reference conversions (it models bottleneck-stage
        // occupancy; the engine meters every stage).
        let eng = ConversionEngine::default();
        let coo = random_matrix(100, 120, 2_000, 3);
        let csr = sparseflex_formats::CsrMatrix::from_coo(&coo);
        let (_, rep) = eng.csr_to_csc(&csr);
        let predicted = conversion_cost(
            &MatrixFormat::Csr,
            &MatrixFormat::Csc,
            100,
            120,
            2_000,
            &eng,
        );
        let measured = rep.pipelined_cycles();
        let ratio = predicted.cycles as f64 / measured as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "predicted {} vs measured {measured} (ratio {ratio})",
            predicted.cycles
        );
    }

    #[test]
    fn rlc_decode_cost_tracks_engine() {
        let eng = ConversionEngine::default();
        let coo = random_matrix(64, 64, 512, 5);
        let rlc = sparseflex_formats::RlcMatrix::from_coo(&coo, 4);
        let data = MatrixData::Rlc(rlc.clone());
        let (out, rep) = eng.convert_matrix(&data, &MatrixFormat::Coo).unwrap();
        assert_eq!(out.to_coo(), coo);
        let predicted = conversion_cost(
            &MatrixFormat::Rlc { run_bits: 4 },
            &MatrixFormat::Coo,
            64,
            64,
            512,
            &eng,
        );
        let ratio = predicted.cycles as f64 / rep.pipelined_cycles() as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn conversion_energy_is_negligible_vs_dram() {
        // §VII-C: "conversion energy cost is negligible because accessing
        // data from DRAM consumes significantly more energy than
        // compute." Check the ratio for a speech2-sized workload.
        let eng = ConversionEngine::default();
        let (rows, cols, nnz) = (7_700, 2_600, 1_000_000u64);
        let conv = conversion_cost(
            &MatrixFormat::Rlc { run_bits: 4 },
            &MatrixFormat::Csr,
            rows,
            cols,
            nnz,
            &eng,
        );
        // DRAM energy to move the same operand once (20 pJ/bit x ~36 bits/nnz).
        let dram = nnz as f64 * 36.0 * 20.0e-12;
        assert!(
            conv.energy < dram * 0.05,
            "conversion energy {} should be well under 5% of DRAM {}",
            conv.energy,
            dram
        );
    }

    #[test]
    fn then_composes() {
        let a = ConversionCost {
            cycles: 10,
            energy: 1.0,
        };
        let b = ConversionCost {
            cycles: 5,
            energy: 0.5,
        };
        assert_eq!(
            a.then(&b),
            ConversionCost {
                cycles: 15,
                energy: 1.5
            }
        );
    }

    #[test]
    fn tensor_costs_positive_and_identity_free() {
        let eng = ConversionEngine::default();
        let dims = (100, 100, 50);
        let c = tensor_conversion_cost(&TensorFormat::Coo, &TensorFormat::Csf, dims, 10_000, &eng);
        assert!(c.cycles > 0);
        let id = tensor_conversion_cost(&TensorFormat::Csf, &TensorFormat::Csf, dims, 10_000, &eng);
        assert_eq!(id, ConversionCost::free());
    }
}

//! Per-conversion usage reports.

use std::collections::BTreeMap;

/// The MINT building-block kinds (Fig. 8a's library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockKind {
    /// Prefix-sum (scan) unit.
    PrefixSum,
    /// Pipelined bitonic sorting network.
    Sorter,
    /// Cluster counter (run/occurrence counting on sorted chunks).
    ClusterCounter,
    /// Parallel divide units.
    Divider,
    /// Parallel modulo units.
    Modulo,
    /// Comparator bank.
    Comparators,
    /// Memory controller (address generators, FIFOs, crossbar).
    MemController,
    /// Scalar adder bank (increments, offsets).
    Adders,
}

impl BlockKind {
    /// Short name for CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            BlockKind::PrefixSum => "prefix_sum",
            BlockKind::Sorter => "sorter",
            BlockKind::ClusterCounter => "cluster_counter",
            BlockKind::Divider => "divider",
            BlockKind::Modulo => "modulo",
            BlockKind::Comparators => "comparators",
            BlockKind::MemController => "mem_controller",
            BlockKind::Adders => "adders",
        }
    }
}

/// Cycle and energy usage of one conversion, per building block.
///
/// MINT pipelines blocks against the incoming DRAM stream ("MINT is
/// pipelined to start conversion while streaming in data from memory",
/// §V-B), so the wall-clock cycle count of a conversion is the *maximum*
/// stage occupancy plus pipeline fill, not the sum — both views are
/// exposed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConversionReport {
    /// Busy cycles per block kind.
    pub block_cycles: BTreeMap<BlockKind, u64>,
    /// Energy per block kind (joules).
    pub block_energy: BTreeMap<BlockKind, f64>,
    /// Pipeline fill/flush latency (sum of stage latencies).
    pub fill_latency: u64,
    /// Elements processed (for throughput reporting).
    pub elements: u64,
}

impl ConversionReport {
    /// Record `cycles` of busy time and `energy` joules against a block.
    pub fn charge(&mut self, kind: BlockKind, cycles: u64, energy: f64) {
        *self.block_cycles.entry(kind).or_insert(0) += cycles;
        *self.block_energy.entry(kind).or_insert(0.0) += energy;
    }

    /// Merge another report into this one (sequential composition).
    pub fn merge(&mut self, other: &ConversionReport) {
        for (k, c) in &other.block_cycles {
            *self.block_cycles.entry(*k).or_insert(0) += c;
        }
        for (k, e) in &other.block_energy {
            *self.block_energy.entry(*k).or_insert(0.0) += e;
        }
        self.fill_latency += other.fill_latency;
        self.elements += other.elements;
    }

    /// Pipelined wall-clock cycles: the busiest stage bounds throughput,
    /// plus the fill latency.
    pub fn pipelined_cycles(&self) -> u64 {
        self.block_cycles.values().copied().max().unwrap_or(0) + self.fill_latency
    }

    /// Fully serialized cycles (no stage overlap) — the upper bound.
    pub fn serialized_cycles(&self) -> u64 {
        self.block_cycles.values().sum::<u64>() + self.fill_latency
    }

    /// Total conversion energy in joules.
    pub fn total_energy(&self) -> f64 {
        self.block_energy.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut r = ConversionReport::default();
        r.charge(BlockKind::PrefixSum, 10, 1e-12);
        r.charge(BlockKind::PrefixSum, 5, 1e-12);
        r.charge(BlockKind::Sorter, 40, 2e-12);
        assert_eq!(r.block_cycles[&BlockKind::PrefixSum], 15);
        assert_eq!(r.serialized_cycles(), 55);
        assert_eq!(r.pipelined_cycles(), 40);
        assert!((r.total_energy() - 4e-12).abs() < 1e-20);
    }

    #[test]
    fn pipelined_bounded_by_serialized() {
        let mut r = ConversionReport {
            fill_latency: 7,
            ..Default::default()
        };
        r.charge(BlockKind::Divider, 100, 0.0);
        r.charge(BlockKind::MemController, 80, 0.0);
        assert!(r.pipelined_cycles() <= r.serialized_cycles());
        assert_eq!(r.pipelined_cycles(), 107);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = ConversionReport::default();
        a.charge(BlockKind::Adders, 3, 1.0);
        let mut b = ConversionReport::default();
        b.charge(BlockKind::Adders, 4, 2.0);
        b.charge(BlockKind::Sorter, 9, 0.5);
        a.merge(&b);
        assert_eq!(a.block_cycles[&BlockKind::Adders], 7);
        assert_eq!(a.block_cycles[&BlockKind::Sorter], 9);
        assert_eq!(a.total_energy(), 3.5);
    }
}

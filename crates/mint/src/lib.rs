//! # sparseflex-mint
//!
//! MINT — *Microarchitecture for Interchangeable compressioN formats for
//! Tensors* (§V of the paper): a general-purpose hardware format
//! converter placed next to the accelerator, so MCF→ACF conversions never
//! round-trip through the host.
//!
//! MINT's efficiency comes from two ideas the paper quantifies:
//!
//! 1. **Merging building blocks.** Instead of `m x a` dedicated
//!    converters, all conversions decompose into a small library of
//!    blocks — prefix-sum units, a pipelined sorting network, a cluster
//!    counter, parallel divide/mod units, comparators and a memory
//!    controller ([`blocks`]). Merging shrinks `MINT_b` (0.95 mm²) to
//!    `MINT_m` (0.41 mm²).
//! 2. **Reusing the accelerator datapath.** Prefix sums run on the PE
//!    array's adders (Fig. 9 shows serial-chain / work-efficient / highly
//!    parallel overlays) and position divisions run on the activation
//!    units, shrinking `MINT_m` to `MINT_mr` (0.23 mm²) ([`variants`]).
//!
//! The [`engine`] module implements the paper's four reference
//! conversions (Fig. 8: CSR→CSC, RLC→COO, CSR→BSR, Dense→CSF) *through*
//! the building blocks — each conversion is functional (produces the
//! converted operand, verified against the software oracle in
//! `sparseflex-formats`) and metered (returns per-block cycle and energy
//! usage). A generic any→any path routes through COO. The [`cost`] module
//! provides the closed-form cost model SAGE queries, and the [`tiled`]
//! module adds the per-tile conversion API plus the double-buffered
//! overlap schedule shared by the pipelined runtime and SAGE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod cost;
pub mod engine;
pub mod report;
pub mod tiled;
pub mod variants;

pub use cost::{
    conversion_cost, descriptor_conversion_cost, descriptor_tensor_conversion_cost,
    required_blocks, tensor_conversion_cost, ConversionCost, ConverterBlock,
};
pub use engine::ConversionEngine;
pub use report::{BlockKind, ConversionReport};
pub use tiled::{
    added_hardware_cycles, overlap_schedule, split_cycles, OverlapSchedule, TiledConversion,
};
pub use variants::{MintVariant, PrefixSumOverlay};
